//! Quickstart: run Croesus end-to-end on a synthetic street-traffic video.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the whole public API surface once: generate a video, tune the
//! bandwidth thresholds for an accuracy floor, build a deployment with the
//! `Croesus` builder, run the multi-stage pipeline under two consistency
//! protocols, and compare against the edge-only and cloud-only baselines —
//! all through the same builder.

use croesus::core::{Croesus, CroesusConfig, ProtocolKind, ThresholdEvaluator};
use croesus::detect::{ModelProfile, SimulatedModel};
use croesus::video::VideoPreset;

fn main() {
    let preset = VideoPreset::StreetTraffic;
    let frames = 200;
    let seed = 42;

    // 1. Generate the synthetic video (stand-in for real footage).
    let video = preset.generate(frames, seed);
    println!(
        "video: {} — {} frames, {} tracked objects, querying '{}'",
        video.config.name,
        video.len(),
        video.tracks.len(),
        video.query_class()
    );

    // 2. Tune (θL, θU) for an F-score floor of 0.85: minimize the fraction
    //    of frames that must travel to the cloud.
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), seed ^ 0xE);
    let cloud_model = SimulatedModel::new(ModelProfile::yolov3_416(), seed ^ 0xC);
    let evaluator = ThresholdEvaluator::build(&video, &edge_model, &cloud_model, 0.10);
    let optimal = evaluator.brute_force(0.85, 0.1);
    println!(
        "optimal thresholds: ({:.1}, {:.1}) → predicted BU {:.0}%, F {:.2} ({} evaluations)",
        optimal.pair.lower,
        optimal.pair.upper,
        optimal.outcome.bu * 100.0,
        optimal.outcome.f_score,
        optimal.evaluations
    );

    // 3. Build deployments from one builder: the multi-stage pipeline
    //    (MS-IA, the paper's default) and both baselines.
    let config = CroesusConfig::new(preset, optimal.pair)
        .with_frames(frames)
        .with_seed(seed);
    let croesus = Croesus::multistage(&config).run();
    let edge = Croesus::edge_only(&config).run();
    let cloud = Croesus::cloud_only(&config).run();

    println!(
        "\n{:<12} {:>12} {:>12} {:>8} {:>7}",
        "system", "initial ms", "final ms", "F", "BU%"
    );
    for m in [&edge, &croesus, &cloud] {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.2} {:>7.1}",
            m.label.split_whitespace().next().unwrap_or(&m.label),
            m.initial_commit_ms,
            m.final_commit_ms,
            m.f_score,
            m.bandwidth_utilization * 100.0
        );
    }

    // 4. The consistency protocol is a builder axis, not a rewrite: the
    //    same pipeline under MS-SR (locks held across the cloud wait).
    let ms_sr = Croesus::builder()
        .config(config.clone())
        .protocol(ProtocolKind::MsSr)
        .build()
        .run();
    println!(
        "\nsame pipeline under MS-SR → F {:.2}, {} transactions ('{}')",
        ms_sr.f_score, ms_sr.transactions_committed, ms_sr.label
    );

    println!(
        "\ncorrections: {} confirmed, {} renamed, {} retracted, {} recovered from misses; \
         {} transactions committed",
        croesus.corrections.correct,
        croesus.corrections.corrected,
        croesus.corrections.erroneous,
        croesus.corrections.missed,
        croesus.transactions_committed
    );
    println!(
        "the client sees edge-speed initial commits ({:.0} ms) with near-cloud accuracy \
         ({:.2} vs edge-only {:.2}), at {:.0}% of the cloud bandwidth",
        croesus.initial_commit_ms,
        croesus.f_score,
        edge.f_score,
        croesus.bandwidth_utilization * 100.0
    );
}
