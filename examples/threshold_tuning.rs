//! Bandwidth-threshold tuning (§3.4 / §5.2.3): inspect the BU/accuracy
//! surface of a video and compare the brute-force and gradient searches.
//!
//! ```sh
//! cargo run --release --example threshold_tuning -- [mall|traffic|airport|park|pedestrians] [mu]
//! ```

use croesus::core::{ThresholdEvaluator, ThresholdPair};
use croesus::detect::{ModelProfile, SimulatedModel};
use croesus::video::VideoPreset;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let preset = match args.get(1).map(String::as_str) {
        Some("traffic") => VideoPreset::StreetTraffic,
        Some("airport") => VideoPreset::AirportRunway,
        Some("park") => VideoPreset::ParkDog,
        Some("pedestrians") => VideoPreset::StreetPedestrians,
        _ => VideoPreset::MallSurveillance,
    };
    let mu: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.80);

    println!(
        "video: {} — query '{}', µ = {mu}",
        preset.description(),
        preset.query()
    );
    let video = preset.generate(300, 42);
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 42 ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), 42 ^ 0xC);
    let ev = ThresholdEvaluator::build(&video, &edge, &cloud, 0.10);

    // A few interpretable operating points.
    println!(
        "\n{:>12} {:>8} {:>8} {:>10} {:>8}",
        "(θL, θU)", "BU%", "F", "precision", "recall"
    );
    for (lo, hi) in [
        (0.5, 0.5),
        (0.5, 0.6),
        (0.4, 0.6),
        (0.3, 0.7),
        (0.2, 0.8),
        (0.0, 0.9),
    ] {
        let out = ev.evaluate(ThresholdPair::new(lo, hi));
        println!(
            "{:>12} {:>8.1} {:>8.2} {:>10.2} {:>8.2}",
            format!("({lo:.1},{hi:.1})"),
            out.bu * 100.0,
            out.f_score,
            out.precision,
            out.recall
        );
    }

    let brute = ev.brute_force(mu, 0.1);
    let grad = ev.gradient(mu, 0.1);
    println!(
        "\nbrute force: ({:.1},{:.1}) BU {:.0}% F {:.2} — {} evaluations{}",
        brute.pair.lower,
        brute.pair.upper,
        brute.outcome.bu * 100.0,
        brute.outcome.f_score,
        brute.evaluations,
        if brute.feasible {
            ""
        } else {
            " (µ unreachable — best effort)"
        }
    );
    println!(
        "gradient:    ({:.1},{:.1}) BU {:.0}% F {:.2} — {} evaluations ({:.1}x fewer)",
        grad.pair.lower,
        grad.pair.upper,
        grad.outcome.bu * 100.0,
        grad.outcome.f_score,
        grad.evaluations,
        brute.evaluations as f64 / grad.evaluations as f64
    );
}
