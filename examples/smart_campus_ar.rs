//! The paper's running example (§2.1): a smart-campus AR application.
//!
//! Task 1 — whenever the headset detects a *building*, read its info from
//! the edge database and render it. Task 2 — when the user clicks the
//! auxiliary device, reserve a study room in the currently-detected
//! building. The edge model sometimes detects the *wrong* building; the
//! final section then fixes the rendered info, moves the reservation, and
//! apologizes.
//!
//! ```sh
//! cargo run --release --example smart_campus_ar
//! ```

use std::sync::Arc;

use croesus::core::{
    match_edge_to_cloud, FinalInput, LabelVerdict, TransactionsBank, TriggerRule, TxnInstance,
    TxnTemplate,
};
use croesus::detect::Detection;
use croesus::sim::DetRng;
use croesus::store::{KvStore, LockManager, LockPolicy, TxnId, Value};
use croesus::txn::{
    ExecutorCore, MsIaExecutor, MultiStageProtocol, MultiStageProtocolExt, RwSet, SectionOutput,
};
use croesus::video::BoundingBox;

/// Task 1: display information about a detected building.
struct DisplayBuildingInfo;

impl TxnTemplate for DisplayBuildingInfo {
    fn name(&self) -> &str {
        "display-building-info"
    }

    fn instantiate(&self, trigger: &Detection, _rng: &mut DetRng) -> TxnInstance {
        let guessed = format!("info/{}", trigger.class);
        let initial_rw = RwSet::new().read(guessed.as_str());
        // The final section may need to read *any* building's info (the
        // corrected label is unknown until the cloud responds), and writes
        // the rendered-state key.
        let final_rw = RwSet::new()
            .read("info/engineering")
            .read("info/library")
            .write("render/building-info");
        let guessed_initial = guessed.clone();
        TxnInstance {
            name: self.name().to_string(),
            initial_rw,
            final_rw,
            initial: Box::new(move |ctx| {
                let info = ctx.read(guessed_initial.as_str())?;
                Ok(SectionOutput {
                    response: info.into_iter().map(|v| (*v).clone()).collect(),
                })
            }),
            final_section: Box::new(move |ctx, input: &FinalInput| {
                match &input.verdict {
                    LabelVerdict::Correct => {} // rendered info was right
                    LabelVerdict::Corrected(correct) => {
                        let right = ctx.read(format!("info/{}", correct.class).as_str())?;
                        ctx.write(
                            "render/building-info",
                            format!(
                                "APOLOGY: showing {} ({})",
                                correct.class,
                                right
                                    .and_then(|v| v.as_str().map(String::from))
                                    .unwrap_or_default()
                            ),
                        )?;
                    }
                    LabelVerdict::Erroneous => {
                        ctx.write("render/building-info", "APOLOGY: no building here")?;
                    }
                }
                Ok(SectionOutput::new())
            }),
        }
    }
}

/// Task 2: reserve a study room in the centre-most detected building.
struct ReserveStudyRoom;

impl TxnTemplate for ReserveStudyRoom {
    fn name(&self) -> &str {
        "reserve-study-room"
    }

    fn instantiate(&self, trigger: &Detection, _rng: &mut DetRng) -> TxnInstance {
        let guessed = trigger.class.name().to_string();
        let rooms_all = ["rooms/engineering", "rooms/library"];
        let initial_rw = RwSet::new()
            .read(format!("rooms/{guessed}").as_str())
            .write(format!("rooms/{guessed}").as_str());
        let mut final_rw = RwSet::new().write("render/reservation");
        for r in rooms_all {
            final_rw = final_rw.read(r).write(r);
        }
        let g1 = guessed.clone();
        let g2 = guessed;
        TxnInstance {
            name: self.name().to_string(),
            initial_rw,
            final_rw,
            initial: Box::new(move |ctx| {
                let key = format!("rooms/{g1}");
                let free = ctx
                    .read(key.as_str())?
                    .and_then(|v| v.as_int())
                    .unwrap_or(0);
                if free > 0 {
                    ctx.write(key.as_str(), free - 1)?;
                    Ok(SectionOutput::respond(format!("reserved in {g1}")))
                } else {
                    Ok(SectionOutput::respond("no rooms available"))
                }
            }),
            final_section: Box::new(move |ctx, input: &FinalInput| {
                if let LabelVerdict::Corrected(correct) = &input.verdict {
                    // Undo the wrong reservation, book the right building.
                    let wrong = format!("rooms/{g2}");
                    let w = ctx
                        .read(wrong.as_str())?
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    ctx.write(wrong.as_str(), w + 1)?;
                    let right = format!("rooms/{}", correct.class);
                    let r = ctx
                        .read(right.as_str())?
                        .and_then(|v| v.as_int())
                        .unwrap_or(0);
                    if r > 0 {
                        ctx.write(right.as_str(), r - 1)?;
                        ctx.write(
                            "render/reservation",
                            format!("APOLOGY: moved your reservation to {}", correct.class),
                        )?;
                    } else {
                        ctx.write(
                            "render/reservation",
                            format!(
                                "APOLOGY: {} has no rooms; reservation cancelled",
                                correct.class
                            ),
                        )?;
                    }
                }
                Ok(SectionOutput::new())
            }),
        }
    }
}

fn det(class: &str, conf: f64) -> Detection {
    Detection::new(
        class.into(),
        conf,
        BoundingBox::centered(0.5, 0.5, 0.3, 0.3),
    )
}

fn main() {
    // The edge database: building info and study-room counts.
    let store = Arc::new(KvStore::new());
    store.put(
        "info/engineering".into(),
        Value::from("3 study rooms, open late"),
    );
    store.put(
        "info/library".into(),
        Value::from("12 study rooms, quiet floors"),
    );
    store.put("rooms/engineering".into(), Value::Int(1));
    store.put("rooms/library".into(), Value::Int(5));

    let executor = MsIaExecutor::from_core(ExecutorCore::new(
        store,
        Arc::new(LockManager::new(LockPolicy::Block)),
    ));
    let bank = TransactionsBank::new()
        .with_rule(TriggerRule {
            class_group: "Buildings".into(),
            classes: vec!["engineering".into(), "library".into()],
            requires_aux: None,
            template: Arc::new(DisplayBuildingInfo),
        })
        .with_rule(TriggerRule {
            class_group: "Reservation".into(),
            classes: vec!["engineering".into(), "library".into()],
            requires_aux: Some("click".into()),
            template: Arc::new(ReserveStudyRoom),
        });
    let mut rng = DetRng::new(7);

    // Frame 1: the edge model says "engineering" (it is actually the
    // library — the cloud will correct it). The user also clicks.
    let edge_label = det("engineering", 0.55);
    println!(
        "edge detected: {} (confidence {:.2})",
        edge_label.class, edge_label.confidence
    );

    let mut pendings = Vec::new();
    let run_initial = |inst: croesus::core::TxnInstance, pendings: &mut Vec<_>| {
        let handle = executor.begin(
            TxnId(pendings.len() as u64),
            &[inst.initial_rw.clone(), inst.final_rw.clone()],
        );
        let initial = inst.initial;
        let (out, pending) = executor
            .stage(handle, &inst.initial_rw, |ctx| initial(ctx.section_mut()))
            .expect("initial section commits");
        println!("  [initial commit] {} → {:?}", inst.name, out.response);
        pendings.push((
            pending.expect("two stages declared"),
            inst.final_rw,
            inst.final_section,
        ));
    };
    for rule in bank.triggered_by_label(&edge_label) {
        let inst = rule.template.instantiate(&edge_label, &mut rng);
        run_initial(inst, &mut pendings);
    }
    let recent = [edge_label.clone()];
    for (rule, label) in bank.triggered_by_aux("click", &recent) {
        let label = label.expect("reservation needs a building label");
        let inst = rule.template.instantiate(label, &mut rng);
        run_initial(inst, &mut pendings);
    }

    // The cloud's verdict arrives ~1.2 s later: it was the library. The
    // label is matched once; every transaction it triggered receives the
    // same verdict.
    let cloud_labels = vec![det("library", 0.97)];
    println!("\ncloud says: {}", cloud_labels[0].class);
    let matched = match_edge_to_cloud(&[edge_label], &cloud_labels, 0.10);
    let verdict = matched.inputs[0].clone();

    for (pending, final_rw, body) in pendings {
        let input = verdict.clone();
        executor
            .stage(pending, &final_rw, move |ctx| {
                body(ctx.section_mut(), &input)
            })
            .expect("final sections cannot abort");
    }

    let store = executor.store();
    println!("\nfinal state:");
    for key in [
        "render/building-info",
        "render/reservation",
        "rooms/engineering",
        "rooms/library",
    ] {
        println!("  {key} = {:?}", store.get(&key.into()));
    }
    assert_eq!(
        store.get(&"rooms/engineering".into()).as_deref(),
        Some(&Value::Int(1)),
        "the wrong reservation was returned"
    );
    assert_eq!(
        store.get(&"rooms/library".into()).as_deref(),
        Some(&Value::Int(4)),
        "the corrected reservation landed in the library"
    );
    println!("\nthe guess was wrong, the final stage fixed it, and the user got an apology.");
}
