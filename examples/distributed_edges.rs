//! Multi-partition transactions across edge nodes (§4.5).
//!
//! "Each edge node maintains the state of a partition." When a transaction
//! touches data homed on several edge nodes — say, a token transfer between
//! players camped on different edges — the partitions lock remotely and
//! finish with two-phase commit. Under MS-IA, the atomic-commitment step
//! runs at the end of *both* sections.
//!
//! ```sh
//! cargo run --release --example distributed_edges
//! ```

use std::sync::Arc;

use croesus::store::{Key, LockPolicy, PartitionMap, TxnId, Value};
use croesus::txn::{Coordinator, TpcOutcome};

fn balance(pm: &PartitionMap, player: &str) -> i64 {
    let k: Key = player.into();
    pm.partition_of(&k)
        .store
        .get(&k)
        .and_then(|v| v.as_int())
        .unwrap_or(0)
}

fn main() {
    // Four edge nodes, each owning a hash partition of the player base.
    let pm = Arc::new(PartitionMap::new(4, LockPolicy::NoWait));
    let coordinator = Coordinator::new(Arc::clone(&pm));

    // Seed balances; players land on different partitions by key hash.
    let players = ["alice", "bob", "carol", "dave"];
    for p in players {
        let k: Key = p.into();
        let part = pm.partition_of(&k);
        part.store.put(k.clone(), Value::Int(100));
        println!("{p:>6} lives on edge partition {:?}", part.id);
    }

    // Initial section (the guess, from an edge detection): alice pays bob
    // and carol in one atomic multi-partition write.
    let initial = vec![
        (Key::from("alice"), Value::Int(40)),
        (Key::from("bob"), Value::Int(130)),
        (Key::from("carol"), Value::Int(130)),
    ];
    let outcome = coordinator.commit_writes(TxnId(1), &initial);
    println!("\ninitial section 2PC: {outcome:?}");
    assert!(matches!(outcome, TpcOutcome::Committed { .. }));
    println!(
        "balances: alice={} bob={} carol={} dave={}",
        balance(&pm, "alice"),
        balance(&pm, "bob"),
        balance(&pm, "carol"),
        balance(&pm, "dave")
    );

    // The cloud labels arrive: the second recipient was actually dave.
    // The final section corrects across partitions, again atomically.
    let final_section = vec![
        (Key::from("carol"), Value::Int(100)),
        (Key::from("dave"), Value::Int(130)),
    ];
    let outcome = coordinator.commit_writes(TxnId(1), &final_section);
    println!("\nfinal section 2PC (correction: carol → dave): {outcome:?}");
    assert!(matches!(outcome, TpcOutcome::Committed { .. }));

    println!(
        "balances: alice={} bob={} carol={} dave={}",
        balance(&pm, "alice"),
        balance(&pm, "bob"),
        balance(&pm, "carol"),
        balance(&pm, "dave")
    );
    let total: i64 = players.iter().map(|p| balance(&pm, p)).sum();
    assert_eq!(total, 400, "tokens are conserved across partitions");

    // Demonstrate the abort path: a remote lock blocks one participant,
    // so nothing commits anywhere.
    let blocker: Key = "bob".into();
    pm.partition_of(&blocker)
        .locks
        .lock(TxnId(99), &blocker, croesus::store::LockMode::Exclusive)
        .unwrap();
    let doomed = vec![
        (Key::from("alice"), Value::Int(0)),
        (Key::from("bob"), Value::Int(170)),
    ];
    let outcome = coordinator.commit_writes(TxnId(2), &doomed);
    println!("\nconflicting 2PC while bob's partition is locked: {outcome:?}");
    assert!(matches!(outcome, TpcOutcome::Aborted { .. }));
    assert_eq!(balance(&pm, "alice"), 40, "atomicity: nothing applied");
    assert_eq!(balance(&pm, "bob"), 130);
    println!("atomicity held: the partial transfer left no trace.");
}
