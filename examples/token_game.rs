//! The multi-player AR token game of §4.4 — guesses, apologies, cascading
//! retraction, and the invariant-preserving merge that retains unaffected
//! state.
//!
//! Players: A (50 tokens), B (10), C (0), D (0). Three transfers execute
//! optimistically on edge detections: t1: A→B 50, t2: B→C 10, t3: B→C 50.
//! The cloud later reveals t1's recipient was actually **D**. A naive
//! cascade would retract t2 and t3 too; the §4.4 merge keeps t2 (B really
//! did have 10 tokens of its own) and retracts only t3.
//!
//! ```sh
//! cargo run --release --example token_game
//! ```

use std::sync::Arc;

use croesus::store::{Key, KvStore, LockManager, LockPolicy, TxnId, Value};
use croesus::txn::{
    ExecutorCore, Invariant, MsIaExecutor, MultiStageProtocol, MultiStageProtocolExt,
    NonNegativeInvariant, RwSet,
};

fn balance(store: &KvStore, player: &str) -> i64 {
    store
        .get(&player.into())
        .and_then(|v| v.as_int())
        .unwrap_or(0)
}

fn print_balances(store: &KvStore, when: &str) {
    println!(
        "{when}: A={} B={} C={} D={}",
        balance(store, "A"),
        balance(store, "B"),
        balance(store, "C"),
        balance(store, "D")
    );
}

fn main() {
    let store = Arc::new(KvStore::new());
    for (p, v) in [("A", 50i64), ("B", 10), ("C", 0), ("D", 0)] {
        store.put(p.into(), Value::Int(v));
    }
    let executor = MsIaExecutor::from_core(ExecutorCore::new(
        Arc::clone(&store),
        Arc::new(LockManager::new(LockPolicy::Block)),
    ));
    print_balances(&store, "start");

    // transfer(from, to, amount): the initial section is the guess. Under
    // MS-IA the declared final rw-set is advisory — the final stage locks
    // whatever it actually needs when the cloud verdict arrives.
    let transfer = |id: u64, from: &'static str, to: &'static str, amount: i64| {
        let rw = RwSet::new().read(from).write(from).read(to).write(to);
        let handle = executor.begin(TxnId(id), &[rw.clone(), RwSet::new()]);
        let (_, next) = executor
            .stage(handle, &rw, move |ctx| {
                let f = ctx.read(from)?.and_then(|v| v.as_int()).unwrap_or(0);
                let t = ctx.read(to)?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write(from, f - amount)?;
                ctx.write(to, t + amount)?;
                Ok(())
            })
            .expect("initial commits");
        next.expect("two stages declared")
    };

    let p1 = transfer(1, "A", "B", 50);
    let p2 = transfer(2, "B", "C", 10);
    let p3 = transfer(3, "B", "C", 50);
    print_balances(&store, "after guesses (t1: A→B 50, t2: B→C 10, t3: B→C 50)");

    // t2 and t3's cloud inputs were correct: their final sections terminate.
    executor.stage(p2, &RwSet::new(), |_| Ok(())).unwrap();
    executor.stage(p3, &RwSet::new(), |_| Ok(())).unwrap();

    // t1's final section learns the recipient was D, not B. A full cascade
    // would drag t2 and t3 down with it; the invariant-confluent merge
    // reconciles instead: move the 50 tokens to D, keep t2 (B's own 10
    // tokens legitimately went to C), and retract only what B could not
    // have sent — the 50 tokens of t3.
    let rw = RwSet::new()
        .read("A")
        .write("A")
        .read("B")
        .write("B")
        .read("C")
        .write("C")
        .read("D")
        .write("D");
    let store_for_check = Arc::clone(&store);
    executor
        .stage(p1, &rw, move |ctx| {
            // 1. Redirect the transfer: B's windfall goes to D instead.
            let b = ctx.read("B")?.and_then(|v| v.as_int()).unwrap_or(0);
            let d = ctx.read("D")?.and_then(|v| v.as_int()).unwrap_or(0);
            ctx.write("B", b - 50)?;
            ctx.write("D", d + 50)?;
            // 2. Check the invariant: no player below zero.
            let inv = NonNegativeInvariant::over(
                ["A".into(), "B".into(), "C".into(), "D".into()] as [Key; 4]
            );
            if let Err(violation) = inv.check(&store_for_check) {
                println!("invariant violated after redirect: {violation}");
                // 3. Merge: B is at -50 because t3 spent tokens B never
                //    truly had. Retract t3's effect (C gives back 50,
                //    B returns to 0) and apologize; t2's 10 tokens stand.
                let b = ctx.read("B")?.and_then(|v| v.as_int()).unwrap_or(0);
                let c = ctx.read("C")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("B", b + 50)?;
                ctx.write("C", c - 50)?;
                println!(
                    "apology: t3's 50-token transfer B→C was retracted \
                     (B and C receive a free game item)"
                );
            }
            Ok(())
        })
        .unwrap();

    print_balances(&store, "after t1's final section (correct recipient: D)");

    // The invariant now holds and the merge retained t2.
    let inv =
        NonNegativeInvariant::over(["A".into(), "B".into(), "C".into(), "D".into()] as [Key; 4]);
    inv.check(&store).expect("merge restored the invariant");
    assert_eq!(balance(&store, "A"), 0);
    assert_eq!(balance(&store, "B"), 0);
    assert_eq!(
        balance(&store, "C"),
        10,
        "t2's legitimate transfer survived the merge"
    );
    assert_eq!(
        balance(&store, "D"),
        50,
        "the rightful recipient got the tokens"
    );
    println!("\nmerge retained t2, retracted only t3 — minimal retraction, invariants restored.");
}
