//! Protocol conformance suite: one shared scenario set executed against
//! all three protocols through `&dyn MultiStageProtocol`.
//!
//! The paper's claim is that MS-SR, MS-IA and the generalized staged
//! discipline are *one* transaction model under interchangeable
//! consistency protocols. These tests pin that down: wherever the paper
//! requires identical outcomes (serial execution, aborts before initial
//! commit, atomicity of rollback, multi-partition footprints), every
//! protocol must produce the same store state — and where the protocols
//! are *defined* to differ (lock-release discipline), the difference is
//! asserted per [`ProtocolKind`].

use std::sync::Arc;

use croesus::store::{Key, KvStore, LockManager, LockMode, LockPolicy, PartitionMap, TxnId, Value};
use croesus::txn::{
    ExecutorCore, HistoryRecorder, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind, RwSet,
    TxnError,
};

struct Harness {
    kind: ProtocolKind,
    store: Arc<KvStore>,
    locks: Arc<LockManager>,
    protocol: Box<dyn MultiStageProtocol>,
}

fn harness(kind: ProtocolKind, policy: LockPolicy) -> Harness {
    let store = Arc::new(KvStore::new());
    let locks = Arc::new(LockManager::new(policy));
    let protocol = kind.build(
        ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks))
            .with_history(HistoryRecorder::new()),
    );
    Harness {
        kind,
        store,
        locks,
        protocol,
    }
}

fn all(policy: LockPolicy) -> Vec<Harness> {
    ProtocolKind::ALL
        .into_iter()
        .map(|k| harness(k, policy))
        .collect()
}

/// Deterministic single-threaded scenarios cannot interleave, so the
/// paper requires every protocol to leave the same state behind.
fn assert_same_states(harnesses: &[Harness], keys: &[&str]) {
    for key in keys {
        let reference = harnesses[0].store.get(&Key::new(key));
        for h in &harnesses[1..] {
            assert_eq!(
                h.store.get(&Key::new(key)),
                reference,
                "{}: state of {key} diverges from {}",
                h.kind,
                harnesses[0].kind
            );
        }
    }
}

#[test]
fn commit_scenario_produces_identical_state() {
    let harnesses = all(LockPolicy::Block);
    for h in &harnesses {
        let rw_i = RwSet::new().write("balance").write("log");
        let rw_f = RwSet::new().write("balance");
        let t = h.protocol.begin(TxnId(1), &[rw_i.clone(), rw_f.clone()]);
        let (_, t) = h
            .protocol
            .stage(t, &rw_i, |ctx| {
                ctx.write("balance", 100)?;
                ctx.write("log", "initial")
            })
            .unwrap();
        let (_, done) = h
            .protocol
            .stage(t.unwrap(), &rw_f, |ctx| ctx.write("balance", 150))
            .unwrap();
        assert!(done.is_none(), "{}", h.kind);
        let snap = h.protocol.stats().snapshot();
        assert_eq!(snap.commits, 1, "{}", h.kind);
        assert_eq!(snap.aborts, 0, "{}", h.kind);
    }
    assert_same_states(&harnesses, &["balance", "log"]);
}

#[test]
fn abort_scenario_rolls_back_identically() {
    let harnesses = all(LockPolicy::Block);
    for h in &harnesses {
        h.store.put("seed".into(), Value::Int(1));
        let rw = RwSet::new().write("seed").write("fresh");
        let t = h.protocol.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let r = h.protocol.stage(t, &rw, |ctx| {
            ctx.write("seed", 999)?;
            ctx.write("fresh", 1)?;
            Err::<(), _>(TxnError::Invariant("trigger was wrong".into()))
        });
        assert!(r.is_err(), "{}", h.kind);
        assert_eq!(h.protocol.stats().snapshot().aborts, 1, "{}", h.kind);
        // Rollback restored the pre-image and removed the fresh insert.
        assert_eq!(
            h.store.get(&"seed".into()).as_deref(),
            Some(&Value::Int(1)),
            "{}",
            h.kind
        );
        assert!(!h.store.contains(&"fresh".into()), "{}", h.kind);
        // Every lock is free again: a new transaction can take them all.
        let t = h.protocol.begin(TxnId(2), &[rw.clone(), rw.clone()]);
        let (_, t) = h.protocol.stage(t, &rw, |_| Ok(())).unwrap();
        h.protocol.stage(t.unwrap(), &rw, |_| Ok(())).unwrap();
    }
    assert_same_states(&harnesses, &["seed", "fresh"]);
}

#[test]
fn conflict_scenario_aborts_only_before_initial_commit() {
    // An older transaction (TxnId 0) holds the hot key; every protocol's
    // younger transaction must abort its *initial* stage (wait-die kills
    // the younger requester), and succeed after the holder releases.
    let harnesses = all(LockPolicy::WaitDie);
    for h in &harnesses {
        let hot: Key = "hot".into();
        h.locks.lock(TxnId(0), &hot, LockMode::Exclusive).unwrap();
        let rw = RwSet::new().write("hot");
        let t = h.protocol.begin(TxnId(5), &[rw.clone(), rw.clone()]);
        let r = h.protocol.stage(t, &rw, |ctx| ctx.write("hot", 1));
        assert!(
            matches!(r, Err(TxnError::Aborted(_))),
            "{}: younger txn must die on the held lock",
            h.kind
        );
        assert!(!h.store.contains(&hot), "{}: nothing committed", h.kind);
        h.locks.release(TxnId(0), &hot);
        // Retry with the same id (wait-die priority) now commits.
        let t = h.protocol.begin(TxnId(5), &[rw.clone(), rw.clone()]);
        let (_, t) = h.protocol.stage(t, &rw, |ctx| ctx.write("hot", 1)).unwrap();
        h.protocol
            .stage(t.unwrap(), &rw, |ctx| ctx.write("hot", 2))
            .unwrap();
    }
    assert_same_states(&harnesses, &["hot"]);
}

#[test]
fn multi_partition_scenario_spans_partitions_atomically() {
    // A transfer whose keys are homed on different partitions (§4.5). The
    // partition map only routes; the protocols must keep the multi-key
    // footprint atomic and identical.
    let pm = PartitionMap::new(4, LockPolicy::Block);
    let (alice, bob): (Key, Key) = ("alice".into(), "bob".into());
    assert_ne!(
        pm.partition_of(&alice).id,
        pm.partition_of(&bob).id,
        "scenario needs keys on different partitions"
    );

    let harnesses = all(LockPolicy::Block);
    for h in &harnesses {
        h.store.put(alice.clone(), Value::Int(100));
        h.store.put(bob.clone(), Value::Int(100));
        let rw = RwSet::new()
            .read("alice")
            .write("alice")
            .read("bob")
            .write("bob");
        let t = h.protocol.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let (_, t) = h
            .protocol
            .stage(t, &rw, |ctx| {
                let a = ctx.read("alice")?.and_then(|v| v.as_int()).unwrap_or(0);
                let b = ctx.read("bob")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("alice", a - 40)?;
                ctx.write("bob", b + 40)
            })
            .unwrap();
        // The correction (final stage) moves 10 back.
        h.protocol
            .stage(t.unwrap(), &rw, |ctx| {
                let a = ctx.read("alice")?.and_then(|v| v.as_int()).unwrap_or(0);
                let b = ctx.read("bob")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("alice", a + 10)?;
                ctx.write("bob", b - 10)
            })
            .unwrap();
        let a = h.store.get(&alice).and_then(|v| v.as_int()).unwrap();
        let b = h.store.get(&bob).and_then(|v| v.as_int()).unwrap();
        assert_eq!(a + b, 200, "{}: tokens conserved", h.kind);
        assert_eq!(a, 70, "{}", h.kind);
    }
    assert_same_states(&harnesses, &["alice", "bob"]);
}

#[test]
fn three_stage_scenario_is_protocol_agnostic() {
    // §3.5's m-stage model runs under every protocol — TSPL simply locks
    // all three declared sets up front, the others release between stages.
    let harnesses = all(LockPolicy::Block);
    for h in &harnesses {
        let s0 = RwSet::new().write("draft");
        let s1 = RwSet::new().read("draft").write("review");
        let s2 = RwSet::new().read("review").write("published");
        let t = h
            .protocol
            .begin(TxnId(7), &[s0.clone(), s1.clone(), s2.clone()]);
        let (_, t) = h
            .protocol
            .stage(t, &s0, |ctx| ctx.write("draft", 1))
            .unwrap();
        let (_, t) = h
            .protocol
            .stage(t.unwrap(), &s1, |ctx| {
                let d = ctx.read("draft")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("review", d + 1)
            })
            .unwrap();
        let (_, done) = h
            .protocol
            .stage(t.unwrap(), &s2, |ctx| {
                let r = ctx.read("review")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("published", r + 1)
            })
            .unwrap();
        assert!(done.is_none(), "{}", h.kind);
        assert_eq!(h.protocol.stats().snapshot().commits, 1, "{}", h.kind);
    }
    assert_same_states(&harnesses, &["draft", "review", "published"]);
}

#[test]
fn lock_release_discipline_differs_by_design() {
    // The one place the protocols *must* disagree: after the initial
    // stage, MS-IA/staged have released everything, MS-SR holds both the
    // initial and the declared final items (Fig. 6a is this difference).
    for kind in ProtocolKind::ALL {
        let h = harness(kind, LockPolicy::NoWait);
        let rw_i = RwSet::new().write("i");
        let rw_f = RwSet::new().write("f");
        let t = h.protocol.begin(TxnId(1), &[rw_i.clone(), rw_f.clone()]);
        let (_, t) = h.protocol.stage(t, &rw_i, |ctx| ctx.write("i", 1)).unwrap();
        let externally_lockable = h
            .locks
            .lock(TxnId(99), &"f".into(), LockMode::Exclusive)
            .is_ok();
        match kind {
            ProtocolKind::MsSr => assert!(
                !externally_lockable,
                "MS-SR must already hold the final stage's items"
            ),
            ProtocolKind::MsIa | ProtocolKind::Staged => {
                assert!(
                    externally_lockable,
                    "{kind} must have released everything at initial commit"
                );
                h.locks.release(TxnId(99), &"f".into());
            }
        }
        h.protocol
            .stage(t.unwrap(), &rw_f, |ctx| ctx.write("f", 2))
            .unwrap();
        assert_eq!(h.locks.locked_keys(), 0, "{kind}: all released at the end");
    }
}
