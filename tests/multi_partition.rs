//! §4.5 integration: multi-partition multi-stage transactions.
//!
//! "In the multi-partition case, the data objects that are accessed by a
//! transaction can be in multiple partitions. ... the partitions engage in
//! a two-phase commit protocol. ... (2) for MS-IA, it is performed at the
//! end of both the initial and final sections."

use std::sync::Arc;

use croesus::store::{Key, LockPolicy, PartitionMap, TxnId, Value};
use croesus::txn::{Coordinator, TpcOutcome};

/// Run one MS-IA multi-partition transaction: the initial section's writes
/// commit atomically across partitions (2PC #1), and later the final
/// section's corrections commit atomically too (2PC #2).
#[test]
fn ms_ia_runs_2pc_at_both_sections() {
    let pm = Arc::new(PartitionMap::new(4, LockPolicy::NoWait));
    let coord = Coordinator::new(Arc::clone(&pm));

    // Initial section (the guess): record sightings on many partitions.
    let initial_writes: Vec<(Key, Value)> = (0..16)
        .map(|i| (Key::indexed("sighting", i), Value::from("seen:bus")))
        .collect();
    let outcome = coord.commit_writes(TxnId(1), &initial_writes);
    assert!(matches!(outcome, TpcOutcome::Committed { participants } if participants > 1));

    // The cloud corrects the label: the final section rewrites everywhere,
    // again atomically.
    let final_writes: Vec<(Key, Value)> = (0..16)
        .map(|i| (Key::indexed("sighting", i), Value::from("seen:car")))
        .collect();
    let outcome = coord.commit_writes(TxnId(1), &final_writes);
    assert!(matches!(outcome, TpcOutcome::Committed { .. }));

    for (k, _) in &final_writes {
        assert_eq!(
            pm.partition_of(k).store.get(k).as_deref(),
            Some(&Value::from("seen:car")),
            "correction must be visible on {k}'s home partition"
        );
    }
}

#[test]
fn final_section_2pc_failure_leaves_initial_state_intact() {
    let pm = Arc::new(PartitionMap::new(4, LockPolicy::NoWait));
    let coord = Coordinator::new(Arc::clone(&pm));

    let initial_writes: Vec<(Key, Value)> = (0..12)
        .map(|i| (Key::indexed("s", i), Value::Int(1)))
        .collect();
    assert!(matches!(
        coord.commit_writes(TxnId(1), &initial_writes),
        TpcOutcome::Committed { .. }
    ));

    // A remote partition refuses the final round (a lock held elsewhere).
    let victim = Key::indexed("s", 5);
    pm.partition_of(&victim)
        .locks
        .lock(TxnId(99), &victim, croesus::store::LockMode::Exclusive)
        .unwrap();
    let final_writes: Vec<(Key, Value)> = (0..12)
        .map(|i| (Key::indexed("s", i), Value::Int(2)))
        .collect();
    let outcome = coord.commit_writes(TxnId(2), &final_writes);
    assert!(matches!(outcome, TpcOutcome::Aborted { .. }));

    // Atomicity: not one partition shows a final-round write.
    for (k, _) in &final_writes {
        assert_eq!(
            pm.partition_of(k).store.get(k).as_deref(),
            Some(&Value::Int(1))
        );
    }

    // After the blocker releases, the retry commits.
    pm.partition_of(&victim).locks.release(TxnId(99), &victim);
    assert!(matches!(
        coord.commit_writes(TxnId(3), &final_writes),
        TpcOutcome::Committed { .. }
    ));
}

#[test]
fn concurrent_coordinators_never_interleave_partially() {
    // Two coordinators writing overlapping key sets: one aborts cleanly
    // (NoWait) or both serialize; never a mixed state.
    let pm = Arc::new(PartitionMap::new(2, LockPolicy::NoWait));
    let writes_a: Vec<(Key, Value)> = (0..8)
        .map(|i| (Key::indexed("k", i), Value::Int(100)))
        .collect();
    let writes_b: Vec<(Key, Value)> = (0..8)
        .map(|i| (Key::indexed("k", i), Value::Int(200)))
        .collect();
    let pm_a = Arc::clone(&pm);
    let pm_b = Arc::clone(&pm);
    let wa = writes_a.clone();
    let wb = writes_b.clone();
    let ta = std::thread::spawn(move || Coordinator::new(pm_a).commit_writes(TxnId(1), &wa));
    let tb = std::thread::spawn(move || Coordinator::new(pm_b).commit_writes(TxnId(2), &wb));
    let ra = ta.join().unwrap();
    let rb = tb.join().unwrap();

    let committed_values: Vec<i64> = (0..8)
        .filter_map(|i| {
            let k = Key::indexed("k", i);
            pm.partition_of(&k).store.get(&k).and_then(|v| v.as_int())
        })
        .collect();
    match (ra, rb) {
        (TpcOutcome::Committed { .. }, TpcOutcome::Committed { .. }) => {
            // Both committed: the later writer's values everywhere.
            assert_eq!(committed_values.len(), 8);
            assert!(
                committed_values.iter().all(|&v| v == 100)
                    || committed_values.iter().all(|&v| v == 200),
                "mixed state after two commits: {committed_values:?}"
            );
        }
        (TpcOutcome::Committed { .. }, TpcOutcome::Aborted { .. }) => {
            assert!(committed_values.iter().all(|&v| v == 100));
        }
        (TpcOutcome::Aborted { .. }, TpcOutcome::Committed { .. }) => {
            assert!(committed_values.iter().all(|&v| v == 200));
        }
        (TpcOutcome::Aborted { .. }, TpcOutcome::Aborted { .. }) => {
            assert!(committed_values.is_empty());
        }
    }
}
