//! Lincheck-style concurrent conformance tests: threads submit stages
//! against each protocol, and the *observed* history is checked against a
//! sequential specification by searching for a valid linearization
//! (pattern after `SmnTin/lincheck`'s `LinearizabilityChecker`: DFS over
//! interleavings, executing a sequential spec and matching each
//! invocation's recorded result).
//!
//! The workload is a two-account transfer. Every stage atomically reads
//! both balances (the recorded observation) and moves one unit between
//! them, so the sequential spec is exact: an operation is admissible only
//! when its observation equals the spec state. A stage that executed
//! non-atomically (torn writes, reads outside the locks) would record an
//! observation no interleaving can produce, and the search would fail.
//!
//! Granularity is the protocols' own promise (§4):
//!
//! * **MS-IA / staged** release locks between stages — each *stage* is an
//!   atomic operation; stages of different transactions may interleave.
//! * **MS-SR** makes a transaction's sections appear back-to-back in the
//!   serial order, so both stages form one *composite* operation — if the
//!   executor wrongly released locks between stages, a foreign stage
//!   could slip in between and the txn-granularity search would fail.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use croesus::store::{KvStore, LockManager, TxnId, Value};
use croesus::txn::{
    current_worker, ExecutorCore, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind, RwSet,
    StageCtx, TxnError, WorkerPool,
};

const ACCT_A: &str = "acct/a";
const ACCT_B: &str = "acct/b";
const INIT_A: i64 = 100;
const INIT_B: i64 = 0;

/// One atomic operation of the sequential spec: what the stage observed
/// and the transfer it applied.
#[derive(Clone, Copy, Debug)]
struct AtomicOp {
    observed: (i64, i64),
    moved: i64, // units moved a → b
}

/// One invocation as the checker schedules it: a group of atomic ops that
/// must execute back-to-back (len 1 = stage granularity; len 2 = a whole
/// MS-SR transaction).
type Composite = Vec<AtomicOp>;

/// Sequential spec state.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Accounts {
    a: i64,
    b: i64,
}

impl Accounts {
    /// Execute a composite against the spec: every op's observation must
    /// equal the state it runs in.
    fn exec(mut self, comp: &Composite) -> Option<Accounts> {
        for op in comp {
            if (self.a, self.b) != op.observed {
                return None;
            }
            self.a -= op.moved;
            self.b += op.moved;
        }
        Some(self)
    }
}

/// DFS over interleavings of the per-thread composite sequences
/// (program order preserved per thread), executing the spec and matching
/// observations — the lincheck search, with memoization on thread
/// positions (the spec state is a function of the multiset of applied
/// transfers, hence of the positions).
fn linearizable(threads: &[Vec<Composite>], init: Accounts) -> bool {
    fn dfs(
        threads: &[Vec<Composite>],
        pos: &mut Vec<usize>,
        state: Accounts,
        dead: &mut HashSet<Vec<usize>>,
    ) -> bool {
        if pos.iter().zip(threads).all(|(&p, ops)| p == ops.len()) {
            return true;
        }
        if dead.contains(pos) {
            return false;
        }
        for t in 0..threads.len() {
            if pos[t] < threads[t].len() {
                if let Some(next) = state.exec(&threads[t][pos[t]]) {
                    pos[t] += 1;
                    if dfs(threads, pos, next, dead) {
                        return true;
                    }
                    pos[t] -= 1;
                }
            }
        }
        dead.insert(pos.clone());
        false
    }
    let mut pos = vec![0; threads.len()];
    dfs(threads, &mut pos, init, &mut HashSet::new())
}

fn transfer_rw() -> RwSet {
    RwSet::new().write(ACCT_A).write(ACCT_B)
}

/// The stage body: atomically observe both balances and move `moved`.
fn transfer_stage(ctx: &mut StageCtx<'_>, moved: i64) -> Result<AtomicOp, TxnError> {
    let a = ctx.read(ACCT_A)?.and_then(|v| v.as_int()).unwrap_or(0);
    let b = ctx.read(ACCT_B)?.and_then(|v| v.as_int()).unwrap_or(0);
    ctx.write(ACCT_A, a - moved)?;
    ctx.write(ACCT_B, b + moved)?;
    Ok(AtomicOp {
        observed: (a, b),
        moved,
    })
}

fn shared_protocol(kind: ProtocolKind) -> Arc<Box<dyn MultiStageProtocol>> {
    let store = Arc::new(KvStore::new());
    store.put(ACCT_A.into(), Value::Int(INIT_A));
    store.put(ACCT_B.into(), Value::Int(INIT_B));
    let core = ExecutorCore::new(
        store,
        Arc::new(LockManager::new(kind.default_lock_policy())),
    );
    Arc::new(kind.build(core))
}

const THREADS: usize = 3;
const TXNS_PER_THREAD: u64 = 3;

/// Run the concurrent workload; returns per-thread observed histories at
/// the granularity the protocol guarantees.
fn run_history(kind: ProtocolKind, txn_granularity: bool) -> Vec<Vec<Composite>> {
    let protocol = shared_protocol(kind);
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let p = Arc::clone(&protocol);
            thread::spawn(move || {
                let mut history: Vec<Composite> = Vec::new();
                for i in 0..TXNS_PER_THREAD {
                    let txn = TxnId(tid * 100 + i);
                    let rw = transfer_rw();
                    let stages = [rw.clone(), rw.clone()];
                    // Wait-die (MS-SR's pairing) can kill stage 0; retry
                    // the whole transaction like the pipeline does.
                    let (op0, pending) = loop {
                        let h = p.begin(txn, &stages);
                        match p.stage(h, &rw, |ctx| transfer_stage(ctx, 1)) {
                            Ok((op, next)) => break (op, next.expect("two stages")),
                            Err(_) => thread::yield_now(),
                        }
                    };
                    let (op1, done) = p
                        .stage(pending, &rw, |ctx| transfer_stage(ctx, 2))
                        .expect("later stages cannot abort");
                    assert!(done.is_none());
                    if txn_granularity {
                        history.push(vec![op0, op1]);
                    } else {
                        history.push(vec![op0]);
                        history.push(vec![op1]);
                    }
                }
                history
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).collect()
}

#[test]
fn ms_ia_stages_linearize_against_the_sequential_spec() {
    for round in 0..5 {
        let history = run_history(ProtocolKind::MsIa, false);
        assert!(
            linearizable(
                &history,
                Accounts {
                    a: INIT_A,
                    b: INIT_B
                }
            ),
            "round {round}: no interleaving of atomic stages explains the observations: {history:?}"
        );
    }
}

#[test]
fn staged_stages_linearize_against_the_sequential_spec() {
    for round in 0..5 {
        let history = run_history(ProtocolKind::Staged, false);
        assert!(
            linearizable(
                &history,
                Accounts {
                    a: INIT_A,
                    b: INIT_B
                }
            ),
            "round {round}: {history:?}"
        );
    }
}

#[test]
fn ms_sr_whole_transactions_linearize_back_to_back() {
    for round in 0..5 {
        let history = run_history(ProtocolKind::MsSr, true);
        assert!(
            linearizable(
                &history,
                Accounts {
                    a: INIT_A,
                    b: INIT_B
                }
            ),
            "round {round}: MS-SR must admit a serial order with both \
             sections adjacent: {history:?}"
        );
    }
}

// --- pool-driven histories: the edge runtime's own worker pool ----------

const POOL_WORKERS: usize = 4;
const POOL_WAVES: u64 = 3;
const POOL_WAVE_WIDTH: u64 = 4;

/// Run the transfer workload through [`WorkerPool::run_wave`] — the same
/// machinery the edge runtime uses for wave-parallel initial stages — and
/// return the observed history grouped per *worker thread*.
///
/// Program order per worker is what the checker needs, and the grouping
/// delivers it: a worker pops queue jobs in FIFO order, so within a wave
/// its jobs appear in submission order, and `run_wave` is a barrier, so
/// ordering across waves is real time. Each job runs one whole
/// transaction (both stages), retrying on a wait-die kill exactly like
/// the pipeline does.
fn run_pooled_history(kind: ProtocolKind, txn_granularity: bool) -> Vec<Vec<Composite>> {
    let protocol = shared_protocol(kind);
    let pool = WorkerPool::new(POOL_WORKERS);
    let mut per_worker: Vec<Vec<Composite>> = vec![Vec::new(); POOL_WORKERS];
    for wave in 0..POOL_WAVES {
        let jobs: Vec<_> = (0..POOL_WAVE_WIDTH)
            .map(|j| {
                let p = Arc::clone(&protocol);
                let txn = TxnId(wave * POOL_WAVE_WIDTH + j);
                move || {
                    let rw = transfer_rw();
                    let stages = [rw.clone(), rw.clone()];
                    let (op0, pending) = loop {
                        let h = p.begin(txn, &stages);
                        match p.stage(h, &rw, |ctx| transfer_stage(ctx, 1)) {
                            Ok((op, next)) => break (op, next.expect("two stages")),
                            Err(_) => thread::yield_now(),
                        }
                    };
                    let (op1, done) = p
                        .stage(pending, &rw, |ctx| transfer_stage(ctx, 2))
                        .expect("later stages cannot abort");
                    assert!(done.is_none());
                    let worker = current_worker().expect("jobs run on pool workers");
                    (worker, op0, op1)
                }
            })
            .collect();
        for (worker, op0, op1) in pool.run_wave(jobs) {
            if txn_granularity {
                per_worker[worker].push(vec![op0, op1]);
            } else {
                per_worker[worker].push(vec![op0]);
                per_worker[worker].push(vec![op1]);
            }
        }
    }
    // The pool must conserve money just like hand-rolled threads.
    let store = protocol.store();
    let a = store.get(&ACCT_A.into()).unwrap().as_int().unwrap();
    let b = store.get(&ACCT_B.into()).unwrap().as_int().unwrap();
    assert_eq!(a + b, INIT_A + INIT_B, "{kind}: transfers conserve money");
    let moved = (POOL_WAVES * POOL_WAVE_WIDTH) as i64 * 3;
    assert_eq!(b, INIT_B + moved, "{kind}: every pooled transaction landed");
    per_worker
}

#[test]
fn pooled_ms_ia_stage_histories_linearize() {
    for round in 0..3 {
        let history = run_pooled_history(ProtocolKind::MsIa, false);
        assert!(
            linearizable(
                &history,
                Accounts {
                    a: INIT_A,
                    b: INIT_B
                }
            ),
            "round {round}: no interleaving of atomic stages explains the \
             pool-worker observations: {history:?}"
        );
    }
}

#[test]
fn pooled_staged_stage_histories_linearize() {
    for round in 0..3 {
        let history = run_pooled_history(ProtocolKind::Staged, false);
        assert!(
            linearizable(
                &history,
                Accounts {
                    a: INIT_A,
                    b: INIT_B
                }
            ),
            "round {round}: {history:?}"
        );
    }
}

#[test]
fn pooled_ms_sr_transactions_linearize_back_to_back() {
    for round in 0..3 {
        let history = run_pooled_history(ProtocolKind::MsSr, true);
        assert!(
            linearizable(
                &history,
                Accounts {
                    a: INIT_A,
                    b: INIT_B
                }
            ),
            "round {round}: MS-SR run on the worker pool must still admit \
             a serial order with both sections adjacent: {history:?}"
        );
    }
}

#[test]
fn final_balances_conserve_the_total() {
    for kind in ProtocolKind::ALL {
        let protocol = shared_protocol(kind);
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|tid| {
                let p = Arc::clone(&protocol);
                thread::spawn(move || {
                    for i in 0..TXNS_PER_THREAD {
                        let txn = TxnId(tid * 100 + i);
                        let rw = transfer_rw();
                        let pending = loop {
                            let h = p.begin(txn, &[rw.clone(), rw.clone()]);
                            match p.stage(h, &rw, |ctx| transfer_stage(ctx, 1)) {
                                Ok((_, next)) => break next.expect("two stages"),
                                Err(_) => thread::yield_now(),
                            }
                        };
                        p.stage(pending, &rw, |ctx| transfer_stage(ctx, 2))
                            .expect("later stages cannot abort");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let store = protocol.store();
        let a = store.get(&ACCT_A.into()).unwrap().as_int().unwrap();
        let b = store.get(&ACCT_B.into()).unwrap().as_int().unwrap();
        assert_eq!(a + b, INIT_A + INIT_B, "{kind}: transfers conserve money");
        let moved = (THREADS as i64) * (TXNS_PER_THREAD as i64) * 3;
        assert_eq!(b, INIT_B + moved, "{kind}: every committed stage moved");
    }
}

// --- checker self-tests: the search must reject impossible histories ----

#[test]
fn checker_accepts_a_valid_sequential_history() {
    let t1 = vec![vec![AtomicOp {
        observed: (100, 0),
        moved: 1,
    }]];
    let t2 = vec![vec![AtomicOp {
        observed: (99, 1),
        moved: 2,
    }]];
    assert!(linearizable(&[t1, t2], Accounts { a: 100, b: 0 }));
}

#[test]
fn checker_rejects_a_lost_update_history() {
    // Both stages claim to have observed the initial state, yet both
    // applied — no sequential order explains that.
    let t1 = vec![vec![AtomicOp {
        observed: (100, 0),
        moved: 1,
    }]];
    let t2 = vec![vec![AtomicOp {
        observed: (100, 0),
        moved: 1,
    }]];
    assert!(!linearizable(&[t1, t2], Accounts { a: 100, b: 0 }));
}

#[test]
fn checker_rejects_an_interleaved_composite() {
    // Composite (MS-SR) semantics: t1's two stages observed a foreign
    // transfer in between — fine at stage granularity, impossible
    // back-to-back.
    let t1 = vec![vec![
        AtomicOp {
            observed: (100, 0),
            moved: 1,
        },
        AtomicOp {
            observed: (98, 2), // t2's transfer slipped in between
            moved: 2,
        },
    ]];
    let t2 = vec![vec![AtomicOp {
        observed: (99, 1),
        moved: 1,
    }]];
    assert!(
        !linearizable(&[t1.clone(), t2.clone()], Accounts { a: 100, b: 0 }),
        "txn granularity must reject the interleaving"
    );
    // The same history at stage granularity is fine.
    let t1_stages: Vec<Composite> = t1[0].iter().map(|&op| vec![op]).collect();
    assert!(linearizable(&[t1_stages, t2], Accounts { a: 100, b: 0 }));
}
