//! Crash-at-every-record-boundary property tests for the durability
//! subsystem.
//!
//! Strategy: drive a randomized interleaved multi-stage workload through a
//! real protocol executor with an in-memory WAL, take the full log byte
//! stream, then *crash at every frame boundary* — truncate the log there,
//! recover, and check the rebuilt store against an independent oracle that
//! interprets the same record prefix naively. Mid-frame cuts (torn writes)
//! must recover exactly like the last whole-frame boundary before them.
//!
//! The oracle is deliberately dumb: a `BTreeMap` fed record-by-record,
//! sharing no code with `croesus_wal::recover`'s state machine.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;

use croesus::store::{KvStore, LockManager, TxnId, Value};
use croesus::txn::{
    recovery::recover_edge, ExecutorCore, MultiStageProtocolExt, ProtocolKind, RwSet,
};
use croesus::wal::{recover, FrameReader, MemStorage, PipelineConfig, Wal, WalConfig, WalRecord};

/// SplitMix64 — the test's own deterministic stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// The prefix-interpreting oracle: applies decoded records to a plain map.
#[derive(Default, Clone)]
struct Oracle {
    store: BTreeMap<String, Value>,
    pending: BTreeMap<u64, Vec<(String, Option<Value>)>>, // txn → buffered (key, post)
    initial: BTreeSet<u64>,
    finalized: BTreeSet<u64>,
    live_entries: BTreeMap<u64, usize>, // txn → registered, unretracted entries
}

impl Oracle {
    fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::Stage(s) => {
                let pending = self.pending.entry(s.txn.0).or_default();
                for w in &s.images {
                    pending.push((w.key.as_str().to_string(), w.post.as_deref().cloned()));
                }
                if s.flags.commit_point() {
                    for (key, post) in std::mem::take(pending) {
                        match post {
                            Some(v) => {
                                self.store.insert(key, v);
                            }
                            None => {
                                self.store.remove(&key);
                            }
                        }
                    }
                    self.initial.insert(s.txn.0);
                    if s.flags.register() {
                        *self.live_entries.entry(s.txn.0).or_default() += 1;
                    }
                    if s.flags.is_final() {
                        self.finalized.insert(s.txn.0);
                    }
                }
            }
            WalRecord::Retract(r) => {
                for (key, value) in &r.restores {
                    match value {
                        Some(v) => {
                            self.store.insert(key.as_str().to_string(), (**v).clone());
                        }
                        None => {
                            self.store.remove(key.as_str());
                        }
                    }
                }
                self.live_entries.remove(&r.txn.0);
            }
            WalRecord::TpcDecision { .. }
            | WalRecord::TpcEnd { .. }
            | WalRecord::Checkpoint(_)
            | WalRecord::Settle => {
                unreachable!("this workload emits none of these")
            }
        }
    }

    fn expected_unfinalized(&self) -> BTreeSet<u64> {
        self.initial
            .iter()
            .filter(|t| {
                !self.finalized.contains(t) && self.live_entries.get(t).copied().unwrap_or(0) > 0
            })
            .copied()
            .collect()
    }
}

fn snapshot_of(store: &KvStore) -> BTreeMap<String, Value> {
    store
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), (*v.value).clone()))
        .collect()
}

/// Drive a seeded interleaved workload; return the full log bytes.
fn run_workload(seed: u64, kind: ProtocolKind) -> Vec<u8> {
    let mut rng = Rng(seed);
    let group = match rng.below(3) {
        0 => WalConfig::strict(),
        1 => WalConfig::group(3),
        _ => WalConfig::group(64),
    };
    let (wal, probe): (Wal, MemStorage) = Wal::in_memory(group);
    let core = ExecutorCore::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(kind.default_lock_policy())),
    )
    .with_wal(Arc::new(wal));
    let protocol = kind.build(core);

    let n_txns = 6 + rng.below(6);
    // MS-SR holds every declared lock across its pending window, so give
    // it disjoint per-txn keys (the paper's hot-spot aborts are measured
    // elsewhere); the releasing protocols share a small pool → cascades.
    let key_for = |rng: &mut Rng, txn: u64| -> String {
        if kind == ProtocolKind::MsSr {
            format!("t{txn}/{}", rng.below(2))
        } else {
            format!("k/{}", rng.below(5))
        }
    };

    struct Active {
        handle: croesus::txn::TxnHandle,
        final_rw: RwSet,
        retract: bool,
    }
    let mut active: Vec<Active> = Vec::new();
    let mut started = 0u64;
    while started < n_txns || !active.is_empty() {
        let start_new = started < n_txns && (active.is_empty() || rng.chance(55));
        if start_new {
            let txn = TxnId(started);
            let k0 = key_for(&mut rng, started);
            let k1 = key_for(&mut rng, started);
            let initial_rw = RwSet::new().write(k0.as_str()).write(k1.as_str());
            let kf = key_for(&mut rng, started);
            let final_rw = if rng.chance(70) {
                RwSet::new().write(kf.as_str())
            } else {
                RwSet::new()
            };
            let v = rng.below(1000) as i64;
            let handle = protocol.begin(txn, &[initial_rw.clone(), final_rw.clone()]);
            let (_, next) = protocol
                .stage(handle, &initial_rw, |ctx| {
                    ctx.write(k0.as_str(), v)?;
                    ctx.write(k1.as_str(), v + 1)?;
                    Ok(())
                })
                .expect("sequential initial stages cannot conflict");
            let retract = kind != ProtocolKind::MsSr && rng.chance(25);
            active.push(Active {
                handle: next.expect("two stages declared"),
                final_rw,
                retract,
            });
            started += 1;
        } else {
            let idx = rng.below(active.len() as u64) as usize;
            let a = active.remove(idx);
            let v = rng.below(1000) as i64;
            protocol
                .stage(a.handle, &a.final_rw, |ctx| {
                    if a.retract {
                        ctx.retract_self("guessed wrong");
                    }
                    if let Some(k) = a.final_rw.writes.first().cloned() {
                        ctx.write(k, v)?;
                    }
                    Ok(())
                })
                .expect("final stages cannot abort");
        }
    }
    // No flush: `all_bytes` is the every-byte-made-it view; the boundary
    // sweep below is the crash simulation.
    probe.all_bytes()
}

fn check_every_boundary(log: &[u8]) {
    // Frame boundaries + per-frame oracle snapshots.
    let mut boundaries = vec![0usize];
    {
        let mut reader = FrameReader::new(log);
        while reader.next().is_some() {
            boundaries.push(reader.offset());
        }
        assert_eq!(
            *boundaries.last().unwrap(),
            log.len(),
            "the workload's own log must parse completely"
        );
    }
    let mut oracle = Oracle::default();
    let mut oracle_at: Vec<Oracle> = vec![oracle.clone()];
    {
        let reader = FrameReader::new(log);
        for payload in reader {
            oracle.apply(&WalRecord::decode(payload).expect("valid payload"));
            oracle_at.push(oracle.clone());
        }
    }

    for (frames, &cut) in boundaries.iter().enumerate() {
        let report = recover(&log[..cut]);
        assert_eq!(report.frames, frames, "cut at byte {cut}");
        assert!(!report.torn_tail, "boundary cuts are clean");
        let expected = &oracle_at[frames];
        assert_eq!(
            snapshot_of(&report.store),
            expected.store,
            "store mismatch after {frames} frames (cut at byte {cut})"
        );
        let unfinalized: BTreeSet<u64> = report.unfinalized.iter().map(|t| t.0).collect();
        assert_eq!(
            unfinalized,
            expected.expected_unfinalized(),
            "unfinalized mismatch after {frames} frames"
        );

        // Apology-aware recovery on the same prefix: every unfinalized
        // transaction ends up retracted (not live) and apologized for.
        let rec = recover_edge(&log[..cut]);
        for txn in &report.unfinalized {
            assert!(
                !rec.apologies.is_live(*txn),
                "unfinalized {txn} must be retracted during recovery"
            );
        }
        let apologized: BTreeSet<u64> = rec.apologies_owed().iter().map(|a| a.txn.0).collect();
        for txn in &unfinalized {
            assert!(
                apologized.contains(txn),
                "txn {txn} owes its users an apology"
            );
        }
    }
}

/// What one pipelined run observed, for the crash sweeps below.
struct PipelinedRun {
    /// The fully drained log (every appended byte landed durably).
    log: Vec<u8>,
    /// `(durable image, last_flushed_lsn)` at every post-sync boundary
    /// the interleaved flusher reached mid-run.
    flush_points: Vec<(Vec<u8>, u64)>,
    /// `latest_lsn` at every explicit buffer seal (the seal boundaries).
    seal_points: Vec<u64>,
    /// `(requested LSN, boundary at return)` for every mid-run
    /// `flush_lsn` ack.
    acks: Vec<(u64, u64)>,
}

/// Drive the seeded workload through the *pipelined* writer in manual
/// mode, interleaving buffer seals and flusher steps at seeded points —
/// a single-threaded schedule of the appender/flusher race (the
/// exhaustive multi-threaded version lives in the `wal_pipeline` mcheck
/// scenario; this sweep trades exhaustiveness for real executor
/// workloads and per-byte crash cuts).
fn run_workload_pipelined(seed: u64, kind: ProtocolKind) -> PipelinedRun {
    let mut rng = Rng(seed ^ 0xD1CE);
    let group = WalConfig::group([1, 2, 3][rng.below(3) as usize]);
    let (wal, probe) = Wal::pipelined_in_memory(
        group,
        PipelineConfig {
            coalescer: None,
            manual_flusher: true,
        },
    );
    let wal = Arc::new(wal);
    let core = ExecutorCore::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(kind.default_lock_policy())),
    )
    .with_wal(Arc::clone(&wal));
    let protocol = kind.build(core);

    let mut run = PipelinedRun {
        log: Vec::new(),
        flush_points: Vec::new(),
        seal_points: Vec::new(),
        acks: Vec::new(),
    };
    // The seeded appender/flusher interleaving: after every protocol op,
    // maybe seal the active buffer, pump the flusher, or wait on an ack.
    let pump = |rng: &mut Rng, run: &mut PipelinedRun| {
        for _ in 0..rng.below(3) {
            match rng.below(4) {
                0 => {
                    wal.seal_active();
                    run.seal_points.push(wal.latest_lsn());
                }
                1 | 2 => {
                    if wal.flusher_step().expect("in-memory pipeline io") {
                        let image = probe.durable();
                        let lsn = wal.last_flushed_lsn();
                        run.flush_points.push((image, lsn));
                    }
                }
                _ => {
                    let lsn = wal.latest_lsn();
                    wal.flush_lsn(lsn).expect("in-memory pipeline io");
                    run.acks.push((lsn, wal.last_flushed_lsn()));
                }
            }
        }
    };

    let n_txns = 6 + rng.below(6);
    let key_for = |rng: &mut Rng, txn: u64| -> String {
        if kind == ProtocolKind::MsSr {
            format!("t{txn}/{}", rng.below(2))
        } else {
            format!("k/{}", rng.below(5))
        }
    };
    struct Active {
        handle: croesus::txn::TxnHandle,
        final_rw: RwSet,
        retract: bool,
    }
    let mut active: Vec<Active> = Vec::new();
    let mut started = 0u64;
    while started < n_txns || !active.is_empty() {
        let start_new = started < n_txns && (active.is_empty() || rng.chance(55));
        if start_new {
            let txn = TxnId(started);
            let k0 = key_for(&mut rng, started);
            let k1 = key_for(&mut rng, started);
            let initial_rw = RwSet::new().write(k0.as_str()).write(k1.as_str());
            let kf = key_for(&mut rng, started);
            let final_rw = if rng.chance(70) {
                RwSet::new().write(kf.as_str())
            } else {
                RwSet::new()
            };
            let v = rng.below(1000) as i64;
            let handle = protocol.begin(txn, &[initial_rw.clone(), final_rw.clone()]);
            let (_, next) = protocol
                .stage(handle, &initial_rw, |ctx| {
                    ctx.write(k0.as_str(), v)?;
                    ctx.write(k1.as_str(), v + 1)?;
                    Ok(())
                })
                .expect("sequential initial stages cannot conflict");
            let retract = kind != ProtocolKind::MsSr && rng.chance(25);
            active.push(Active {
                handle: next.expect("two stages declared"),
                final_rw,
                retract,
            });
            started += 1;
        } else {
            let idx = rng.below(active.len() as u64) as usize;
            let a = active.remove(idx);
            let v = rng.below(1000) as i64;
            protocol
                .stage(a.handle, &a.final_rw, |ctx| {
                    if a.retract {
                        ctx.retract_self("guessed wrong");
                    }
                    if let Some(k) = a.final_rw.writes.first().cloned() {
                        ctx.write(k, v)?;
                    }
                    Ok(())
                })
                .expect("final stages cannot abort");
        }
        pump(&mut rng, &mut run);
    }
    // Drain the pipeline: the final log is every appended byte.
    wal.flush().expect("in-memory pipeline io");
    run.log = probe.all_bytes();
    assert_eq!(
        probe.durable(),
        run.log,
        "a drained pipeline leaves nothing unsynced"
    );
    assert_eq!(wal.last_flushed_lsn(), wal.latest_lsn());
    run
}

/// The pipelined durability contract, checked against one seeded run:
/// every mid-run durable image is a prefix of the final log ending at
/// `last_flushed_lsn`; seal and flush boundaries are clean frame cuts;
/// acks never return below their requested LSN; and the full per-frame
/// crash sweep matches the oracle.
fn check_pipelined_run(run: &PipelinedRun) {
    check_every_boundary(&run.log);
    for (image, lsn) in &run.flush_points {
        prop_assert_eq!(
            image.len() as u64,
            *lsn,
            "with no checkpoint an LSN is a global byte offset"
        );
        prop_assert!(
            run.log.starts_with(image),
            "a durable image must be a prefix of the final log — \
             anything acked at LSN {} survives every cut at or past it",
            lsn
        );
        let report = recover(image);
        prop_assert!(!report.torn_tail, "post-sync boundaries are clean cuts");
    }
    for lsn in &run.seal_points {
        let report = recover(&run.log[..*lsn as usize]);
        prop_assert!(!report.torn_tail, "seal boundaries are clean cuts");
    }
    for (requested, at_ack) in &run.acks {
        prop_assert!(
            at_ack >= requested,
            "flush_lsn({}) returned at boundary {}",
            requested,
            at_ack
        );
    }
}

proptest! {
    #[test]
    fn crash_at_every_record_boundary_is_prefix_consistent_ms_ia(seed in any::<u64>()) {
        check_every_boundary(&run_workload(seed, ProtocolKind::MsIa));
    }

    #[test]
    fn crash_at_every_record_boundary_is_prefix_consistent_staged(seed in any::<u64>()) {
        check_every_boundary(&run_workload(seed, ProtocolKind::Staged));
    }

    #[test]
    fn crash_at_every_record_boundary_is_prefix_consistent_ms_sr(seed in any::<u64>()) {
        check_every_boundary(&run_workload(seed, ProtocolKind::MsSr));
    }

    #[test]
    fn torn_mid_frame_cuts_recover_like_the_preceding_boundary(seed in any::<u64>()) {
        let log = run_workload(seed, ProtocolKind::MsIa);
        let mut boundaries = vec![0usize];
        let mut reader = FrameReader::new(&log);
        while reader.next().is_some() {
            boundaries.push(reader.offset());
        }
        // Sample torn cuts inside frames; each must recover exactly the
        // state of the last whole frame before the tear.
        let mut cut = 1usize;
        while cut < log.len() {
            if !boundaries.contains(&cut) {
                let torn = recover(&log[..cut]);
                prop_assert!(torn.torn_tail);
                let base = *boundaries.iter().take_while(|&&b| b < cut).last().unwrap();
                let clean = recover(&log[..base]);
                prop_assert_eq!(
                    snapshot_of(&torn.store),
                    snapshot_of(&clean.store),
                    "torn cut at {} must equal boundary at {}",
                    cut,
                    base
                );
                prop_assert_eq!(&torn.unfinalized, &clean.unfinalized);
            }
            cut += 7; // sample; exhaustive per-byte would be slow × 64 cases
        }
    }

    #[test]
    fn pipelined_crash_sweep_matches_oracle_ms_ia(seed in any::<u64>()) {
        check_pipelined_run(&run_workload_pipelined(seed, ProtocolKind::MsIa));
    }

    #[test]
    fn pipelined_crash_sweep_matches_oracle_staged(seed in any::<u64>()) {
        check_pipelined_run(&run_workload_pipelined(seed, ProtocolKind::Staged));
    }

    #[test]
    fn pipelined_torn_cuts_inside_the_inflight_buffer_recover_to_the_boundary(seed in any::<u64>()) {
        // Cuts *between* a flush boundary and the next — bytes that were
        // in flight inside the pipeline — behave exactly like torn tails:
        // recovery lands on the last whole frame at or before the cut.
        let run = run_workload_pipelined(seed, ProtocolKind::MsIa);
        let log = &run.log;
        let mut boundaries = vec![0usize];
        let mut reader = FrameReader::new(log);
        while reader.next().is_some() {
            boundaries.push(reader.offset());
        }
        let mut cut = 1usize;
        while cut < log.len() {
            if !boundaries.contains(&cut) {
                let torn = recover(&log[..cut]);
                prop_assert!(torn.torn_tail);
                let base = *boundaries.iter().take_while(|&&b| b < cut).last().unwrap();
                let clean = recover(&log[..base]);
                prop_assert_eq!(
                    snapshot_of(&torn.store),
                    snapshot_of(&clean.store),
                    "torn cut at {} must equal boundary at {}",
                    cut,
                    base
                );
                prop_assert_eq!(&torn.unfinalized, &clean.unfinalized);
            }
            cut += 11; // sample; exhaustive per-byte would be slow × 64 cases
        }
    }

    #[test]
    fn corrupted_byte_never_panics_recovery(seed in any::<u64>(), flip in any::<u64>()) {
        let mut log = run_workload(seed, ProtocolKind::Staged);
        prop_assert!(!log.is_empty(), "every workload logs at least one stage");
        let pos = (flip % log.len() as u64) as usize;
        log[pos] ^= 0x5A;
        // Recovery must stop cleanly at some prefix, never panic.
        let report = recover(&log);
        prop_assert!(report.bytes_replayed <= log.len() as u64);
    }
}

/// Deterministic end-to-end: a two-transaction dependency chain crashed
/// between the dependent's final commit and the guesser's — recovery must
/// cascade the retraction through the *finalized* dependent.
#[test]
fn crash_mid_chain_cascades_through_finalized_dependents() {
    let (wal, probe) = Wal::in_memory(WalConfig::strict());
    let core = ExecutorCore::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(ProtocolKind::MsIa.default_lock_policy())),
    )
    .with_wal(Arc::new(wal));
    let p = ProtocolKind::MsIa.build(core);

    let rw1 = RwSet::new().write("b");
    let h1 = p.begin(TxnId(1), &[rw1.clone(), RwSet::new()]);
    let (_, _h1) = p.stage(h1, &rw1, |ctx| ctx.write("b", 50)).unwrap();
    let rw2 = RwSet::new().read("b").write("c");
    let h2 = p.begin(TxnId(2), &[rw2.clone(), RwSet::new()]);
    let (_, h2) = p
        .stage(h2, &rw2, |ctx| {
            let b = ctx.read("b")?.and_then(|v| v.as_int()).unwrap_or(0);
            ctx.write("c", b * 2)
        })
        .unwrap();
    p.stage(h2.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
    // t2 finalized; t1 never did. Crash.

    let rec = recover_edge(&probe.durable());
    assert_eq!(rec.unfinalized, vec![TxnId(1)]);
    assert_eq!(rec.retractions.len(), 1);
    assert_eq!(rec.retractions[0].retracted, vec![TxnId(2), TxnId(1)]);
    assert!(!rec.store.contains(&"b".into()));
    assert!(!rec.store.contains(&"c".into()));
    assert_eq!(rec.apologies_owed().len(), 2, "both users get apologies");
}
