//! Safety integration tests: the recorded histories of concurrent MS-SR and
//! MS-IA executions must satisfy their respective §4 ordering conditions.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use croesus::store::{KvStore, LockManager, LockPolicy, TxnId, Value};
use croesus::txn::{HistoryRecorder, MsIaExecutor, RwSet, Sequencer, TsplExecutor};

/// Run `n` concurrent increment transactions (read x initially, write x+1
/// finally — the §4.2 anomaly workload) under TSPL.
fn run_tspl_increments(n: u64, threads: usize) -> (Arc<KvStore>, HistoryRecorder) {
    let history = HistoryRecorder::new();
    let store = Arc::new(KvStore::new());
    store.put("x".into(), Value::Int(0));
    let executor = Arc::new(
        TsplExecutor::new(
            Arc::clone(&store),
            Arc::new(LockManager::new(LockPolicy::WaitDie)),
        )
        .with_history(history.clone()),
    );
    let per = n / threads as u64;
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let executor = Arc::clone(&executor);
            thread::spawn(move || {
                for i in 0..per {
                    let id = TxnId(t * per + i);
                    let rw = RwSet::new().read("x").write("x");
                    loop {
                        let r = executor.execute(
                            id,
                            &rw,
                            &rw,
                            |ctx| Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0)),
                            || thread::sleep(Duration::from_micros(100)),
                            |ctx| {
                                let v = ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0);
                                ctx.write("x", v + 1)?;
                                Ok(())
                            },
                        );
                        if r.is_ok() {
                            break;
                        }
                        thread::yield_now();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (store, history)
}

#[test]
fn tspl_history_satisfies_ms_sr_and_loses_no_updates() {
    let (store, history) = run_tspl_increments(24, 4);
    // MS-SR forbids the lost-update anomaly: x counts every increment.
    assert_eq!(store.get(&"x".into()).as_deref(), Some(&Value::Int(24)));
    let checker = history.checker();
    checker.check_ms_sr().expect("TSPL must satisfy MS-SR");
    checker
        .check_section_serializability()
        .expect("sections must serialize");
    assert_eq!(checker.committed_txns().len(), 24);
}

#[test]
fn ms_ia_concurrent_history_satisfies_ms_ia() {
    let history = HistoryRecorder::new();
    let executor = Arc::new(
        MsIaExecutor::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::WaitDie)),
        )
        .with_history(history.clone()),
    );
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let executor = Arc::clone(&executor);
            thread::spawn(move || {
                let rw = RwSet::new().read("hot").write("hot");
                let pending = loop {
                    match executor.run_initial(TxnId(t), &rw, |ctx| {
                        let v = ctx.read("hot")?.and_then(|v| v.as_int()).unwrap_or(0);
                        ctx.write("hot", v + 1)?;
                        Ok(())
                    }) {
                        Ok((_, p)) => break p,
                        Err(_) => thread::yield_now(),
                    }
                };
                thread::sleep(Duration::from_micros(200)); // cloud wait, no locks
                executor
                    .run_final(pending, &rw, |ctx, _| {
                        let v = ctx.read("hot")?.and_then(|v| v.as_int()).unwrap_or(0);
                        ctx.write("hot", v)?;
                        Ok(())
                    })
                    .unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let checker = history.checker();
    checker.check_ms_ia(&[]).expect("MS-IA ordering must hold");
    assert_eq!(checker.committed_txns().len(), 6);
    // Because initial sections hold their locks while incrementing, the
    // counter itself is exact even under MS-IA.
    assert_eq!(
        executor.store().get(&"hot".into()).as_deref(),
        Some(&Value::Int(6))
    );
}

#[test]
fn sequenced_ms_ia_batches_preserve_exactness() {
    // The paper's sequencer configuration: order a batch so conflicting
    // transactions never overlap; the result equals serial execution.
    let executor = MsIaExecutor::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(LockPolicy::Block)),
    );
    executor.store().put("acc".into(), Value::Int(0));
    let sets: Vec<RwSet> = (0..20)
        .map(|i| {
            if i % 2 == 0 {
                RwSet::new().read("acc").write("acc")
            } else {
                RwSet::new().write(format!("private/{i}").as_str())
            }
        })
        .collect();
    let mut pendings = Vec::new();
    Sequencer::run_batch::<croesus::txn::TxnError>(&sets, |idx| {
        let rw = &sets[idx];
        let (_, p) = executor.run_initial(TxnId(idx as u64), rw, |ctx| {
            if idx % 2 == 0 {
                let v = ctx.read("acc")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("acc", v + 1)?;
            } else {
                ctx.write(format!("private/{idx}").as_str(), idx as i64)?;
            }
            Ok(())
        })?;
        pendings.push((idx, p));
        Ok(())
    })
    .unwrap();
    for (idx, p) in pendings {
        executor.run_final(p, &RwSet::new(), |_, _| Ok(())).unwrap();
        let _ = idx;
    }
    assert_eq!(
        executor.store().get(&"acc".into()).as_deref(),
        Some(&Value::Int(10))
    );
    assert_eq!(
        executor.stats().snapshot().aborts,
        0,
        "sequenced = 0 aborts"
    );
}

#[test]
fn retraction_cascade_is_consistent_under_interleaving() {
    // t1 guesses; t2 builds on it; t3 is unrelated. After t1 retracts,
    // exactly t1 and t2 are gone and t3 survives.
    let executor = MsIaExecutor::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(LockPolicy::Block)),
    );
    let (_, p1) = executor
        .run_initial(TxnId(1), &RwSet::new().write("guess"), |ctx| {
            ctx.write("guess", 100)?;
            Ok(())
        })
        .unwrap();
    let (_, p2) = executor
        .run_initial(
            TxnId(2),
            &RwSet::new().read("guess").write("derived"),
            |ctx| {
                let g = ctx.read("guess")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("derived", g * 2)?;
                Ok(())
            },
        )
        .unwrap();
    let (_, p3) = executor
        .run_initial(TxnId(3), &RwSet::new().write("elsewhere"), |ctx| {
            ctx.write("elsewhere", 7)?;
            Ok(())
        })
        .unwrap();
    executor
        .run_final(p2, &RwSet::new(), |_, _| Ok(()))
        .unwrap();
    executor
        .run_final(p3, &RwSet::new(), |_, _| Ok(()))
        .unwrap();
    let report = executor
        .run_final(p1, &RwSet::new(), |_, fctx| {
            Ok(fctx.retract_self("trigger was wrong"))
        })
        .unwrap();
    assert_eq!(report.retracted, vec![TxnId(2), TxnId(1)]);
    let store = executor.store();
    assert!(!store.contains(&"guess".into()));
    assert!(!store.contains(&"derived".into()));
    assert_eq!(
        store.get(&"elsewhere".into()).as_deref(),
        Some(&Value::Int(7))
    );
    assert_eq!(executor.apologies().apologies().len(), 2);
}
