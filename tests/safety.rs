//! Safety integration tests: the recorded histories of concurrent MS-SR and
//! MS-IA executions must satisfy their respective §4 ordering conditions.
//! Both protocols are driven through the unified `MultiStageProtocol` API.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use croesus::store::{KvStore, LockManager, LockPolicy, TxnId, Value};
use croesus::txn::{
    ExecutorCore, HistoryRecorder, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind, RwSet,
    Sequencer,
};

fn protocol(
    kind: ProtocolKind,
    store: &Arc<KvStore>,
    policy: LockPolicy,
    history: &HistoryRecorder,
) -> Arc<Box<dyn MultiStageProtocol>> {
    Arc::new(
        kind.build(
            ExecutorCore::new(Arc::clone(store), Arc::new(LockManager::new(policy)))
                .with_history(history.clone()),
        ),
    )
}

/// Run `n` concurrent increment transactions (read x initially, write x+1
/// finally — the §4.2 anomaly workload) under TSPL.
fn run_tspl_increments(n: u64, threads: usize) -> (Arc<KvStore>, HistoryRecorder) {
    let history = HistoryRecorder::new();
    let store = Arc::new(KvStore::new());
    store.put("x".into(), Value::Int(0));
    let executor = protocol(ProtocolKind::MsSr, &store, LockPolicy::WaitDie, &history);
    let per = n / threads as u64;
    let handles: Vec<_> = (0..threads as u64)
        .map(|t| {
            let executor = Arc::clone(&executor);
            thread::spawn(move || {
                for i in 0..per {
                    let id = TxnId(t * per + i);
                    let rw = RwSet::new().read("x").write("x");
                    loop {
                        let h = executor.begin(id, &[rw.clone(), rw.clone()]);
                        let initial = executor.stage(h, &rw, |ctx| {
                            Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0))
                        });
                        let Ok((_, pending)) = initial else {
                            thread::yield_now();
                            continue;
                        };
                        thread::sleep(Duration::from_micros(100)); // cloud wait, locks held
                        executor
                            .stage(pending.expect("two stages"), &rw, |ctx| {
                                let v = ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0);
                                ctx.write("x", v + 1)
                            })
                            .expect("final stages cannot abort");
                        break;
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    (store, history)
}

#[test]
fn tspl_history_satisfies_ms_sr_and_loses_no_updates() {
    let (store, history) = run_tspl_increments(24, 4);
    // MS-SR forbids the lost-update anomaly: x counts every increment.
    assert_eq!(store.get(&"x".into()).as_deref(), Some(&Value::Int(24)));
    let checker = history.checker();
    checker.check_ms_sr().expect("TSPL must satisfy MS-SR");
    checker
        .check_section_serializability()
        .expect("sections must serialize");
    assert_eq!(checker.committed_txns().len(), 24);
}

#[test]
fn ms_ia_concurrent_history_satisfies_ms_ia() {
    let history = HistoryRecorder::new();
    let store = Arc::new(KvStore::new());
    let executor = protocol(ProtocolKind::MsIa, &store, LockPolicy::WaitDie, &history);
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let executor = Arc::clone(&executor);
            thread::spawn(move || {
                let rw = RwSet::new().read("hot").write("hot");
                let pending = loop {
                    let h = executor.begin(TxnId(t), &[rw.clone(), rw.clone()]);
                    match executor.stage(h, &rw, |ctx| {
                        let v = ctx.read("hot")?.and_then(|v| v.as_int()).unwrap_or(0);
                        ctx.write("hot", v + 1)
                    }) {
                        Ok((_, p)) => break p.expect("two stages"),
                        Err(_) => thread::yield_now(),
                    }
                };
                thread::sleep(Duration::from_micros(200)); // cloud wait, no locks
                executor
                    .stage(pending, &rw, |ctx| {
                        let v = ctx.read("hot")?.and_then(|v| v.as_int()).unwrap_or(0);
                        ctx.write("hot", v)
                    })
                    .unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let checker = history.checker();
    checker.check_ms_ia(&[]).expect("MS-IA ordering must hold");
    assert_eq!(checker.committed_txns().len(), 6);
    // Because initial sections hold their locks while incrementing, the
    // counter itself is exact even under MS-IA.
    assert_eq!(store.get(&"hot".into()).as_deref(), Some(&Value::Int(6)));
}

#[test]
fn sequenced_ms_ia_batches_preserve_exactness() {
    // The paper's sequencer configuration: order a batch so conflicting
    // transactions never overlap; the result equals serial execution.
    let store = Arc::new(KvStore::new());
    let history = HistoryRecorder::new();
    let executor = protocol(ProtocolKind::MsIa, &store, LockPolicy::Block, &history);
    store.put("acc".into(), Value::Int(0));
    let sets: Vec<RwSet> = (0..20)
        .map(|i| {
            if i % 2 == 0 {
                RwSet::new().read("acc").write("acc")
            } else {
                RwSet::new().write(format!("private/{i}").as_str())
            }
        })
        .collect();
    let mut pendings = Vec::new();
    Sequencer::run_batch::<croesus::txn::TxnError>(&sets, |idx| {
        let rw = &sets[idx];
        let h = executor.begin(TxnId(idx as u64), &[rw.clone(), RwSet::new()]);
        let (_, p) = executor.stage(h, rw, |ctx| {
            if idx % 2 == 0 {
                let v = ctx.read("acc")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("acc", v + 1)?;
            } else {
                ctx.write(format!("private/{idx}").as_str(), idx as i64)?;
            }
            Ok(())
        })?;
        pendings.push(p.expect("two stages"));
        Ok(())
    })
    .unwrap();
    for p in pendings {
        executor.stage(p, &RwSet::new(), |_| Ok(())).unwrap();
    }
    assert_eq!(store.get(&"acc".into()).as_deref(), Some(&Value::Int(10)));
    assert_eq!(
        executor.stats().snapshot().aborts,
        0,
        "sequenced = 0 aborts"
    );
}

#[test]
fn retraction_cascade_is_consistent_under_interleaving() {
    // t1 guesses; t2 builds on it; t3 is unrelated. After t1 retracts,
    // exactly t1 and t2 are gone and t3 survives.
    let store = Arc::new(KvStore::new());
    let history = HistoryRecorder::new();
    let executor = protocol(ProtocolKind::MsIa, &store, LockPolicy::Block, &history);
    let two = |rw: &RwSet| [rw.clone(), RwSet::new()];
    let rw1 = RwSet::new().write("guess");
    let h1 = executor.begin(TxnId(1), &two(&rw1));
    let (_, p1) = executor
        .stage(h1, &rw1, |ctx| ctx.write("guess", 100))
        .unwrap();
    let rw2 = RwSet::new().read("guess").write("derived");
    let h2 = executor.begin(TxnId(2), &two(&rw2));
    let (_, p2) = executor
        .stage(h2, &rw2, |ctx| {
            let g = ctx.read("guess")?.and_then(|v| v.as_int()).unwrap_or(0);
            ctx.write("derived", g * 2)
        })
        .unwrap();
    let rw3 = RwSet::new().write("elsewhere");
    let h3 = executor.begin(TxnId(3), &two(&rw3));
    let (_, p3) = executor
        .stage(h3, &rw3, |ctx| ctx.write("elsewhere", 7))
        .unwrap();
    executor
        .stage(p2.unwrap(), &RwSet::new(), |_| Ok(()))
        .unwrap();
    executor
        .stage(p3.unwrap(), &RwSet::new(), |_| Ok(()))
        .unwrap();
    let (report, _) = executor
        .stage(p1.unwrap(), &RwSet::new(), |ctx| {
            Ok(ctx.retract_self("trigger was wrong"))
        })
        .unwrap();
    assert_eq!(report.retracted, vec![TxnId(2), TxnId(1)]);
    assert!(!store.contains(&"guess".into()));
    assert!(!store.contains(&"derived".into()));
    assert_eq!(
        store.get(&"elsewhere".into()).as_deref(),
        Some(&Value::Int(7))
    );
    assert_eq!(executor.apologies().apologies().len(), 2);
}
