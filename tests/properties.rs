//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use croesus::detect::{match_detections, Detection};
use croesus::sim::{DetRng, SimDuration, SimTime};
use croesus::store::{Key, KvStore, Value};
use croesus::txn::{RwSet, Sequencer};
use croesus::video::BoundingBox;

fn arb_bbox() -> impl Strategy<Value = BoundingBox> {
    (0.0..0.9f64, 0.0..0.9f64, 0.01..0.5f64, 0.01..0.5f64)
        .prop_map(|(x, y, w, h)| BoundingBox::new(x, y, w, h))
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    (
        prop_oneof![Just("car"), Just("person"), Just("dog")],
        0.0..1.0f64,
        arb_bbox(),
    )
        .prop_map(|(c, conf, b)| Detection::new(c.into(), conf, b))
}

fn arb_rwset() -> impl Strategy<Value = RwSet> {
    (
        prop::collection::vec(0u64..12, 0..4),
        prop::collection::vec(0u64..12, 0..4),
    )
        .prop_map(|(reads, writes)| {
            let mut rw = RwSet::new();
            for r in reads {
                rw.reads.push(Key::indexed("k", r));
            }
            for w in writes {
                rw.writes.push(Key::indexed("k", w));
            }
            rw
        })
}

proptest! {
    #[test]
    fn bbox_iou_is_symmetric_and_bounded(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
        prop_assert!((a.overlap_fraction(&b) - b.overlap_fraction(&a)).abs() < 1e-12);
        // IoU never exceeds overlap-over-min-area.
        prop_assert!(ab <= a.overlap_fraction(&b) + 1e-12);
    }

    #[test]
    fn bbox_self_iou_is_one_for_nondegenerate(a in arb_bbox()) {
        prop_assume!(!a.is_empty());
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matching_is_injective_and_total(
        dets in prop::collection::vec(arb_detection(), 0..8),
        refs in prop::collection::vec(arb_detection(), 0..8),
    ) {
        let m = match_detections(&dets, &refs, 0.10);
        prop_assert_eq!(m.outcomes.len(), dets.len());
        // Each reference is claimed at most once.
        let mut claimed = std::collections::HashSet::new();
        for o in &m.outcomes {
            match o {
                croesus::detect::MatchOutcome::Correct { reference }
                | croesus::detect::MatchOutcome::Corrected { reference } => {
                    prop_assert!(claimed.insert(*reference), "reference claimed twice");
                }
                croesus::detect::MatchOutcome::Erroneous => {}
            }
        }
        // Unmatched references are exactly the unclaimed ones.
        for ri in 0..refs.len() {
            let unmatched = m.unmatched_references.contains(&ri);
            prop_assert_eq!(unmatched, !claimed.contains(&ri));
        }
    }

    #[test]
    fn sequencer_waves_partition_and_respect_conflicts(
        sets in prop::collection::vec(arb_rwset(), 0..20)
    ) {
        let waves = Sequencer::waves(&sets);
        let mut seen: Vec<usize> = waves.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..sets.len()).collect::<Vec<_>>());
        let wave_of = |i: usize| waves.iter().position(|w| w.contains(&i)).unwrap();
        for a in 0..sets.len() {
            for b in a + 1..sets.len() {
                if sets[a].conflicts_with(&sets[b]) {
                    prop_assert!(wave_of(a) < wave_of(b));
                }
            }
        }
    }

    #[test]
    fn rwset_conflict_is_symmetric(a in arb_rwset(), b in arb_rwset()) {
        prop_assert_eq!(a.conflicts_with(&b), b.conflicts_with(&a));
    }

    #[test]
    fn undo_round_trips_arbitrary_interleavings(
        ops in prop::collection::vec((0u64..6, -100i64..100, prop::bool::ANY), 1..30)
    ) {
        // Seed the store, snapshot, apply a transaction's worth of writes
        // and deletes through an undo log, roll back, and compare.
        let store = KvStore::new();
        for i in 0..6u64 {
            store.put(Key::indexed("seed", i), Value::Int(i as i64));
        }
        let before = store.snapshot()
            .into_iter()
            .map(|(k, v)| (k, v.value))
            .collect::<Vec<_>>();
        let mut log = croesus::store::UndoLog::new();
        for (slot, val, delete) in ops {
            let key = Key::indexed("seed", slot);
            if delete {
                log.delete(&store, &key);
            } else {
                log.put(&store, key, Value::Int(val));
            }
        }
        log.rollback(&store);
        let after = store.snapshot()
            .into_iter()
            .map(|(k, v)| (k, v.value))
            .collect::<Vec<_>>();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn det_rng_uniform_stays_in_unit_interval(seed in any::<u64>()) {
        let mut rng = DetRng::new(seed);
        for _ in 0..100 {
            let u = rng.uniform();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn sim_time_arithmetic_is_consistent(
        base in 0u64..1_000_000_000,
        d1 in 0u64..1_000_000,
        d2 in 0u64..1_000_000,
    ) {
        let t = SimTime::from_micros(base);
        let a = SimDuration::from_micros(d1);
        let b = SimDuration::from_micros(d2);
        prop_assert_eq!((t + a + b) - t, a + b);
        prop_assert_eq!((t + a) - t, a);
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn key_cached_hash_matches_recomputation(bytes in prop::collection::vec(32u8..127, 0..48)) {
        let text = String::from_utf8(bytes).expect("printable ascii");
        let key = Key::new(&text);
        // Independent FNV-1a recomputation of the key text.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        prop_assert_eq!(key.hash_u64(), h);
    }

    #[test]
    fn kv_versions_count_writes(n in 1usize..50) {
        let store = KvStore::new();
        for i in 0..n {
            store.put("k".into(), Value::Int(i as i64));
        }
        prop_assert_eq!(
            store.get_versioned(&"k".into()).unwrap().version,
            n as u64
        );
    }
}
