//! Model-checking the protocol / WAL / failover stack with the
//! deterministic scheduler: every interleaving of small scenarios, and
//! every WAL-frame-boundary crash point inside each interleaving.
//!
//! The scenarios check the DESIGN.md commit-point table as executable
//! invariants: acked-final durability, MS-SR un-happen atomicity, per-stage
//! MS-IA/staged durability, apology coverage, and 2PC decision durability.

use croesus_mcheck::{
    explore, ms_sr_block_deadlock, ms_sr_commit_point, replay, retract_self, three_txn_hot_key,
    two_txn_two_stage, wal_pipeline, wave_queue, Config, TpcCoordinatorCrash,
};
use croesus_txn::ProtocolKind;

fn assert_clean_and_exhaustive(report: &croesus_mcheck::Report) {
    assert!(
        report.exhaustive,
        "{}: schedule space not exhausted within budget ({} schedules)",
        report.name, report.schedules
    );
    assert!(
        report.violations.is_empty(),
        "{}: violation on schedule {}: {}",
        report.name,
        report.violations[0].trace,
        report.violations[0].message
    );
    assert_eq!(report.panics, 0, "{}: panicking schedules", report.name);
    assert!(report.completes > 0, "{}: nothing ran", report.name);
}

#[test]
fn ms_sr_two_txn_two_stage_is_exhaustively_clean() {
    let report = explore(&two_txn_two_stage(ProtocolKind::MsSr), &Config::default());
    assert_clean_and_exhaustive(&report);
    assert_eq!(report.deadlocks, 0, "WaitDie must not deadlock");
}

#[test]
fn ms_ia_two_txn_two_stage_is_exhaustively_clean() {
    let report = explore(&two_txn_two_stage(ProtocolKind::MsIa), &Config::default());
    assert_clean_and_exhaustive(&report);
    assert_eq!(report.deadlocks, 0, "per-stage locking must not deadlock");
}

#[test]
fn staged_two_txn_two_stage_is_exhaustively_clean() {
    let report = explore(&two_txn_two_stage(ProtocolKind::Staged), &Config::default());
    assert_clean_and_exhaustive(&report);
}

#[test]
fn ms_ia_retract_self_is_exhaustively_clean() {
    let report = explore(&retract_self(ProtocolKind::MsIa), &Config::default());
    assert_clean_and_exhaustive(&report);
}

#[test]
fn ms_sr_block_policy_deadlock_is_found() {
    // Crossing initial/later lock sets under LockPolicy::Block genuinely
    // deadlock — the reason MS-SR defaults to WaitDie. The checker must
    // surface at least one deadlocking schedule (and no other violation).
    let report = explore(&ms_sr_block_deadlock(), &Config::default());
    assert!(report.exhaustive, "small space must be enumerable");
    assert!(
        report.deadlocks > 0,
        "the checker failed to find the Block-policy deadlock"
    );
    assert!(report.completes > 0, "non-deadlocking orders also exist");
    assert!(
        report.violations.is_empty(),
        "deadlock is the expected hazard here, not a violation: {:?}",
        report.violations[0]
    );
}

#[test]
fn wave_queue_runs_every_job_exactly_once_in_every_interleaving() {
    // The edge runtime's bounded job queue: every interleaving of the
    // runtime.queue.* yield/block points — admission-control waits on a
    // full queue, pop waits on an empty one, the close-drain handshake —
    // must complete with each job executed exactly once.
    let report = explore(&wave_queue(), &Config::default());
    assert_clean_and_exhaustive(&report);
    assert_eq!(report.deadlocks, 0, "close must wake every blocked waiter");
}

#[test]
fn tpc_coordinator_crash_never_contradicts_the_durable_decision() {
    let report = explore(&TpcCoordinatorCrash, &Config::default());
    assert_clean_and_exhaustive(&report);
}

#[test]
fn three_txn_hot_key_falls_back_to_seeded_sampling() {
    let config = Config {
        max_schedules: 200,
        samples: 50,
        ..Config::default()
    };
    let report = explore(&three_txn_hot_key(ProtocolKind::MsIa), &config);
    assert!(
        !report.exhaustive,
        "3-txn space must exceed the tiny DFS budget"
    );
    assert_eq!(report.schedules, 250, "DFS budget + sampling tail both ran");
    assert!(
        report.violations.is_empty(),
        "sampled violation on {}: {}",
        report.violations[0].trace,
        report.violations[0].message
    );
}

#[test]
fn mutation_self_test_checker_catches_the_broken_commit_point() {
    // The clean executor survives exhaustive exploration...
    let clean = explore(&ms_sr_commit_point(false), &Config::default());
    assert_clean_and_exhaustive(&clean);

    // ...and the mutated one (final commit logged *after* lock release)
    // is caught with a replayable counterexample.
    let mutated_scenario = ms_sr_commit_point(true);
    let mutated = explore(&mutated_scenario, &Config::default());
    assert!(
        !mutated.violations.is_empty(),
        "the checker missed the log-final-after-release mutation \
         ({} schedules explored)",
        mutated.schedules
    );
    // The released-locks window lets t2 read t1's final write while t1 is
    // still unlogged: caught live (serializability breaks) or at a crash
    // cut (a durable value derived from an un-happened transaction).
    let violation = &mutated.violations[0];
    assert!(
        violation.message.contains("MS-SR history")
            || violation.message.contains("unlogged final write")
            || violation.message.contains("acked final commit"),
        "unexpected violation kind: {}",
        violation.message
    );

    // The trace is the counterexample: decision list (plus seed if it came
    // from sampling) — replaying it must reproduce the violation exactly.
    let shown = violation.trace.to_string();
    assert!(shown.contains("decisions=["), "trace must display: {shown}");
    let (_end, check) = replay(&mutated_scenario, &violation.trace);
    let replayed = check.expect_err("replaying the counterexample trace must reproduce it");
    assert_eq!(
        replayed, violation.message,
        "replay diverged from the recorded violation"
    );
}

#[test]
fn wal_pipeline_is_exhaustively_clean() {
    // Appender, flusher and monitor racing through every `wal.buffer.*`
    // scheduler point: the boundary stays monotone, no flush_lsn acks
    // below it, shipped ⊆ durable at every observation, and shutdown
    // drains the pipeline in every interleaving.
    let report = explore(&wal_pipeline(false), &Config::default());
    assert_clean_and_exhaustive(&report);
}

#[test]
fn wal_pipeline_mutation_self_test_catches_publish_before_sync() {
    // The planted bug: sealed buffers published to the shipper *before*
    // their device sync. Some interleaving must let the monitor observe
    // shipped bytes the device would lose in a crash...
    let scenario = wal_pipeline(true);
    let report = explore(&scenario, &Config::default());
    assert!(
        !report.violations.is_empty(),
        "the checker missed the publish-before-sync mutation \
         ({} schedules explored)",
        report.schedules
    );
    let violation = &report.violations[0];
    assert!(
        violation.message.contains("shipping contract breach"),
        "unexpected violation kind: {}",
        violation.message
    );
    // ...and the counterexample trace must be replayable, byte for byte.
    let shown = violation.trace.to_string();
    assert!(shown.contains("decisions=["), "trace must display: {shown}");
    let (_end, check) = replay(&scenario, &violation.trace);
    let replayed = check.expect_err("replaying the counterexample trace must reproduce it");
    assert_eq!(
        replayed, violation.message,
        "replay diverged from the recorded violation"
    );
}
