//! Chaos tests: seeded fault schedules against the full fleet driver, plus
//! a direct crash/failover oracle for the guarantee the fleet relies on —
//! **no committed-and-acked write is ever lost**, and every retraction
//! produces an apology.
//!
//! Three layers:
//!
//! 1. **Fleet chaos** — `run_fleet` under `FaultPlan::seeded` schedules
//!    (kill / stall / partition / resurrect / corrupt-shipment) across all
//!    three protocols. Invariants: every frame is accounted for, every
//!    takeover is explained by a kill or over-long stall and detected
//!    within the heartbeat timeout, and recovery apologies are owed for
//!    every takeover retraction.
//! 2. **The crash oracle** — a concurrent two-account transfer workload
//!    (the `concurrent_conformance` spec) over a protocol with a strict
//!    WAL shipping to a cloud replica. Crash, recover *from the replica*,
//!    and check: survivors linearize, money is conserved, acked-final
//!    effects all survive, and the acked-but-unfinalized guess is
//!    retracted with an apology.
//! 3. **Cross-edge commits** — the 2PC coordinator path: in-doubt
//!    resolution against the *shipped* decision log, and the regression
//!    that the decision map stays bounded across 10k cross-edge
//!    transactions.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::Arc;
use std::thread;

use croesus::core::{Croesus, DurabilityMode, FaultKind, FaultPlan, ReplicaTailer};
use croesus::obs::{check_stream, EventKind, Obs};
use croesus::store::{Key, KvStore, LockManager, LockPolicy, PartitionMap, TxnId, Value};
use croesus::txn::{
    recover_edge_file, Coordinator, ExecutorCore, MultiStageProtocol, MultiStageProtocolExt,
    Participant, PartitionParticipant, ProtocolKind, RecoveredEdge, RwSet, StageCtx, TxnError,
};
use croesus::wal::{recover, scratch_dir, LogShipper, Wal, WalConfig};

// ------------------------------------------------------------------
// Layer 1: the fleet under seeded chaos
// ------------------------------------------------------------------

const FRAMES: u64 = 40;
const EDGES: usize = 3;
const TIMEOUT: u64 = 3;

#[test]
fn seeded_chaos_preserves_fleet_invariants_across_protocols() {
    for kind in ProtocolKind::ALL {
        for seed in [11u64, 23] {
            let plan = FaultPlan::seeded(seed, FRAMES, EDGES, 0.06);
            let dir = scratch_dir(&format!("chaos-fleet-{kind}-{seed}"));
            let obs = Obs::shared();
            let r = Croesus::builder()
                .protocol(kind)
                .frames(FRAMES)
                .edges(EDGES)
                .durability(DurabilityMode::Strict { dir: dir.clone() })
                .failover(true)
                .heartbeat_timeout(TIMEOUT)
                .faults(plan.clone())
                .observe(Arc::clone(&obs))
                .build()
                .run_fleet();

            // Every frame either reached a serving edge or is an accounted
            // drop inside a detection window.
            assert_eq!(
                r.frames_processed + r.frames_dropped,
                FRAMES,
                "{kind} seed {seed}: every frame accounted for"
            );

            // Every takeover traces back to a kill or an over-long stall
            // on that edge, detected within the heartbeat timeout of the
            // moment the edge went silent.
            for t in &r.takeovers {
                let explained = plan.events().iter().any(|e| {
                    e.edge == t.edge
                        && matches!(e.kind, FaultKind::Kill | FaultKind::Stall { .. })
                        && e.frame <= t.detected_at
                        && t.detected_at <= e.frame + TIMEOUT + 1
                });
                assert!(
                    explained,
                    "{kind} seed {seed}: takeover of edge {} at frame {} has no \
                     matching kill/stall within the timeout window: {:?}",
                    t.edge,
                    t.detected_at,
                    plan.events()
                );
            }

            // Every takeover is *explained by the trace*: the event
            // timeline must satisfy the ordering contract (which forces
            // HeartbeatMiss ≺ TakeoverStart, and TakeoverEnd only inside
            // an open takeover), and carry exactly one
            // TakeoverStart/TakeoverEnd pair per reported takeover, on
            // the failed edge's own stream. On failure, dump the last
            // events per edge — the flight recorder.
            if let Err(v) = check_stream(&r.timeline, obs.dropped() > 0) {
                panic!("{kind} seed {seed}: {v}\n{}", r.flight_recorder(12));
            }
            let count = |edge: usize, want: fn(&EventKind) -> bool| {
                r.timeline
                    .iter()
                    .filter(|e| e.edge as usize == edge && want(&e.kind))
                    .count()
            };
            for t in &r.takeovers {
                let misses = count(t.edge, |k| matches!(k, EventKind::HeartbeatMiss));
                let starts = count(t.edge, |k| matches!(k, EventKind::TakeoverStart));
                let ends = count(t.edge, |k| matches!(k, EventKind::TakeoverEnd { .. }));
                assert!(
                    misses >= starts && starts == ends && starts >= 1,
                    "{kind} seed {seed}: takeover of edge {} unexplained \
                     ({misses} misses, {starts} starts, {ends} ends)\n{}",
                    t.edge,
                    r.flight_recorder(12)
                );
            }
            let total_starts = r
                .timeline
                .iter()
                .filter(|e| matches!(e.kind, EventKind::TakeoverStart))
                .count();
            assert_eq!(
                total_starts,
                r.takeovers.len(),
                "{kind} seed {seed}: one TakeoverStart per reported takeover\n{}",
                r.flight_recorder(12)
            );

            // Crash recovery apologizes for everything it retracts; those
            // apologies live on in the replacement nodes.
            let takeover_retractions: u64 = r.takeovers.iter().map(|t| t.retractions as u64).sum();
            assert!(
                r.apologies_owed >= takeover_retractions,
                "{kind} seed {seed}: {} takeover retractions but only {} apologies owed",
                takeover_retractions,
                r.apologies_owed
            );

            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

// ------------------------------------------------------------------
// Layer 2: the crash/failover oracle
// ------------------------------------------------------------------
// Sequential spec + lincheck-style search, as in concurrent_conformance:
// every stage atomically observes both balances and moves units a → b.

const ACCT_A: &str = "acct/a";
const ACCT_B: &str = "acct/b";
const INIT_A: i64 = 100;
const INIT_B: i64 = 0;

#[derive(Clone, Copy, Debug)]
struct AtomicOp {
    observed: (i64, i64),
    moved: i64,
}

/// Ops that must execute back-to-back (len 1 = one stage; len 2 = a whole
/// MS-SR transaction).
type Composite = Vec<AtomicOp>;

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Accounts {
    a: i64,
    b: i64,
}

impl Accounts {
    fn exec(mut self, comp: &Composite) -> Option<Accounts> {
        for op in comp {
            if (self.a, self.b) != op.observed {
                return None;
            }
            self.a -= op.moved;
            self.b += op.moved;
        }
        Some(self)
    }
}

/// Memoized DFS over interleavings (program order preserved per thread).
fn linearizable(threads: &[Vec<Composite>], init: Accounts) -> bool {
    fn dfs(
        threads: &[Vec<Composite>],
        pos: &mut Vec<usize>,
        state: Accounts,
        dead: &mut HashSet<Vec<usize>>,
    ) -> bool {
        if pos.iter().zip(threads).all(|(&p, ops)| p == ops.len()) {
            return true;
        }
        if dead.contains(pos) {
            return false;
        }
        for t in 0..threads.len() {
            if pos[t] < threads[t].len() {
                if let Some(next) = state.exec(&threads[t][pos[t]]) {
                    pos[t] += 1;
                    if dfs(threads, pos, next, dead) {
                        return true;
                    }
                    pos[t] -= 1;
                }
            }
        }
        dead.insert(pos.clone());
        false
    }
    let mut pos = vec![0; threads.len()];
    dfs(threads, &mut pos, init, &mut HashSet::new())
}

fn transfer_rw() -> RwSet {
    RwSet::new().write(ACCT_A).write(ACCT_B)
}

fn transfer_stage(ctx: &mut StageCtx<'_>, moved: i64) -> Result<AtomicOp, TxnError> {
    let a = ctx.read(ACCT_A)?.and_then(|v| v.as_int()).unwrap_or(0);
    let b = ctx.read(ACCT_B)?.and_then(|v| v.as_int()).unwrap_or(0);
    ctx.write(ACCT_A, a - moved)?;
    ctx.write(ACCT_B, b + moved)?;
    Ok(AtomicOp {
        observed: (a, b),
        moved,
    })
}

/// A protocol over a strict in-memory WAL shipping to a cloud replica.
fn shipped_protocol(kind: ProtocolKind) -> (Arc<Box<dyn MultiStageProtocol>>, Arc<LogShipper>) {
    let store = Arc::new(KvStore::new());
    store.put(ACCT_A.into(), Value::Int(INIT_A));
    store.put(ACCT_B.into(), Value::Int(INIT_B));
    let (wal, _) = Wal::in_memory(WalConfig::strict());
    let shipper = Arc::new(LogShipper::new());
    wal.attach_shipper(Arc::clone(&shipper));
    let core = ExecutorCore::new(
        store,
        Arc::new(LockManager::new(kind.default_lock_policy())),
    )
    .with_wal(Arc::new(wal));
    (Arc::new(kind.build(core)), shipper)
}

const THREADS: usize = 3;
const TXNS_PER_THREAD: u64 = 3;
// Each full transaction moves 1 + 2 units a → b.
const MOVED_PER_TXN: i64 = 3;

/// The oracle: run the concurrent transfer workload to completion (those
/// transactions are acked-final), then one more transaction through its
/// *initial* stage only (acked-initial, retractable) — and crash. Recover
/// from the cloud replica and check every guarantee the chaos harness
/// depends on.
fn crash_and_check(kind: ProtocolKind, txn_granularity: bool) {
    let (protocol, shipper) = shipped_protocol(kind);
    let handles: Vec<_> = (0..THREADS as u64)
        .map(|tid| {
            let p = Arc::clone(&protocol);
            thread::spawn(move || {
                let mut history: Vec<Composite> = Vec::new();
                for i in 0..TXNS_PER_THREAD {
                    let txn = TxnId(tid * 100 + i);
                    let rw = transfer_rw();
                    let stages = [rw.clone(), rw.clone()];
                    // Wait-die (MS-SR) can kill stage 0; retry the whole
                    // transaction like the pipeline does.
                    let (op0, pending) = loop {
                        let h = p.begin(txn, &stages);
                        match p.stage(h, &rw, |ctx| transfer_stage(ctx, 1)) {
                            Ok((op, next)) => break (op, next.expect("two stages")),
                            Err(_) => thread::yield_now(),
                        }
                    };
                    let (op1, done) = p
                        .stage(pending, &rw, |ctx| transfer_stage(ctx, 2))
                        .expect("later stages cannot abort");
                    assert!(done.is_none());
                    if txn_granularity {
                        history.push(vec![op0, op1]);
                    } else {
                        history.push(vec![op0]);
                        history.push(vec![op1]);
                    }
                }
                history
            })
        })
        .collect();
    let histories: Vec<Vec<Composite>> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // One guess acked at its initial commit, never validated: the crash
    // window the apology machinery exists for.
    let guess = TxnId(900);
    let rw = transfer_rw();
    let h = protocol.begin(guess, &[rw.clone(), rw.clone()]);
    let _pending = protocol
        .stage(h, &rw, |ctx| transfer_stage(ctx, 1))
        .expect("no contention after the threads joined");

    // CRASH. The edge is gone; the cloud replica is all that's left.
    drop(protocol);
    let mut tailer = ReplicaTailer::new(shipper);
    tailer.catch_up();
    let rec: RecoveredEdge = tailer.recover();

    // No acked-final write is lost, and the retracted guess un-happened:
    // the balances are exactly the finalized transfers' net effect.
    let moved: i64 = (THREADS as i64) * (TXNS_PER_THREAD as i64) * MOVED_PER_TXN;
    let a = rec.store.get(&ACCT_A.into()).unwrap().as_int().unwrap();
    let b = rec.store.get(&ACCT_B.into()).unwrap().as_int().unwrap();
    assert_eq!(a + b, INIT_A + INIT_B, "{kind}: recovery conserves money");
    assert_eq!(
        b,
        INIT_B + moved,
        "{kind}: every acked-final transfer survived"
    );

    if kind == ProtocolKind::MsSr {
        // MS-SR acks nothing before final commit — the guess simply never
        // happened, so there is nothing to retract or apologize for.
        assert!(rec.unfinalized.is_empty(), "MS-SR buffers until final");
        assert!(rec.retractions.is_empty());
    } else {
        // The guess was acked (initial commit) and is now gone — the
        // client MUST hold an apology for it.
        assert_eq!(rec.unfinalized, vec![guess], "{kind}");
        let retracted: BTreeSet<u64> = rec
            .retractions
            .iter()
            .flat_map(|r| r.retracted.iter().map(|t| t.0))
            .collect();
        assert!(
            retracted.contains(&guess.0),
            "{kind}: the guess is retracted"
        );
        let apologized: BTreeSet<u64> = rec.apologies_owed().iter().map(|a| a.txn.0).collect();
        assert_eq!(
            retracted, apologized,
            "{kind}: an apology for every retraction, and nothing else"
        );
    }

    // The surviving (acked-final) history must linearize against the
    // sequential spec — recovery may lose nothing *and* invent nothing.
    assert!(
        linearizable(
            &histories,
            Accounts {
                a: INIT_A,
                b: INIT_B
            }
        ),
        "{kind}: surviving history does not linearize: {histories:?}"
    );
}

#[test]
fn ms_ia_acked_writes_survive_crash_failover() {
    crash_and_check(ProtocolKind::MsIa, false);
}

#[test]
fn staged_acked_writes_survive_crash_failover() {
    crash_and_check(ProtocolKind::Staged, false);
}

#[test]
fn ms_sr_acked_writes_survive_crash_failover() {
    crash_and_check(ProtocolKind::MsSr, true);
}

// ------------------------------------------------------------------
// Replica-vs-in-place recovery equivalence
// ------------------------------------------------------------------

fn snapshot_of(store: &KvStore) -> BTreeMap<String, Value> {
    store
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k.as_str().to_string(), (*v.value).clone()))
        .collect()
}

/// The failover correctness keystone: recovering the cloud replica must be
/// indistinguishable from recovering the edge's own log file — starting
/// with the bytes themselves.
#[test]
fn replica_recovery_is_byte_identical_to_in_place_recovery() {
    let dir = scratch_dir("chaos-replica-eq");
    let path = dir.join("edge-0.wal");
    let wal = Wal::create(&path, WalConfig::strict()).unwrap();
    let shipper = Arc::new(LogShipper::new());
    wal.attach_shipper(Arc::clone(&shipper));
    let store = Arc::new(KvStore::new());
    store.put(ACCT_A.into(), Value::Int(INIT_A));
    store.put(ACCT_B.into(), Value::Int(INIT_B));
    let core = ExecutorCore::new(
        store,
        Arc::new(LockManager::new(ProtocolKind::MsIa.default_lock_policy())),
    )
    .with_wal(Arc::new(wal));
    let p = ProtocolKind::MsIa.build(core);

    // Two finalized transfers and one dangling guess.
    for i in 0..2u64 {
        let rw = transfer_rw();
        let h = p.begin(TxnId(i), &[rw.clone(), rw.clone()]);
        let (_, pending) = p.stage(h, &rw, |ctx| transfer_stage(ctx, 1)).unwrap();
        p.stage(pending.unwrap(), &rw, |ctx| transfer_stage(ctx, 2))
            .unwrap();
    }
    let rw = transfer_rw();
    let h = p.begin(TxnId(9), &[rw.clone(), rw.clone()]);
    p.stage(h, &rw, |ctx| transfer_stage(ctx, 1)).unwrap();
    drop(p); // crash (strict mode: the file already holds every frame)

    let mut tailer = ReplicaTailer::new(shipper);
    tailer.catch_up();
    assert_eq!(
        tailer.log(),
        std::fs::read(&path).unwrap().as_slice(),
        "the replica holds byte-identical log content"
    );

    let from_replica = tailer.recover();
    let in_place = recover_edge_file(&path).unwrap();
    assert_eq!(
        snapshot_of(&from_replica.store),
        snapshot_of(&in_place.store),
        "identical stores"
    );
    assert_eq!(from_replica.unfinalized, in_place.unfinalized);
    assert_eq!(from_replica.next_txn, in_place.next_txn);
    let ids = |rec: &RecoveredEdge| -> Vec<Vec<u64>> {
        rec.retractions
            .iter()
            .map(|r| r.retracted.iter().map(|t| t.0).collect())
            .collect()
    };
    assert_eq!(ids(&from_replica), ids(&in_place), "identical retractions");
    let owed = |rec: &RecoveredEdge| -> BTreeSet<u64> {
        rec.apologies_owed().iter().map(|a| a.txn.0).collect()
    };
    assert_eq!(owed(&from_replica), owed(&in_place), "identical apologies");

    std::fs::remove_dir_all(&dir).unwrap();
}

// ------------------------------------------------------------------
// Layer 3: the cross-edge (2PC) coordinator path
// ------------------------------------------------------------------

fn cross_edge_writes(n: u64, salt: u64) -> Vec<(Key, Value)> {
    (0..n)
        .map(|i| (Key::indexed("w", i), Value::Int((salt + i) as i64)))
        .collect()
}

/// Satellite regression: resolved decisions are expired once every
/// participant acked, so the decision map cannot grow with throughput.
#[test]
fn tpc_decision_map_stays_bounded_across_10k_cross_edge_txns() {
    let pm = Arc::new(PartitionMap::new(4, LockPolicy::NoWait));
    let (wal, probe) = Wal::in_memory(WalConfig::group(64));
    let wal = Arc::new(wal);
    let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::clone(&wal));
    for i in 0..10_000u64 {
        coord.commit_writes(TxnId(i), &cross_edge_writes(4, i));
    }
    assert_eq!(
        wal.tpc_decision_count(),
        0,
        "every acked phase 2 expired its decision entry"
    );
    // And the durable image agrees once the end records hit the disk.
    wal.flush().unwrap();
    let report = recover(&probe.durable());
    assert!(
        report.tpc_decisions.is_empty(),
        "recovery finds no unresolved decision: {:?}",
        report.tpc_decisions
    );
}

/// In-doubt resolution against the *shipped* decision log: the coordinator
/// dies between phases; the cloud replica of its log carries the durable
/// commit decision, and a new coordinator epoch finishes phase 2 from it.
#[test]
fn in_doubt_txn_resolves_against_the_shipped_decision_log() {
    let pm = Arc::new(PartitionMap::new(4, LockPolicy::NoWait));
    let (wal, _) = Wal::in_memory(WalConfig::strict());
    let shipper = Arc::new(LogShipper::new());
    wal.attach_shipper(Arc::clone(&shipper));
    let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::new(wal));

    let part = Arc::clone(&pm.partitions()[0]);
    let participant = PartitionParticipant::new(Arc::clone(&part));
    let ws: Vec<(Key, Value)> = vec![("k".into(), Value::Int(9))];
    let pw = [(&participant as &dyn Participant, ws.as_slice())];
    assert!(coord.run_phase1(TxnId(7), &pw).is_ok());

    // The coordinator crashes before phase 2; the participant sits
    // prepared, locks held. The cloud tails the shipped log instead.
    drop(coord);
    let mut tailer = ReplicaTailer::new(shipper);
    tailer.catch_up();
    let report = recover(tailer.log());
    let decision = report
        .tpc_decisions
        .iter()
        .find(|(t, _)| *t == TxnId(7))
        .map(|(_, c)| *c);
    assert_eq!(decision, Some(true), "the shipped log carries the decision");

    let outcome =
        Coordinator::resolve_in_doubt(decision, TxnId(7), [&participant as &dyn Participant]);
    assert!(matches!(
        outcome,
        croesus::txn::TpcOutcome::Committed { .. }
    ));
    assert_eq!(part.store.get(&"k".into()).as_deref(), Some(&Value::Int(9)));
    assert_eq!(part.locks.locked_keys(), 0, "every prepared lock released");
}
