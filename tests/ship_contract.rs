//! Property tests for the PR 4 edge→cloud shipping contract
//! (DESIGN.md, "Failure model & failover"):
//!
//! * an epoch bump always reaches the replica as a **restart batch** — the
//!   replica replaces its copy wholesale and never appends across epochs;
//! * a rejected (damaged) batch never advances the cursor or mutates the
//!   replica's log — the next poll is an automatic refetch;
//! * whenever the replica's epoch matches the source, its log is exactly
//!   the shipped image up to its cursor (shipped ⊆ durable ⇒ the replica
//!   can lag, never run ahead).

use proptest::prelude::*;

use croesus::core::{ReplicaTailer, TailPoll};
use croesus::store::TxnId;
use croesus::wal::frame::write_frame;
use croesus::wal::{
    FrameReader, LogShipper, MemStorage, PipelineConfig, StageFlags, StageRecord, TailState, Wal,
    WalConfig, WalRecord,
};
use std::sync::Arc;

/// One source-side or replica-side step of the shipping dialogue.
#[derive(Clone, Debug)]
enum Ev {
    /// The edge syncs new records: frame and publish them.
    Publish(Vec<(u64, bool)>),
    /// The edge checkpoints: epoch bump, image replaced.
    Checkpoint,
    /// The next fetched copy is damaged in flight.
    Corrupt,
    /// Cut or restore the uplink.
    Offline(bool),
    /// The replica polls once.
    Poll,
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        prop::collection::vec((1u64..9, any::<bool>()), 1..4).prop_map(Ev::Publish),
        Just(Ev::Checkpoint),
        Just(Ev::Corrupt),
        any::<bool>().prop_map(Ev::Offline),
        // Weight polls up so runs actually consume what they publish.
        Just(Ev::Poll),
        Just(Ev::Poll),
        Just(Ev::Poll),
    ]
}

fn framed(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        write_frame(&mut out, &r.encode());
    }
    out
}

fn decision_frames(decisions: &[(u64, bool)]) -> Vec<u8> {
    let records: Vec<WalRecord> = decisions
        .iter()
        .map(|&(txn, commit)| WalRecord::TpcDecision {
            txn: TxnId(txn),
            commit,
        })
        .collect();
    framed(&records)
}

fn parses_cleanly(bytes: &[u8]) -> bool {
    let mut reader = FrameReader::new(bytes);
    for payload in reader.by_ref() {
        if WalRecord::decode(payload).is_err() {
            return false;
        }
    }
    reader.tail() == TailState::Clean
}

proptest! {
    #[test]
    fn shipping_contract_holds_for_any_dialogue(events in prop::collection::vec(arb_event(), 1..40)) {
        let shipper = Arc::new(LogShipper::new());
        let mut tailer = ReplicaTailer::new(Arc::clone(&shipper));

        for ev in &events {
            match ev {
                Ev::Publish(decisions) => shipper.publish(&decision_frames(decisions)),
                Ev::Checkpoint => shipper.restart_epoch(&framed(&[WalRecord::Settle])),
                Ev::Corrupt => shipper.corrupt_next_fetch(),
                Ev::Offline(down) => shipper.set_offline(*down),
                Ev::Poll => {
                    let cursor_before = tailer.cursor();
                    let log_before = tailer.log().to_vec();
                    match tailer.poll() {
                        TailPoll::Rejected => {
                            // A damaged batch must be a pure no-op.
                            prop_assert_eq!(tailer.cursor(), cursor_before);
                            prop_assert_eq!(tailer.log(), log_before.as_slice());
                        }
                        TailPoll::Advanced { bytes, restarted } => {
                            let cursor = tailer.cursor();
                            if cursor.epoch != cursor_before.epoch {
                                // Epoch bump ⇒ full re-tail, never append.
                                prop_assert!(restarted, "cross-epoch batch must restart");
                            }
                            if restarted {
                                // The replica's copy is replaced wholesale
                                // by the new epoch's whole image.
                                prop_assert_eq!(tailer.log(), shipper.image().as_slice());
                            } else {
                                // Same epoch: strictly appended.
                                prop_assert_eq!(cursor.epoch, cursor_before.epoch);
                                prop_assert!(tailer.log().starts_with(&log_before));
                                prop_assert_eq!(tailer.log().len(), log_before.len() + bytes);
                            }
                            prop_assert_eq!(cursor.offset, tailer.log().len());
                        }
                        TailPoll::Offline => prop_assert!(shipper.is_offline()),
                        TailPoll::UpToDate => {
                            prop_assert_eq!(cursor_before.offset, shipper.shipped_len());
                        }
                    }
                    // The replica always holds a valid, replayable prefix.
                    prop_assert!(parses_cleanly(tailer.log()));
                    // And when epochs agree, exactly the shipped image up
                    // to its cursor — lagging, never ahead.
                    if tailer.cursor().epoch == shipper.epoch() {
                        let image = shipper.image();
                        prop_assert!(tailer.cursor().offset <= image.len());
                        prop_assert_eq!(tailer.log(), &image[..tailer.cursor().offset]);
                    }
                }
            }
        }

        // Drain: back online, at most one pending corrupt fetch to shed,
        // then the replica must converge on the full image.
        shipper.set_offline(false);
        for _ in 0..2 {
            match tailer.catch_up() {
                TailPoll::UpToDate => break,
                TailPoll::Rejected => continue,
                other => prop_assert!(false, "unexpected drain outcome: {other:?}"),
            }
        }
        prop_assert_eq!(tailer.log(), shipper.image().as_slice());
        prop_assert_eq!(tailer.cursor().epoch, shipper.epoch());
    }
}

/// One step of the *pipelined* shipping dialogue: the publication source
/// is a real pipelined writer (publish rides the flusher's post-sync
/// path), not hand-called `publish`.
#[derive(Clone, Debug)]
enum PipeEv {
    /// Log one commit-point stage (lands in the active buffer).
    Commit(i64),
    /// Seal the active buffer onto the flusher queue (unsynced!).
    Seal,
    /// One flusher step: sync + publish of the oldest sealed buffer.
    Step,
    /// Drain the whole pipeline (`Wal::flush`).
    FlushAll,
    /// Checkpoint — the epoch bump racing whatever is sealed-but-unsynced.
    Checkpoint,
    /// The next fetched copy is damaged in flight.
    Corrupt,
    /// Cut or restore the uplink.
    Offline(bool),
    /// The replica polls once.
    Poll,
}

fn arb_pipe_event() -> impl Strategy<Value = PipeEv> {
    prop_oneof![
        (1i64..100).prop_map(PipeEv::Commit),
        Just(PipeEv::Seal),
        // Weight steps and polls up so dialogues actually move bytes.
        Just(PipeEv::Step),
        Just(PipeEv::Step),
        Just(PipeEv::FlushAll),
        Just(PipeEv::Checkpoint),
        Just(PipeEv::Corrupt),
        any::<bool>().prop_map(PipeEv::Offline),
        Just(PipeEv::Poll),
        Just(PipeEv::Poll),
        Just(PipeEv::Poll),
    ]
}

fn commit_stage(txn: u64, val: i64) -> StageRecord {
    StageRecord {
        txn: TxnId(txn),
        stage: 0,
        total: 1,
        flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::FINAL),
        reads: vec![],
        writes: vec!["k".into()],
        images: vec![croesus::wal::WriteImage {
            key: "k".into(),
            pre: None,
            post: Some(Arc::new(croesus::store::Value::Int(val))),
        }],
    }
}

proptest! {
    #[test]
    fn pipelined_publish_timing_holds_the_shipping_contract(
        events in prop::collection::vec(arb_pipe_event(), 1..40)
    ) {
        // Group 64 so *only* the dialogue's explicit Seal/Step/FlushAll
        // events move bytes through the pipeline — publish timing is
        // entirely under the test's control.
        let (wal, probe): (Wal, MemStorage) = Wal::pipelined_in_memory(
            WalConfig::group(64),
            PipelineConfig { coalescer: None, manual_flusher: true },
        );
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        let mut tailer = ReplicaTailer::new(Arc::clone(&shipper));
        let mut txn = 0u64;

        for ev in &events {
            match ev {
                PipeEv::Commit(val) => {
                    txn += 1;
                    wal.append_stage(commit_stage(txn, *val)).unwrap();
                }
                PipeEv::Seal => wal.seal_active(),
                PipeEv::Step => { wal.flusher_step().unwrap(); }
                PipeEv::FlushAll => wal.flush().unwrap(),
                PipeEv::Checkpoint => wal.checkpoint().unwrap(),
                PipeEv::Corrupt => shipper.corrupt_next_fetch(),
                PipeEv::Offline(down) => shipper.set_offline(*down),
                PipeEv::Poll => {
                    let cursor_before = tailer.cursor();
                    let log_before = tailer.log().to_vec();
                    match tailer.poll() {
                        TailPoll::Rejected => {
                            // A damaged batch must be a pure no-op.
                            prop_assert_eq!(tailer.cursor(), cursor_before);
                            prop_assert_eq!(tailer.log(), log_before.as_slice());
                        }
                        TailPoll::Advanced { bytes, restarted } => {
                            let cursor = tailer.cursor();
                            if cursor.epoch != cursor_before.epoch {
                                // Epoch bump ⇒ full re-tail, never append.
                                prop_assert!(restarted, "cross-epoch batch must restart");
                            }
                            if restarted {
                                prop_assert_eq!(tailer.log(), shipper.image().as_slice());
                            } else {
                                prop_assert_eq!(cursor.epoch, cursor_before.epoch);
                                prop_assert!(tailer.log().starts_with(&log_before));
                                prop_assert_eq!(tailer.log().len(), log_before.len() + bytes);
                            }
                            prop_assert_eq!(cursor.offset, tailer.log().len());
                        }
                        TailPoll::Offline => prop_assert!(shipper.is_offline()),
                        TailPoll::UpToDate => {
                            prop_assert_eq!(cursor_before.offset, shipper.shipped_len());
                        }
                    }
                    prop_assert!(parses_cleanly(tailer.log()));
                }
            }
            // The structural core of the refactor: publication lives in
            // the flusher's post-sync path, so at every step of every
            // dialogue the shipped image IS the durable bytes — sealed
            // or in-flight buffers are never visible to the replica.
            prop_assert_eq!(
                shipper.image(),
                probe.durable(),
                "shipped image diverged from the durable device"
            );
            // And the replica can lag but never run ahead of it.
            if tailer.cursor().epoch == shipper.epoch() {
                let image = shipper.image();
                prop_assert!(tailer.cursor().offset <= image.len());
                prop_assert_eq!(tailer.log(), &image[..tailer.cursor().offset]);
            }
        }

        // Drain: pipeline flushed, uplink up, at most one damaged fetch
        // to shed — the replica must converge on the full durable image.
        wal.flush().unwrap();
        shipper.set_offline(false);
        for _ in 0..2 {
            match tailer.catch_up() {
                TailPoll::UpToDate => break,
                TailPoll::Rejected => continue,
                other => prop_assert!(false, "unexpected drain outcome: {other:?}"),
            }
        }
        prop_assert_eq!(tailer.log(), probe.durable().as_slice());
        prop_assert_eq!(tailer.cursor().epoch, shipper.epoch());
    }
}
