//! Property tests for the PR 4 edge→cloud shipping contract
//! (DESIGN.md, "Failure model & failover"):
//!
//! * an epoch bump always reaches the replica as a **restart batch** — the
//!   replica replaces its copy wholesale and never appends across epochs;
//! * a rejected (damaged) batch never advances the cursor or mutates the
//!   replica's log — the next poll is an automatic refetch;
//! * whenever the replica's epoch matches the source, its log is exactly
//!   the shipped image up to its cursor (shipped ⊆ durable ⇒ the replica
//!   can lag, never run ahead).

use proptest::prelude::*;

use croesus::core::{ReplicaTailer, TailPoll};
use croesus::store::TxnId;
use croesus::wal::frame::write_frame;
use croesus::wal::{FrameReader, LogShipper, TailState, WalRecord};
use std::sync::Arc;

/// One source-side or replica-side step of the shipping dialogue.
#[derive(Clone, Debug)]
enum Ev {
    /// The edge syncs new records: frame and publish them.
    Publish(Vec<(u64, bool)>),
    /// The edge checkpoints: epoch bump, image replaced.
    Checkpoint,
    /// The next fetched copy is damaged in flight.
    Corrupt,
    /// Cut or restore the uplink.
    Offline(bool),
    /// The replica polls once.
    Poll,
}

fn arb_event() -> impl Strategy<Value = Ev> {
    prop_oneof![
        prop::collection::vec((1u64..9, any::<bool>()), 1..4).prop_map(Ev::Publish),
        Just(Ev::Checkpoint),
        Just(Ev::Corrupt),
        any::<bool>().prop_map(Ev::Offline),
        // Weight polls up so runs actually consume what they publish.
        Just(Ev::Poll),
        Just(Ev::Poll),
        Just(Ev::Poll),
    ]
}

fn framed(records: &[WalRecord]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in records {
        write_frame(&mut out, &r.encode());
    }
    out
}

fn decision_frames(decisions: &[(u64, bool)]) -> Vec<u8> {
    let records: Vec<WalRecord> = decisions
        .iter()
        .map(|&(txn, commit)| WalRecord::TpcDecision {
            txn: TxnId(txn),
            commit,
        })
        .collect();
    framed(&records)
}

fn parses_cleanly(bytes: &[u8]) -> bool {
    let mut reader = FrameReader::new(bytes);
    for payload in reader.by_ref() {
        if WalRecord::decode(payload).is_err() {
            return false;
        }
    }
    reader.tail() == TailState::Clean
}

proptest! {
    #[test]
    fn shipping_contract_holds_for_any_dialogue(events in prop::collection::vec(arb_event(), 1..40)) {
        let shipper = Arc::new(LogShipper::new());
        let mut tailer = ReplicaTailer::new(Arc::clone(&shipper));

        for ev in &events {
            match ev {
                Ev::Publish(decisions) => shipper.publish(&decision_frames(decisions)),
                Ev::Checkpoint => shipper.restart_epoch(&framed(&[WalRecord::Settle])),
                Ev::Corrupt => shipper.corrupt_next_fetch(),
                Ev::Offline(down) => shipper.set_offline(*down),
                Ev::Poll => {
                    let cursor_before = tailer.cursor();
                    let log_before = tailer.log().to_vec();
                    match tailer.poll() {
                        TailPoll::Rejected => {
                            // A damaged batch must be a pure no-op.
                            prop_assert_eq!(tailer.cursor(), cursor_before);
                            prop_assert_eq!(tailer.log(), log_before.as_slice());
                        }
                        TailPoll::Advanced { bytes, restarted } => {
                            let cursor = tailer.cursor();
                            if cursor.epoch != cursor_before.epoch {
                                // Epoch bump ⇒ full re-tail, never append.
                                prop_assert!(restarted, "cross-epoch batch must restart");
                            }
                            if restarted {
                                // The replica's copy is replaced wholesale
                                // by the new epoch's whole image.
                                prop_assert_eq!(tailer.log(), shipper.image().as_slice());
                            } else {
                                // Same epoch: strictly appended.
                                prop_assert_eq!(cursor.epoch, cursor_before.epoch);
                                prop_assert!(tailer.log().starts_with(&log_before));
                                prop_assert_eq!(tailer.log().len(), log_before.len() + bytes);
                            }
                            prop_assert_eq!(cursor.offset, tailer.log().len());
                        }
                        TailPoll::Offline => prop_assert!(shipper.is_offline()),
                        TailPoll::UpToDate => {
                            prop_assert_eq!(cursor_before.offset, shipper.shipped_len());
                        }
                    }
                    // The replica always holds a valid, replayable prefix.
                    prop_assert!(parses_cleanly(tailer.log()));
                    // And when epochs agree, exactly the shipped image up
                    // to its cursor — lagging, never ahead.
                    if tailer.cursor().epoch == shipper.epoch() {
                        let image = shipper.image();
                        prop_assert!(tailer.cursor().offset <= image.len());
                        prop_assert_eq!(tailer.log(), &image[..tailer.cursor().offset]);
                    }
                }
            }
        }

        // Drain: back online, at most one pending corrupt fetch to shed,
        // then the replica must converge on the full image.
        shipper.set_offline(false);
        for _ in 0..2 {
            match tailer.catch_up() {
                TailPoll::UpToDate => break,
                TailPoll::Rejected => continue,
                other => prop_assert!(false, "unexpected drain outcome: {other:?}"),
            }
        }
        prop_assert_eq!(tailer.log(), shipper.image().as_slice());
        prop_assert_eq!(tailer.cursor().epoch, shipper.epoch());
    }
}
