//! Golden pins for the legacy (synchronous) durability modes.
//!
//! The PR 10 pipelined writer must leave `DurabilityMode::Strict` and
//! `GroupCommit` *byte-identical*: same `WalStats`, same durable bytes,
//! same shipped image, same checkpoint/truncation behaviour. These tests
//! drive a fixed workload through the writer and pin everything to
//! values captured on the pre-refactor writer — any drift in the
//! synchronous paths fails loudly here, independent of the behavioural
//! test suites.

use std::sync::Arc;

use croesus_store::{Key, TxnId, Value};
use croesus_wal::{
    crc32, LogShipper, RetractRecord, StageFlags, StageRecord, Wal, WalConfig, WalStats, WriteImage,
};

const CP: u8 = StageFlags::COMMIT_POINT;
const FIN: u8 = StageFlags::FINAL;
const REG: u8 = StageFlags::REGISTER;

fn stage(txn: u64, idx: u32, flags: u8, key: &str, post: i64) -> StageRecord {
    StageRecord {
        txn: TxnId(txn),
        stage: idx,
        total: 2,
        flags: StageFlags(flags),
        reads: vec![Key::new("r")],
        writes: vec![Key::new(key)],
        images: vec![WriteImage {
            key: Key::new(key),
            pre: None,
            post: Some(Arc::new(Value::Int(post))),
        }],
    }
}

/// The fixed workload: every writer entry point, deterministic records.
fn drive(wal: &Wal) {
    for i in 0..10u64 {
        wal.append_stage(stage(i, 0, CP | REG, &format!("k{}", i % 3), i as i64))
            .unwrap();
    }
    // A non-commit mid-flight record (MS-SR early stage).
    wal.append_stage(stage(50, 0, 0, "held", 5)).unwrap();
    for i in 0..10u64 {
        wal.append_stage(stage(i, 1, CP | FIN, &format!("k{}", i % 3), -(i as i64)))
            .unwrap();
    }
    wal.append_retracts(vec![
        RetractRecord {
            txn: TxnId(3),
            restores: vec![(Key::new("k0"), Some(Arc::new(Value::Int(7))))],
        },
        RetractRecord {
            txn: TxnId(3),
            restores: vec![(Key::new("k1"), None)],
        },
    ])
    .unwrap();
    wal.append_tpc_decision(TxnId(100), true).unwrap();
    wal.append_tpc_end(TxnId(100)).unwrap();
    wal.append_settle().unwrap();
    wal.flush().unwrap();
}

/// What the pins capture for one run.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    stats: WalStats,
    durable_len: usize,
    durable_crc: u32,
    shipped_len: usize,
    shipped_crc: u32,
    ship_epoch: u64,
    log_len: u64,
}

fn run(config: WalConfig, checkpoint_midway: bool) -> Fingerprint {
    let (wal, probe) = Wal::in_memory(config);
    let shipper = Arc::new(LogShipper::new());
    wal.attach_shipper(Arc::clone(&shipper));
    if checkpoint_midway {
        for i in 0..4u64 {
            wal.append_stage(stage(i, 0, CP | FIN, "c", i as i64))
                .unwrap();
        }
        wal.checkpoint().unwrap();
    }
    drive(&wal);
    let durable = probe.durable();
    let shipped = shipper.image();
    Fingerprint {
        stats: wal.stats(),
        durable_len: durable.len(),
        durable_crc: crc32(&durable),
        shipped_len: shipped.len(),
        shipped_crc: crc32(&shipped),
        ship_epoch: shipper.epoch(),
        log_len: wal.log_len(),
    }
}

#[test]
fn strict_mode_is_pinned_to_the_pre_pipeline_writer() {
    let got = run(WalConfig::strict(), false);
    assert_eq!(
        got,
        Fingerprint {
            stats: WalStats {
                records: 26,
                commit_points: 20,
                syncs: 22,
                checkpoints: 0,
                bytes_appended: 1499,
            },
            durable_len: 1499,
            durable_crc: 1_675_171_600,
            shipped_len: 1499,
            shipped_crc: 1_675_171_600,
            ship_epoch: 0,
            log_len: 1499,
        }
    );
}

#[test]
fn group_commit_mode_is_pinned_to_the_pre_pipeline_writer() {
    let got = run(WalConfig::group(4), false);
    assert_eq!(
        got,
        Fingerprint {
            stats: WalStats {
                records: 26,
                commit_points: 20,
                syncs: 7,
                checkpoints: 0,
                bytes_appended: 1499,
            },
            durable_len: 1499,
            durable_crc: 1_675_171_600,
            shipped_len: 1499,
            shipped_crc: 1_675_171_600,
            ship_epoch: 0,
            log_len: 1499,
        }
    );
}

#[test]
fn checkpointed_group_commit_is_pinned_to_the_pre_pipeline_writer() {
    let got = run(WalConfig::group(4), true);
    assert_eq!(
        got,
        Fingerprint {
            stats: WalStats {
                records: 30,
                commit_points: 24,
                syncs: 9,
                checkpoints: 1,
                bytes_appended: 1755,
            },
            durable_len: 1558,
            durable_crc: 652_048_937,
            shipped_len: 1558,
            shipped_crc: 652_048_937,
            ship_epoch: 1,
            log_len: 1558,
        }
    );
}
