//! Cross-crate integration tests: the full Croesus pipeline against the
//! baselines, across the paper's video presets.

use croesus::core::{
    Croesus, CroesusConfig, ProtocolKind, RunMetrics, ThresholdEvaluator, ThresholdPair,
    ValidationPolicy,
};
use croesus::detect::{ModelProfile, SimulatedModel};
use croesus::net::{Colocation, EdgeClass, Setup};
use croesus::video::VideoPreset;

const FRAMES: u64 = 120;

fn cfg(preset: VideoPreset, pair: ThresholdPair) -> CroesusConfig {
    CroesusConfig::new(preset, pair).with_frames(FRAMES)
}

fn run_croesus(config: &CroesusConfig) -> RunMetrics {
    Croesus::multistage(config).run()
}

fn run_edge_only(config: &CroesusConfig) -> RunMetrics {
    Croesus::edge_only(config).run()
}

fn run_cloud_only(config: &CroesusConfig) -> RunMetrics {
    Croesus::cloud_only(config).run()
}

#[test]
fn protocol_matrix_agrees_on_accuracy_and_bandwidth() {
    // The unified API's promise: the consistency protocol changes *how*
    // transactions commit, not what the client sees of the video pipeline.
    let base = cfg(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7));
    let reference = run_croesus(&base);
    for kind in [ProtocolKind::MsSr, ProtocolKind::Staged] {
        let m = Croesus::builder()
            .config(base.clone())
            .protocol(kind)
            .build()
            .run();
        assert_eq!(m.f_score, reference.f_score, "{kind}");
        assert_eq!(m.bytes_sent, reference.bytes_sent, "{kind}");
        assert!(m.transactions_committed > 0, "{kind}");
    }
}

#[test]
fn croesus_beats_edge_accuracy_on_every_video() {
    for preset in VideoPreset::FIG2 {
        let pair = ThresholdPair::new(0.3, 0.7);
        let croesus = run_croesus(&cfg(preset, pair));
        let edge = run_edge_only(&cfg(preset, pair));
        assert!(
            croesus.f_score >= edge.f_score,
            "{preset:?}: croesus {} < edge {}",
            croesus.f_score,
            edge.f_score
        );
    }
}

#[test]
fn croesus_initial_commit_matches_edge_latency() {
    for preset in [VideoPreset::StreetTraffic, VideoPreset::MallSurveillance] {
        let croesus = run_croesus(&cfg(preset, ThresholdPair::new(0.2, 0.8)));
        let edge = run_edge_only(&cfg(preset, ThresholdPair::new(0.2, 0.8)));
        let diff = (croesus.initial_commit_ms - edge.initial_commit_ms).abs();
        assert!(
            diff < 30.0,
            "{preset:?}: initial commits should track the edge baseline (diff {diff} ms)"
        );
    }
}

#[test]
fn croesus_final_latency_sits_between_edge_and_cloud() {
    let preset = VideoPreset::StreetTraffic;
    let pair = ThresholdPair::new(0.4, 0.6);
    let croesus = run_croesus(&cfg(preset, pair));
    let edge = run_edge_only(&cfg(preset, pair));
    let cloud = run_cloud_only(&cfg(preset, pair));
    assert!(croesus.final_commit_ms > edge.final_commit_ms);
    assert!(croesus.final_commit_ms < cloud.final_commit_ms);
}

#[test]
fn full_bu_croesus_costs_more_than_cloud_baseline() {
    // §5.2.1: "When BU is 100%, the total cloud latency for Croesus becomes
    // even higher than state-of-the-art cloud" — it pays both paths.
    let preset = VideoPreset::ParkDog;
    let base = cfg(preset, ThresholdPair::new(0.4, 0.6));
    let croesus = run_croesus(
        &base
            .clone()
            .with_validation(ValidationPolicy::ForcedBu(1.0)),
    );
    let cloud = run_cloud_only(&base);
    assert!(
        croesus.final_commit_ms > cloud.final_commit_ms,
        "croesus@100% {} vs cloud {}",
        croesus.final_commit_ms,
        cloud.final_commit_ms
    );
    assert!((croesus.f_score - 1.0).abs() < 1e-9, "all frames validated");
}

#[test]
fn bandwidth_utilization_tracks_validation_policy() {
    let preset = VideoPreset::StreetTraffic;
    for bu in [0.0, 0.5, 1.0] {
        let m = run_croesus(
            &cfg(preset, ThresholdPair::new(0.4, 0.6))
                .with_validation(ValidationPolicy::ForcedBu(bu)),
        );
        assert!(
            (m.bandwidth_utilization - bu).abs() < 0.02,
            "target {bu}, got {}",
            m.bandwidth_utilization
        );
    }
}

#[test]
fn evaluator_prediction_matches_pipeline_measurement() {
    // The optimizer's fast surface evaluation and the full pipeline must
    // agree: they share detections by determinism.
    let preset = VideoPreset::MallSurveillance;
    let pair = ThresholdPair::new(0.3, 0.7);
    let seed = 42;
    let video = preset.generate(FRAMES, seed);
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), seed ^ 0xE);
    let cloud_model = SimulatedModel::new(ModelProfile::yolov3_416(), seed ^ 0xC);
    let ev = ThresholdEvaluator::build(&video, &edge_model, &cloud_model, 0.10);
    let predicted = ev.evaluate(pair);
    let measured = run_croesus(&cfg(preset, pair).with_seed(seed));
    assert!(
        (predicted.bu - measured.bandwidth_utilization).abs() < 1e-9,
        "BU: predicted {} measured {}",
        predicted.bu,
        measured.bandwidth_utilization
    );
    assert!(
        (predicted.f_score - measured.f_score).abs() < 1e-9,
        "F: predicted {} measured {}",
        predicted.f_score,
        measured.f_score
    );
}

#[test]
fn colocated_cloud_cuts_final_latency() {
    let preset = VideoPreset::StreetTraffic;
    let pair = ThresholdPair::new(0.2, 0.8);
    let far = run_croesus(&cfg(preset, pair).with_setup(Setup {
        edge: EdgeClass::Xlarge,
        colocation: Colocation::CrossCountry,
    }));
    let near = run_croesus(&cfg(preset, pair).with_setup(Setup {
        edge: EdgeClass::Xlarge,
        colocation: Colocation::SameLocation,
    }));
    assert!(
        far.final_commit_ms > near.final_commit_ms + 50.0,
        "far {} near {}",
        far.final_commit_ms,
        near.final_commit_ms
    );
    // Accuracy is a property of the models, not the network.
    assert!((far.f_score - near.f_score).abs() < 0.02);
}

#[test]
fn small_edge_slows_initial_commit_only() {
    let preset = VideoPreset::ParkDog;
    let pair = ThresholdPair::new(0.4, 0.6);
    let small = run_croesus(&cfg(preset, pair).with_setup(Setup {
        edge: EdgeClass::Small,
        colocation: Colocation::CrossCountry,
    }));
    let regular = run_croesus(&cfg(preset, pair).with_setup(Setup {
        edge: EdgeClass::Xlarge,
        colocation: Colocation::CrossCountry,
    }));
    assert!(
        small.initial_commit_ms > regular.initial_commit_ms * 1.8,
        "small {} regular {}",
        small.initial_commit_ms,
        regular.initial_commit_ms
    );
    // The cloud detection share is identical.
    assert!((small.breakdown.cloud_detect_ms - regular.breakdown.cloud_detect_ms).abs() < 30.0);
}

#[test]
fn transfer_cost_scales_with_bu() {
    let preset = VideoPreset::StreetTraffic;
    let base = cfg(preset, ThresholdPair::new(0.4, 0.6));
    let half = run_croesus(
        &base
            .clone()
            .with_validation(ValidationPolicy::ForcedBu(0.5)),
    );
    let full = run_croesus(&base.with_validation(ValidationPolicy::ForcedBu(1.0)));
    assert!(full.transfer_dollars > half.transfer_dollars * 1.8);
    assert!(full.bytes_sent > half.bytes_sent * 18 / 10);
}
