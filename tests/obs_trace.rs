//! The observability contract, end to end: the traces real runs emit —
//! the quickstart pipeline, a seeded chaos fleet, and model-checked
//! protocol interleavings — all satisfy the executable event-ordering
//! contract in `croesus::obs`, and a deliberately reordered stream is
//! rejected with a message naming the violated invariant.

use std::sync::Arc;

use croesus::core::{
    Croesus, CroesusConfig, DurabilityMode, FaultPlan, ProtocolKind, ThresholdPair,
};
use croesus::obs::{check_obs, check_stream, Event, EventKind, HistKind, Obs};
use croesus::video::VideoPreset;
use croesus::wal::scratch_dir;
use croesus_mcheck as mcheck;

fn quickstart_config(frames: u64) -> CroesusConfig {
    CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
        .with_frames(frames)
        .with_seed(42)
}

// ------------------------------------------------------------------
// The pipeline trace (the quickstart run, observed)
// ------------------------------------------------------------------

#[test]
fn quickstart_pipeline_trace_satisfies_the_ordering_contract() {
    let obs = Obs::shared();
    let frames = 60u64;
    let m = Croesus::builder()
        .config(quickstart_config(frames))
        .observe(Arc::clone(&obs))
        .build()
        .run();

    let report = check_obs(&obs).expect("pipeline trace obeys the contract");
    assert!(report.events > 0, "an observed run emits events");
    assert_eq!(report.edges, 1, "the single-edge pipeline has one stream");
    assert_eq!(
        obs.count(EventKind::FrameIngest),
        frames,
        "one ingest per frame"
    );
    // The trace finalizes at least the paper-metric transactions (the
    // stream also carries housekeeping commits the metric excludes).
    assert!(
        report.finalized as u64 >= m.transactions_committed,
        "{} finalized on the trace < {} committed in the metrics",
        report.finalized,
        m.transactions_committed
    );
    // One histogram sample per commit event: the emission sites are one
    // and the same.
    assert_eq!(
        obs.hist_count(HistKind::InitialCommitMs),
        obs.count(EventKind::InitialCommit)
    );
    assert_eq!(
        obs.hist_count(HistKind::FinalCommitMs),
        obs.count(EventKind::FinalCommit)
    );
    let q = obs.quantiles(HistKind::InitialCommitMs);
    assert!(q.p50 <= q.p999, "quantiles are ordered");
}

#[test]
fn unobserved_run_is_identical_to_observed_run_on_the_metrics() {
    let cfg = quickstart_config(40);
    let plain = Croesus::builder().config(cfg.clone()).build().run();
    let obs = Obs::shared();
    let observed = Croesus::builder()
        .config(cfg)
        .observe(Arc::clone(&obs))
        .build()
        .run();
    // Compare the simulation-deterministic fields (the golden pins); the
    // txn-section micro-timings are wall-clock measurements that jitter
    // between any two runs, observed or not.
    assert_eq!(plain.label, observed.label);
    assert_eq!(plain.f_score, observed.f_score);
    assert_eq!(plain.precision, observed.precision);
    assert_eq!(plain.recall, observed.recall);
    assert_eq!(plain.bandwidth_utilization, observed.bandwidth_utilization);
    assert_eq!(plain.bytes_sent, observed.bytes_sent);
    assert_eq!(plain.transfer_dollars, observed.transfer_dollars);
    assert_eq!(
        plain.transactions_committed,
        observed.transactions_committed
    );
    assert_eq!(plain.cloud_timeouts, observed.cloud_timeouts);
    assert_eq!(plain.corrections, observed.corrections);
    check_obs(&obs).expect("and the trace still checks out");
}

// ------------------------------------------------------------------
// The fleet trace (seeded chaos, observed)
// ------------------------------------------------------------------

#[test]
fn seeded_chaos_fleet_trace_satisfies_the_ordering_contract() {
    const FRAMES: u64 = 40;
    const EDGES: usize = 3;
    for seed in [11u64, 23] {
        let plan = FaultPlan::seeded(seed, FRAMES, EDGES, 0.06);
        let dir = scratch_dir(&format!("obs-chaos-{seed}"));
        let obs = Obs::shared();
        let r = Croesus::builder()
            .protocol(ProtocolKind::MsIa)
            .frames(FRAMES)
            .edges(EDGES)
            .durability(DurabilityMode::Strict { dir: dir.clone() })
            .failover(true)
            .heartbeat_timeout(3)
            .faults(plan)
            .observe(Arc::clone(&obs))
            .build()
            .run_fleet();

        let report =
            check_obs(&obs).expect("chaos trace obeys the contract under kills and takeovers");
        assert!(report.events > 0);

        // The fleet report carries the same stream as its timeline.
        assert_eq!(r.timeline.len(), report.events, "seed {seed}");
        check_stream(&r.timeline, obs.dropped() > 0).expect("timeline is the checked stream");

        // Every takeover the report claims is visible on the trace.
        let takeover_starts = obs.count(EventKind::TakeoverStart);
        assert_eq!(
            takeover_starts,
            r.takeovers.len() as u64,
            "seed {seed}: one TakeoverStart per takeover"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

// ------------------------------------------------------------------
// The model-checker trace (every explored interleaving, observed)
// ------------------------------------------------------------------

#[test]
fn mcheck_scenario_traces_satisfy_the_ordering_contract_on_every_schedule() {
    // `with_trace()` makes the ordering contract a per-schedule invariant
    // inside the explorer: any interleaving whose event stream violates
    // the contract becomes a model-checking counterexample.
    let config = mcheck::Config {
        max_schedules: 2_000,
        samples: 50,
        ..mcheck::Config::default()
    };
    for scenario in [
        mcheck::two_txn_two_stage(ProtocolKind::MsSr).with_trace(),
        mcheck::two_txn_two_stage(ProtocolKind::Staged).with_trace(),
        mcheck::retract_self(ProtocolKind::MsIa).with_trace(),
    ] {
        let name = scenario.label.clone();
        let report = mcheck::explore(&scenario, &config);
        assert!(
            report.violations.is_empty(),
            "{name}: ordering contract violated on an explored schedule: {:?}",
            report.violations
        );
        assert!(report.schedules > 0, "{name}: schedules were explored");
    }
}

// ------------------------------------------------------------------
// The contract rejects what it should
// ------------------------------------------------------------------

#[test]
fn reordered_stream_is_rejected_naming_the_invariant() {
    // Collect a real pipeline trace, then swap a transaction's
    // InitialCommit and FinalCommit payloads in place (seq and frame
    // stamps stay where they were, so only the *logical* order is
    // broken) — the checker must reject it and say which invariant.
    let obs = Obs::shared();
    Croesus::builder()
        .config(quickstart_config(30))
        .observe(Arc::clone(&obs))
        .build()
        .run();
    let mut events: Vec<Event> = obs.events();
    let initial = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::InitialCommit))
        .expect("the run committed something");
    let txn = events[initial].txn;
    let fin = events
        .iter()
        .position(|e| matches!(e.kind, EventKind::FinalCommit) && e.txn == txn)
        .expect("that transaction finalized");
    let (head, tail) = events.split_at_mut(fin);
    std::mem::swap(&mut head[initial].kind, &mut tail[0].kind);
    let err = check_stream(&events, false).expect_err("a reordered stream must be rejected");
    assert_eq!(err.invariant, "initial-before-final");
    let msg = err.to_string();
    assert!(
        msg.contains("initial-before-final"),
        "the rejection names the invariant: {msg}"
    );
}
