//! Calibration regression tests.
//!
//! The reproduction's figures depend on the simulated substrates staying in
//! the bands they were calibrated to (DESIGN.md). These tests pin those
//! bands so a drive-by change to a profile or preset cannot silently bend
//! every experiment.

use croesus::detect::{
    score_against, Detection, DetectionModel, ModelKind, ModelProfile, SimulatedModel,
};
use croesus::sim::stats::PrecisionRecall;
use croesus::video::{LabelClass, VideoPreset};

const FRAMES: u64 = 300;
const SEED: u64 = 42;

/// Edge-only F-score against the cloud reference for one preset.
fn edge_f_score(preset: VideoPreset) -> f64 {
    let video = preset.generate(FRAMES, SEED);
    let query: LabelClass = video.query_class().clone();
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let mut pr = PrecisionRecall::default();
    for f in video.frames() {
        let e: Vec<Detection> = edge
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query) && d.confidence >= 0.5)
            .collect();
        let c: Vec<Detection> = cloud
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query))
            .collect();
        pr.add(score_against(&e, &c, &query, 0.10));
    }
    pr.f_score()
}

#[test]
fn edge_accuracy_bands_match_table1() {
    // Table 1's edge column: v1 0.50x, v2 0.45x, v3 0.86x, v4 0.41x.
    // We pin each preset to a band around its calibrated value.
    let v1 = edge_f_score(VideoPreset::ParkDog);
    let v2 = edge_f_score(VideoPreset::StreetTraffic);
    let v3 = edge_f_score(VideoPreset::AirportRunway);
    let v4 = edge_f_score(VideoPreset::MallSurveillance);
    assert!((0.35..=0.65).contains(&v1), "v1 park: {v1}");
    assert!((0.40..=0.70).contains(&v2), "v2 traffic: {v2}");
    assert!((0.75..=0.98).contains(&v3), "v3 airport: {v3}");
    assert!((0.20..=0.50).contains(&v4), "v4 mall: {v4}");
    // The difficulty ordering the paper's results hinge on.
    assert!(v3 > v1 && v3 > v2 && v3 > v4, "airport must be easiest");
    assert!(v4 < v1 && v4 < v2, "mall must be hardest");
}

#[test]
fn cloud_detection_latencies_match_table2() {
    // Table 2: 0.70 / 1.12 / 2.34 seconds.
    let video = VideoPreset::ParkDog.generate(50, SEED);
    for (kind, expected_s) in [
        (ModelKind::YoloV3_320, 0.70),
        (ModelKind::YoloV3_416, 1.12),
        (ModelKind::YoloV3_608, 2.34),
    ] {
        let model = SimulatedModel::new(kind.profile(), SEED);
        let mean_s: f64 = video
            .frames()
            .iter()
            .map(|f| model.inference_latency(f).as_secs_f64())
            .sum::<f64>()
            / video.len() as f64;
        assert!(
            (mean_s - expected_s).abs() < 0.1,
            "{}: mean {mean_s:.2}s expected {expected_s}s",
            kind.name()
        );
    }
}

#[test]
fn edge_detection_latency_matches_table1_initial_share() {
    // Table 1's initial commits are ~210-226 ms, with ~190 ms of model time.
    let video = VideoPreset::StreetTraffic.generate(50, SEED);
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED);
    let mean_ms: f64 = video
        .frames()
        .iter()
        .map(|f| edge.inference_latency(f).as_millis_f64())
        .sum::<f64>()
        / video.len() as f64;
    assert!((170.0..=210.0).contains(&mean_ms), "tiny mean {mean_ms} ms");
}

#[test]
fn confidence_separates_correct_from_incorrect_edge_labels() {
    // The §3.4 mechanism requires confidence to carry signal: correct edge
    // labels must have visibly higher confidence than wrong ones.
    let video = VideoPreset::StreetTraffic.generate(FRAMES, SEED);
    let query: LabelClass = video.query_class().clone();
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let mut correct_conf = Vec::new();
    let mut wrong_conf = Vec::new();
    for f in video.frames() {
        let e: Vec<Detection> = edge
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query))
            .collect();
        let c: Vec<Detection> = cloud
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query))
            .collect();
        let m = croesus::detect::match_detections(&e, &c, 0.10);
        for (d, o) in e.iter().zip(&m.outcomes) {
            match o {
                croesus::detect::MatchOutcome::Correct { .. } => correct_conf.push(d.confidence),
                _ => wrong_conf.push(d.confidence),
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&correct_conf) > mean(&wrong_conf) + 0.10,
        "correct {} vs wrong {}",
        mean(&correct_conf),
        mean(&wrong_conf)
    );
}

#[test]
fn correctness_rises_monotonically_across_the_bands() {
    // The §3.4 premise, measured: discard-band detections are mostly
    // noise, validate-band ones are mixed, keep-band ones mostly right.
    let video = VideoPreset::StreetTraffic.generate(FRAMES, SEED);
    let query: LabelClass = video.query_class().clone();
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let rate_for = |lo: f64, hi: f64| -> (f64, usize) {
        let mut total = 0usize;
        let mut correct = 0usize;
        for f in video.frames() {
            let e: Vec<Detection> = edge
                .detect(f)
                .into_iter()
                .filter(|d| d.is_class(&query) && d.confidence >= lo && d.confidence < hi)
                .collect();
            let c: Vec<Detection> = cloud
                .detect(f)
                .into_iter()
                .filter(|d| d.is_class(&query))
                .collect();
            let m = croesus::detect::match_detections(&e, &c, 0.10);
            total += e.len();
            correct += m.correct();
        }
        (correct as f64 / total.max(1) as f64, total)
    };
    let (discard, dn) = rate_for(0.0, 0.3);
    let (validate, vn) = rate_for(0.4, 0.6);
    let (keep, kn) = rate_for(0.75, 1.01);
    assert!(dn > 10 && vn > 30 && kn > 30, "band sizes {dn}/{vn}/{kn}");
    assert!(
        discard < validate && validate < keep,
        "correctness must rise across bands: {discard:.2} / {validate:.2} / {keep:.2}"
    );
    assert!(
        validate < 0.97,
        "the validate band must leave the cloud something to correct: {validate:.2}"
    );
}

#[test]
fn keep_interval_is_mostly_correct() {
    // Above θU ≈ 0.75 the edge should usually be right — that is the
    // premise of not validating those frames.
    let video = VideoPreset::StreetTraffic.generate(FRAMES, SEED);
    let query: LabelClass = video.query_class().clone();
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let mut total = 0usize;
    let mut correct = 0usize;
    for f in video.frames() {
        let e: Vec<Detection> = edge
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query) && d.confidence > 0.75)
            .collect();
        let c: Vec<Detection> = cloud
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query))
            .collect();
        let m = croesus::detect::match_detections(&e, &c, 0.10);
        total += e.len();
        correct += m.correct();
    }
    assert!(total > 30, "keep population {total}");
    let rate = correct as f64 / total as f64;
    assert!(rate > 0.8, "keep interval correctness {rate}");
}

#[test]
fn discard_interval_is_mostly_noise() {
    // Below θL ≈ 0.25 detections should rarely correspond to real objects.
    let video = VideoPreset::StreetTraffic.generate(FRAMES, SEED);
    let query: LabelClass = video.query_class().clone();
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let mut total = 0usize;
    let mut correct = 0usize;
    for f in video.frames() {
        let e: Vec<Detection> = edge
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query) && d.confidence < 0.25)
            .collect();
        let c: Vec<Detection> = cloud
            .detect(f)
            .into_iter()
            .filter(|d| d.is_class(&query))
            .collect();
        let m = croesus::detect::match_detections(&e, &c, 0.10);
        total += e.len();
        correct += m.correct();
    }
    if total > 10 {
        let rate = correct as f64 / total as f64;
        assert!(rate < 0.5, "discard interval correctness {rate}");
    }
}

#[test]
fn link_latencies_match_the_deployment_story() {
    use croesus::net::{Colocation, EdgeClass, Setup};
    let far = Setup {
        edge: EdgeClass::Xlarge,
        colocation: Colocation::CrossCountry,
    }
    .topology();
    // A 150 KB frame CA→VA: ~62 ms propagation + ~24 ms at 50 Mbps.
    let ms = far.edge_cloud.mean_latency(150_000).as_millis_f64();
    assert!((70.0..=110.0).contains(&ms), "CA→VA frame {ms} ms");
    // Client→edge stays ~10 ms: the edge is nearby.
    let client_ms = far.client_edge.mean_latency(150_000).as_millis_f64();
    assert!(client_ms < 20.0, "client→edge {client_ms} ms");
}
