//! # Croesus
//!
//! A Rust reproduction of *"Croesus: Multi-Stage Processing and Transactions
//! for Video-Analytics in Edge-Cloud Systems"* (ICDE 2022).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`sim`] — deterministic discrete-event simulation, RNG, statistics.
//! * [`video`] — synthetic video scenes and the paper's five video presets.
//! * [`detect`] — simulated CNN detectors (Tiny-YOLOv3 / YOLOv3 profiles)
//!   and accuracy evaluation.
//! * [`store`] — key-value store, lock manager, undo log, partitions.
//! * [`wal`] — per-edge write-ahead log: CRC-framed records, group
//!   commit, checkpoints, crash recovery.
//! * [`txn`] — the multi-stage transaction model behind one
//!   `MultiStageProtocol` trait: MS-SR (TSPL), MS-IA and the generalized
//!   staged discipline over a shared `ExecutorCore`, plus apologies,
//!   sequencer, two-phase commit, history checkers, and apology-aware
//!   crash recovery (`txn::recovery`).
//! * [`net`] — edge-cloud network links, payload/compression models, cost.
//! * [`obs`] — structured transaction tracing: a typed event stream on the
//!   simulated frame clock, per-edge ring collectors with latency
//!   histograms, a JSON exporter, and an executable event-ordering
//!   contract (`obs::check_stream`). Off by default; attach with
//!   `Croesus::builder().observe(..)`.
//! * [`core`] — the Croesus system: the `Croesus` deployment builder
//!   (pipeline + baselines, any protocol, any edge-fleet size), edge/cloud
//!   nodes, transactions bank, bandwidth thresholding, and the threshold
//!   optimizer.
//!
//! See `examples/quickstart.rs` for an end-to-end tour and `DESIGN.md` for
//! the paper-to-module map and the protocol/builder API surface.

pub use croesus_core as core;
pub use croesus_detect as detect;
pub use croesus_net as net;
pub use croesus_obs as obs;
pub use croesus_sim as sim;
pub use croesus_store as store;
pub use croesus_txn as txn;
pub use croesus_video as video;
pub use croesus_wal as wal;
