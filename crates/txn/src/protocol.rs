//! The unified multi-stage protocol API.
//!
//! The paper's central claim is that multi-stage transactions are *one*
//! model with interchangeable consistency protocols: "we propose two
//! variants of safety guarantees — multi-stage serializability (MS-SR) and
//! multi-stage invariant confluence (MS-IA)" (§4). MS-SR and MS-IA (and the
//! generalized m-stage discipline of §3.5) differ only in *when* locks are
//! released and *how* later stages are ordered and repaired; everything
//! else — the store, the lock manager, undo logging, statistics, history
//! recording, apologies — is shared.
//!
//! This module makes that claim executable:
//!
//! * [`ExecutorCore`] owns the shared state every protocol needs.
//! * [`MultiStageProtocol`] is the object-safe trait all protocol
//!   executors implement: [`begin`](MultiStageProtocol::begin) declares a
//!   transaction and its per-stage read/write sets,
//!   [`run_stage`](MultiStageProtocol::run_stage) executes one section and
//!   returns a typed [`StageOutcome`], [`abort`](MultiStageProtocol::abort)
//!   gives up before initial commit.
//! * [`ProtocolKind`] names the three implementations and builds any of
//!   them from a core, so pipelines, benches and tests can be parameterized
//!   by protocol.
//!
//! ```
//! use std::sync::Arc;
//! use croesus_store::{KvStore, LockManager, LockPolicy, TxnId, Value};
//! use croesus_txn::{ExecutorCore, MultiStageProtocolExt, ProtocolKind, RwSet};
//!
//! let core = ExecutorCore::new(
//!     Arc::new(KvStore::new()),
//!     Arc::new(LockManager::new(LockPolicy::Block)),
//! );
//! // Any protocol, same driver code:
//! let protocol = ProtocolKind::MsIa.build(core);
//! let rw = RwSet::new().write("x");
//! let handle = protocol.begin(TxnId(1), &[rw.clone(), rw.clone()]);
//! let (_, next) = protocol
//!     .stage(handle, &rw, |ctx| ctx.write("x", 1))
//!     .unwrap();
//! protocol
//!     .stage(next.unwrap(), &rw, |ctx| ctx.write("x", 2))
//!     .unwrap();
//! assert_eq!(protocol.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use croesus_obs::{EdgeObs, EventKind, HistKind};
use croesus_store::{KvStore, LockManager, TxnId, UndoLog};
use croesus_wal::{RetractRecord, StageFlags, StageRecord, Wal, WriteImage};

use crate::apology::{ApologyManager, RetractionReport};
use crate::history::{HistoryRecorder, SectionKind};
use crate::model::{RwSet, SectionCtx, SectionOutput, TxnError};
use crate::stats::ProtocolStats;

/// The three multi-stage consistency protocols of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Multi-stage serializability via Two-Stage 2PL (Algorithm 1): later
    /// stages' locks are acquired before initial commit and held to the
    /// end, so sections of a transaction appear back-to-back in the serial
    /// order.
    MsSr,
    /// Multi-stage invariant confluence with apologies (Algorithm 2):
    /// every stage commits and releases its locks immediately; later
    /// stages reconcile errors with retractions and apologies.
    MsIa,
    /// The generalized m-stage discipline of §3.5: the MS-IA release
    /// schedule, with every stage's footprint registered as a retractable
    /// guess until the transaction's last stage confirms it.
    Staged,
}

impl ProtocolKind {
    /// All protocols, for matrices and conformance sweeps.
    pub const ALL: [ProtocolKind; 3] =
        [ProtocolKind::MsSr, ProtocolKind::MsIa, ProtocolKind::Staged];

    /// The paper's name for the protocol.
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            ProtocolKind::MsSr => "MS-SR",
            ProtocolKind::MsIa => "MS-IA",
            ProtocolKind::Staged => "staged",
        }
    }

    /// The lock policy a single-pipeline deployment should pair with this
    /// protocol. MS-SR holds locks across the edge→cloud round trip, so a
    /// blocking policy could stall a sequenced pipeline on a conflict;
    /// wait-die turns that into the abort-and-drop behaviour the paper
    /// reports (Fig. 6b). MS-IA and the staged discipline release between
    /// stages and are safe to block under the sequencer.
    #[must_use]
    pub fn default_lock_policy(self) -> croesus_store::LockPolicy {
        match self {
            ProtocolKind::MsSr => croesus_store::LockPolicy::WaitDie,
            ProtocolKind::MsIa | ProtocolKind::Staged => croesus_store::LockPolicy::Block,
        }
    }

    /// Build the executor implementing this protocol over `core`.
    #[must_use]
    pub fn build(self, core: ExecutorCore) -> Box<dyn MultiStageProtocol> {
        match self {
            ProtocolKind::MsSr => Box::new(crate::ms_sr::TsplExecutor::from_core(core)),
            ProtocolKind::MsIa => Box::new(crate::ms_ia::MsIaExecutor::from_core(core)),
            ProtocolKind::Staged => Box::new(crate::staged::StagedExecutor::from_core(core)),
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The state shared by every protocol executor: the store, the lock
/// manager, statistics, the (optional) history recorder, and the apology
/// manager. Protocols differ in *when* they use these, never in *what*
/// they hold.
pub struct ExecutorCore {
    store: Arc<KvStore>,
    locks: Arc<LockManager>,
    stats: Arc<ProtocolStats>,
    history: Option<HistoryRecorder>,
    apologies: Arc<ApologyManager>,
    wal: Option<Arc<Wal>>,
    /// High-water mark of the LSNs this core's commit points were acked
    /// at (0 until the first logged stage). Under the pipelined WAL this
    /// is the boundary a client-visible ack is durable at-or-below.
    acked_lsn: AtomicU64,
    obs: EdgeObs,
}

impl ExecutorCore {
    /// A core over a store and lock manager.
    #[must_use]
    pub fn new(store: Arc<KvStore>, locks: Arc<LockManager>) -> Self {
        ExecutorCore {
            store,
            locks,
            stats: Arc::new(ProtocolStats::new()),
            history: None,
            apologies: Arc::new(ApologyManager::new()),
            wal: None,
            acked_lsn: AtomicU64::new(0),
            obs: EdgeObs::disabled(),
        }
    }

    /// Attach a history recorder (for the §4 safety checkers).
    #[must_use]
    pub fn with_history(mut self, history: HistoryRecorder) -> Self {
        self.history = Some(history);
        self
    }

    /// Attach a write-ahead log: every protocol logs its stages through
    /// the same hook (the crate-internal `log_stage`), differing only in
    /// which stage carries the durable commit point — every stage under
    /// the lock-releasing protocols, final commit only under MS-SR.
    /// Without a WAL attached, execution is byte-identical with the
    /// pre-durability system.
    #[must_use]
    pub fn with_wal(mut self, wal: Arc<Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Start from an already-populated apology manager (the crash-recovery
    /// path re-registers the entries rebuilt from the log).
    #[must_use]
    pub fn with_apologies(mut self, apologies: Arc<ApologyManager>) -> Self {
        self.apologies = apologies;
        self
    }

    /// Attach a structured-observability stream: every stage lifecycle
    /// transition is emitted as a typed event and commit latencies feed
    /// the per-edge histograms. The default is the disabled handle, so
    /// unobserved execution takes a single branch per emission site and
    /// stays byte-identical with the uninstrumented system.
    #[must_use]
    pub fn with_obs(mut self, obs: EdgeObs) -> Self {
        self.obs = obs;
        self
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// The lock manager.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// The statistics collector.
    pub fn stats(&self) -> &Arc<ProtocolStats> {
        &self.stats
    }

    /// The history recorder, if attached.
    pub fn history(&self) -> Option<&HistoryRecorder> {
        self.history.as_ref()
    }

    /// The apology manager.
    pub fn apologies(&self) -> &Arc<ApologyManager> {
        &self.apologies
    }

    /// The write-ahead log, if durability is enabled.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// The observability stream handle (disabled unless attached).
    pub fn obs(&self) -> &EdgeObs {
        &self.obs
    }

    /// Record the begin counter and emit the `TxnBegin` event (shared by
    /// every protocol's `begin`, *before* any lock acquisition — so every
    /// recorded commit/abort is preceded by its recorded begin, which the
    /// consistent-snapshot invariant in [`ProtocolStats`] depends on).
    pub(crate) fn note_begin(&self, txn: TxnId, stages: usize) {
        self.stats.record_begin();
        self.obs.emit_txn(
            txn.0,
            EventKind::TxnBegin {
                stages: stages as u32,
            },
        );
    }

    /// The shared durability hook: serialize one executed stage — its
    /// write images (pre + post) and commit metadata — into the WAL. Runs
    /// while the stage's locks are still held, so the log order equals the
    /// commit order. At a commit point the group-commit policy decides
    /// whether this call pays the sync, and the checkpoint schedule may
    /// fold the log down to a snapshot (the commit path is the documented
    /// quiescent point for checkpoints).
    pub(crate) fn log_stage(
        &self,
        handle: &TxnHandle,
        rw: &RwSet,
        undo: &UndoLog,
        commit_point: bool,
        register: bool,
    ) -> Option<u64> {
        let Some(wal) = &self.wal else { return None };
        let images: Vec<WriteImage> = undo
            .records()
            .iter()
            .map(|r| WriteImage {
                key: r.key.clone(),
                pre: r.previous.clone(),
                post: self.store.get(&r.key),
            })
            .collect();
        let mut flags = 0u8;
        if commit_point {
            flags |= StageFlags::COMMIT_POINT;
        }
        if handle.is_final() {
            flags |= StageFlags::FINAL;
        }
        if register {
            flags |= StageFlags::REGISTER;
        }
        let lsn = wal
            .append_stage(StageRecord {
                txn: handle.txn(),
                stage: handle.stage() as u32,
                total: handle.total_stages() as u32,
                flags: StageFlags(flags),
                reads: rw.reads.clone(),
                writes: rw.writes.clone(),
                images,
            })
            .expect("WAL append failed — durability cannot be guaranteed");
        if commit_point {
            self.acked_lsn.fetch_max(lsn, Ordering::Relaxed);
            wal.maybe_checkpoint()
                .expect("WAL checkpoint failed — durability cannot be guaranteed");
        }
        Some(lsn)
    }

    /// The highest LSN any commit point on this core was acked at; `0`
    /// before the first one. Pair with [`Wal::last_flushed_lsn`] to ask
    /// "is everything this core acked durable yet?".
    #[must_use]
    pub fn acked_lsn(&self) -> u64 {
        self.acked_lsn.load(Ordering::Relaxed)
    }

    /// Record an abort in the history and statistics.
    pub(crate) fn record_abort(&self, txn: TxnId) {
        if let Some(h) = &self.history {
            h.record_abort(txn);
        }
        self.stats.record_abort();
    }

    /// Shared abort path for handles: only a transaction whose first stage
    /// has not committed may abort — afterwards the multi-stage guarantee
    /// forbids it.
    pub(crate) fn abort_handle(&self, handle: &TxnHandle) {
        assert_eq!(
            handle.stage(),
            0,
            "{} cannot abort at stage {}: initially-committed transactions \
             must finally commit (§4.1)",
            handle.txn(),
            handle.stage()
        );
        self.record_abort(handle.txn());
    }

    /// The lock-release stage discipline shared by MS-IA and the staged
    /// executor: acquire the stage's locks (stage 0 may abort; later
    /// stages retry until granted, because committed earlier stages oblige
    /// the transaction to finish), execute, commit, register the footprint
    /// with the apology manager, release.
    ///
    /// `register_final_guess` controls whether the *final* stage's
    /// footprint is registered too (the staged discipline treats every
    /// stage as a retractable guess; MS-IA's final section is the
    /// reconciliation itself and is never retracted).
    pub(crate) fn run_released_stage(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
        register_final_guess: bool,
    ) -> Result<StageOutcome, TxnError> {
        let txn = handle.txn();
        let kind = handle.section_kind();
        let started = Instant::now();
        let pairs = rw.lock_pairs();
        if handle.stage() == 0 {
            if let Err(e) = self.locks.acquire_all(txn, &pairs, None) {
                self.record_abort(txn);
                return Err(TxnError::Aborted(e));
            }
        } else {
            // Committed earlier stages oblige us to finish: retry, with a
            // small backoff to let wait-die conflicts drain.
            let mut backoff = 0u32;
            while self.locks.acquire_all(txn, &pairs, None).is_err() {
                if crate::sched::active() {
                    // Model-checked run: the retry is a real blocking wait
                    // from the scheduler's point of view.
                    crate::sched::block_point("txn.stage.retry");
                    continue;
                }
                backoff = (backoff + 1).min(6);
                std::thread::yield_now();
                if backoff > 2 {
                    std::thread::sleep(std::time::Duration::from_micros(1 << backoff));
                }
            }
        }
        crate::sched::yield_point("txn.stage.locked");
        let lock_epoch = Instant::now();
        self.obs.emit_txn(
            txn.0,
            EventKind::StageStart {
                stage: handle.stage() as u32,
            },
        );

        if let Some(h) = &self.history {
            h.record_begin(txn, kind);
        }
        let mut undo = UndoLog::new();
        let out = {
            let section = SectionCtx::new(txn, kind, &self.store, rw, &mut undo, self.history());
            let mut ctx = StageCtx::new(
                section,
                &self.store,
                &self.apologies,
                self.wal.as_deref(),
                &self.obs,
            );
            body(&mut ctx)
        };
        let output = match out {
            Ok(v) => v,
            Err(e) if handle.stage() == 0 => {
                undo.rollback(&self.store);
                self.locks.release_all(txn, pairs.iter().map(|(k, _)| k));
                self.record_abort(txn);
                return Err(e);
            }
            Err(e) => panic!(
                "stage {} of {txn} failed after earlier stages committed — \
                 the multi-stage guarantee forbids this: {e}",
                handle.stage()
            ),
        };

        // Under the lock-releasing disciplines every stage is a durable
        // commit point — stage 0 *is* the initial commit the client sees.
        crate::sched::yield_point("txn.stage.executed");
        self.log_stage(
            &handle,
            rw,
            &undo,
            true,
            !handle.is_final() || register_final_guess,
        );
        crate::sched::yield_point("txn.stage.logged");

        if let Some(h) = &self.history {
            h.record_commit(txn, kind);
        }
        self.obs.emit_txn(
            txn.0,
            EventKind::StageEnd {
                stage: handle.stage() as u32,
            },
        );
        if handle.stage() == 0 {
            let latency = started.elapsed();
            self.stats.record_initial_latency(latency);
            self.obs.emit_txn(txn.0, EventKind::InitialCommit);
            self.obs.record_duration(HistKind::InitialCommitMs, latency);
        }
        if !handle.is_final() || register_final_guess {
            self.apologies
                .register(txn, rw.reads.clone(), rw.writes.clone(), undo);
        }
        self.stats.record_lock_hold(lock_epoch.elapsed());
        self.locks.release_all(txn, pairs.iter().map(|(k, _)| k));

        Ok(if handle.is_final() {
            self.stats.record_commit();
            let latency = started.elapsed();
            self.obs.emit_txn(txn.0, EventKind::FinalCommit);
            self.obs.record_duration(HistKind::FinalCommitMs, latency);
            StageOutcome::Complete { output }
        } else {
            StageOutcome::Committed {
                output,
                next: handle.advance(),
            }
        })
    }
}

/// Permission to run the next stage of an in-flight transaction.
///
/// Handles are not clonable and each [`MultiStageProtocol::run_stage`]
/// call consumes one, so the type system enforces stage order: "the final
/// section of a transaction cannot begin before the initial section"
/// (§4.1), generalized to m stages.
#[derive(Debug)]
pub struct TxnHandle {
    txn: TxnId,
    stage: usize,
    total: usize,
}

impl TxnHandle {
    /// A handle for stage 0 of a `total`-stage transaction. Panics unless
    /// `total >= 2` — one stage is a plain transaction, and the paper's
    /// model starts at two.
    pub(crate) fn first(txn: TxnId, total: usize) -> Self {
        assert!(
            total >= 2,
            "a multi-stage transaction needs at least 2 stages"
        );
        TxnHandle {
            txn,
            stage: 0,
            total,
        }
    }

    /// The handle for the next stage.
    pub(crate) fn advance(self) -> Self {
        TxnHandle {
            txn: self.txn,
            stage: self.stage + 1,
            total: self.total,
        }
    }

    /// The transaction this handle belongs to.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The stage this handle authorizes (0-based).
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Total stages in the transaction.
    pub fn total_stages(&self) -> usize {
        self.total
    }

    /// Whether this handle authorizes the final stage.
    #[must_use]
    pub fn is_final(&self) -> bool {
        self.stage + 1 == self.total
    }

    /// The history section kind this stage maps to.
    #[must_use]
    pub fn section_kind(&self) -> SectionKind {
        if self.stage == 0 {
            SectionKind::Initial
        } else if self.is_final() {
            SectionKind::Final
        } else {
            SectionKind::Intermediate(
                u16::try_from(self.stage - 1).expect("more than 65k stages is absurd"),
            )
        }
    }
}

/// The typed result of running one stage — the only result surface the
/// protocols expose.
#[derive(Debug)]
pub enum StageOutcome {
    /// The stage committed and the transaction continues: run the next
    /// stage with `next` once its input is available.
    Committed {
        /// The response produced for the client.
        output: SectionOutput,
        /// Permission for the next stage.
        next: TxnHandle,
    },
    /// The final stage committed; the transaction is complete.
    Complete {
        /// The response produced for the client.
        output: SectionOutput,
    },
}

impl StageOutcome {
    /// The stage's client response.
    pub fn output(&self) -> &SectionOutput {
        match self {
            StageOutcome::Committed { output, .. } | StageOutcome::Complete { output } => output,
        }
    }

    /// The handle for the next stage, if the transaction is not complete.
    #[must_use]
    pub fn into_next(self) -> Option<TxnHandle> {
        match self {
            StageOutcome::Committed { next, .. } => Some(next),
            StageOutcome::Complete { .. } => None,
        }
    }

    /// Whether the transaction finally committed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, StageOutcome::Complete { .. })
    }
}

/// The execution context handed to stage bodies: the plain read/write
/// [`SectionCtx`] (via `Deref`), plus the reconciliation capabilities a
/// later stage needs — retraction with cascade, and apology bookkeeping
/// (§4.4).
pub struct StageCtx<'a> {
    section: SectionCtx<'a>,
    store: &'a KvStore,
    apologies: &'a ApologyManager,
    wal: Option<&'a Wal>,
    obs: &'a EdgeObs,
    reports: Vec<RetractionReport>,
}

impl<'a> StageCtx<'a> {
    pub(crate) fn new(
        section: SectionCtx<'a>,
        store: &'a KvStore,
        apologies: &'a ApologyManager,
        wal: Option<&'a Wal>,
        obs: &'a EdgeObs,
    ) -> Self {
        StageCtx {
            section,
            store,
            apologies,
            wal,
            obs,
            reports: Vec::new(),
        }
    }

    /// The plain section context (for code written against [`SectionCtx`]).
    pub fn section_mut(&mut self) -> &mut SectionCtx<'a> {
        &mut self.section
    }

    /// Retract a transaction's committed stage effects (cascading to
    /// dependents), usually this transaction's own earlier guess. With
    /// durability on, the store restores are logged (one record per
    /// rolled-back entry, in rollback order) so replay repeats them
    /// byte-for-byte; their durability rides this stage's commit flush.
    pub fn retract(&mut self, txn: TxnId, reason: &str) -> RetractionReport {
        let report = self.apologies.retract(txn, self.store, reason);
        if let Some(wal) = self.wal {
            wal.append_retracts(report.restores.iter().map(|(txn, restores)| RetractRecord {
                txn: *txn,
                restores: restores.clone(),
            }))
            .expect("WAL append failed — durability cannot be guaranteed");
        }
        for retracted in &report.retracted {
            self.obs.emit_txn(retracted.0, EventKind::Retract);
            self.obs.emit_txn(retracted.0, EventKind::Apology);
        }
        self.reports.push(report.clone());
        report
    }

    /// Retract this transaction's own earlier stages:
    /// `ctx.retract_self("detected the wrong building")`.
    pub fn retract_self(&mut self, reason: &str) -> RetractionReport {
        let txn = self.section.txn();
        self.retract(txn, reason)
    }

    /// Retraction reports accumulated by this stage.
    pub fn reports(&self) -> &[RetractionReport] {
        &self.reports
    }
}

impl<'a> Deref for StageCtx<'a> {
    type Target = SectionCtx<'a>;
    fn deref(&self) -> &Self::Target {
        &self.section
    }
}

impl DerefMut for StageCtx<'_> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.section
    }
}

/// A stage body as the object-safe trait sees it. Use
/// [`MultiStageProtocolExt::stage`] for a typed-closure convenience.
pub type StageBody<'b> = &'b mut dyn FnMut(&mut StageCtx<'_>) -> Result<SectionOutput, TxnError>;

/// One multi-stage consistency protocol: MS-SR, MS-IA, or the generalized
/// staged discipline. Object-safe, so pipelines hold `&dyn
/// MultiStageProtocol` (or a `Box`) and swap protocols freely.
///
/// The lifecycle: [`begin`](Self::begin) declares the transaction and its
/// per-stage read/write sets, then each [`run_stage`](Self::run_stage)
/// consumes the current [`TxnHandle`] and yields a [`StageOutcome`]
/// carrying the next one. Only stage 0 may fail with
/// [`TxnError::Aborted`]; once it commits, the protocol guarantees every
/// later stage commits too (the crux of the model, §4.1).
pub trait MultiStageProtocol: Send + Sync {
    /// Which protocol this executor implements.
    fn kind(&self) -> ProtocolKind;

    /// The shared executor state.
    fn core(&self) -> &ExecutorCore;

    /// Declare a transaction with one read/write set per stage
    /// (`stages.len()` is the stage count; panics unless ≥ 2).
    ///
    /// MS-SR is the reason the sets are declared up front: it must lock
    /// *later* stages' items before initial commit — "the system can infer
    /// what data will be accessed (or potentially accessed) in the final
    /// section" (§4.3). The lock-releasing protocols treat the declared
    /// sets as advisory and lock whatever each `run_stage` call passes.
    fn begin(&self, txn: TxnId, stages: &[RwSet]) -> TxnHandle;

    /// Run one stage: lock `rw` per the protocol's discipline, execute
    /// `body`, commit, and release per the discipline. `rw` must be
    /// covered by the set declared at [`begin`](Self::begin) under MS-SR.
    fn run_stage(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
    ) -> Result<StageOutcome, TxnError>;

    /// Abort a transaction that has not yet committed its first stage.
    /// Panics if any stage already committed — initially-committed
    /// transactions must finally commit.
    fn abort(&self, handle: TxnHandle);

    /// The underlying store.
    fn store(&self) -> &Arc<KvStore> {
        self.core().store()
    }

    /// The statistics collector.
    fn stats(&self) -> &Arc<ProtocolStats> {
        self.core().stats()
    }

    /// The apology manager (issued apologies, manual retraction).
    fn apologies(&self) -> &Arc<ApologyManager> {
        self.core().apologies()
    }

    /// The history recorder, if attached.
    fn history(&self) -> Option<&HistoryRecorder> {
        self.core().history()
    }
}

/// Typed-closure convenience over the object-safe surface: the body
/// returns any `T` and the stage result arrives as `(T, Option<TxnHandle>)`.
/// Implemented for every protocol, including `dyn MultiStageProtocol`.
pub trait MultiStageProtocolExt: MultiStageProtocol {
    /// Run one stage with a typed body. See
    /// [`MultiStageProtocol::run_stage`] for the protocol semantics.
    fn stage<T>(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: impl FnOnce(&mut StageCtx<'_>) -> Result<T, TxnError>,
    ) -> Result<(T, Option<TxnHandle>), TxnError> {
        let mut body = Some(body);
        let mut slot = None;
        let outcome = self.run_stage(handle, rw, &mut |ctx| {
            let f = body.take().expect("a stage body runs exactly once");
            slot = Some(f(ctx)?);
            Ok(SectionOutput::new())
        })?;
        Ok((slot.expect("the stage body ran"), outcome.into_next()))
    }
}

impl<P: MultiStageProtocol + ?Sized> MultiStageProtocolExt for P {}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::{LockPolicy, Value};

    fn protocol(kind: ProtocolKind) -> Box<dyn MultiStageProtocol> {
        let core = ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::Block)),
        )
        .with_history(HistoryRecorder::new());
        kind.build(core)
    }

    #[test]
    fn every_protocol_commits_a_two_stage_txn() {
        for kind in ProtocolKind::ALL {
            let p = protocol(kind);
            let rw = RwSet::new().write("x");
            let h = p.begin(TxnId(1), &[rw.clone(), rw.clone()]);
            let (_, h) = p.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
            let (_, done) = p.stage(h.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();
            assert!(done.is_none(), "{kind}: two stages complete the txn");
            assert_eq!(
                p.store().get(&"x".into()).as_deref(),
                Some(&Value::Int(2)),
                "{kind}"
            );
            assert_eq!(p.stats().snapshot().commits, 1, "{kind}");
        }
    }

    #[test]
    fn handle_kinds_map_to_sections() {
        let h = TxnHandle::first(TxnId(1), 4);
        assert_eq!(h.section_kind(), SectionKind::Initial);
        assert!(!h.is_final());
        let h = h.advance();
        assert_eq!(h.section_kind(), SectionKind::Intermediate(0));
        let h = h.advance();
        assert_eq!(h.section_kind(), SectionKind::Intermediate(1));
        let h = h.advance();
        assert_eq!(h.section_kind(), SectionKind::Final);
        assert!(h.is_final());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_stage_panics() {
        protocol(ProtocolKind::MsIa).begin(TxnId(1), &[RwSet::new()]);
    }

    #[test]
    fn abort_before_first_commit_is_clean() {
        for kind in ProtocolKind::ALL {
            let p = protocol(kind);
            let h = p.begin(TxnId(3), &[RwSet::new(), RwSet::new()]);
            p.abort(h);
            assert_eq!(p.stats().snapshot().aborts, 1, "{kind}");
            assert_eq!(p.store().len(), 0, "{kind}");
        }
    }

    #[test]
    fn outcome_accessors() {
        let p = protocol(ProtocolKind::MsIa);
        let h = p.begin(TxnId(9), &[RwSet::new(), RwSet::new()]);
        let out = p.run_stage(h, &RwSet::new(), &mut |_| Ok(SectionOutput::respond(5)));
        let out = out.unwrap();
        assert!(!out.is_complete());
        assert_eq!(out.output().response, vec![Value::Int(5)]);
        let h = out.into_next().unwrap();
        let out = p.run_stage(h, &RwSet::new(), &mut |_| Ok(SectionOutput::new()));
        assert!(out.unwrap().is_complete());
    }

    #[test]
    fn display_and_policy() {
        assert_eq!(ProtocolKind::MsSr.to_string(), "MS-SR");
        assert_eq!(
            ProtocolKind::MsSr.default_lock_policy(),
            LockPolicy::WaitDie
        );
        assert_eq!(ProtocolKind::MsIa.default_lock_policy(), LockPolicy::Block);
    }
}
