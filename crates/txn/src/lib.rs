//! Multi-stage transactions (§4 of the Croesus paper).
//!
//! A multi-stage transaction has two sections: an **initial** section,
//! triggered by the fast edge model's labels, and a **final** section,
//! triggered when the accurate cloud model's labels arrive. If the initial
//! section commits, the final section *must* commit — that guarantee is the
//! crux of the model, and the two safety levels differ in how they pay for
//! it:
//!
//! * **MS-SR** ([`ms_sr`]) mimics serializability: a transaction's two
//!   sections appear back-to-back in the serial order. The Two-Stage 2PL
//!   protocol (Algorithm 1) achieves this by acquiring the *final* section's
//!   locks before initial commit and holding everything until final commit —
//!   which means locks are held across the edge→cloud round trip.
//! * **MS-IA** ([`ms_ia`]) adapts invariant confluence and apologies:
//!   initial sections commit and release their locks immediately
//!   (apply-then-check); the final section later reconciles errors, issuing
//!   [`apology`] retractions — cascading if needed — while invariants
//!   ([`invariant`]) bound what must be undone.
//!
//! Supporting machinery: a [`model`] for sections/read-write sets, a
//! [`history`] recorder with checkers for the MS-SR/MS-IA ordering
//! conditions, protocol [`stats`], a single-threaded [`sequencer`] that
//! orders conflicting transactions into non-overlapping waves (the paper's
//! 0%-abort MS-IA configuration), and [`tpc`] two-phase commit for
//! multi-partition transactions (§4.5).

pub mod apology;
pub mod history;
pub mod invariant;
pub mod model;
pub mod ms_ia;
pub mod ms_sr;
pub mod sequencer;
pub mod staged;
pub mod stats;
pub mod tpc;

pub use apology::{Apology, ApologyManager, RetractionReport};
pub use history::{HistoryChecker, HistoryRecorder, SectionEvent, SectionKind};
pub use invariant::{
    merge_decision, FnInvariant, Invariant, InvariantViolation, MergeOutcome, NonNegativeInvariant,
};
pub use model::{RwSet, SectionCtx, SectionOutput, TxnError};
pub use ms_ia::{FinalCtx, MsIaExecutor, PendingFinal};
pub use ms_sr::TsplExecutor;
pub use sequencer::Sequencer;
pub use staged::{StageToken, StagedExecutor};
pub use stats::{ProtocolStats, StatsSnapshot};
pub use tpc::{Coordinator, Participant, PartitionParticipant, TpcOutcome, Vote};
