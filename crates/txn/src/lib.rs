//! Multi-stage transactions (§4 of the Croesus paper).
//!
//! A multi-stage transaction has m ≥ 2 sections: an **initial** section,
//! triggered by the fast edge model's labels, and a **final** section,
//! triggered when the accurate cloud model's labels arrive (plus optional
//! intermediate stages, §3.5). If the initial section commits, the final
//! section *must* commit — that guarantee is the crux of the model, and the
//! consistency protocols differ in how they pay for it.
//!
//! All protocols implement one trait, [`MultiStageProtocol`], over shared
//! [`ExecutorCore`] state, so any driver can run any protocol through
//! `&dyn MultiStageProtocol`:
//!
//! * **MS-SR** ([`ms_sr`], [`ProtocolKind::MsSr`]) mimics serializability:
//!   a transaction's sections appear back-to-back in the serial order. The
//!   Two-Stage 2PL protocol (Algorithm 1) achieves this by acquiring the
//!   *later* stages' locks before initial commit and holding everything
//!   until final commit — which means locks are held across the edge→cloud
//!   round trip.
//! * **MS-IA** ([`ms_ia`], [`ProtocolKind::MsIa`]) adapts invariant
//!   confluence and apologies: every stage commits and releases its locks
//!   immediately (apply-then-check); the final section later reconciles
//!   errors, issuing [`apology`] retractions — cascading if needed — while
//!   invariants ([`invariant`]) bound what must be undone.
//! * **Staged** ([`staged`], [`ProtocolKind::Staged`]) generalizes the
//!   MS-IA discipline to m stages, keeping every stage's footprint
//!   retractable.
//!
//! ```
//! use std::sync::Arc;
//! use croesus_store::{KvStore, LockManager, LockPolicy, TxnId};
//! use croesus_txn::{ExecutorCore, MultiStageProtocolExt, ProtocolKind, RwSet};
//!
//! for kind in ProtocolKind::ALL {
//!     let protocol = kind.build(ExecutorCore::new(
//!         Arc::new(KvStore::new()),
//!         Arc::new(LockManager::new(kind.default_lock_policy())),
//!     ));
//!     let rw = RwSet::new().write("x");
//!     let handle = protocol.begin(TxnId(1), &[rw.clone(), rw.clone()]);
//!     let (_, next) = protocol.stage(handle, &rw, |ctx| ctx.write("x", 1)).unwrap();
//!     protocol.stage(next.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();
//!     assert_eq!(protocol.stats().snapshot().commits, 1);
//! }
//! ```
//!
//! Supporting machinery: a [`model`] for sections/read-write sets, a
//! [`history`] recorder with checkers for the MS-SR/MS-IA ordering
//! conditions, protocol [`stats`], a single-threaded [`sequencer`] that
//! orders conflicting transactions into non-overlapping waves (the paper's
//! 0%-abort MS-IA configuration), and [`tpc`] two-phase commit for
//! multi-partition transactions (§4.5).
//!
//! Durability: attach a `croesus_wal::Wal` via [`ExecutorCore::with_wal`]
//! and every protocol logs its stages through the same hook — commit
//! points at every stage for the releasing protocols, at final commit
//! only for MS-SR. After a crash, [`recovery`] replays the log and feeds
//! initially-committed-but-unfinalized transactions through
//! [`ApologyManager::retract`], so restarts keep the §4.4 contract.

pub mod apology;
pub mod history;
pub mod invariant;
pub mod model;
pub mod ms_ia;
pub mod ms_sr;
pub mod protocol;
pub mod recovery;
#[cfg(feature = "mcheck")]
pub(crate) use croesus_store::sched;
#[cfg(not(feature = "mcheck"))]
pub(crate) mod sched {
    //! No-op stand-ins for the model-checker hooks (`mcheck` feature off).
    #[inline(always)]
    pub fn active() -> bool {
        false
    }
    #[inline(always)]
    pub fn yield_point(_label: &'static str) {}
    #[inline(always)]
    pub fn block_point(_label: &'static str) {}
    #[inline(always)]
    pub fn progress(_label: &'static str) {}
}
pub mod runtime;
pub mod sequencer;
pub mod staged;
pub mod stats;
pub mod tpc;

pub use apology::{Apology, ApologyManager, RetractionReport};
pub use history::{HistoryChecker, HistoryRecorder, SectionEvent, SectionKind};
pub use invariant::{
    merge_decision, FnInvariant, Invariant, InvariantViolation, MergeOutcome, NonNegativeInvariant,
};
pub use model::{RwSet, SectionCtx, SectionOutput, TxnError};
pub use ms_ia::MsIaExecutor;
pub use ms_sr::TsplExecutor;
pub use protocol::{
    ExecutorCore, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind, StageBody, StageCtx,
    StageOutcome, TxnHandle,
};
pub use recovery::{recover_edge, recover_edge_file, RecoveredEdge};
pub use runtime::{current_worker, JobQueue, WorkerPool};
pub use sequencer::Sequencer;
pub use staged::StagedExecutor;
pub use stats::{ProtocolStats, StatsSnapshot};
pub use tpc::{Coordinator, Participant, PartitionParticipant, RetryPolicy, TpcOutcome, Vote};
