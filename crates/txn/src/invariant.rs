//! Application invariants and merge outcomes for MS-IA.
//!
//! §4.4: "the final section \[acts\] as the merge function that attempts to
//! reconcile application-level invariants instead of all potential
//! inconsistencies ... (1) retract the minimum amount of erroneous actions
//! and their effects using apologies, and (2) retain as much state as
//! possible using invariant-preserving merge functions."
//!
//! An [`Invariant`] is a predicate over the store; a final section checks
//! the invariants that matter to its application and decides, per effect,
//! whether it can be *retained* (merged) or must be *retracted*.

use std::fmt;

use croesus_store::{Key, KvStore};

/// A violated invariant.
#[derive(Clone, Debug, PartialEq)]
pub struct InvariantViolation {
    /// The invariant's name.
    pub invariant: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant '{}' violated: {}",
            self.invariant, self.detail
        )
    }
}

impl std::error::Error for InvariantViolation {}

/// An application-level invariant over the database state.
pub trait Invariant: Send + Sync {
    /// Name for diagnostics and apologies.
    fn name(&self) -> &str;

    /// Check the invariant against the store.
    fn check(&self, store: &KvStore) -> Result<(), InvariantViolation>;
}

/// The paper's token-game invariant: "no player should have less than 0
/// tokens" — every integer value under the watched keys must be
/// non-negative.
pub struct NonNegativeInvariant {
    name: String,
    keys: Vec<Key>,
}

impl NonNegativeInvariant {
    /// Watch an explicit set of keys.
    pub fn over(keys: impl IntoIterator<Item = Key>) -> Self {
        NonNegativeInvariant {
            name: "non-negative".to_string(),
            keys: keys.into_iter().collect(),
        }
    }

    /// The watched keys.
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }
}

impl Invariant for NonNegativeInvariant {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, store: &KvStore) -> Result<(), InvariantViolation> {
        for key in &self.keys {
            if let Some(v) = store.get(key) {
                if let Some(i) = v.as_int() {
                    if i < 0 {
                        return Err(InvariantViolation {
                            invariant: self.name.clone(),
                            detail: format!("{key} = {i} < 0"),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// An invariant defined by a closure — handy for application-specific
/// conditions ("the reservation must name a detected building").
pub struct FnInvariant<F> {
    name: String,
    f: F,
}

impl<F> FnInvariant<F>
where
    F: Fn(&KvStore) -> Result<(), String> + Send + Sync,
{
    /// Wrap a closure as an invariant.
    pub fn new(name: &str, f: F) -> Self {
        FnInvariant {
            name: name.to_string(),
            f,
        }
    }
}

impl<F> Invariant for FnInvariant<F>
where
    F: Fn(&KvStore) -> Result<(), String> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, store: &KvStore) -> Result<(), InvariantViolation> {
        (self.f)(store).map_err(|detail| InvariantViolation {
            invariant: self.name.clone(),
            detail,
        })
    }
}

/// What a final section decided about one guessed effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeOutcome {
    /// The effect preserves the invariants and is retained as-is.
    Retain,
    /// The effect cannot be merged and must be retracted (with apology).
    Retract,
}

/// Check all invariants; the merge decision is [`MergeOutcome::Retain`]
/// only when every invariant passes.
pub fn merge_decision(
    invariants: &[&dyn Invariant],
    store: &KvStore,
) -> (MergeOutcome, Vec<InvariantViolation>) {
    let violations: Vec<InvariantViolation> = invariants
        .iter()
        .filter_map(|inv| inv.check(store).err())
        .collect();
    if violations.is_empty() {
        (MergeOutcome::Retain, violations)
    } else {
        (MergeOutcome::Retract, violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::Value;

    #[test]
    fn non_negative_passes_on_positive_balances() {
        let s = KvStore::new();
        s.put("A".into(), Value::Int(50));
        s.put("B".into(), Value::Int(0));
        let inv = NonNegativeInvariant::over(["A".into(), "B".into()]);
        assert!(inv.check(&s).is_ok());
    }

    #[test]
    fn non_negative_fails_on_debt() {
        let s = KvStore::new();
        s.put("A".into(), Value::Int(-10));
        let inv = NonNegativeInvariant::over(["A".into()]);
        let err = inv.check(&s).unwrap_err();
        assert!(err.detail.contains("-10"));
        assert_eq!(err.invariant, "non-negative");
    }

    #[test]
    fn non_negative_ignores_missing_and_non_int() {
        let s = KvStore::new();
        s.put("note".into(), Value::Str("hello".into()));
        let inv = NonNegativeInvariant::over(["note".into(), "absent".into()]);
        assert!(inv.check(&s).is_ok());
    }

    #[test]
    fn fn_invariant_wraps_closures() {
        let s = KvStore::new();
        s.put("count".into(), Value::Int(3));
        let inv = FnInvariant::new("count-under-10", |store: &KvStore| {
            let c = store
                .get(&"count".into())
                .and_then(|v| v.as_int())
                .unwrap_or(0);
            if c < 10 {
                Ok(())
            } else {
                Err(format!("count {c} >= 10"))
            }
        });
        assert!(inv.check(&s).is_ok());
        s.put("count".into(), Value::Int(11));
        assert!(inv.check(&s).is_err());
    }

    #[test]
    fn merge_decision_retains_when_all_pass() {
        let s = KvStore::new();
        s.put("A".into(), Value::Int(5));
        let inv = NonNegativeInvariant::over(["A".into()]);
        let (outcome, violations) = merge_decision(&[&inv], &s);
        assert_eq!(outcome, MergeOutcome::Retain);
        assert!(violations.is_empty());
    }

    #[test]
    fn merge_decision_retracts_on_any_violation() {
        let s = KvStore::new();
        s.put("A".into(), Value::Int(5));
        s.put("B".into(), Value::Int(-1));
        let ok = NonNegativeInvariant::over(["A".into()]);
        let bad = NonNegativeInvariant::over(["B".into()]);
        let (outcome, violations) = merge_decision(&[&ok, &bad], &s);
        assert_eq!(outcome, MergeOutcome::Retract);
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn violation_display() {
        let v = InvariantViolation {
            invariant: "x".into(),
            detail: "boom".into(),
        };
        assert!(v.to_string().contains("boom"));
    }
}
