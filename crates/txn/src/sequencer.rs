//! The batch sequencer.
//!
//! §5.2.4: "our implementation uses a single-threaded sequencer to order
//! transactions in batches so that conflicting transactions do not overlap.
//! This is possible as the transactions do not have to hold locks for
//! prolonged durations." This is how the paper's MS-IA configuration gets a
//! 0% abort rate in Figure 6(b).
//!
//! [`Sequencer::waves`] partitions a batch into *waves*: within a wave no
//! two transactions conflict, so a wave may run with full concurrency (or
//! under a lock manager with zero conflicts); waves execute in order.

use crate::model::RwSet;
use crate::runtime::WorkerPool;

/// Orders batches of transactions by their declared read/write sets.
///
/// ```
/// use croesus_txn::{RwSet, Sequencer};
/// let batch = vec![
///     RwSet::new().write("x"),   // 0
///     RwSet::new().write("x"),   // 1: conflicts with 0
///     RwSet::new().write("y"),   // 2: independent
/// ];
/// let waves = Sequencer::waves(&batch);
/// assert_eq!(waves, vec![vec![0, 2], vec![1]]);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Sequencer;

impl Sequencer {
    /// Partition batch indices into conflict-free waves (greedy first-fit).
    ///
    /// Properties:
    /// * every index appears in exactly one wave;
    /// * no two transactions in the same wave conflict;
    /// * conflicting transactions land in waves ordered by batch position
    ///   (the earlier transaction's wave comes first), preserving the
    ///   batch's intent order.
    pub fn waves(rwsets: &[RwSet]) -> Vec<Vec<usize>> {
        let mut waves: Vec<Vec<usize>> = Vec::new();
        for (i, rw) in rwsets.iter().enumerate() {
            // First-fit: a transaction may only be placed in wave w if it
            // conflicts with nothing in w AND with nothing in any *later*
            // wave — otherwise it would run before a conflicting
            // transaction that precedes it in the batch.
            let mut placed = false;
            for w in (0..waves.len()).rev() {
                let conflicts_here = waves[w].iter().any(|&j| rwsets[j].conflicts_with(rw));
                if conflicts_here {
                    // Must go in a wave strictly after w.
                    if w + 1 < waves.len() {
                        waves[w + 1].push(i);
                    } else {
                        waves.push(vec![i]);
                    }
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Conflicts with no earlier transaction: join the first wave.
                match waves.first_mut() {
                    Some(w0) => w0.push(i),
                    None => waves.push(vec![i]),
                }
            }
        }
        waves
    }

    /// Execute a batch through a runner, wave by wave. The runner receives
    /// the batch index of each transaction; within a wave the runner may
    /// parallelize freely — this helper calls it sequentially, which is
    /// behaviourally equivalent because waves are conflict-free.
    ///
    /// Error semantics (deterministic by construction, so the parallel
    /// runner in [`Sequencer::run_batch_on`] can promise the same thing):
    /// every transaction in the failing wave still runs — a wave's entries
    /// are independent, and under parallel execution they would all be in
    /// flight anyway — and the error reported is the one at the **lowest
    /// batch index**. Waves after a failed wave do not run.
    pub fn run_batch<E>(
        rwsets: &[RwSet],
        mut run: impl FnMut(usize) -> Result<(), E>,
    ) -> Result<(), E> {
        for wave in Self::waves(rwsets) {
            let results: Vec<(usize, Result<(), E>)> =
                wave.into_iter().map(|idx| (idx, run(idx))).collect();
            Self::first_wave_error(results)?;
        }
        Ok(())
    }

    /// Execute a batch wave-by-wave on a [`WorkerPool`], with the same
    /// deterministic error semantics as [`Sequencer::run_batch`]: the whole
    /// wave completes, the lowest-batch-index error wins, later waves are
    /// skipped. Waves are a barrier — wave *w + 1* never starts until every
    /// job of wave *w* has finished.
    pub fn run_batch_on<E>(
        pool: &WorkerPool,
        rwsets: &[RwSet],
        run: impl Fn(usize) -> Result<(), E> + Send + Sync + 'static,
    ) -> Result<(), E>
    where
        E: Send + 'static,
    {
        let run = std::sync::Arc::new(run);
        for wave in Self::waves(rwsets) {
            let results = pool.run_wave(
                wave.iter()
                    .map(|&idx| {
                        let run = std::sync::Arc::clone(&run);
                        move || (idx, run(idx))
                    })
                    .collect(),
            );
            Self::first_wave_error(results)?;
        }
        Ok(())
    }

    /// Deterministic failure selection: the error at the lowest batch
    /// index, if any entry of the wave failed.
    fn first_wave_error<E>(results: Vec<(usize, Result<(), E>)>) -> Result<(), E> {
        let mut first: Option<(usize, E)> = None;
        for (idx, r) in results {
            if let Err(e) = r {
                if first.as_ref().is_none_or(|(lowest, _)| idx < *lowest) {
                    first = Some((idx, e));
                }
            }
        }
        match first {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rw(reads: &[&str], writes: &[&str]) -> RwSet {
        let mut s = RwSet::new();
        for r in reads {
            s = s.read(*r);
        }
        for w in writes {
            s = s.write(*w);
        }
        s
    }

    fn assert_valid_waves(rwsets: &[RwSet], waves: &[Vec<usize>]) {
        // Every index exactly once.
        let mut seen: Vec<usize> = waves.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..rwsets.len()).collect::<Vec<_>>());
        // No conflicts within a wave.
        for wave in waves {
            for (a_pos, &a) in wave.iter().enumerate() {
                for &b in &wave[a_pos + 1..] {
                    assert!(
                        !rwsets[a].conflicts_with(&rwsets[b]),
                        "txns {a} and {b} conflict within a wave"
                    );
                }
            }
        }
        // Conflicting pairs: earlier batch index in an earlier-or-equal wave
        // (equal impossible by the above), ordered consistently.
        let wave_of = |i: usize| waves.iter().position(|w| w.contains(&i)).unwrap();
        for a in 0..rwsets.len() {
            for b in a + 1..rwsets.len() {
                if rwsets[a].conflicts_with(&rwsets[b]) {
                    assert!(
                        wave_of(a) < wave_of(b),
                        "conflicting {a} (wave {}) must precede {b} (wave {})",
                        wave_of(a),
                        wave_of(b)
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_transactions_share_one_wave() {
        let sets = vec![rw(&[], &["a"]), rw(&[], &["b"]), rw(&[], &["c"])];
        let waves = Sequencer::waves(&sets);
        assert_eq!(waves.len(), 1);
        assert_valid_waves(&sets, &waves);
    }

    #[test]
    fn identical_writers_serialize_into_separate_waves() {
        let sets = vec![rw(&[], &["hot"]); 4];
        let waves = Sequencer::waves(&sets);
        assert_eq!(waves.len(), 4);
        assert_valid_waves(&sets, &waves);
    }

    #[test]
    fn readers_share_a_wave() {
        let sets = vec![rw(&["x"], &[]), rw(&["x"], &[]), rw(&["x"], &[])];
        let waves = Sequencer::waves(&sets);
        assert_eq!(waves.len(), 1);
        assert_valid_waves(&sets, &waves);
    }

    #[test]
    fn mixed_batch_preserves_order_of_conflicts() {
        let sets = vec![
            rw(&[], &["a"]),    // 0
            rw(&["a"], &["b"]), // 1: conflicts with 0
            rw(&[], &["c"]),    // 2: independent
            rw(&["b"], &[]),    // 3: conflicts with 1
            rw(&[], &["a"]),    // 4: conflicts with 0 and 1
        ];
        let waves = Sequencer::waves(&sets);
        assert_valid_waves(&sets, &waves);
    }

    #[test]
    fn empty_batch_yields_no_waves() {
        assert!(Sequencer::waves(&[]).is_empty());
    }

    #[test]
    fn run_batch_executes_all_in_wave_order() {
        let sets = vec![rw(&[], &["a"]), rw(&[], &["a"]), rw(&[], &["b"])];
        let mut ran: Vec<usize> = Vec::new();
        Sequencer::run_batch::<()>(&sets, |i| {
            ran.push(i);
            Ok(())
        })
        .unwrap();
        assert_eq!(ran.len(), 3);
        // 0 must run before 1 (conflict); 2 is free.
        let pos = |x: usize| ran.iter().position(|&i| i == x).unwrap();
        assert!(pos(0) < pos(1));
    }

    #[test]
    fn run_batch_propagates_errors() {
        let sets = vec![rw(&[], &["a"]), rw(&[], &["a"])];
        let r = Sequencer::run_batch(&sets, |i| if i == 1 { Err("boom") } else { Ok(()) });
        assert_eq!(r, Err("boom"));
    }

    /// Satellite regression: two failures injected into ONE wave must
    /// resolve deterministically to the lowest batch index — and the whole
    /// wave still runs (a parallel runner would have every entry in flight
    /// anyway), while waves after the failed one do not.
    #[test]
    fn two_failures_in_one_wave_report_the_lowest_batch_index() {
        // 0..4 are disjoint (one wave); 5 conflicts with 0 (second wave).
        let sets = vec![
            rw(&[], &["a"]),
            rw(&[], &["b"]),
            rw(&[], &["c"]),
            rw(&[], &["d"]),
            rw(&[], &["e"]),
            rw(&[], &["a"]),
        ];
        assert_eq!(Sequencer::waves(&sets).len(), 2);
        let mut ran: Vec<usize> = Vec::new();
        let r = Sequencer::run_batch(&sets, |i| {
            ran.push(i);
            // Failures at indices 3 and 1 of the same wave: 1 must win.
            if i == 3 || i == 1 {
                Err(format!("failed at {i}"))
            } else {
                Ok(())
            }
        });
        assert_eq!(r, Err("failed at 1".to_string()));
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1, 2, 3, 4], "wave completes, wave 2 skipped");
    }

    /// The pooled runner keeps the same deterministic error contract even
    /// though wave entries genuinely race across worker threads.
    #[test]
    fn pooled_run_batch_is_deterministic_about_failures() {
        let sets: Vec<RwSet> = (0..8).map(|i| rw(&[], &[&format!("k{i}")])).collect();
        let pool = WorkerPool::new(4);
        for _ in 0..25 {
            let r = Sequencer::run_batch_on(&pool, &sets, |i| {
                if i % 2 == 1 {
                    // Odd indices all fail; 1 is the lowest.
                    std::thread::yield_now();
                    Err(i)
                } else {
                    Ok(())
                }
            });
            assert_eq!(r, Err(1));
        }
    }

    #[test]
    fn pooled_run_batch_matches_sequential_on_success() {
        let sets = vec![
            rw(&[], &["a"]),
            rw(&["a"], &["b"]),
            rw(&[], &["c"]),
            rw(&["b"], &[]),
        ];
        let pool = WorkerPool::new(3);
        let ran = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let ran2 = std::sync::Arc::clone(&ran);
        Sequencer::run_batch_on::<()>(&pool, &sets, move |i| {
            ran2.lock().unwrap().push(i);
            Ok(())
        })
        .unwrap();
        let ran = ran.lock().unwrap();
        assert_eq!(ran.len(), 4);
        let pos = |x: usize| ran.iter().position(|&i| i == x).unwrap();
        // Conflict order is preserved across waves.
        assert!(pos(0) < pos(1));
        assert!(pos(1) < pos(3));
    }

    #[test]
    fn large_random_batches_always_valid() {
        use croesus_sim::DetRng;
        let mut rng = DetRng::new(42);
        for trial in 0..20 {
            let n = 5 + rng.index(30);
            let sets: Vec<RwSet> = (0..n)
                .map(|_| {
                    let mut s = RwSet::new();
                    for _ in 0..(1 + rng.index(3)) {
                        let key = format!("k{}", rng.index(8));
                        if rng.bernoulli(0.5) {
                            s = s.write(key.as_str());
                        } else {
                            s = s.read(key.as_str());
                        }
                    }
                    s
                })
                .collect();
            let waves = Sequencer::waves(&sets);
            assert_valid_waves(&sets, &waves);
            let _ = trial;
        }
    }
}
