//! The multi-stage transaction model: sections, read/write sets, section
//! execution contexts and errors.
//!
//! §4.1: "every transaction comprises of two distinct sections: the initial
//! section and the final section. Each section consists of read and write
//! operations in addition to control operations to begin and commit each
//! section."

use std::fmt;

use croesus_store::{Key, KvStore, LockError, LockMode, UndoLog, Value};

use crate::history::{HistoryRecorder, SectionKind};
use croesus_store::TxnId;

/// The declared read/write set of one section.
///
/// TSPL needs the final section's (potential) read/write set *before*
/// initial commit — "the system can infer what data will be accessed (or
/// potentially accessed) in the final section" (§4.3 discussion) — so
/// sections declare their sets up front.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RwSet {
    /// Keys the section may read.
    pub reads: Vec<Key>,
    /// Keys the section may write.
    pub writes: Vec<Key>,
}

impl RwSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        RwSet::default()
    }

    /// Builder: add a read key.
    #[must_use]
    pub fn read(mut self, key: impl Into<Key>) -> Self {
        self.reads.push(key.into());
        self
    }

    /// Builder: add a write key.
    #[must_use]
    pub fn write(mut self, key: impl Into<Key>) -> Self {
        self.writes.push(key.into());
        self
    }

    /// All keys with the lock mode each needs: writes exclusively, reads
    /// shared (a key both read and written needs exclusive only).
    pub fn lock_pairs(&self) -> Vec<(Key, LockMode)> {
        let mut pairs: Vec<(Key, LockMode)> = self
            .writes
            .iter()
            .map(|k| (k.clone(), LockMode::Exclusive))
            .collect();
        for k in &self.reads {
            if !self.writes.contains(k) {
                pairs.push((k.clone(), LockMode::Shared));
            }
        }
        // Dedup (a key may be listed twice).
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs.dedup_by(|a, b| {
            if a.0 == b.0 {
                // Keep the stronger mode in `b` (the retained element).
                if a.1 == LockMode::Exclusive {
                    b.1 = LockMode::Exclusive;
                }
                true
            } else {
                false
            }
        });
        pairs
    }

    /// All keys (reads ∪ writes), deduplicated.
    pub fn keys(&self) -> Vec<Key> {
        self.lock_pairs().into_iter().map(|(k, _)| k).collect()
    }

    /// Whether two sets conflict: at least one shared key where one side
    /// writes. (§4.1: "two transactions are conflicting if there is at
    /// least one conflicting operation in either of the sections".)
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        let hits = |mine: &[Key], theirs: &[Key]| mine.iter().any(|k| theirs.contains(k));
        hits(&self.writes, &other.writes)
            || hits(&self.writes, &other.reads)
            || hits(&self.reads, &other.writes)
    }

    /// Union of two sets.
    #[must_use]
    pub fn union(&self, other: &RwSet) -> RwSet {
        let mut out = self.clone();
        out.reads.extend(other.reads.iter().cloned());
        out.writes.extend(other.writes.iter().cloned());
        out
    }
}

/// Errors from executing a transaction section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnError {
    /// A lock could not be acquired; the transaction aborted before its
    /// initial commit. (After initial commit, aborts are impossible by
    /// construction — see the protocol modules.)
    Aborted(LockError),
    /// A section accessed a key outside its declared read/write set.
    UndeclaredAccess(String),
    /// An application invariant failed and no merge was possible.
    Invariant(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Aborted(e) => write!(f, "transaction aborted: {e}"),
            TxnError::UndeclaredAccess(k) => write!(f, "access outside declared rw-set: {k}"),
            TxnError::Invariant(m) => write!(f, "invariant violation: {m}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// What a section produced: the response sent to the client (§3.3.2 sends
/// initial-section responses and final-section responses/apologies back).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SectionOutput {
    /// Application-level response values.
    pub response: Vec<Value>,
}

impl SectionOutput {
    /// An empty output.
    #[must_use]
    pub fn new() -> Self {
        SectionOutput::default()
    }

    /// Output with a single response value.
    #[must_use]
    pub fn respond(value: impl Into<Value>) -> Self {
        SectionOutput {
            response: vec![value.into()],
        }
    }
}

/// The execution context handed to section bodies.
///
/// Reads and writes go through the context so that (1) every access is
/// checked against the declared read/write set — the locks only cover
/// declared keys, (2) writes are undo-logged — MS-IA retraction needs
/// pre-images, and (3) the operation stream is recorded in the history for
/// the safety checkers.
pub struct SectionCtx<'a> {
    txn: TxnId,
    kind: SectionKind,
    store: &'a KvStore,
    declared: &'a RwSet,
    undo: &'a mut UndoLog,
    history: Option<&'a HistoryRecorder>,
}

impl<'a> SectionCtx<'a> {
    /// Build a context (used by the protocol executors).
    pub(crate) fn new(
        txn: TxnId,
        kind: SectionKind,
        store: &'a KvStore,
        declared: &'a RwSet,
        undo: &'a mut UndoLog,
        history: Option<&'a HistoryRecorder>,
    ) -> Self {
        SectionCtx {
            txn,
            kind,
            store,
            declared,
            undo,
            history,
        }
    }

    /// This transaction's id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Which section is executing.
    pub fn section(&self) -> SectionKind {
        self.kind
    }

    /// Read a key. Errors if the key was not declared as a read or write.
    /// Returns a shared handle to the stored value — a refcount bump, not
    /// a deep clone.
    pub fn read(&mut self, key: impl Into<Key>) -> Result<Option<std::sync::Arc<Value>>, TxnError> {
        let key = key.into();
        if !self.declared.reads.contains(&key) && !self.declared.writes.contains(&key) {
            return Err(TxnError::UndeclaredAccess(key.to_string()));
        }
        if let Some(h) = self.history {
            h.record_read(self.txn, self.kind, &key);
        }
        Ok(self.store.get(&key))
    }

    /// Write a key. Errors if the key was not declared as a write.
    pub fn write(&mut self, key: impl Into<Key>, value: impl Into<Value>) -> Result<(), TxnError> {
        let key = key.into();
        if !self.declared.writes.contains(&key) {
            return Err(TxnError::UndeclaredAccess(key.to_string()));
        }
        if let Some(h) = self.history {
            h.record_write(self.txn, self.kind, &key);
        }
        self.undo.put(self.store, key, value.into());
        Ok(())
    }

    /// Delete a key. Errors if the key was not declared as a write.
    pub fn delete(&mut self, key: impl Into<Key>) -> Result<(), TxnError> {
        let key = key.into();
        if !self.declared.writes.contains(&key) {
            return Err(TxnError::UndeclaredAccess(key.to_string()));
        }
        if let Some(h) = self.history {
            h.record_write(self.txn, self.kind, &key);
        }
        self.undo.delete(self.store, &key);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::new(s)
    }

    #[test]
    fn rwset_builder_and_lock_pairs() {
        let rw = RwSet::new().read("a").write("b").read("b");
        let pairs = rw.lock_pairs();
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(&(key("a"), LockMode::Shared)));
        assert!(pairs.contains(&(key("b"), LockMode::Exclusive)));
    }

    #[test]
    fn duplicate_keys_keep_strongest_mode() {
        let rw = RwSet::new().read("a").write("a").read("a");
        let pairs = rw.lock_pairs();
        assert_eq!(pairs, vec![(key("a"), LockMode::Exclusive)]);
        assert_eq!(rw.keys(), vec![key("a")]);
    }

    #[test]
    fn conflict_detection() {
        let a = RwSet::new().read("x").write("y");
        let b = RwSet::new().read("y");
        let c = RwSet::new().read("x");
        let d = RwSet::new().write("x");
        assert!(a.conflicts_with(&b), "write-read conflict");
        assert!(!a.conflicts_with(&c), "read-read is no conflict");
        assert!(a.conflicts_with(&d), "read-write conflict");
        assert!(d.conflicts_with(&d.clone()), "write-write conflict");
    }

    #[test]
    fn union_merges() {
        let a = RwSet::new().read("x");
        let b = RwSet::new().write("y");
        let u = a.union(&b);
        assert_eq!(u.reads, vec![key("x")]);
        assert_eq!(u.writes, vec![key("y")]);
    }

    #[test]
    fn ctx_enforces_declared_reads() {
        let store = KvStore::new();
        let declared = RwSet::new().read("a");
        let mut undo = UndoLog::new();
        let mut ctx = SectionCtx::new(
            TxnId(1),
            SectionKind::Initial,
            &store,
            &declared,
            &mut undo,
            None,
        );
        assert!(ctx.read("a").is_ok());
        assert!(matches!(
            ctx.read("other"),
            Err(TxnError::UndeclaredAccess(_))
        ));
    }

    #[test]
    fn ctx_enforces_declared_writes() {
        let store = KvStore::new();
        let declared = RwSet::new().read("a").write("w");
        let mut undo = UndoLog::new();
        let mut ctx = SectionCtx::new(
            TxnId(1),
            SectionKind::Initial,
            &store,
            &declared,
            &mut undo,
            None,
        );
        assert!(ctx.write("w", 1).is_ok());
        // Reads do not authorize writes.
        assert!(matches!(
            ctx.write("a", 1),
            Err(TxnError::UndeclaredAccess(_))
        ));
        assert!(matches!(
            ctx.delete("a"),
            Err(TxnError::UndeclaredAccess(_))
        ));
    }

    #[test]
    fn writes_are_undo_logged() {
        let store = KvStore::new();
        store.put("w".into(), Value::Int(1));
        let declared = RwSet::new().write("w");
        let mut undo = UndoLog::new();
        {
            let mut ctx = SectionCtx::new(
                TxnId(1),
                SectionKind::Initial,
                &store,
                &declared,
                &mut undo,
                None,
            );
            ctx.write("w", 2).unwrap();
        }
        assert_eq!(store.get(&"w".into()).as_deref(), Some(&Value::Int(2)));
        undo.rollback(&store);
        assert_eq!(store.get(&"w".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    fn a_write_declared_key_can_be_read() {
        let store = KvStore::new();
        store.put("w".into(), Value::Int(7));
        let declared = RwSet::new().write("w");
        let mut undo = UndoLog::new();
        let mut ctx = SectionCtx::new(
            TxnId(1),
            SectionKind::Final,
            &store,
            &declared,
            &mut undo,
            None,
        );
        assert_eq!(ctx.read("w").unwrap().as_deref(), Some(&Value::Int(7)));
        assert_eq!(ctx.section(), SectionKind::Final);
        assert_eq!(ctx.txn(), TxnId(1));
    }

    #[test]
    fn section_output_helpers() {
        assert!(SectionOutput::new().response.is_empty());
        assert_eq!(SectionOutput::respond(5).response, vec![Value::Int(5)]);
    }

    #[test]
    fn txn_error_display() {
        let e = TxnError::Aborted(LockError::Die);
        assert!(e.to_string().contains("abort"));
        assert!(TxnError::UndeclaredAccess("k".to_string())
            .to_string()
            .contains("rw-set"));
    }
}
