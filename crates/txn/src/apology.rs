//! Apologies and cascading retraction — the machinery behind MS-IA (§4.4).
//!
//! MS-IA flips invariant confluence "from a pattern of check-then-apply to
//! a pattern of apply-then-check": initial sections commit optimistically;
//! when the final section discovers a wrong trigger or input it may
//! *retract* the initial section's effects. Because other transactions may
//! already have read those effects, retraction cascades: "an apology
//! procedure in the final section could retract the effects of t₁ and any
//! other transactions that depended on it".
//!
//! [`ApologyManager`] records, per initially-committed transaction, its
//! read/write footprint and its undo log, and computes the transitive
//! dependent set when asked to retract. Every retracted transaction yields
//! an [`Apology`] that the application can render to affected users ("e.g.,
//! a message is sent to both B and C, with a free game item").

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use croesus_store::{Key, KvStore, TxnId, UndoLog, Value};

/// An apology owed to users affected by a retraction.
#[derive(Clone, Debug, PartialEq)]
pub struct Apology {
    /// The retracted transaction.
    pub txn: TxnId,
    /// Why the retraction happened.
    pub reason: String,
}

impl fmt::Display for Apology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "apology for {}: {}", self.txn, self.reason)
    }
}

/// The `(key, restored value)` pairs one entry's rollback applied, in
/// rollback order; `None` deletes the key.
pub type EntryRestores = Vec<(Key, Option<Arc<Value>>)>;

/// The result of one retraction request.
#[derive(Clone, Debug, Default)]
pub struct RetractionReport {
    /// All transactions retracted, in the (reverse-commit) order their
    /// effects were undone. The requested transaction is last.
    pub retracted: Vec<TxnId>,
    /// Apologies generated, one per retracted transaction.
    pub apologies: Vec<Apology>,
    /// The store restores performed, one element per rolled-back entry in
    /// rollback order, tagged with the owning transaction. The write-ahead
    /// log serializes these so replay repeats the exact mutations instead
    /// of re-deriving the cascade.
    pub restores: Vec<(TxnId, EntryRestores)>,
}

impl RetractionReport {
    /// Number of transactions retracted beyond the requested one.
    pub fn cascade_size(&self) -> usize {
        self.retracted.len().saturating_sub(1)
    }
}

struct Entry {
    txn: TxnId,
    seq: u64,
    reads: Vec<Key>,
    writes: Vec<Key>,
    undo: UndoLog,
    retracted: bool,
}

/// Tracks initially-committed transactions for possible retraction.
#[derive(Default)]
pub struct ApologyManager {
    inner: Mutex<ManagerInner>,
}

#[derive(Default)]
struct ManagerInner {
    entries: Vec<Entry>,
    next_seq: u64,
    apologies: Vec<Apology>,
}

impl ApologyManager {
    /// A fresh manager.
    pub fn new() -> Self {
        ApologyManager::default()
    }

    /// Register an initial section at its commit: its footprint and undo
    /// log. Returns the commit sequence number.
    pub fn register(&self, txn: TxnId, reads: Vec<Key>, writes: Vec<Key>, undo: UndoLog) -> u64 {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(Entry {
            txn,
            seq,
            reads,
            writes,
            undo,
            retracted: false,
        });
        seq
    }

    /// Whether `txn` is registered and not yet retracted.
    pub fn is_live(&self, txn: TxnId) -> bool {
        self.inner
            .lock()
            .entries
            .iter()
            .any(|e| e.txn == txn && !e.retracted)
    }

    /// Retract `txn`: undo its initial-section effects and those of every
    /// later transaction that (transitively) read or overwrote its writes.
    /// Rollbacks run in reverse commit order so pre-images layer correctly.
    ///
    /// The caller is responsible for isolation (the paper's implementation
    /// runs retraction inside a sequenced final section, so no concurrent
    /// conflicting transaction is in flight).
    pub fn retract(&self, txn: TxnId, store: &KvStore, reason: &str) -> RetractionReport {
        let mut inner = self.inner.lock();

        // Every live entry of `txn` is a root: the staged discipline (and
        // m-stage MS-IA) registers one entry per stage, and stages with
        // disjoint footprints would otherwise survive their own
        // transaction's retraction.
        let roots: Vec<usize> = inner
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.txn == txn && !e.retracted)
            .map(|(i, _)| i)
            .collect();
        if roots.is_empty() {
            return RetractionReport::default();
        }

        // Transitive dependents: entry B depends on entry A (A.seq < B.seq)
        // when B read or wrote a key A wrote.
        let mut affected: HashSet<usize> = HashSet::new();
        affected.extend(roots);
        loop {
            let mut grew = false;
            for i in 0..inner.entries.len() {
                if affected.contains(&i) || inner.entries[i].retracted {
                    continue;
                }
                let later = &inner.entries[i];
                let depends = affected.iter().any(|&a| {
                    let base = &inner.entries[a];
                    base.seq < later.seq
                        && base
                            .writes
                            .iter()
                            .any(|w| later.reads.contains(w) || later.writes.contains(w))
                });
                if depends {
                    affected.insert(i);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        // Undo in reverse commit order.
        let mut order: Vec<usize> = affected.into_iter().collect();
        order.sort_by_key(|&i| std::cmp::Reverse(inner.entries[i].seq));

        let mut report = RetractionReport::default();
        for i in order {
            let entry = &mut inner.entries[i];
            entry.retracted = true;
            let undo = std::mem::take(&mut entry.undo);
            // Rollback restores pre-images in reverse record order.
            report.restores.push((
                entry.txn,
                undo.records()
                    .iter()
                    .rev()
                    .map(|r| (r.key.clone(), r.previous.clone()))
                    .collect(),
            ));
            undo.rollback(store);
            let why = if entry.txn == txn {
                reason.to_string()
            } else {
                format!("cascading retraction (depended on {txn}): {reason}")
            };
            report.retracted.push(entry.txn);
            report.apologies.push(Apology {
                txn: entry.txn,
                reason: why,
            });
        }
        inner.apologies.extend(report.apologies.iter().cloned());
        report
    }

    /// Mark a transaction fully finalized and drop its undo data when no
    /// later live transaction depends on it. Returns true if pruned.
    ///
    /// (A finalized transaction can still be *cascade*-retracted while a
    /// dependent's final section is outstanding, so pruning is safe only
    /// when nothing depends on it — the common case once a frame's whole
    /// transaction set is settled.)
    pub fn prune_finalized(&self, txn: TxnId) -> bool {
        let mut inner = self.inner.lock();
        let Some(idx) = inner.entries.iter().position(|e| e.txn == txn) else {
            return false;
        };
        let seq = inner.entries[idx].seq;
        let writes = inner.entries[idx].writes.clone();
        let has_dependent = inner.entries.iter().any(|later| {
            later.seq > seq
                && !later.retracted
                && writes
                    .iter()
                    .any(|w| later.reads.contains(w) || later.writes.contains(w))
        });
        if has_dependent {
            return false;
        }
        inner.entries.remove(idx);
        true
    }

    /// Drop every tracked entry — live, retracted and finalized alike —
    /// keeping issued apologies and the sequence counter. Returns how many
    /// entries were dropped.
    ///
    /// Only safe at **quiescence**: with no transaction mid-flight there
    /// is no retraction root left, and any *future* retraction can only
    /// start from a transaction registered after this point — its cascade
    /// flows forward in sequence order and never reaches the dropped
    /// entries. The pipeline calls this between frames (see
    /// `EdgeNode::settle`), which is what keeps the manager bounded over
    /// arbitrarily long runs.
    pub fn settle_all(&self) -> usize {
        let mut inner = self.inner.lock();
        let dropped = inner.entries.len();
        inner.entries.clear();
        dropped
    }

    /// Number of entries currently tracked (live **or** retracted) — the
    /// quantity [`settle_all`](Self::settle_all) keeps bounded.
    pub fn tracked_count(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// All apologies issued so far.
    pub fn apologies(&self) -> Vec<Apology> {
        self.inner.lock().apologies.clone()
    }

    /// Number of live (registered, unretracted) entries.
    pub fn live_count(&self) -> usize {
        self.inner
            .lock()
            .entries
            .iter()
            .filter(|e| !e.retracted)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::Value;

    /// Perform `writes` through an undo log and register the txn.
    fn run_initial(
        mgr: &ApologyManager,
        store: &KvStore,
        txn: TxnId,
        reads: &[&str],
        writes: &[(&str, i64)],
    ) {
        let mut undo = UndoLog::new();
        for (k, v) in writes {
            undo.put(store, Key::new(k), Value::Int(*v));
        }
        mgr.register(
            txn,
            reads.iter().map(|k| Key::new(k)).collect(),
            writes.iter().map(|(k, _)| Key::new(k)).collect(),
            undo,
        );
    }

    #[test]
    fn retract_single_transaction() {
        let store = KvStore::new();
        store.put("a".into(), Value::Int(1));
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 99)]);
        assert_eq!(store.get(&"a".into()).as_deref(), Some(&Value::Int(99)));
        let report = mgr.retract(TxnId(1), &store, "wrong label");
        assert_eq!(store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
        assert_eq!(report.retracted, vec![TxnId(1)]);
        assert_eq!(report.cascade_size(), 0);
        assert!(report.apologies[0].reason.contains("wrong label"));
    }

    #[test]
    fn retraction_cascades_to_readers() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        // t1 writes b; t2 reads b and writes c.
        run_initial(&mgr, &store, TxnId(1), &[], &[("b", 10)]);
        run_initial(&mgr, &store, TxnId(2), &["b"], &[("c", 20)]);
        let report = mgr.retract(TxnId(1), &store, "bad input");
        assert_eq!(report.retracted, vec![TxnId(2), TxnId(1)], "reverse order");
        assert!(!store.contains(&"b".into()));
        assert!(!store.contains(&"c".into()));
        assert_eq!(report.cascade_size(), 1);
    }

    #[test]
    fn cascade_is_transitive() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 1)]);
        run_initial(&mgr, &store, TxnId(2), &["a"], &[("b", 2)]);
        run_initial(&mgr, &store, TxnId(3), &["b"], &[("c", 3)]);
        let report = mgr.retract(TxnId(1), &store, "cascade");
        assert_eq!(report.retracted, vec![TxnId(3), TxnId(2), TxnId(1)]);
        for key in ["a", "b", "c"] {
            assert!(!store.contains(&key.into()));
        }
    }

    #[test]
    fn independent_transactions_survive() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 1)]);
        run_initial(&mgr, &store, TxnId(2), &[], &[("z", 2)]);
        let report = mgr.retract(TxnId(1), &store, "only t1");
        assert_eq!(report.retracted, vec![TxnId(1)]);
        assert_eq!(store.get(&"z".into()).as_deref(), Some(&Value::Int(2)));
        assert!(mgr.is_live(TxnId(2)));
        assert!(!mgr.is_live(TxnId(1)));
    }

    #[test]
    fn paper_token_game_example() {
        // §4.4: A=50, B=10, C=0, D=0. t1: A→B 50. t2: B→C 10. t3: B→C 50.
        // The final section of t1 discovers the recipient should have been
        // D. Full cascade retracts t2 and t3 as well (the MS-IA *merge*
        // refinement that keeps t2 is exercised in the invariant module).
        let store = KvStore::new();
        for (k, v) in [("A", 50i64), ("B", 10), ("C", 0), ("D", 0)] {
            store.put(k.into(), Value::Int(v));
        }
        let mgr = ApologyManager::new();
        let transfer = |mgr: &ApologyManager, id: u64, from: &str, to: &str, amt: i64| {
            let mut undo = UndoLog::new();
            let f = store.get(&from.into()).unwrap().as_int().unwrap();
            let t = store.get(&to.into()).unwrap().as_int().unwrap();
            undo.put(&store, from.into(), Value::Int(f - amt));
            undo.put(&store, to.into(), Value::Int(t + amt));
            mgr.register(
                TxnId(id),
                vec![from.into(), to.into()],
                vec![from.into(), to.into()],
                undo,
            );
        };
        transfer(&mgr, 1, "A", "B", 50);
        transfer(&mgr, 2, "B", "C", 10);
        transfer(&mgr, 3, "B", "C", 50);
        // State now: A=0, B=0, C=60.
        assert_eq!(store.get(&"C".into()).as_deref(), Some(&Value::Int(60)));
        let report = mgr.retract(TxnId(1), &store, "recipient was D, not B");
        assert_eq!(report.retracted, vec![TxnId(3), TxnId(2), TxnId(1)]);
        // Everything rolled back to the start.
        assert_eq!(store.get(&"A".into()).as_deref(), Some(&Value::Int(50)));
        assert_eq!(store.get(&"B".into()).as_deref(), Some(&Value::Int(10)));
        assert_eq!(store.get(&"C".into()).as_deref(), Some(&Value::Int(0)));
        assert_eq!(mgr.apologies().len(), 3);
    }

    #[test]
    fn retract_unknown_txn_is_empty_report() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        let report = mgr.retract(TxnId(404), &store, "ghost");
        assert!(report.retracted.is_empty());
        assert!(report.apologies.is_empty());
    }

    #[test]
    fn double_retract_is_idempotent() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 1)]);
        let first = mgr.retract(TxnId(1), &store, "once");
        assert_eq!(first.retracted.len(), 1);
        let second = mgr.retract(TxnId(1), &store, "twice");
        assert!(second.retracted.is_empty());
    }

    #[test]
    fn prune_finalized_respects_dependents() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 1)]);
        run_initial(&mgr, &store, TxnId(2), &["a"], &[("b", 2)]);
        assert!(!mgr.prune_finalized(TxnId(1)), "t2 depends on t1");
        assert!(mgr.prune_finalized(TxnId(2)), "nothing depends on t2");
        assert!(mgr.prune_finalized(TxnId(1)), "now t1 is free");
        assert_eq!(mgr.live_count(), 0);
    }

    #[test]
    fn settle_all_drops_entries_but_keeps_apologies_and_seq() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 1)]);
        run_initial(&mgr, &store, TxnId(2), &["a"], &[("b", 2)]);
        mgr.retract(TxnId(1), &store, "pre-settle");
        assert_eq!(mgr.tracked_count(), 2, "retracted entries linger");
        assert_eq!(mgr.settle_all(), 2);
        assert_eq!(mgr.tracked_count(), 0);
        assert_eq!(mgr.apologies().len(), 2, "history of apologies survives");
        // The sequence counter keeps counting: a post-settle registration
        // orders after everything that ever existed.
        let mut undo = UndoLog::new();
        undo.put(&store, Key::new("c"), Value::Int(3));
        let seq = mgr.register(TxnId(3), vec![], vec![Key::new("c")], undo);
        assert_eq!(seq, 2);
    }

    #[test]
    fn later_unrelated_writer_not_cascaded() {
        let store = KvStore::new();
        let mgr = ApologyManager::new();
        run_initial(&mgr, &store, TxnId(1), &[], &[("a", 1)]);
        run_initial(&mgr, &store, TxnId(2), &["q"], &[("r", 7)]);
        let report = mgr.retract(TxnId(1), &store, "x");
        assert_eq!(report.retracted, vec![TxnId(1)]);
        assert_eq!(store.get(&"r".into()).as_deref(), Some(&Value::Int(7)));
    }
}
