//! The generalized m-stage transaction executor (§3.5).
//!
//! "In a general multi-stage model, there are m stages s₀, …, s_{m−1}. …
//! A transaction consists of m sections, each one (tᵢ) corresponding to a
//! stage (sᵢ)." Sections run in stage order; each acquires its declared
//! locks, executes, commits, and releases — the MS-IA discipline extended
//! to m sections. If thresholding stops the frame at stage i, "the sequence
//! stops and the remaining transaction sections are performed" — the caller
//! simply runs the remaining stages back-to-back.
//!
//! Stage progression is enforced by the type system: each committed stage
//! returns a [`TxnHandle`] for the next one inside its
//! [`StageOutcome`], and handles are not clonable.
//!
//! The difference from [`MsIaExecutor`](crate::MsIaExecutor): *every*
//! stage — including the last — registers its footprint with the apology
//! manager, so any stage of a committed transaction remains a retractable
//! guess until the application confirms it.

use croesus_store::TxnId;

use crate::model::{RwSet, TxnError};
use crate::protocol::{
    ExecutorCore, MultiStageProtocol, ProtocolKind, StageBody, StageOutcome, TxnHandle,
};

/// Executor for m-stage transactions.
pub struct StagedExecutor {
    core: ExecutorCore,
}

impl StagedExecutor {
    /// A staged executor over shared core state.
    #[must_use]
    pub fn from_core(core: ExecutorCore) -> Self {
        StagedExecutor { core }
    }
}

impl MultiStageProtocol for StagedExecutor {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Staged
    }

    fn core(&self) -> &ExecutorCore {
        &self.core
    }

    fn begin(&self, txn: TxnId, stages: &[RwSet]) -> TxnHandle {
        self.core.note_begin(txn, stages.len());
        TxnHandle::first(txn, stages.len())
    }

    /// Run one stage: lock its read/write set, execute, commit, release.
    /// Like MS-IA, only the *first* stage may abort; later stages retry
    /// lock acquisition until granted — once the initial stage commits,
    /// every later stage must too.
    fn run_stage(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
    ) -> Result<StageOutcome, TxnError> {
        self.core.run_released_stage(handle, rw, body, true)
    }

    fn abort(&self, handle: TxnHandle) {
        self.core.abort_handle(&handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{HistoryRecorder, SectionKind};
    use crate::protocol::MultiStageProtocolExt;
    use croesus_store::{KvStore, LockManager, LockPolicy, Value};
    use std::sync::Arc;

    fn executor() -> StagedExecutor {
        StagedExecutor::from_core(
            ExecutorCore::new(
                Arc::new(KvStore::new()),
                Arc::new(LockManager::new(LockPolicy::Block)),
            )
            .with_history(HistoryRecorder::new()),
        )
    }

    #[test]
    fn three_stage_transaction_commits_in_order() {
        let ex = executor();
        let rw = RwSet::new().write("x");
        let t = ex.begin(TxnId(1), &[rw.clone(), rw.clone(), rw.clone()]);
        let (_, t) = ex.stage(t, &rw, |ctx| ctx.write("x", 0)).unwrap();
        let (_, t) = ex.stage(t.unwrap(), &rw, |ctx| ctx.write("x", 1)).unwrap();
        let (_, done) = ex.stage(t.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();
        assert!(done.is_none());
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
        let checker = ex.history().unwrap().checker();
        checker.check_stage_order().unwrap();
        checker.check_ms_ia(&[]).unwrap();
        assert_eq!(ex.stats().snapshot().commits, 1);
    }

    #[test]
    fn handle_kinds_map_to_sections() {
        let ex = executor();
        let empty = [RwSet::new(), RwSet::new(), RwSet::new(), RwSet::new()];
        let t = ex.begin(TxnId(1), &empty);
        assert_eq!(t.section_kind(), SectionKind::Initial);
        assert_eq!(t.stage(), 0);
        assert!(!t.is_final());
        let (_, t) = ex.stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let t = t.unwrap();
        assert_eq!(t.section_kind(), SectionKind::Intermediate(0));
        let (_, t) = ex.stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let t = t.unwrap();
        assert_eq!(t.section_kind(), SectionKind::Intermediate(1));
        let (_, t) = ex.stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let t = t.unwrap();
        assert_eq!(t.section_kind(), SectionKind::Final);
        assert!(t.is_final());
    }

    #[test]
    fn two_stages_behave_like_initial_final() {
        let ex = executor();
        let t = ex.begin(TxnId(9), &[RwSet::new(), RwSet::new()]);
        let (_, t) = ex.stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let (_, done) = ex.stage(t.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
        assert!(done.is_none());
        ex.history().unwrap().checker().check_ms_ia(&[]).unwrap();
    }

    #[test]
    fn first_stage_failure_aborts_cleanly() {
        let ex = executor();
        let rw = RwSet::new().write("x");
        let t = ex.begin(TxnId(1), &[rw.clone(), rw.clone(), rw.clone()]);
        let r = ex.stage(t, &rw, |ctx| {
            ctx.write("x", 1)?;
            Err::<(), _>(TxnError::Invariant("bad trigger".into()))
        });
        assert!(r.is_err());
        assert!(!ex.store().contains(&"x".into()));
        assert_eq!(ex.stats().snapshot().aborts, 1);
    }

    #[test]
    fn locks_released_between_stages() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex =
            StagedExecutor::from_core(ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks)));
        let rw = RwSet::new().write("x");
        let t = ex.begin(TxnId(1), &[rw.clone(), rw.clone(), rw.clone()]);
        let (_, _t) = ex.stage(t, &rw, |ctx| ctx.write("x", 1)).unwrap();
        // Another transaction can lock x between stages.
        assert!(locks
            .lock(TxnId(2), &"x".into(), croesus_store::LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn intermediate_guesses_are_retractable() {
        let ex = executor();
        let rw = RwSet::new().write("guess");
        let t = ex.begin(TxnId(1), &[rw.clone(), rw.clone(), rw.clone()]);
        let (_, t) = ex.stage(t, &rw, |ctx| ctx.write("guess", 1)).unwrap();
        let _ = t;
        let report = ex
            .apologies()
            .retract(TxnId(1), ex.store(), "stage-0 was wrong");
        assert_eq!(report.retracted.len(), 1);
        assert!(!ex.store().contains(&"guess".into()));
    }

    #[test]
    fn final_stage_footprint_stays_retractable() {
        // The staged discipline registers *every* stage — unlike MS-IA,
        // whose final section is the reconciliation itself.
        let ex = executor();
        let rw = RwSet::new().write("g");
        let t = ex.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let (_, t) = ex.stage(t, &rw, |ctx| ctx.write("g", 1)).unwrap();
        ex.stage(t.unwrap(), &rw, |ctx| ctx.write("g", 2)).unwrap();
        let report = ex.apologies().retract(TxnId(1), ex.store(), "all wrong");
        // Both stages' entries roll back, in reverse commit order.
        assert!(!report.retracted.is_empty());
        assert!(report.retracted.iter().all(|t| *t == TxnId(1)));
        assert!(!ex.store().contains(&"g".into()));
    }

    #[test]
    fn retraction_covers_disjoint_stage_footprints() {
        // Each stage registers its own entry; retracting the transaction
        // must roll back *all* of them even when the footprints share no
        // keys (no cascade path between the entries).
        let ex = executor();
        let s0 = RwSet::new().write("a");
        let s1 = RwSet::new().write("b");
        let t = ex.begin(TxnId(1), &[s0.clone(), s1.clone()]);
        let (_, t) = ex.stage(t, &s0, |ctx| ctx.write("a", 1)).unwrap();
        ex.stage(t.unwrap(), &s1, |ctx| ctx.write("b", 2)).unwrap();
        let report = ex.apologies().retract(TxnId(1), ex.store(), "all wrong");
        assert_eq!(report.retracted.len(), 2, "both stage entries retract");
        assert!(!ex.store().contains(&"a".into()));
        assert!(!ex.store().contains(&"b".into()));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_stage_panics() {
        executor().begin(TxnId(1), &[RwSet::new()]);
    }
}
