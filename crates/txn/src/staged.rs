//! The generalized m-stage transaction executor (§3.5).
//!
//! "In a general multi-stage model, there are m stages s₀, …, s_{m−1}. …
//! A transaction consists of m sections, each one (tᵢ) corresponding to a
//! stage (sᵢ)." Sections run in stage order; each acquires its declared
//! locks, executes, commits, and releases — the MS-IA discipline extended
//! to m sections. If thresholding stops the frame at stage i, "the sequence
//! stops and the remaining transaction sections are performed" — the caller
//! simply runs the remaining sections back-to-back.
//!
//! Stage progression is enforced by the type system: each committed stage
//! returns a [`StageToken`] for the next one, and tokens are not clonable.

use std::sync::Arc;

use croesus_store::{KvStore, LockManager, TxnId, UndoLog};

use crate::apology::ApologyManager;
use crate::history::{HistoryRecorder, SectionKind};
use crate::model::{RwSet, SectionCtx, TxnError};
use crate::stats::ProtocolStats;

/// Permission to run stage `index` of transaction `txn`.
#[derive(Debug)]
pub struct StageToken {
    txn: TxnId,
    index: usize,
    total: usize,
}

impl StageToken {
    /// The transaction this token belongs to.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The stage this token authorizes (0-based).
    pub fn stage(&self) -> usize {
        self.index
    }

    /// Total stages in the transaction.
    pub fn total_stages(&self) -> usize {
        self.total
    }

    /// Whether this token authorizes the final stage.
    pub fn is_final(&self) -> bool {
        self.index + 1 == self.total
    }

    fn kind(&self) -> SectionKind {
        if self.index == 0 {
            SectionKind::Initial
        } else if self.is_final() {
            SectionKind::Final
        } else {
            SectionKind::Intermediate(
                u16::try_from(self.index - 1).expect("more than 65k stages is absurd"),
            )
        }
    }
}

/// Executor for m-stage transactions.
pub struct StagedExecutor {
    store: Arc<KvStore>,
    locks: Arc<LockManager>,
    history: Option<HistoryRecorder>,
    stats: Arc<ProtocolStats>,
    apologies: Arc<ApologyManager>,
}

impl StagedExecutor {
    /// Create an executor over a store and lock manager.
    pub fn new(store: Arc<KvStore>, locks: Arc<LockManager>) -> Self {
        StagedExecutor {
            store,
            locks,
            history: None,
            stats: Arc::new(ProtocolStats::new()),
            apologies: Arc::new(ApologyManager::new()),
        }
    }

    /// Attach a history recorder.
    pub fn with_history(mut self, history: HistoryRecorder) -> Self {
        self.history = Some(history);
        self
    }

    /// The statistics collector.
    pub fn stats(&self) -> &Arc<ProtocolStats> {
        &self.stats
    }

    /// The apology manager.
    pub fn apologies(&self) -> &Arc<ApologyManager> {
        &self.apologies
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// Begin an m-stage transaction. Panics unless `stages >= 2` — one
    /// stage is a plain transaction, and the paper's model starts at two.
    pub fn begin(&self, txn: TxnId, stages: usize) -> StageToken {
        assert!(
            stages >= 2,
            "a multi-stage transaction needs at least 2 stages"
        );
        StageToken {
            txn,
            index: 0,
            total: stages,
        }
    }

    /// Run one stage: lock its read/write set, execute, commit, release.
    ///
    /// Returns the stage result plus the token for the next stage (`None`
    /// after the final stage). Like MS-IA, only the *first* stage may
    /// abort; later stages retry lock acquisition until granted — once the
    /// initial stage commits, every later stage must too.
    pub fn run_stage<T>(
        &self,
        token: StageToken,
        rw: &RwSet,
        body: impl FnOnce(&mut SectionCtx) -> Result<T, TxnError>,
    ) -> Result<(T, Option<StageToken>), TxnError> {
        let kind = token.kind();
        let pairs = rw.lock_pairs();
        if token.index == 0 {
            if let Err(e) = self.locks.acquire_all(token.txn, &pairs, None) {
                if let Some(h) = &self.history {
                    h.record_abort(token.txn);
                }
                self.stats.record_abort();
                return Err(TxnError::Aborted(e));
            }
        } else {
            // Committed earlier stages oblige us to finish: retry.
            while self.locks.acquire_all(token.txn, &pairs, None).is_err() {
                std::thread::yield_now();
            }
        }

        if let Some(h) = &self.history {
            h.record_begin(token.txn, kind);
        }
        let mut undo = UndoLog::new();
        let out = {
            let mut ctx = SectionCtx::new(
                token.txn,
                kind,
                &self.store,
                rw,
                &mut undo,
                self.history.as_ref(),
            );
            body(&mut ctx)
        };
        let out = match out {
            Ok(v) => v,
            Err(e) if token.index == 0 => {
                undo.rollback(&self.store);
                self.locks
                    .release_all(token.txn, pairs.iter().map(|(k, _)| k));
                if let Some(h) = &self.history {
                    h.record_abort(token.txn);
                }
                self.stats.record_abort();
                return Err(e);
            }
            Err(e) => panic!(
                "stage {} of {} failed after earlier stages committed — \
                 the multi-stage guarantee forbids this: {e}",
                token.index, token.txn
            ),
        };

        if let Some(h) = &self.history {
            h.record_commit(token.txn, kind);
        }
        // Every stage is a retractable guess until the transaction's last
        // stage confirms it; register the footprint like MS-IA does.
        self.apologies
            .register(token.txn, rw.reads.clone(), rw.writes.clone(), undo);
        self.locks
            .release_all(token.txn, pairs.iter().map(|(k, _)| k));

        let next = if token.is_final() {
            self.stats.record_commit();
            None
        } else {
            Some(StageToken {
                txn: token.txn,
                index: token.index + 1,
                total: token.total,
            })
        };
        Ok((out, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::{LockPolicy, Value};

    fn executor() -> StagedExecutor {
        StagedExecutor::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::Block)),
        )
        .with_history(HistoryRecorder::new())
    }

    #[test]
    fn three_stage_transaction_commits_in_order() {
        let ex = executor();
        let t = ex.begin(TxnId(1), 3);
        let rw = RwSet::new().write("x");
        let (_, t) = ex
            .run_stage(t, &rw, |ctx| {
                ctx.write("x", 0)?;
                Ok(())
            })
            .unwrap();
        let (_, t) = ex
            .run_stage(t.unwrap(), &rw, |ctx| {
                ctx.write("x", 1)?;
                Ok(())
            })
            .unwrap();
        let (_, done) = ex
            .run_stage(t.unwrap(), &rw, |ctx| {
                ctx.write("x", 2)?;
                Ok(())
            })
            .unwrap();
        assert!(done.is_none());
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
        let checker = ex.history.as_ref().unwrap().checker();
        checker.check_stage_order().unwrap();
        checker.check_ms_ia(&[]).unwrap();
        assert_eq!(ex.stats().snapshot().commits, 1);
    }

    #[test]
    fn token_kinds_map_to_sections() {
        let ex = executor();
        let t = ex.begin(TxnId(1), 4);
        assert_eq!(t.kind(), SectionKind::Initial);
        assert_eq!(t.stage(), 0);
        assert!(!t.is_final());
        let (_, t) = ex.run_stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let t = t.unwrap();
        assert_eq!(t.kind(), SectionKind::Intermediate(0));
        let (_, t) = ex.run_stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let t = t.unwrap();
        assert_eq!(t.kind(), SectionKind::Intermediate(1));
        let (_, t) = ex.run_stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let t = t.unwrap();
        assert_eq!(t.kind(), SectionKind::Final);
        assert!(t.is_final());
    }

    #[test]
    fn two_stages_behave_like_initial_final() {
        let ex = executor();
        let t = ex.begin(TxnId(9), 2);
        let (_, t) = ex.run_stage(t, &RwSet::new(), |_| Ok(())).unwrap();
        let (_, done) = ex.run_stage(t.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
        assert!(done.is_none());
        ex.history
            .as_ref()
            .unwrap()
            .checker()
            .check_ms_ia(&[])
            .unwrap();
    }

    #[test]
    fn first_stage_failure_aborts_cleanly() {
        let ex = executor();
        let t = ex.begin(TxnId(1), 3);
        let rw = RwSet::new().write("x");
        let r = ex.run_stage(t, &rw, |ctx| {
            ctx.write("x", 1)?;
            Err::<(), _>(TxnError::Invariant("bad trigger".into()))
        });
        assert!(r.is_err());
        assert!(!ex.store().contains(&"x".into()));
        assert_eq!(ex.stats().snapshot().aborts, 1);
    }

    #[test]
    fn locks_released_between_stages() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = StagedExecutor::new(Arc::clone(&store), Arc::clone(&locks));
        let rw = RwSet::new().write("x");
        let t = ex.begin(TxnId(1), 3);
        let (_, _t) = ex
            .run_stage(t, &rw, |ctx| {
                ctx.write("x", 1)?;
                Ok(())
            })
            .unwrap();
        // Another transaction can lock x between stages.
        assert!(locks
            .lock(TxnId(2), &"x".into(), croesus_store::LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn intermediate_guesses_are_retractable() {
        let ex = executor();
        let t = ex.begin(TxnId(1), 3);
        let rw = RwSet::new().write("guess");
        let (_, t) = ex
            .run_stage(t, &rw, |ctx| {
                ctx.write("guess", 1)?;
                Ok(())
            })
            .unwrap();
        let _ = t;
        let report = ex
            .apologies()
            .retract(TxnId(1), ex.store(), "stage-0 was wrong");
        assert_eq!(report.retracted.len(), 1);
        assert!(!ex.store().contains(&"guess".into()));
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn single_stage_panics() {
        executor().begin(TxnId(1), 1);
    }
}
