//! Apology-aware crash recovery (§4.4 semantics applied to restarts).
//!
//! `croesus_wal::recover` rebuilds the committed store and reports the
//! transactions whose **initial** commit survived but whose **final**
//! commit did not. Replaying them forward is impossible — their
//! final-section inputs (the cloud labels in flight at the crash) are
//! gone — and silently keeping their effects would expose guesses nobody
//! will ever validate. The multi-stage answer is the same one a live
//! final section gives a wrong guess: *retract the effects, cascade to
//! dependents, apologize to the affected users*.
//!
//! [`recover_edge`] is that glue: replay the log, re-register every live
//! footprint with a fresh [`ApologyManager`], then feed each unfinalized
//! transaction through [`ApologyManager::retract`]. The result carries
//! the store, the populated manager (apologies included, ready to render
//! to clients) and the retraction reports, and can be turned into a
//! working [`ExecutorCore`] to resume service.
//!
//! ```
//! use croesus_store::{LockManager, LockPolicy, TxnId, Value};
//! use croesus_wal::{StageFlags, StageRecord, Wal, WalConfig, WriteImage};
//! use croesus_txn::recovery::recover_edge;
//! use std::sync::Arc;
//!
//! // A log whose only transaction initially committed and then crashed.
//! let (wal, probe) = Wal::in_memory(WalConfig::strict());
//! wal.append_stage(StageRecord {
//!     txn: TxnId(1),
//!     stage: 0,
//!     total: 2,
//!     flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::REGISTER),
//!     reads: vec![],
//!     writes: vec!["guess".into()],
//!     images: vec![WriteImage { key: "guess".into(), pre: None, post: Some(Arc::new(Value::Int(1))) }],
//! }).unwrap();
//!
//! let recovered = recover_edge(&probe.durable());
//! assert!(!recovered.store.contains(&"guess".into()), "retracted");
//! assert_eq!(recovered.apologies.apologies().len(), 1, "and apologized for");
//! let core = recovered.into_core(Arc::new(LockManager::new(LockPolicy::Block)));
//! assert_eq!(core.store().len(), 0);
//! ```

use std::io;
use std::path::Path;
use std::sync::Arc;

use croesus_store::{KvStore, LockManager, TxnId, UndoLog};
use croesus_wal::{RecoveryReport, RecoveryState, RetractRecord, WalRecord};

use crate::apology::{ApologyManager, RetractionReport};
use crate::protocol::ExecutorCore;

/// A recovered edge: committed state, the rebuilt apology machinery, and
/// what recovery had to retract.
pub struct RecoveredEdge {
    /// The store as of the last durable commit point, with unfinalized
    /// transactions already retracted.
    pub store: Arc<KvStore>,
    /// The apology manager, re-registered from the log; holds the
    /// apologies issued for crash-retracted transactions.
    pub apologies: Arc<ApologyManager>,
    /// One report per unfinalized transaction retracted (cascades
    /// included). Transactions already swept up by an earlier cascade
    /// produce no separate report.
    pub retractions: Vec<RetractionReport>,
    /// The transactions recovery retracted and owes apologies for.
    pub unfinalized: Vec<TxnId>,
    /// 2PC coordinator decisions found in the log (see
    /// [`Coordinator::resolve_in_doubt`](crate::tpc::Coordinator::resolve_in_doubt)).
    pub tpc_decisions: Vec<(TxnId, bool)>,
    /// Whether the log ended in a torn/corrupt tail (discarded).
    pub torn_tail: bool,
    /// Valid frames replayed.
    pub frames: usize,
    /// One past the highest transaction id in the log — a replacement
    /// node continues assigning ids from here.
    pub next_txn: u64,
    /// The WAL replay state with the crash retractions already folded in —
    /// hand this (with [`store`](Self::store)) to `Wal::resume` so the new
    /// log continues exactly where recovery left the world.
    pub state: RecoveryState,
}

impl RecoveredEdge {
    /// Resume service: an [`ExecutorCore`] over the recovered store and
    /// apology state. Attach a fresh WAL via
    /// [`ExecutorCore::with_wal`] to log the new epoch.
    #[must_use]
    pub fn into_core(self, locks: Arc<LockManager>) -> ExecutorCore {
        ExecutorCore::new(self.store, locks).with_apologies(self.apologies)
    }

    /// Every apology the recovered edge owes its users.
    #[must_use]
    pub fn apologies_owed(&self) -> Vec<crate::apology::Apology> {
        self.apologies.apologies()
    }
}

/// Apology-aware recovery over raw log bytes (what the crash preserved).
#[must_use]
pub fn recover_edge(bytes: &[u8]) -> RecoveredEdge {
    apology_aware(croesus_wal::recover(bytes))
}

/// Apology-aware recovery from a log file. A missing file is a fresh
/// edge: empty store, nothing owed.
pub fn recover_edge_file(path: impl AsRef<Path>) -> io::Result<RecoveredEdge> {
    Ok(apology_aware(croesus_wal::recover_file(path)?))
}

/// The second half of recovery: take a raw replay report and make it
/// §4.4-consistent — re-register the surviving footprints, retract every
/// initially-committed-but-unfinalized transaction, collect apologies.
#[must_use]
pub fn apology_aware(report: RecoveryReport) -> RecoveredEdge {
    let RecoveryReport {
        store,
        entries,
        unfinalized,
        tpc_decisions,
        frames,
        torn_tail,
        next_txn,
        mut state,
        ..
    } = report;
    let store = Arc::new(store);
    let apologies = Arc::new(ApologyManager::new());
    // Registration order = log sequence order, so the manager's internal
    // sequence numbers reproduce the pre-crash cascade ordering.
    for entry in &entries {
        let mut undo = UndoLog::new();
        for (key, pre) in &entry.undo {
            undo.record(key.clone(), pre.clone());
        }
        apologies.register(entry.txn, entry.reads.clone(), entry.writes.clone(), undo);
    }
    let mut retractions = Vec::new();
    for txn in &unfinalized {
        let r = apologies.retract(
            *txn,
            &store,
            "crash recovery: initial commit survived, final commit did not",
        );
        // A transaction already swept up by a previous cascade yields an
        // empty (idempotent) report — don't record those.
        if !r.retracted.is_empty() {
            // Mirror the retraction into the replay state (the store was
            // already rolled back by the manager above), so a writer
            // resumed from this state checkpoints the post-recovery world.
            for (victim, restores) in &r.restores {
                state.apply(
                    &WalRecord::Retract(RetractRecord {
                        txn: *victim,
                        restores: restores.clone(),
                    }),
                    None,
                );
            }
            retractions.push(r);
        }
    }
    RecoveredEdge {
        store,
        apologies,
        retractions,
        unfinalized,
        tpc_decisions,
        torn_tail,
        frames,
        next_txn,
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RwSet;
    use crate::protocol::{MultiStageProtocolExt, ProtocolKind};
    use croesus_store::{LockPolicy, Value};
    use croesus_wal::{MemStorage, Wal, WalConfig};

    /// A protocol executor with a fresh in-memory WAL attached.
    fn durable_protocol(
        kind: ProtocolKind,
    ) -> (Box<dyn crate::protocol::MultiStageProtocol>, MemStorage) {
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        let core = ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::Block)),
        )
        .with_wal(Arc::new(wal));
        (kind.build(core), probe)
    }

    #[test]
    fn completed_txns_recover_with_nothing_owed() {
        for kind in ProtocolKind::ALL {
            let (p, probe) = durable_protocol(kind);
            let rw = RwSet::new().write("x");
            let h = p.begin(TxnId(1), &[rw.clone(), rw.clone()]);
            let (_, h) = p.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
            p.stage(h.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();

            let rec = recover_edge(&probe.durable());
            assert_eq!(
                rec.store.get(&"x".into()).as_deref(),
                Some(&Value::Int(2)),
                "{kind}"
            );
            assert!(rec.unfinalized.is_empty(), "{kind}");
            assert!(rec.retractions.is_empty(), "{kind}");
            assert!(rec.apologies_owed().is_empty(), "{kind}");
        }
    }

    #[test]
    fn ms_ia_initial_only_txn_is_retracted_with_apology() {
        let (p, probe) = durable_protocol(ProtocolKind::MsIa);
        let rw = RwSet::new().write("guess");
        let h = p.begin(TxnId(9), &[rw.clone(), rw.clone()]);
        let (_, _pending) = p.stage(h, &rw, |ctx| ctx.write("guess", 42)).unwrap();
        // Crash: the final stage never runs.

        let rec = recover_edge(&probe.durable());
        assert_eq!(rec.unfinalized, vec![TxnId(9)]);
        assert!(
            !rec.store.contains(&"guess".into()),
            "the unvalidated guess is retracted"
        );
        let owed = rec.apologies_owed();
        assert_eq!(owed.len(), 1);
        assert_eq!(owed[0].txn, TxnId(9));
        assert!(owed[0].reason.contains("crash recovery"));
    }

    #[test]
    fn crash_retraction_cascades_to_dependents() {
        let (p, probe) = durable_protocol(ProtocolKind::MsIa);
        // t1 guesses; t2 reads the guess, writes c, and fully finalizes.
        let rw1 = RwSet::new().write("b");
        let h1 = p.begin(TxnId(1), &[rw1.clone(), RwSet::new()]);
        let (_, _p1) = p.stage(h1, &rw1, |ctx| ctx.write("b", 50)).unwrap();
        let rw2 = RwSet::new().read("b").write("c");
        let h2 = p.begin(TxnId(2), &[rw2.clone(), RwSet::new()]);
        let (_, p2) = p
            .stage(h2, &rw2, |ctx| {
                let b = ctx.read("b")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("c", b)
            })
            .unwrap();
        p.stage(p2.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
        // Crash before t1's final stage.

        let rec = recover_edge(&probe.durable());
        assert_eq!(rec.unfinalized, vec![TxnId(1)]);
        assert_eq!(rec.retractions.len(), 1);
        assert_eq!(
            rec.retractions[0].retracted,
            vec![TxnId(2), TxnId(1)],
            "t2 read the doomed guess: cascade takes it too, despite its own final commit"
        );
        assert!(!rec.store.contains(&"b".into()));
        assert!(!rec.store.contains(&"c".into()));
        assert_eq!(rec.apologies_owed().len(), 2);
    }

    #[test]
    fn ms_sr_unfinalized_txn_vanishes_without_apology() {
        let (p, probe) = durable_protocol(ProtocolKind::MsSr);
        let rw = RwSet::new().write("held");
        let h = p.begin(TxnId(3), &[rw.clone(), rw.clone()]);
        let (_, _pending) = p.stage(h, &rw, |ctx| ctx.write("held", 5)).unwrap();
        // Crash while the locks were held across the cloud wait.

        let rec = recover_edge(&probe.durable());
        assert!(
            !rec.store.contains(&"held".into()),
            "MS-SR's locks hid the write; recovery un-happens the txn"
        );
        assert!(rec.unfinalized.is_empty(), "no commit point → no apology");
        assert!(rec.apologies_owed().is_empty());
    }

    #[test]
    fn live_retraction_replays_without_double_apology() {
        let (p, probe) = durable_protocol(ProtocolKind::MsIa);
        let store_live = Arc::clone(p.store());
        store_live.put("room".into(), Value::Str("free".into()));
        let rw = RwSet::new().write("room");
        let h = p.begin(TxnId(1), &[rw.clone(), RwSet::new()]);
        let (_, h) = p
            .stage(h, &rw, |ctx| ctx.write("room", "reserved"))
            .unwrap();
        p.stage(h.unwrap(), &RwSet::new(), |ctx| {
            Ok(ctx.retract_self("wrong building"))
        })
        .unwrap();

        let rec = recover_edge(&probe.durable());
        // Note the pre-existing value was written outside any transaction,
        // so replay starts from the logged pre-image.
        assert_eq!(
            rec.store.get(&"room".into()).as_deref(),
            Some(&Value::Str("free".into())),
            "the logged retraction replayed its restores"
        );
        assert!(
            rec.unfinalized.is_empty(),
            "an already-retracted txn owes nothing more"
        );
        assert!(rec.retractions.is_empty());
    }

    #[test]
    fn recovered_core_resumes_service() {
        let (p, probe) = durable_protocol(ProtocolKind::MsIa);
        let rw = RwSet::new().write("x");
        let h = p.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let (_, h) = p.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
        p.stage(h.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();

        let rec = recover_edge(&probe.durable());
        let core = rec.into_core(Arc::new(LockManager::new(LockPolicy::Block)));
        let p2 = ProtocolKind::MsIa.build(core);
        let rw2 = RwSet::new().read("x").write("y");
        let h = p2.begin(TxnId(100), &[rw2.clone(), rw2.clone()]);
        let (seen, h) = p2
            .stage(h, &rw2, |ctx| {
                let x = ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("y", x + 1)?;
                Ok(x)
            })
            .unwrap();
        assert_eq!(seen, 2, "recovered state is readable");
        p2.stage(h.unwrap(), &rw2, |_| Ok(())).unwrap();
        assert_eq!(p2.store().get(&"y".into()).as_deref(), Some(&Value::Int(3)));
    }
}
