//! MS-IA: Multi-Stage Invariant Confluence with Apologies — Algorithm 2.
//!
//! ```text
//! items ← get_rwsets(tᵢ)
//! if acquirelocks(items): execute(tᵢ)
//! Initial Commit
//! releaselocks(get_rwsets(tᵢ))          // ← locks released *here*
//! items ← get_rwsets(t_f)
//! if acquirelocks(items): execute(t_f) else abort
//! Final Commit
//! releaselocks(get_rwsets(t_f))
//! ```
//!
//! Unlike TSPL, "we did not hold the locks for the initial section until the
//! end of the final section and we reach the point of initial-commit
//! immediately after processing the initial section" (§4.4). The price is
//! that the final section must reconcile errors itself — it runs as a guess
//! → apology pair, with [`crate::apology::ApologyManager`] providing
//! retraction (via [`crate::StageCtx::retract_self`]) when the guess cannot
//! be merged.
//!
//! The executor is one implementation of
//! [`MultiStageProtocol`]; all the lock / undo /
//! history / stats plumbing lives in the shared
//! [`ExecutorCore`].
//!
//! ```
//! use std::sync::Arc;
//! use croesus_store::{KvStore, LockManager, LockPolicy, TxnId, Value};
//! use croesus_txn::{
//!     ExecutorCore, MsIaExecutor, MultiStageProtocol, MultiStageProtocolExt, RwSet,
//! };
//!
//! let ex = MsIaExecutor::from_core(ExecutorCore::new(
//!     Arc::new(KvStore::new()),
//!     Arc::new(LockManager::new(LockPolicy::Block)),
//! ));
//! let rw = RwSet::new().write("x");
//! // The guess: commits and releases its locks immediately.
//! let h = ex.begin(TxnId(1), &[rw.clone(), rw.clone()]);
//! let (_, h) = ex.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
//! // Later, when the cloud labels arrive, the final section reconciles.
//! ex.stage(h.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();
//! assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
//! ```

use croesus_store::TxnId;

use crate::model::{RwSet, TxnError};
use crate::protocol::{
    ExecutorCore, MultiStageProtocol, ProtocolKind, StageBody, StageOutcome, TxnHandle,
};

/// The MS-IA executor.
pub struct MsIaExecutor {
    core: ExecutorCore,
}

impl MsIaExecutor {
    /// An MS-IA executor over shared core state.
    #[must_use]
    pub fn from_core(core: ExecutorCore) -> Self {
        MsIaExecutor { core }
    }
}

impl MultiStageProtocol for MsIaExecutor {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::MsIa
    }

    fn core(&self) -> &ExecutorCore {
        &self.core
    }

    fn begin(&self, txn: TxnId, stages: &[RwSet]) -> TxnHandle {
        self.core.note_begin(txn, stages.len());
        TxnHandle::first(txn, stages.len())
    }

    /// Every stage acquires, executes, commits and releases immediately;
    /// non-final stages register their footprint as a retractable guess.
    /// Only stage 0 may abort — later stages retry lock acquisition until
    /// granted, because the initial commit promised a final commit.
    fn run_stage(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
    ) -> Result<StageOutcome, TxnError> {
        self.core.run_released_stage(handle, rw, body, false)
    }

    fn abort(&self, handle: TxnHandle) {
        self.core.abort_handle(&handle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryRecorder;
    use crate::protocol::MultiStageProtocolExt;
    use croesus_store::{KvStore, LockManager, LockPolicy, Value};
    use std::sync::Arc;
    use std::thread;

    fn executor(policy: LockPolicy) -> MsIaExecutor {
        MsIaExecutor::from_core(
            ExecutorCore::new(Arc::new(KvStore::new()), Arc::new(LockManager::new(policy)))
                .with_history(HistoryRecorder::new()),
        )
    }

    #[test]
    fn initial_then_final_commits() {
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        let h = ex.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let (_, h) = ex.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(1)));
        ex.stage(h.unwrap(), &rw, |ctx| ctx.write("x", 2)).unwrap();
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
        assert_eq!(ex.stats().snapshot().commits, 1);
    }

    #[test]
    fn initial_effects_visible_before_final() {
        // The key MS-IA behaviour: another transaction can read t1's
        // initial write before t1's final section runs.
        let ex = executor(LockPolicy::Block);
        let w = RwSet::new().write("shared");
        let r = RwSet::new().read("shared");
        let h1 = ex.begin(TxnId(1), &[w.clone(), RwSet::new()]);
        let (_, p1) = ex.stage(h1, &w, |ctx| ctx.write("shared", 10)).unwrap();
        let h2 = ex.begin(TxnId(2), &[r.clone(), RwSet::new()]);
        let (seen, p2) = ex
            .stage(h2, &r, |ctx| {
                Ok(ctx.read("shared")?.and_then(|v| v.as_int()))
            })
            .unwrap();
        assert_eq!(seen, Some(10), "t2 observed t1's initial effects");
        ex.stage(p1.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
        ex.stage(p2.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
    }

    #[test]
    fn locks_released_after_initial() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = MsIaExecutor::from_core(ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks)));
        let rw = RwSet::new().write("x");
        let h = ex.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let (_, _pending) = ex.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
        // Immediately lockable by someone else — unlike TSPL.
        assert!(locks
            .lock(TxnId(2), &"x".into(), croesus_store::LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn aborted_initial_rolls_back() {
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        let h = ex.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let r = ex.stage(h, &rw, |ctx| {
            ctx.write("x", 1)?;
            Err::<(), _>(TxnError::Invariant("bad trigger".into()))
        });
        assert!(r.is_err());
        assert_eq!(ex.store().get(&"x".into()), None);
        assert_eq!(ex.stats().snapshot().aborts, 1);
    }

    #[test]
    fn final_section_can_retract_self() {
        let ex = executor(LockPolicy::Block);
        let store = Arc::clone(ex.store());
        store.put("room".into(), Value::Str("free".into()));
        let rw = RwSet::new().write("room");
        let h = ex.begin(TxnId(1), &[rw.clone(), RwSet::new()]);
        let (_, h) = ex
            .stage(h, &rw, |ctx| ctx.write("room", "reserved-by-1"))
            .unwrap();
        let (report, _) = ex
            .stage(h.unwrap(), &RwSet::new(), |ctx| {
                Ok(ctx.retract_self("wrong building detected"))
            })
            .unwrap();
        assert_eq!(report.retracted, vec![TxnId(1)]);
        assert_eq!(
            store.get(&"room".into()).as_deref(),
            Some(&Value::Str("free".into()))
        );
        assert_eq!(ex.apologies().apologies().len(), 1);
    }

    #[test]
    fn retraction_cascades_across_transactions() {
        let ex = executor(LockPolicy::Block);
        // t1 guesses; t2 reads t1's output in its initial section.
        let rw1 = RwSet::new().write("b");
        let h1 = ex.begin(TxnId(1), &[rw1.clone(), RwSet::new()]);
        let (_, p1) = ex.stage(h1, &rw1, |ctx| ctx.write("b", 50)).unwrap();
        let rw2 = RwSet::new().read("b").write("c");
        let h2 = ex.begin(TxnId(2), &[rw2.clone(), RwSet::new()]);
        let (_, p2) = ex
            .stage(h2, &rw2, |ctx| {
                let b = ctx.read("b")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("c", b)
            })
            .unwrap();
        // t2 finalizes cleanly first (its input was correct).
        ex.stage(p2.unwrap(), &RwSet::new(), |_| Ok(())).unwrap();
        // t1's final discovers the error and retracts: cascade takes t2.
        let (report, _) = ex
            .stage(p1.unwrap(), &RwSet::new(), |ctx| {
                Ok(ctx.retract_self("wrong player"))
            })
            .unwrap();
        assert_eq!(report.retracted, vec![TxnId(2), TxnId(1)]);
        assert!(!ex.store().contains(&"b".into()));
        assert!(!ex.store().contains(&"c".into()));
    }

    #[test]
    fn history_satisfies_ms_ia_but_interleaving_breaks_ms_sr() {
        let history = HistoryRecorder::new();
        let ex = MsIaExecutor::from_core(
            ExecutorCore::new(
                Arc::new(KvStore::new()),
                Arc::new(LockManager::new(LockPolicy::Block)),
            )
            .with_history(history.clone()),
        );
        ex.store().put("x".into(), Value::Int(0));
        // The §4.2 anomaly under MS-IA: i1 i2 f1 f2 on the same key.
        let rw = RwSet::new().read("x").write("x");
        let rwf = RwSet::new().write("x");
        let h1 = ex.begin(TxnId(1), &[rw.clone(), rwf.clone()]);
        let (v1, p1) = ex
            .stage(h1, &rw, |ctx| {
                Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0))
            })
            .unwrap();
        let h2 = ex.begin(TxnId(2), &[rw.clone(), rwf.clone()]);
        let (v2, p2) = ex
            .stage(h2, &rw, |ctx| {
                Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0))
            })
            .unwrap();
        ex.stage(p1.unwrap(), &rwf, |ctx| ctx.write("x", v1 + 1))
            .unwrap();
        ex.stage(p2.unwrap(), &rwf, |ctx| ctx.write("x", v2 + 1))
            .unwrap();
        // Lost update happened (both read 0): that is exactly the anomaly
        // MS-IA permits and MS-SR forbids.
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(1)));
        let checker = history.checker();
        assert!(checker.check_ms_ia(&[]).is_ok());
        assert!(checker.check_ms_sr().is_err());
    }

    #[test]
    fn concurrent_ms_ia_transactions_all_commit() {
        let ex = Arc::new(executor(LockPolicy::WaitDie));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let ex = Arc::clone(&ex);
                thread::spawn(move || {
                    let rw = RwSet::new().write("hot");
                    // Retry initial on wait-die kills with the same id.
                    let pending = loop {
                        let h = ex.begin(TxnId(i), &[rw.clone(), rw.clone()]);
                        match ex.stage(h, &rw, |ctx| ctx.write("hot", i as i64)) {
                            Ok((_, p)) => break p.unwrap(),
                            Err(_) => thread::yield_now(),
                        }
                    };
                    ex.stage(pending, &rw, |ctx| ctx.write("hot", 100 + i as i64))
                        .unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ex.stats().snapshot().commits, 8);
        let checker = ex.history().unwrap().checker();
        checker.check_ms_ia(&[]).unwrap();
    }

    #[test]
    fn ms_ia_lock_hold_is_short_even_with_slow_cloud() {
        // The Fig 6a contrast: the "cloud wait" happens *between* stages,
        // while no locks are held.
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        let h = ex.begin(TxnId(1), &[rw.clone(), rw.clone()]);
        let (_, pending) = ex.stage(h, &rw, |ctx| ctx.write("x", 1)).unwrap();
        thread::sleep(std::time::Duration::from_millis(30)); // cloud round trip
        ex.stage(pending.unwrap(), &rw, |ctx| ctx.write("x", 2))
            .unwrap();
        let snap = ex.stats().snapshot();
        assert!(
            snap.avg_lock_hold_ms < 10.0,
            "MS-IA holds locks only during sections, got {}",
            snap.avg_lock_hold_ms
        );
    }
}
