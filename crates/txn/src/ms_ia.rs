//! MS-IA: Multi-Stage Invariant Confluence with Apologies — Algorithm 2.
//!
//! ```text
//! items ← get_rwsets(tᵢ)
//! if acquirelocks(items): execute(tᵢ)
//! Initial Commit
//! releaselocks(get_rwsets(tᵢ))          // ← locks released *here*
//! items ← get_rwsets(t_f)
//! if acquirelocks(items): execute(t_f) else abort
//! Final Commit
//! releaselocks(get_rwsets(t_f))
//! ```
//!
//! Unlike TSPL, "we did not hold the locks for the initial section until the
//! end of the final section and we reach the point of initial-commit
//! immediately after processing the initial section" (§4.4). The price is
//! that the final section must reconcile errors itself — it runs as a guess
//! → apology pair, with [`crate::apology::ApologyManager`] providing
//! retraction when the guess cannot be merged.

use std::sync::Arc;
use std::time::Instant;

use croesus_store::{KvStore, LockManager, TxnId, UndoLog};

use crate::apology::{ApologyManager, RetractionReport};
use crate::history::{HistoryRecorder, SectionKind};
use crate::model::{RwSet, SectionCtx, TxnError};
use crate::stats::ProtocolStats;

/// Token proving a transaction's initial section committed; required to run
/// its final section. (The type system enforces "the final section of a
/// transaction cannot begin before the initial section", §4.1.)
#[derive(Debug)]
pub struct PendingFinal {
    txn: TxnId,
}

impl PendingFinal {
    /// The transaction this token belongs to.
    pub fn txn(&self) -> TxnId {
        self.txn
    }
}

/// Capabilities available to a final section on top of plain reads/writes:
/// retraction (with cascade) and apology bookkeeping.
pub struct FinalCtx<'a> {
    txn: TxnId,
    store: &'a KvStore,
    apologies: &'a ApologyManager,
    reports: Vec<RetractionReport>,
}

impl FinalCtx<'_> {
    /// This transaction's id.
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// Retract a transaction's initial-section effects (cascading to
    /// dependents), usually this transaction's own guess:
    /// `ctx.retract_self("detected the wrong building")`.
    pub fn retract(&mut self, txn: TxnId, reason: &str) -> RetractionReport {
        let report = self.apologies.retract(txn, self.store, reason);
        self.reports.push(report.clone());
        report
    }

    /// Retract this transaction's own initial section.
    pub fn retract_self(&mut self, reason: &str) -> RetractionReport {
        self.retract(self.txn, reason)
    }

    /// Reports accumulated by this final section.
    pub fn reports(&self) -> &[RetractionReport] {
        &self.reports
    }
}

/// The MS-IA executor.
///
/// ```
/// use std::sync::Arc;
/// use croesus_store::{KvStore, LockManager, LockPolicy, TxnId, Value};
/// use croesus_txn::{MsIaExecutor, RwSet};
///
/// let ex = MsIaExecutor::new(
///     Arc::new(KvStore::new()),
///     Arc::new(LockManager::new(LockPolicy::Block)),
/// );
/// let rw = RwSet::new().write("x");
/// // The guess: commits and releases its locks immediately.
/// let (_, pending) = ex.run_initial(TxnId(1), &rw, |ctx| {
///     ctx.write("x", 1)?;
///     Ok(())
/// }).unwrap();
/// // Later, when the cloud labels arrive, the final section reconciles.
/// ex.run_final(pending, &rw, |ctx, _apologies| {
///     ctx.write("x", 2)?;
///     Ok(())
/// }).unwrap();
/// assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
/// ```
pub struct MsIaExecutor {
    store: Arc<KvStore>,
    locks: Arc<LockManager>,
    history: Option<HistoryRecorder>,
    stats: Arc<ProtocolStats>,
    apologies: Arc<ApologyManager>,
}

impl MsIaExecutor {
    /// Create an executor over a store and lock manager.
    pub fn new(store: Arc<KvStore>, locks: Arc<LockManager>) -> Self {
        MsIaExecutor {
            store,
            locks,
            history: None,
            stats: Arc::new(ProtocolStats::new()),
            apologies: Arc::new(ApologyManager::new()),
        }
    }

    /// Attach a history recorder.
    pub fn with_history(mut self, history: HistoryRecorder) -> Self {
        self.history = Some(history);
        self
    }

    /// The statistics collector.
    pub fn stats(&self) -> &Arc<ProtocolStats> {
        &self.stats
    }

    /// The apology manager (for inspecting issued apologies).
    pub fn apologies(&self) -> &Arc<ApologyManager> {
        &self.apologies
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// Run the initial section: lock its read/write set, execute, commit,
    /// release. On success the effects are visible to everyone and a
    /// [`PendingFinal`] token is returned for the final section.
    pub fn run_initial<T>(
        &self,
        txn: TxnId,
        rw: &RwSet,
        body: impl FnOnce(&mut SectionCtx) -> Result<T, TxnError>,
    ) -> Result<(T, PendingFinal), TxnError> {
        let started = Instant::now();
        let pairs = rw.lock_pairs();
        if let Err(e) = self.locks.acquire_all(txn, &pairs, None) {
            if let Some(h) = &self.history {
                h.record_abort(txn);
            }
            self.stats.record_abort();
            return Err(TxnError::Aborted(e));
        }
        let lock_epoch = Instant::now();

        if let Some(h) = &self.history {
            h.record_begin(txn, SectionKind::Initial);
        }
        let mut undo = UndoLog::new();
        let out = {
            let mut ctx = SectionCtx::new(
                txn,
                SectionKind::Initial,
                &self.store,
                rw,
                &mut undo,
                self.history.as_ref(),
            );
            body(&mut ctx)
        };
        let out = match out {
            Ok(v) => v,
            Err(e) => {
                undo.rollback(&self.store);
                self.locks.release_all(txn, pairs.iter().map(|(k, _)| k));
                if let Some(h) = &self.history {
                    h.record_abort(txn);
                }
                self.stats.record_abort();
                return Err(e);
            }
        };

        // Initial commit, then release immediately — the MS-IA difference.
        if let Some(h) = &self.history {
            h.record_commit(txn, SectionKind::Initial);
        }
        self.stats.record_initial_latency(started.elapsed());
        self.apologies
            .register(txn, rw.reads.clone(), rw.writes.clone(), undo);
        self.stats.record_lock_hold(lock_epoch.elapsed());
        self.locks.release_all(txn, pairs.iter().map(|(k, _)| k));

        Ok((out, PendingFinal { txn }))
    }

    /// Run the final section once its input (the cloud labels) is ready.
    ///
    /// The multi-stage guarantee says an initially-committed transaction
    /// must finally commit, so lock acquisition here *retries* on wait-die
    /// kills rather than aborting the transaction. The section body gets a
    /// [`FinalCtx`] for retraction and apologies alongside the normal
    /// read/write context.
    pub fn run_final<T>(
        &self,
        pending: PendingFinal,
        rw: &RwSet,
        body: impl FnOnce(&mut SectionCtx, &mut FinalCtx) -> Result<T, TxnError>,
    ) -> Result<T, TxnError> {
        let txn = pending.txn;
        let pairs = rw.lock_pairs();
        // Retry until granted: final sections cannot abort.
        let mut backoff = 0u32;
        while let Err(_e) = self.locks.acquire_all(txn, &pairs, None) {
            backoff = (backoff + 1).min(6);
            std::thread::yield_now();
            if backoff > 2 {
                std::thread::sleep(std::time::Duration::from_micros(1 << backoff));
            }
        }
        let lock_epoch = Instant::now();

        if let Some(h) = &self.history {
            h.record_begin(txn, SectionKind::Final);
        }
        let mut undo = UndoLog::new();
        let mut final_ctx = FinalCtx {
            txn,
            store: &self.store,
            apologies: &self.apologies,
            reports: Vec::new(),
        };
        let out = {
            let mut ctx = SectionCtx::new(
                txn,
                SectionKind::Final,
                &self.store,
                rw,
                &mut undo,
                self.history.as_ref(),
            );
            body(&mut ctx, &mut final_ctx)
        };
        let out = match out {
            Ok(v) => v,
            Err(e) => panic!(
                "final section of {txn} failed after initial commit — \
                 the multi-stage guarantee forbids this: {e}"
            ),
        };

        if let Some(h) = &self.history {
            h.record_commit(txn, SectionKind::Final);
        }
        self.stats.record_commit();
        self.stats.record_lock_hold(lock_epoch.elapsed());
        self.locks.release_all(txn, pairs.iter().map(|(k, _)| k));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::{LockPolicy, Value};
    use std::thread;

    fn executor(policy: LockPolicy) -> MsIaExecutor {
        MsIaExecutor::new(Arc::new(KvStore::new()), Arc::new(LockManager::new(policy)))
            .with_history(HistoryRecorder::new())
    }

    #[test]
    fn initial_then_final_commits() {
        let ex = executor(LockPolicy::Block);
        let rw_i = RwSet::new().write("x");
        let rw_f = RwSet::new().write("x");
        let (_, pending) = ex
            .run_initial(TxnId(1), &rw_i, |ctx| {
                ctx.write("x", 1)?;
                Ok(())
            })
            .unwrap();
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(1)));
        ex.run_final(pending, &rw_f, |ctx, _| {
            ctx.write("x", 2)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(2)));
        assert_eq!(ex.stats().snapshot().commits, 1);
    }

    #[test]
    fn initial_effects_visible_before_final() {
        // The key MS-IA behaviour: another transaction can read t1's
        // initial write before t1's final section runs.
        let ex = executor(LockPolicy::Block);
        let (_, pending1) = ex
            .run_initial(TxnId(1), &RwSet::new().write("shared"), |ctx| {
                ctx.write("shared", 10)?;
                Ok(())
            })
            .unwrap();
        let (seen, pending2) = ex
            .run_initial(TxnId(2), &RwSet::new().read("shared"), |ctx| {
                Ok(ctx.read("shared")?.and_then(|v| v.as_int()))
            })
            .unwrap();
        assert_eq!(seen, Some(10), "t2 observed t1's initial effects");
        ex.run_final(pending1, &RwSet::new(), |_, _| Ok(()))
            .unwrap();
        ex.run_final(pending2, &RwSet::new(), |_, _| Ok(()))
            .unwrap();
    }

    #[test]
    fn locks_released_after_initial() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = MsIaExecutor::new(Arc::clone(&store), Arc::clone(&locks));
        let (_, _pending) = ex
            .run_initial(TxnId(1), &RwSet::new().write("x"), |ctx| {
                ctx.write("x", 1)?;
                Ok(())
            })
            .unwrap();
        // Immediately lockable by someone else — unlike TSPL.
        assert!(locks
            .lock(TxnId(2), &"x".into(), croesus_store::LockMode::Exclusive)
            .is_ok());
    }

    #[test]
    fn aborted_initial_rolls_back() {
        let ex = executor(LockPolicy::Block);
        let r = ex.run_initial(TxnId(1), &RwSet::new().write("x"), |ctx| {
            ctx.write("x", 1)?;
            Err::<(), _>(TxnError::Invariant("bad trigger".into()))
        });
        assert!(r.is_err());
        assert_eq!(ex.store().get(&"x".into()), None);
        assert_eq!(ex.stats().snapshot().aborts, 1);
    }

    #[test]
    fn final_section_can_retract_self() {
        let ex = executor(LockPolicy::Block);
        let store = Arc::clone(ex.store());
        store.put("room".into(), Value::Str("free".into()));
        let (_, pending) = ex
            .run_initial(TxnId(1), &RwSet::new().write("room"), |ctx| {
                ctx.write("room", "reserved-by-1")?;
                Ok(())
            })
            .unwrap();
        let report = ex
            .run_final(pending, &RwSet::new(), |_, fctx| {
                Ok(fctx.retract_self("wrong building detected"))
            })
            .unwrap();
        assert_eq!(report.retracted, vec![TxnId(1)]);
        assert_eq!(
            store.get(&"room".into()).as_deref(),
            Some(&Value::Str("free".into()))
        );
        assert_eq!(ex.apologies().apologies().len(), 1);
    }

    #[test]
    fn retraction_cascades_across_transactions() {
        let ex = executor(LockPolicy::Block);
        // t1 guesses; t2 reads t1's output in its initial section.
        let (_, p1) = ex
            .run_initial(TxnId(1), &RwSet::new().write("b"), |ctx| {
                ctx.write("b", 50)?;
                Ok(())
            })
            .unwrap();
        let (_, p2) = ex
            .run_initial(TxnId(2), &RwSet::new().read("b").write("c"), |ctx| {
                let b = ctx.read("b")?.and_then(|v| v.as_int()).unwrap_or(0);
                ctx.write("c", b)?;
                Ok(())
            })
            .unwrap();
        // t2 finalizes cleanly first (its input was correct).
        ex.run_final(p2, &RwSet::new(), |_, _| Ok(())).unwrap();
        // t1's final discovers the error and retracts: cascade takes t2.
        let report = ex
            .run_final(p1, &RwSet::new(), |_, fctx| {
                Ok(fctx.retract_self("wrong player"))
            })
            .unwrap();
        assert_eq!(report.retracted, vec![TxnId(2), TxnId(1)]);
        assert!(!ex.store().contains(&"b".into()));
        assert!(!ex.store().contains(&"c".into()));
    }

    #[test]
    fn history_satisfies_ms_ia_but_interleaving_breaks_ms_sr() {
        let history = HistoryRecorder::new();
        let ex = MsIaExecutor::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::Block)),
        )
        .with_history(history.clone());
        ex.store().put("x".into(), Value::Int(0));
        // The §4.2 anomaly under MS-IA: i1 i2 f1 f2 on the same key.
        let rw = RwSet::new().read("x").write("x");
        let (v1, p1) = ex
            .run_initial(TxnId(1), &rw, |ctx| {
                Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0))
            })
            .unwrap();
        let (v2, p2) = ex
            .run_initial(TxnId(2), &rw, |ctx| {
                Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0))
            })
            .unwrap();
        let rwf = RwSet::new().write("x");
        ex.run_final(p1, &rwf, move |ctx, _| {
            ctx.write("x", v1 + 1)?;
            Ok(())
        })
        .unwrap();
        ex.run_final(p2, &rwf, move |ctx, _| {
            ctx.write("x", v2 + 1)?;
            Ok(())
        })
        .unwrap();
        // Lost update happened (both read 0): that is exactly the anomaly
        // MS-IA permits and MS-SR forbids.
        assert_eq!(ex.store().get(&"x".into()).as_deref(), Some(&Value::Int(1)));
        let checker = history.checker();
        assert!(checker.check_ms_ia(&[]).is_ok());
        assert!(checker.check_ms_sr().is_err());
    }

    #[test]
    fn concurrent_ms_ia_transactions_all_commit() {
        let ex = Arc::new(executor(LockPolicy::WaitDie));
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let ex = Arc::clone(&ex);
                thread::spawn(move || {
                    let rw = RwSet::new().write("hot");
                    // Retry initial on wait-die kills with the same id.
                    let pending = loop {
                        match ex.run_initial(TxnId(i), &rw, |ctx| {
                            ctx.write("hot", i as i64)?;
                            Ok(())
                        }) {
                            Ok((_, p)) => break p,
                            Err(_) => thread::yield_now(),
                        }
                    };
                    ex.run_final(pending, &rw, |ctx, _| {
                        ctx.write("hot", 100 + i as i64)?;
                        Ok(())
                    })
                    .unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ex.stats().snapshot().commits, 8);
        let checker = ex.history.as_ref().unwrap().checker();
        checker.check_ms_ia(&[]).unwrap();
    }

    #[test]
    fn ms_ia_lock_hold_is_short_even_with_slow_cloud() {
        // The Fig 6a contrast: the "cloud wait" happens *between* sections,
        // while no locks are held.
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        let (_, pending) = ex
            .run_initial(TxnId(1), &rw, |ctx| {
                ctx.write("x", 1)?;
                Ok(())
            })
            .unwrap();
        thread::sleep(std::time::Duration::from_millis(30)); // cloud round trip
        ex.run_final(pending, &rw, |ctx, _| {
            ctx.write("x", 2)?;
            Ok(())
        })
        .unwrap();
        let snap = ex.stats().snapshot();
        assert!(
            snap.avg_lock_hold_ms < 10.0,
            "MS-IA holds locks only during sections, got {}",
            snap.avg_lock_hold_ms
        );
    }
}
