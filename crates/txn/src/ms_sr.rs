//! MS-SR via Two-Stage 2PL (TSPL) — Algorithm 1 of the paper.
//!
//! ```text
//! items ← get_rwsets(tᵢ)
//! if acquirelocks(items):
//!     execute(tᵢ)
//!     items ← get_rwsets(t_f)
//!     if acquirelocks(items):
//!         Initial Commit
//!         execute(t_f)          // once the final input is available
//!         Final Commit
//!     else abort
//! else abort
//! releaselocks(...)
//! ```
//!
//! The protocol's defining property: locks for *later* stages are acquired
//! before initial commit, so an initially-committed transaction can never
//! abort — but every lock is held across the edge→cloud round trip, which
//! is where MS-SR's contention (Fig 6a) and aborts under hot spots
//! (Fig 6b) come from.
//!
//! Under the unified [`MultiStageProtocol`] API the caller waits for the
//! final input *between* `run_stage` calls; TSPL simply keeps all locks
//! held across that gap (that is the point). Because later stages must not
//! acquire anything new after initial commit, every stage's read/write set
//! must be covered by the sets declared at [`begin`](TsplExecutor::begin).

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

use croesus_obs::{EventKind, HistKind};
use croesus_store::{Key, LockMode, TxnId, UndoLog};

use crate::model::{RwSet, SectionCtx, TxnError};
use crate::protocol::{
    ExecutorCore, MultiStageProtocol, ProtocolKind, StageBody, StageCtx, StageOutcome, TxnHandle,
};

/// Per-transaction in-flight state: the declared later-stage lock pairs
/// (acquired at initial commit) and, once stage 0 ran, everything held.
struct TsplInFlight {
    /// Union of the lock pairs declared for stages `1..`.
    later_pairs: Vec<(Key, LockMode)>,
    /// Deduplicated keys currently held (empty before stage 0 commits).
    held: Vec<Key>,
    /// When the first lock was granted (for Fig-6a lock-hold times).
    lock_epoch: Instant,
}

/// The Two-Stage 2PL executor (generalized to m stages: all locks are
/// acquired by the end of stage 0 and held until the final stage commits).
pub struct TsplExecutor {
    core: ExecutorCore,
    inflight: Mutex<HashMap<TxnId, TsplInFlight>>,
    /// Mutation self-test flag (mcheck builds only): when set, the final
    /// commit record is logged *after* the locks are released — a seeded
    /// commit-point bug the model checker must be able to catch.
    #[cfg(feature = "mcheck")]
    mutate_log_final_after_release: std::sync::atomic::AtomicBool,
}

impl TsplExecutor {
    /// A TSPL executor over shared core state.
    #[must_use]
    pub fn from_core(core: ExecutorCore) -> Self {
        TsplExecutor {
            core,
            inflight: Mutex::new(HashMap::new()),
            #[cfg(feature = "mcheck")]
            mutate_log_final_after_release: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Arm the deliberate commit-point bug (self-test for the model
    /// checker — see `tests/mcheck.rs`). Never use outside tests.
    #[cfg(feature = "mcheck")]
    pub fn enable_log_final_after_release_mutation(&self) {
        self.mutate_log_final_after_release
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    fn remove_inflight(&self, txn: TxnId) -> Option<TsplInFlight> {
        self.inflight.lock().remove(&txn)
    }

    /// Release everything the transaction holds (the final-commit path).
    fn release_held(&self, txn: TxnId) {
        if let Some(state) = self.remove_inflight(txn) {
            self.core
                .stats()
                .record_lock_hold(state.lock_epoch.elapsed());
            self.core.locks().release_all(txn, state.held.iter());
        }
    }

    /// Mutation self-test (mcheck builds only): when armed, release the
    /// locks *before* the final commit record is appended — deliberately
    /// breaking MS-SR's "log under locks, then release" discipline so a
    /// checker run can prove it would catch such a bug. Returns whether
    /// the early release happened.
    #[cfg(feature = "mcheck")]
    fn maybe_release_before_final_log(&self, handle: &TxnHandle, txn: TxnId) -> bool {
        use std::sync::atomic::Ordering;
        if !handle.is_final() || !self.mutate_log_final_after_release.load(Ordering::Relaxed) {
            return false;
        }
        self.release_held(txn);
        crate::sched::yield_point("ms_sr.mutated.unlogged-window");
        true
    }

    #[cfg(not(feature = "mcheck"))]
    fn maybe_release_before_final_log(&self, _handle: &TxnHandle, _txn: TxnId) -> bool {
        false
    }

    /// Stage 0: lock the initial items, execute, then lock every later
    /// stage's declared items *before* initial commit — the acquisition
    /// order that guarantees later stages cannot abort.
    fn run_initial(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
    ) -> Result<StageOutcome, TxnError> {
        let txn = handle.txn();
        let core = &self.core;
        let started = Instant::now();
        let initial_pairs = rw.lock_pairs();
        if let Err(e) = core.locks().acquire_all(txn, &initial_pairs, None) {
            self.remove_inflight(txn);
            core.record_abort(txn);
            return Err(TxnError::Aborted(e));
        }
        let lock_epoch = Instant::now();
        crate::sched::yield_point("ms_sr.initial.locked");
        core.obs()
            .emit_txn(txn.0, EventKind::StageStart { stage: 0 });

        if let Some(h) = core.history() {
            h.record_begin(txn, handle.section_kind());
        }
        let mut undo = UndoLog::new();
        let out = {
            let section = SectionCtx::new(
                txn,
                handle.section_kind(),
                core.store(),
                rw,
                &mut undo,
                core.history(),
            );
            let mut ctx = StageCtx::new(
                section,
                core.store(),
                core.apologies(),
                core.wal().map(|w| &**w),
                core.obs(),
            );
            body(&mut ctx)
        };
        let output = match out {
            Ok(v) => v,
            Err(e) => {
                undo.rollback(core.store());
                core.locks()
                    .release_all(txn, initial_pairs.iter().map(|(k, _)| k));
                self.remove_inflight(txn);
                core.record_abort(txn);
                return Err(e);
            }
        };

        // Lock the later stages' items *before* initial commit: this is
        // what guarantees the remaining stages cannot abort.
        let later_pairs = {
            let map = self.inflight.lock();
            let state = map
                .get(&txn)
                .expect("run_stage without begin — declare the stages first");
            state.later_pairs.clone()
        };
        if let Err(e) = core.locks().acquire_all(txn, &later_pairs, None) {
            undo.rollback(core.store());
            core.locks()
                .release_all(txn, initial_pairs.iter().map(|(k, _)| k));
            self.remove_inflight(txn);
            core.record_abort(txn);
            return Err(TxnError::Aborted(e));
        }
        crate::sched::yield_point("ms_sr.later.locked");

        // MS-SR's durable commit point is *final* commit: log this stage's
        // writes without the commit-point flag, so replay buffers them —
        // the held locks guarantee no other transaction saw them, and a
        // crash before final commit legitimately un-happens the whole txn.
        core.log_stage(&handle, rw, &undo, false, false);
        crate::sched::yield_point("ms_sr.initial.logged");

        // Initial commit: the response may now be exposed to the client.
        if let Some(h) = core.history() {
            h.record_commit(txn, handle.section_kind());
        }
        core.stats().record_initial_latency(started.elapsed());
        core.obs().emit_txn(txn.0, EventKind::StageEnd { stage: 0 });
        core.obs().emit_txn(txn.0, EventKind::InitialCommit);
        core.obs()
            .record_duration(HistKind::InitialCommitMs, started.elapsed());

        // Remember everything held, deduplicated, for the final release.
        let mut held: Vec<Key> = initial_pairs
            .into_iter()
            .chain(later_pairs)
            .map(|(k, _)| k)
            .collect();
        held.sort();
        held.dedup();
        if let Some(state) = self.inflight.lock().get_mut(&txn) {
            state.held = held;
            state.lock_epoch = lock_epoch;
        }

        Ok(StageOutcome::Committed {
            output,
            next: handle.advance(),
        })
    }

    /// Stages `1..`: every lock is already held; execute under them and
    /// release everything at final commit. Errors here are application
    /// bugs — the protocol guarantees commit, so the body must not fail.
    fn run_held(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
    ) -> Result<StageOutcome, TxnError> {
        let txn = handle.txn();
        let core = &self.core;
        let started = Instant::now();
        // The declared sets at begin() are binding under MS-SR: acquiring
        // anything new after initial commit could abort or block, which
        // the guarantee forbids.
        for (key, mode) in rw.lock_pairs() {
            match core.locks().held_mode(txn, &key) {
                Some(LockMode::Exclusive) => {}
                Some(LockMode::Shared) if mode == LockMode::Shared => {}
                held => panic!(
                    "stage {} of {txn} accesses {key} ({mode:?}) but holds {held:?} — \
                     MS-SR requires every stage's items to be declared at begin()",
                    handle.stage()
                ),
            }
        }

        core.obs().emit_txn(
            txn.0,
            EventKind::StageStart {
                stage: handle.stage() as u32,
            },
        );
        if let Some(h) = core.history() {
            h.record_begin(txn, handle.section_kind());
        }
        let mut undo = UndoLog::new();
        let out = {
            let section = SectionCtx::new(
                txn,
                handle.section_kind(),
                core.store(),
                rw,
                &mut undo,
                core.history(),
            );
            let mut ctx = StageCtx::new(
                section,
                core.store(),
                core.apologies(),
                core.wal().map(|w| &**w),
                core.obs(),
            );
            body(&mut ctx)
        };
        let output = match out {
            Ok(v) => v,
            Err(e) => panic!(
                "stage {} of {txn} failed after initial commit — \
                 the multi-stage guarantee forbids this: {e}",
                handle.stage()
            ),
        };

        let released_early = self.maybe_release_before_final_log(&handle, txn);

        // Final commit is MS-SR's one durable commit point; intermediate
        // stages keep buffering (replay applies everything at the final
        // record).
        core.log_stage(&handle, rw, &undo, handle.is_final(), false);
        crate::sched::yield_point("ms_sr.held.logged");

        if let Some(h) = core.history() {
            h.record_commit(txn, handle.section_kind());
        }
        core.obs().emit_txn(
            txn.0,
            EventKind::StageEnd {
                stage: handle.stage() as u32,
            },
        );
        if handle.is_final() {
            core.stats().record_commit();
            core.obs().emit_txn(txn.0, EventKind::FinalCommit);
            core.obs()
                .record_duration(HistKind::FinalCommitMs, started.elapsed());
            if !released_early {
                self.release_held(txn);
            }
            Ok(StageOutcome::Complete { output })
        } else {
            Ok(StageOutcome::Committed {
                output,
                next: handle.advance(),
            })
        }
    }
}

impl MultiStageProtocol for TsplExecutor {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::MsSr
    }

    fn core(&self) -> &ExecutorCore {
        &self.core
    }

    fn begin(&self, txn: TxnId, stages: &[RwSet]) -> TxnHandle {
        let handle = TxnHandle::first(txn, stages.len());
        self.core.note_begin(txn, stages.len());
        let later = stages[1..]
            .iter()
            .fold(RwSet::new(), |acc, rw| acc.union(rw));
        self.inflight.lock().insert(
            txn,
            TsplInFlight {
                later_pairs: later.lock_pairs(),
                held: Vec::new(),
                lock_epoch: Instant::now(),
            },
        );
        handle
    }

    fn run_stage(
        &self,
        handle: TxnHandle,
        rw: &RwSet,
        body: StageBody<'_>,
    ) -> Result<StageOutcome, TxnError> {
        if handle.stage() == 0 {
            self.run_initial(handle, rw, body)
        } else {
            self.run_held(handle, rw, body)
        }
    }

    fn abort(&self, handle: TxnHandle) {
        self.core.abort_handle(&handle);
        self.remove_inflight(handle.txn());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryRecorder;
    use crate::protocol::MultiStageProtocolExt;
    use croesus_store::{KvStore, LockManager, LockPolicy, Value};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;

    fn executor(policy: LockPolicy) -> TsplExecutor {
        TsplExecutor::from_core(
            ExecutorCore::new(Arc::new(KvStore::new()), Arc::new(LockManager::new(policy)))
                .with_history(HistoryRecorder::new()),
        )
    }

    /// The old `execute` shape, rebuilt on the unified API: both stages
    /// back-to-back with a wait in between.
    fn execute<TI, TF>(
        ex: &TsplExecutor,
        txn: TxnId,
        initial_rw: &RwSet,
        final_rw: &RwSet,
        initial: impl FnOnce(&mut StageCtx) -> Result<TI, TxnError>,
        await_final_input: impl FnOnce(),
        final_section: impl FnOnce(&mut StageCtx) -> Result<TF, TxnError>,
    ) -> Result<(TI, TF), TxnError> {
        let h = ex.begin(txn, &[initial_rw.clone(), final_rw.clone()]);
        let (ti, h) = ex.stage(h, initial_rw, initial)?;
        await_final_input();
        let (tf, done) = ex.stage(h.expect("two stages"), final_rw, final_section)?;
        assert!(done.is_none());
        Ok((ti, tf))
    }

    #[test]
    fn single_transaction_commits_both_sections() {
        let ex = executor(LockPolicy::Block);
        let initial_rw = RwSet::new().read("x");
        let final_rw = RwSet::new().write("x");
        let (i, f) = execute(
            &ex,
            TxnId(1),
            &initial_rw,
            &final_rw,
            |ctx| Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0)),
            || {},
            |ctx| {
                ctx.write("x", 42)?;
                Ok("done")
            },
        )
        .unwrap();
        assert_eq!(i, 0);
        assert_eq!(f, "done");
        assert_eq!(
            ex.store().get(&"x".into()).as_deref(),
            Some(&Value::Int(42))
        );
        assert_eq!(ex.stats().snapshot().commits, 1);
    }

    #[test]
    fn all_locks_released_after_commit() {
        let ex = executor(LockPolicy::NoWait);
        let rw = RwSet::new().write("a").write("b");
        execute(&ex, TxnId(1), &rw, &rw, |_| Ok(()), || {}, |_| Ok(())).unwrap();
        // A second transaction can take everything immediately.
        execute(&ex, TxnId(2), &rw, &rw, |_| Ok(()), || {}, |_| Ok(())).unwrap();
    }

    #[test]
    fn initial_section_error_rolls_back_and_aborts() {
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        let r: Result<((), ()), TxnError> = execute(
            &ex,
            TxnId(1),
            &rw,
            &RwSet::new(),
            |ctx| {
                ctx.write("x", 1)?;
                Err(TxnError::Invariant("nope".into()))
            },
            || {},
            |_| Ok(()),
        );
        assert!(r.is_err());
        assert_eq!(ex.store().get(&"x".into()), None, "write rolled back");
        assert_eq!(ex.stats().snapshot().aborts, 1);
        // Locks are free again.
        execute(
            &ex,
            TxnId(2),
            &rw,
            &RwSet::new(),
            |_| Ok(()),
            || {},
            |_| Ok(()),
        )
        .unwrap();
    }

    #[test]
    fn lock_conflict_aborts_under_nowait() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = TsplExecutor::from_core(ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks)));
        // Hold "x" from outside.
        locks
            .lock(TxnId(99), &"x".into(), croesus_store::LockMode::Exclusive)
            .unwrap();
        let rw = RwSet::new().write("x");
        let r: Result<((), ()), _> = execute(
            &ex,
            TxnId(100),
            &rw,
            &RwSet::new(),
            |_| Ok(()),
            || {},
            |_| Ok(()),
        );
        assert!(matches!(r, Err(TxnError::Aborted(_))));
    }

    #[test]
    fn failed_final_lock_acquisition_rolls_back_initial_writes() {
        let store = Arc::new(KvStore::new());
        store.put("y".into(), Value::Int(0));
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = TsplExecutor::from_core(ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks)));
        // Another holder blocks the *final* set only.
        locks
            .lock(TxnId(1), &"z".into(), croesus_store::LockMode::Exclusive)
            .unwrap();
        let r: Result<((), ()), _> = execute(
            &ex,
            TxnId(2),
            &RwSet::new().write("y"),
            &RwSet::new().write("z"),
            |ctx| {
                ctx.write("y", 7)?;
                Ok(())
            },
            || {},
            |_| Ok(()),
        );
        assert!(r.is_err());
        assert_eq!(
            store.get(&"y".into()).as_deref(),
            Some(&Value::Int(0)),
            "initial write must be undone because initial commit never happened"
        );
    }

    #[test]
    #[should_panic(expected = "declared at begin")]
    fn undeclared_final_access_panics() {
        let ex = executor(LockPolicy::Block);
        let h = ex.begin(TxnId(1), &[RwSet::new(), RwSet::new().write("a")]);
        let (_, h) = ex.stage(h, &RwSet::new(), |_| Ok(())).unwrap();
        // "b" was never declared: acquiring it now could block or abort
        // after initial commit, so TSPL refuses.
        let _ = ex.stage(h.unwrap(), &RwSet::new().write("b"), |_| Ok(()));
    }

    #[test]
    fn conflicting_transactions_serialize_and_satisfy_ms_sr() {
        let history = HistoryRecorder::new();
        let store = Arc::new(KvStore::new());
        store.put("x".into(), Value::Int(0));
        let locks = Arc::new(LockManager::new(LockPolicy::Block));
        let ex = Arc::new(TsplExecutor::from_core(
            ExecutorCore::new(Arc::clone(&store), locks).with_history(history.clone()),
        ));
        // The §4.2 increment anomaly: read x in initial, write x+1 in final.
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let ex = Arc::clone(&ex);
                thread::spawn(move || {
                    let initial_rw = RwSet::new().read("x").write("x");
                    let final_rw = RwSet::new().write("x");
                    execute(
                        &ex,
                        TxnId(i),
                        &initial_rw,
                        &final_rw,
                        |ctx| Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0)),
                        || thread::sleep(std::time::Duration::from_millis(5)),
                        |ctx| {
                            // Re-read inside the final section: locks are
                            // still held so this is the same value.
                            let v = ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0);
                            ctx.write("x", v + 1)
                        },
                    )
                    .unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // No lost updates: x incremented once per transaction.
        assert_eq!(store.get(&"x".into()).as_deref(), Some(&Value::Int(4)));
        let checker = history.checker();
        checker
            .check_ms_sr()
            .expect("TSPL history must satisfy MS-SR");
    }

    #[test]
    fn lock_hold_time_covers_the_final_wait() {
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        execute(
            &ex,
            TxnId(1),
            &rw,
            &rw,
            |_| Ok(()),
            || thread::sleep(std::time::Duration::from_millis(25)),
            |_| Ok(()),
        )
        .unwrap();
        let snap = ex.stats().snapshot();
        assert!(
            snap.avg_lock_hold_ms >= 25.0,
            "hold {} must include the cloud wait",
            snap.avg_lock_hold_ms
        );
    }

    #[test]
    fn wait_die_aborts_on_hot_spot_and_retry_succeeds() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::WaitDie));
        let ex = Arc::new(TsplExecutor::from_core(ExecutorCore::new(
            store,
            Arc::clone(&locks),
        )));
        let committed = Arc::new(AtomicU64::new(0));
        let rw = RwSet::new().write("hot");
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let ex = Arc::clone(&ex);
                let committed = Arc::clone(&committed);
                let rw = rw.clone();
                thread::spawn(move || loop {
                    let r: Result<((), ()), _> = execute(
                        &ex,
                        TxnId(i),
                        &rw,
                        &RwSet::new(),
                        |_| Ok(()),
                        || thread::sleep(std::time::Duration::from_micros(200)),
                        |_| Ok(()),
                    );
                    if r.is_ok() {
                        committed.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                    thread::yield_now();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(committed.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn three_stage_tspl_holds_everything_to_the_end() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = TsplExecutor::from_core(ExecutorCore::new(Arc::clone(&store), Arc::clone(&locks)));
        let a = RwSet::new().write("a");
        let b = RwSet::new().write("b");
        let c = RwSet::new().write("c");
        let h = ex.begin(TxnId(1), &[a.clone(), b.clone(), c.clone()]);
        let (_, h) = ex.stage(h, &a, |ctx| ctx.write("a", 1)).unwrap();
        // All three keys are locked already — even "c", two stages ahead.
        assert!(locks
            .lock(TxnId(2), &"c".into(), croesus_store::LockMode::Exclusive)
            .is_err());
        let (_, h) = ex.stage(h.unwrap(), &b, |ctx| ctx.write("b", 2)).unwrap();
        let (_, done) = ex.stage(h.unwrap(), &c, |ctx| ctx.write("c", 3)).unwrap();
        assert!(done.is_none());
        // Released only now.
        assert!(locks
            .lock(TxnId(2), &"c".into(), croesus_store::LockMode::Exclusive)
            .is_ok());
        assert_eq!(ex.stats().snapshot().commits, 1);
    }
}
