//! MS-SR via Two-Stage 2PL (TSPL) — Algorithm 1 of the paper.
//!
//! ```text
//! items ← get_rwsets(tᵢ)
//! if acquirelocks(items):
//!     execute(tᵢ)
//!     items ← get_rwsets(t_f)
//!     if acquirelocks(items):
//!         Initial Commit
//!         execute(t_f)          // once the final input is available
//!         Final Commit
//!     else abort
//! else abort
//! releaselocks(...)
//! ```
//!
//! The protocol's defining property: locks for the *final* section are
//! acquired before initial commit, so an initially-committed transaction can
//! never abort — but every lock is held across the edge→cloud round trip,
//! which is where MS-SR's contention (Fig 6a) and aborts under hot spots
//! (Fig 6b) come from.

use std::sync::Arc;
use std::time::Instant;

use croesus_store::{KvStore, LockManager, TxnId, UndoLog};

use crate::history::{HistoryRecorder, SectionKind};
use crate::model::{RwSet, SectionCtx, TxnError};
use crate::stats::ProtocolStats;

/// The Two-Stage 2PL executor.
pub struct TsplExecutor {
    store: Arc<KvStore>,
    locks: Arc<LockManager>,
    history: Option<HistoryRecorder>,
    stats: Arc<ProtocolStats>,
}

impl TsplExecutor {
    /// Create an executor over a store and lock manager.
    pub fn new(store: Arc<KvStore>, locks: Arc<LockManager>) -> Self {
        TsplExecutor {
            store,
            locks,
            history: None,
            stats: Arc::new(ProtocolStats::new()),
        }
    }

    /// Attach a history recorder (for the safety checkers).
    pub fn with_history(mut self, history: HistoryRecorder) -> Self {
        self.history = Some(history);
        self
    }

    /// The statistics collector.
    pub fn stats(&self) -> &Arc<ProtocolStats> {
        &self.stats
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<KvStore> {
        &self.store
    }

    /// Execute one multi-stage transaction under TSPL.
    ///
    /// * `initial` runs once the initial read/write set is locked.
    /// * `await_final_input` models the wait for the cloud labels; TSPL
    ///   holds **all** locks across it (that is the point).
    /// * `final_section` runs with both sets locked, then everything is
    ///   released.
    ///
    /// Aborts (lock failures per the manager's policy) can only happen
    /// before initial commit; the caller should retry with the *same*
    /// [`TxnId`] to preserve wait-die priority.
    pub fn execute<TI, TF>(
        &self,
        txn: TxnId,
        initial_rw: &RwSet,
        final_rw: &RwSet,
        initial: impl FnOnce(&mut SectionCtx) -> Result<TI, TxnError>,
        await_final_input: impl FnOnce(),
        final_section: impl FnOnce(&mut SectionCtx) -> Result<TF, TxnError>,
    ) -> Result<(TI, TF), TxnError> {
        let started = Instant::now();
        let initial_pairs = initial_rw.lock_pairs();
        let final_pairs = final_rw.lock_pairs();

        // Lock the initial section's items.
        if let Err(e) = self.locks.acquire_all(txn, &initial_pairs, None) {
            self.abort(txn, started, None);
            return Err(TxnError::Aborted(e));
        }
        let lock_epoch = Instant::now();

        // Execute the initial section (not yet committed).
        if let Some(h) = &self.history {
            h.record_begin(txn, SectionKind::Initial);
        }
        let mut undo_initial = UndoLog::new();
        let initial_out = {
            let mut ctx = SectionCtx::new(
                txn,
                SectionKind::Initial,
                &self.store,
                initial_rw,
                &mut undo_initial,
                self.history.as_ref(),
            );
            initial(&mut ctx)
        };
        let initial_out = match initial_out {
            Ok(v) => v,
            Err(e) => {
                undo_initial.rollback(&self.store);
                self.release(txn, &initial_pairs, lock_epoch);
                self.abort(txn, started, None);
                return Err(e);
            }
        };

        // Lock the final section's items *before* initial commit: this is
        // what guarantees the final section cannot abort later.
        if let Err(e) = self.locks.acquire_all(txn, &final_pairs, None) {
            undo_initial.rollback(&self.store);
            self.release(txn, &initial_pairs, lock_epoch);
            self.abort(txn, started, None);
            return Err(TxnError::Aborted(e));
        }

        // Initial commit: the response may now be exposed to the client.
        if let Some(h) = &self.history {
            h.record_commit(txn, SectionKind::Initial);
        }
        self.stats.record_initial_latency(started.elapsed());

        // Wait for the cloud labels — with every lock held.
        await_final_input();

        // Execute the final section. Errors here are application bugs:
        // the protocol guarantees commit, so the section must not fail.
        if let Some(h) = &self.history {
            h.record_begin(txn, SectionKind::Final);
        }
        let mut undo_final = UndoLog::new();
        let final_out = {
            let mut ctx = SectionCtx::new(
                txn,
                SectionKind::Final,
                &self.store,
                final_rw,
                &mut undo_final,
                self.history.as_ref(),
            );
            final_section(&mut ctx)
        };
        let final_out = match final_out {
            Ok(v) => v,
            Err(e) => panic!(
                "final section of {txn} failed after initial commit — \
                 the multi-stage guarantee forbids this: {e}"
            ),
        };

        // Final commit; release everything.
        if let Some(h) = &self.history {
            h.record_commit(txn, SectionKind::Final);
        }
        self.stats.record_commit();
        self.release(txn, &initial_pairs, lock_epoch);
        self.release_quiet(txn, &final_pairs);
        Ok((initial_out, final_out))
    }

    fn release(
        &self,
        txn: TxnId,
        pairs: &[(croesus_store::Key, croesus_store::LockMode)],
        lock_epoch: Instant,
    ) {
        self.stats.record_lock_hold(lock_epoch.elapsed());
        self.release_quiet(txn, pairs);
    }

    fn release_quiet(&self, txn: TxnId, pairs: &[(croesus_store::Key, croesus_store::LockMode)]) {
        self.locks.release_all(txn, pairs.iter().map(|(k, _)| k));
    }

    fn abort(&self, txn: TxnId, _started: Instant, _epoch: Option<Instant>) {
        if let Some(h) = &self.history {
            h.record_abort(txn);
        }
        self.stats.record_abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::{LockPolicy, Value};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    fn executor(policy: LockPolicy) -> TsplExecutor {
        TsplExecutor::new(Arc::new(KvStore::new()), Arc::new(LockManager::new(policy)))
            .with_history(HistoryRecorder::new())
    }

    #[test]
    fn single_transaction_commits_both_sections() {
        let ex = executor(LockPolicy::Block);
        let initial_rw = RwSet::new().read("x");
        let final_rw = RwSet::new().write("x");
        let (i, f) = ex
            .execute(
                TxnId(1),
                &initial_rw,
                &final_rw,
                |ctx| Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0)),
                || {},
                |ctx| {
                    ctx.write("x", 42)?;
                    Ok("done")
                },
            )
            .unwrap();
        assert_eq!(i, 0);
        assert_eq!(f, "done");
        assert_eq!(
            ex.store().get(&"x".into()).as_deref(),
            Some(&Value::Int(42))
        );
        assert_eq!(ex.stats().snapshot().commits, 1);
    }

    #[test]
    fn all_locks_released_after_commit() {
        let ex = executor(LockPolicy::NoWait);
        let rw = RwSet::new().write("a").write("b");
        ex.execute(TxnId(1), &rw, &rw, |_| Ok(()), || {}, |_| Ok(()))
            .unwrap();
        // A second transaction can take everything immediately.
        ex.execute(TxnId(2), &rw, &rw, |_| Ok(()), || {}, |_| Ok(()))
            .unwrap();
    }

    #[test]
    fn initial_section_error_rolls_back_and_aborts() {
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        let r: Result<((), ()), TxnError> = ex.execute(
            TxnId(1),
            &rw,
            &RwSet::new(),
            |ctx| {
                ctx.write("x", 1)?;
                Err(TxnError::Invariant("nope".into()))
            },
            || {},
            |_| Ok(()),
        );
        assert!(r.is_err());
        assert_eq!(ex.store().get(&"x".into()), None, "write rolled back");
        assert_eq!(ex.stats().snapshot().aborts, 1);
        // Locks are free again.
        ex.execute(TxnId(2), &rw, &RwSet::new(), |_| Ok(()), || {}, |_| Ok(()))
            .unwrap();
    }

    #[test]
    fn lock_conflict_aborts_under_nowait() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = Arc::new(TsplExecutor::new(Arc::clone(&store), Arc::clone(&locks)));
        // Hold "x" from outside.
        locks
            .lock(TxnId(99), &"x".into(), croesus_store::LockMode::Exclusive)
            .unwrap();
        let rw = RwSet::new().write("x");
        let r: Result<((), ()), _> = ex.execute(
            TxnId(100),
            &rw,
            &RwSet::new(),
            |_| Ok(()),
            || {},
            |_| Ok(()),
        );
        assert!(matches!(r, Err(TxnError::Aborted(_))));
    }

    #[test]
    fn failed_final_lock_acquisition_rolls_back_initial_writes() {
        let store = Arc::new(KvStore::new());
        store.put("y".into(), Value::Int(0));
        let locks = Arc::new(LockManager::new(LockPolicy::NoWait));
        let ex = TsplExecutor::new(Arc::clone(&store), Arc::clone(&locks));
        // Another holder blocks the *final* set only.
        locks
            .lock(TxnId(1), &"z".into(), croesus_store::LockMode::Exclusive)
            .unwrap();
        let r: Result<((), ()), _> = ex.execute(
            TxnId(2),
            &RwSet::new().write("y"),
            &RwSet::new().write("z"),
            |ctx| {
                ctx.write("y", 7)?;
                Ok(())
            },
            || {},
            |_| Ok(()),
        );
        assert!(r.is_err());
        assert_eq!(
            store.get(&"y".into()).as_deref(),
            Some(&Value::Int(0)),
            "initial write must be undone because initial commit never happened"
        );
    }

    #[test]
    fn conflicting_transactions_serialize_and_satisfy_ms_sr() {
        let history = HistoryRecorder::new();
        let store = Arc::new(KvStore::new());
        store.put("x".into(), Value::Int(0));
        let locks = Arc::new(LockManager::new(LockPolicy::Block));
        let ex =
            Arc::new(TsplExecutor::new(Arc::clone(&store), locks).with_history(history.clone()));
        // The §4.2 increment anomaly: read x in initial, write x+1 in final.
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let ex = Arc::clone(&ex);
                thread::spawn(move || {
                    let initial_rw = RwSet::new().read("x").write("x");
                    let final_rw = RwSet::new().write("x");
                    let ex2 = Arc::clone(&ex);
                    ex.execute(
                        TxnId(i),
                        &initial_rw,
                        &final_rw,
                        move |ctx| Ok(ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0)),
                        || thread::sleep(std::time::Duration::from_millis(5)),
                        move |ctx| {
                            // Re-read inside the final section: locks are
                            // still held so this is the same value.
                            let v = ctx.read("x")?.and_then(|v| v.as_int()).unwrap_or(0);
                            ctx.write("x", v + 1)?;
                            let _ = &ex2;
                            Ok(())
                        },
                    )
                    .unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // No lost updates: x incremented once per transaction.
        assert_eq!(store.get(&"x".into()).as_deref(), Some(&Value::Int(4)));
        let checker = history.checker();
        checker
            .check_ms_sr()
            .expect("TSPL history must satisfy MS-SR");
    }

    #[test]
    fn lock_hold_time_covers_the_final_wait() {
        let ex = executor(LockPolicy::Block);
        let rw = RwSet::new().write("x");
        ex.execute(
            TxnId(1),
            &rw,
            &rw,
            |_| Ok(()),
            || thread::sleep(std::time::Duration::from_millis(25)),
            |_| Ok(()),
        )
        .unwrap();
        let snap = ex.stats().snapshot();
        assert!(
            snap.avg_lock_hold_ms >= 25.0,
            "hold {} must include the cloud wait",
            snap.avg_lock_hold_ms
        );
    }

    #[test]
    fn wait_die_aborts_on_hot_spot_and_retry_succeeds() {
        let store = Arc::new(KvStore::new());
        let locks = Arc::new(LockManager::new(LockPolicy::WaitDie));
        let ex = Arc::new(TsplExecutor::new(store, Arc::clone(&locks)));
        let committed = Arc::new(AtomicU64::new(0));
        let rw = RwSet::new().write("hot");
        let threads: Vec<_> = (0..6)
            .map(|i| {
                let ex = Arc::clone(&ex);
                let committed = Arc::clone(&committed);
                let rw = rw.clone();
                thread::spawn(move || loop {
                    let r: Result<((), ()), _> = ex.execute(
                        TxnId(i),
                        &rw,
                        &RwSet::new(),
                        |_| Ok(()),
                        || thread::sleep(std::time::Duration::from_micros(200)),
                        |_| Ok(()),
                    );
                    if r.is_ok() {
                        committed.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                    thread::yield_now();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(committed.load(Ordering::SeqCst), 6);
    }
}
