//! Protocol instrumentation: commits, aborts, lock-hold times.
//!
//! Figure 6(a) compares MS-SR and MS-IA by "the average latency of holding
//! locks"; Figure 6(b) by abort rate. The executors feed this collector.
//!
//! Every record path is atomic-only ([`croesus_obs::AtomicStat`] — count,
//! sum, `fetch_max`): concurrent executor threads never serialize on a
//! mutex to report a latency, so a hot-spot workload's contention shows up
//! in the lock manager where it belongs, not in its own measurement.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use croesus_obs::AtomicStat;

/// Thread-safe protocol statistics collector.
#[derive(Default)]
pub struct ProtocolStats {
    begun: AtomicU64,
    commits: AtomicU64,
    aborts: AtomicU64,
    lock_hold: AtomicStat,
    initial_latency: AtomicStat,
}

/// A point-in-time snapshot of [`ProtocolStats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StatsSnapshot {
    /// Transactions that have begun (see [`ProtocolStats::record_begin`]).
    pub begun: u64,
    /// Transactions that finally committed.
    pub commits: u64,
    /// Transactions that aborted (always before initial commit).
    pub aborts: u64,
    /// Mean time locks were held per transaction, milliseconds.
    pub avg_lock_hold_ms: f64,
    /// Maximum lock-hold time observed, milliseconds.
    pub max_lock_hold_ms: f64,
    /// Mean latency to initial commit, milliseconds.
    pub avg_initial_latency_ms: f64,
}

impl StatsSnapshot {
    /// Transactions begun but not yet resolved at snapshot time.
    ///
    /// The consistent snapshot guarantees `commits + aborts <= begun`, so
    /// this never wraps; the `saturating_sub` is belt-and-braces for
    /// snapshots taken on collectors that never saw a begin (e.g. drivers
    /// that bypass `begin`).
    pub fn in_flight(&self) -> u64 {
        self.begun.saturating_sub(self.commits + self.aborts)
    }

    /// `aborts / (commits + aborts)`, or 0 when nothing ran.
    pub fn abort_rate(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            0.0
        } else {
            self.aborts as f64 / total as f64
        }
    }
}

impl ProtocolStats {
    /// A fresh collector.
    pub fn new() -> Self {
        ProtocolStats::default()
    }

    /// Record a transaction begin.
    ///
    /// The outcome counters use `SeqCst` rather than `Relaxed`: a begin
    /// must be globally ordered before the commit/abort that resolves it,
    /// or a concurrent snapshot can observe `commits + aborts > begun` —
    /// a transaction that apparently finished before it started. On
    /// x86-64 a `SeqCst` `fetch_add` compiles to the same `lock xadd` as
    /// `Relaxed`, so the hot path costs nothing extra.
    pub fn record_begin(&self) {
        self.begun.fetch_add(1, Ordering::SeqCst);
    }

    /// Record a final commit.
    pub fn record_commit(&self) {
        self.commits.fetch_add(1, Ordering::SeqCst);
    }

    /// Record an abort.
    pub fn record_abort(&self) {
        self.aborts.fetch_add(1, Ordering::SeqCst);
    }

    /// Record how long one transaction held its locks.
    pub fn record_lock_hold(&self, held: Duration) {
        self.lock_hold.record(held);
    }

    /// Record the latency from transaction start to initial commit.
    pub fn record_initial_latency(&self, latency: Duration) {
        self.initial_latency.record(latency);
    }

    /// Current counters and means — a *consistent* snapshot.
    ///
    /// Loads are `SeqCst` and ordered outcomes-before-begun: in the
    /// sequentially-consistent total order, every commit/abort counted
    /// here had its begin recorded first (executors call
    /// [`record_begin`](Self::record_begin) before any outcome), and any
    /// begins that landed between the two loads only *raise* `begun`. A
    /// mid-wave snapshot therefore always satisfies
    /// `commits + aborts <= begun`, which
    /// [`StatsSnapshot::in_flight`] relies on. (The previous independent
    /// `Relaxed` loads could observe an outcome whose begin was missing —
    /// `committed + aborted > begun`.)
    pub fn snapshot(&self) -> StatsSnapshot {
        let commits = self.commits.load(Ordering::SeqCst);
        let aborts = self.aborts.load(Ordering::SeqCst);
        let begun = self.begun.load(Ordering::SeqCst);
        StatsSnapshot {
            begun,
            commits,
            aborts,
            avg_lock_hold_ms: self.lock_hold.mean_ms(),
            max_lock_hold_ms: self.lock_hold.max_ms(),
            avg_initial_latency_ms: self.initial_latency.mean_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let s = ProtocolStats::new();
        s.record_commit();
        s.record_commit();
        s.record_abort();
        let snap = s.snapshot();
        assert_eq!(snap.commits, 2);
        assert_eq!(snap.aborts, 1);
        assert!((snap.abort_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = ProtocolStats::new().snapshot();
        assert_eq!(snap.commits, 0);
        assert_eq!(snap.abort_rate(), 0.0);
        assert_eq!(snap.avg_lock_hold_ms, 0.0);
    }

    #[test]
    fn lock_hold_statistics() {
        let s = ProtocolStats::new();
        s.record_lock_hold(Duration::from_millis(10));
        s.record_lock_hold(Duration::from_millis(30));
        let snap = s.snapshot();
        assert!((snap.avg_lock_hold_ms - 20.0).abs() < 0.5);
        assert!((snap.max_lock_hold_ms - 30.0).abs() < 0.5);
    }

    #[test]
    fn initial_latency_statistics() {
        let s = ProtocolStats::new();
        s.record_initial_latency(Duration::from_millis(4));
        s.record_initial_latency(Duration::from_millis(6));
        assert!((s.snapshot().avg_initial_latency_ms - 5.0).abs() < 0.5);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let s = Arc::new(ProtocolStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        s.record_commit();
                        s.record_lock_hold(Duration::from_micros(100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().commits, 400);
    }

    /// Satellite regression: a snapshot racing many begin→resolve threads
    /// must never observe `commits + aborts > begun` — the old independent
    /// `Relaxed` loads could count an outcome whose begin was missing.
    #[test]
    fn mid_wave_snapshots_are_consistent() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let s = Arc::new(ProtocolStats::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..50_000u64 {
                        s.record_begin();
                        if (i + t) % 3 == 0 {
                            s.record_abort();
                        } else {
                            s.record_commit();
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut checked = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = s.snapshot();
                        assert!(
                            snap.commits + snap.aborts <= snap.begun,
                            "inconsistent snapshot: {} commits + {} aborts > {} begun",
                            snap.commits,
                            snap.aborts,
                            snap.begun
                        );
                        // in_flight is derived from the same invariant.
                        let _ = snap.in_flight();
                        checked += 1;
                    }
                    checked
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0, "reader must have raced the writers");
        }
        let snap = s.snapshot();
        assert_eq!(snap.begun, 200_000);
        assert_eq!(snap.commits + snap.aborts, 200_000);
        assert_eq!(snap.in_flight(), 0);
    }

    /// Contention smoke: many threads hammering every record path at
    /// once must neither lose samples nor serialize on a lock. (The old
    /// implementation funnelled latencies through `Mutex<OnlineStats>`;
    /// this pins the atomic-only replacement's behaviour.)
    #[test]
    fn concurrent_recorders_do_not_block_each_other() {
        use std::sync::{Arc, Barrier};
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let s = Arc::new(ProtocolStats::new());
        let gate = Arc::new(Barrier::new(THREADS));
        let started = std::time::Instant::now();
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                let gate = Arc::clone(&gate);
                std::thread::spawn(move || {
                    gate.wait();
                    for i in 0..PER_THREAD {
                        s.record_commit();
                        s.record_abort();
                        s.record_lock_hold(Duration::from_micros(t as u64 * 100 + i % 50));
                        s.record_initial_latency(Duration::from_micros(i % 100));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.snapshot();
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(snap.commits, total, "no sample lost");
        assert_eq!(snap.aborts, total);
        assert!(snap.avg_lock_hold_ms > 0.0);
        assert!(snap.max_lock_hold_ms >= 0.7, "max across all threads");
        // Generous wall-clock bound: 320k atomic records must complete
        // far faster than any mutex-convoy pathology would allow.
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "recording stalled: {:?}",
            started.elapsed()
        );
    }
}
