//! The wave-parallel edge runtime.
//!
//! §5.2.4's sequencer orders a batch into conflict-free waves precisely so
//! that "within a wave the runner may parallelize freely" — this module is
//! the runner. A [`WorkerPool`] owns N worker threads fed from a bounded
//! [`JobQueue`]; [`WorkerPool::run_wave`] submits one wave of independent
//! jobs and collects their results **in submission order**, so drivers see
//! deterministic output regardless of which worker ran what.
//!
//! Design points:
//!
//! * **`workers == 1` is the inline path**: no threads, no queue, jobs run
//!   on the caller in submission order — byte-identical with the historic
//!   single-threaded pipeline (the golden-pin contract in ROADMAP.md).
//! * **Admission control**: the queue is bounded (default
//!   [`WorkerPool::DEFAULT_QUEUE_FACTOR`] jobs per worker); a submitter
//!   facing a full queue blocks until a worker drains a slot, which is the
//!   backpressure story for bursty client load — bursts queue at the edge
//!   instead of growing unbounded buffers.
//! * **Model-checkable waits**: every wait (queue full, queue empty, wave
//!   completion) is routed through `crate::sched` — the
//!   `croesus_store::sched` hooks under the `mcheck` feature — so the
//!   model checker can drive the queue's interleavings with virtual
//!   tasks. Without a hook installed the waits are plain condvars.
//! * **Panic transparency**: a panicking job is caught on the worker,
//!   carried back, and re-thrown on the submitting thread — lowest
//!   submission index first, so even failure order is deterministic.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A bounded multi-producer/multi-consumer job queue with waits routed
/// through the model-checker hooks.
///
/// This is deliberately a plain `Mutex<VecDeque>` + condvars rather than a
/// lock-free queue: the queue is not the hot path (jobs are whole
/// transaction stages), and the simple shape is what lets mcheck explore
/// every push/pop/close interleaving exhaustively.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    /// Signalled when a job arrives or the queue closes (pop waiters).
    jobs_cv: Condvar,
    /// Signalled when a slot frees up (push waiters — admission control).
    space_cv: Condvar,
    capacity: usize,
}

struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    /// A queue admitting at most `capacity` queued jobs (≥ 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a job, blocking while the queue is at capacity.
    ///
    /// Panics if the queue has been closed — submission after shutdown is
    /// a driver bug, not a recoverable condition.
    pub fn push(&self, job: Job) {
        crate::sched::yield_point("runtime.queue.push");
        let mut job = Some(job);
        loop {
            {
                let mut q = self.inner.lock().unwrap();
                assert!(!q.closed, "job submitted to a closed queue");
                if q.jobs.len() < self.capacity {
                    q.jobs.push_back(job.take().unwrap());
                } else if !crate::sched::active() {
                    // Plain-threads path: park on the condvar until a
                    // worker frees a slot.
                    while q.jobs.len() >= self.capacity && !q.closed {
                        q = self.space_cv.wait(q).unwrap();
                    }
                    assert!(!q.closed, "job submitted to a closed queue");
                    q.jobs.push_back(job.take().unwrap());
                }
            }
            if job.is_none() {
                self.jobs_cv.notify_one();
                crate::sched::progress("runtime.queue.push");
                return;
            }
            // Under the model checker: mark the blocked-on-capacity point
            // (outside the mutex, per the sched call-site rule) and retry
            // once another task makes progress.
            crate::sched::block_point("runtime.queue.full");
        }
    }

    /// Dequeue a job, blocking while the queue is empty; `None` once the
    /// queue is closed *and* drained.
    pub fn pop(&self) -> Option<Job> {
        crate::sched::yield_point("runtime.queue.pop");
        loop {
            let popped = {
                let mut q = self.inner.lock().unwrap();
                if let Some(job) = q.jobs.pop_front() {
                    Some(job)
                } else if q.closed {
                    return None;
                } else if !crate::sched::active() {
                    while q.jobs.is_empty() && !q.closed {
                        q = self.jobs_cv.wait(q).unwrap();
                    }
                    match q.jobs.pop_front() {
                        Some(job) => Some(job),
                        None => return None, // closed and drained
                    }
                } else {
                    None
                }
            };
            if let Some(job) = popped {
                self.space_cv.notify_one();
                crate::sched::progress("runtime.queue.pop");
                return Some(job);
            }
            crate::sched::block_point("runtime.queue.empty");
        }
    }

    /// Close the queue: wakes every waiter; queued jobs still drain.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.jobs_cv.notify_all();
        self.space_cv.notify_all();
        crate::sched::progress("runtime.queue.close");
    }

    /// Jobs currently queued (snapshot; for tests and introspection).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// Whether no jobs are queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission-control bound this queue enforces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Result slots + completion latch for one in-flight wave.
struct WaveState<T> {
    slots: Mutex<Vec<Option<std::thread::Result<T>>>>,
    remaining: AtomicUsize,
    done_cv: Condvar,
}

thread_local! {
    static WORKER_INDEX: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// Index of the pool worker running the current thread (`None` on
/// non-pool threads, `Some(0)` inside inline execution).
pub fn current_worker() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// A per-edge pool of worker threads executing sequencer waves.
///
/// See the module docs for the contract; the short version: results come
/// back in submission order, `workers == 1` runs inline on the caller, and
/// the bounded queue is the admission-control surface.
pub struct WorkerPool {
    queue: Option<Arc<JobQueue>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Queue capacity per worker when none is given explicitly.
    pub const DEFAULT_QUEUE_FACTOR: usize = 4;

    /// A pool of `workers` threads (≥ 1); `workers == 1` is the inline,
    /// thread-free path.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        Self::with_queue_capacity(workers, workers * Self::DEFAULT_QUEUE_FACTOR)
    }

    /// The thread-free single-worker pool (the historic pipeline).
    pub fn inline_pool() -> Self {
        Self::new(1)
    }

    /// A pool with an explicit admission-control bound.
    pub fn with_queue_capacity(workers: usize, capacity: usize) -> Self {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        if workers == 1 {
            return WorkerPool {
                queue: None,
                handles: Vec::new(),
                workers: 1,
            };
        }
        let queue = Arc::new(JobQueue::new(capacity));
        let handles = (0..workers)
            .map(|index| {
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("croesus-worker-{index}"))
                    .spawn(move || {
                        WORKER_INDEX.with(|w| w.set(Some(index)));
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            queue: Some(queue),
            handles,
            workers,
        }
    }

    /// Number of workers (1 means inline execution).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether jobs run inline on the submitting thread.
    pub fn is_inline(&self) -> bool {
        self.queue.is_none()
    }

    /// Execute one wave of independent jobs, returning their results in
    /// submission order. Blocks until the whole wave has completed (waves
    /// execute in order; that barrier is the correctness argument).
    ///
    /// If any job panicked, the panic is re-thrown here — lowest
    /// submission index first.
    pub fn run_wave<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let queue = match &self.queue {
            None => {
                // Inline: submission order IS execution order.
                WORKER_INDEX.with(|w| w.set(Some(0)));
                let out = jobs.into_iter().map(|f| f()).collect();
                WORKER_INDEX.with(|w| w.set(None));
                return out;
            }
            Some(queue) => queue,
        };
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let state: Arc<WaveState<T>> = Arc::new(WaveState {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            remaining: AtomicUsize::new(n),
            done_cv: Condvar::new(),
        });
        for (i, f) in jobs.into_iter().enumerate() {
            let state = Arc::clone(&state);
            // push() blocks when the queue is at capacity: bursty waves
            // drain through the admission bound instead of piling up.
            queue.push(Box::new(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                // Decrement under the slots mutex: the barrier below checks
                // `remaining` while holding it, so the count can never drop
                // between its check and its wait (no lost wakeup).
                let last = {
                    let mut slots = state.slots.lock().unwrap();
                    slots[i] = Some(result);
                    state.remaining.fetch_sub(1, Ordering::AcqRel) == 1
                };
                if last {
                    state.done_cv.notify_all();
                }
            }));
        }
        // Wave barrier: wait until every job has landed its slot. This is a
        // plain condvar even under mcheck — pool workers are real OS
        // threads without sched hooks, so they make real progress; the
        // model checker explores the *queue* with virtual tasks instead.
        {
            let mut slots = state.slots.lock().unwrap();
            while state.remaining.load(Ordering::Acquire) != 0 {
                slots = state.done_cv.wait(slots).unwrap();
            }
        }
        let slots = std::mem::take(&mut *state.slots.lock().unwrap());
        slots
            .into_iter()
            .map(|slot| match slot.expect("wave job left no result") {
                Ok(v) => v,
                Err(payload) => panic::resume_unwind(payload),
            })
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(queue) = &self.queue {
            queue.close();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_pool_runs_jobs_in_submission_order_on_the_caller() {
        let pool = WorkerPool::new(1);
        assert!(pool.is_inline());
        let caller = std::thread::current().id();
        let out = pool.run_wave(
            (0..8)
                .map(|i| {
                    move || {
                        assert_eq!(std::thread::current().id(), caller);
                        assert_eq!(current_worker(), Some(0));
                        i * 10
                    }
                })
                .collect(),
        );
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
        assert_eq!(current_worker(), None, "worker id cleared after the wave");
    }

    #[test]
    fn pooled_wave_returns_results_in_submission_order() {
        let pool = WorkerPool::new(4);
        for _ in 0..20 {
            let out = pool.run_wave(
                (0..32u64)
                    .map(|i| {
                        move || {
                            // Vary job durations so completion order differs
                            // from submission order.
                            if i % 3 == 0 {
                                std::thread::yield_now();
                            }
                            i * i
                        }
                    })
                    .collect(),
            );
            assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn waves_are_a_barrier() {
        // A job from wave 2 must never observe wave 1 incomplete.
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for wave in 0..5u64 {
            let jobs: Vec<_> = (0..6)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    move || {
                        let seen = counter.fetch_add(1, Ordering::SeqCst);
                        assert!(seen >= wave * 6, "job from a later wave ran early");
                    }
                })
                .collect();
            pool.run_wave(jobs);
            assert_eq!(counter.load(Ordering::SeqCst), (wave + 1) * 6);
        }
    }

    #[test]
    fn bounded_queue_applies_backpressure_without_losing_jobs() {
        // Capacity 2 with slow workers: submission must block and drain,
        // and every job still runs exactly once.
        let pool = WorkerPool::with_queue_capacity(2, 2);
        let ran = Arc::new(AtomicU64::new(0));
        let out = pool.run_wave(
            (0..16u64)
                .map(|i| {
                    let ran = Arc::clone(&ran);
                    move || {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        ran.fetch_add(1, Ordering::SeqCst);
                        i
                    }
                })
                .collect(),
        );
        assert_eq!(ran.load(Ordering::SeqCst), 16);
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn workers_report_their_index() {
        let pool = WorkerPool::new(3);
        let out = pool.run_wave(
            (0..24)
                .map(|_| move || current_worker().expect("pool thread has an index"))
                .collect(),
        );
        assert!(out.iter().all(|&w| w < 3));
    }

    #[test]
    fn a_panicking_job_resurfaces_on_the_submitter() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_wave(
                (0..4)
                    .map(|i| move || if i == 2 { panic!("job 2 exploded") } else { i })
                    .collect(),
            )
        }));
        let err = result.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job 2 exploded");
        // The pool survives the panic and keeps serving waves.
        assert_eq!(pool.run_wave(vec![|| 7]), vec![7]);
    }

    #[test]
    fn empty_wave_is_a_no_op() {
        let pool = WorkerPool::new(2);
        let out: Vec<u32> = pool.run_wave(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn closed_queue_drains_then_returns_none() {
        let q = JobQueue::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let hits = Arc::clone(&hits);
            q.push(Box::new(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        q.close();
        while let Some(job) = q.pop() {
            job();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        assert!(q.pop().is_none(), "closed and drained stays None");
    }

    #[test]
    fn dropping_the_pool_joins_its_workers() {
        let ran = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(4);
            let jobs: Vec<_> = (0..8)
                .map(|_| {
                    let ran = Arc::clone(&ran);
                    move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                    }
                })
                .collect();
            pool.run_wave(jobs);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 8);
    }
}
