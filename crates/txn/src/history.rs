//! Execution-history recording and the MS-SR / MS-IA safety checkers.
//!
//! The ordering relation `<h` of §4.3 "represents the ordering relative to
//! the commitment rather than the beginning of the section". The recorder
//! assigns a global sequence number to every event; the checkers read the
//! commit order plus per-section read/write sets and verify:
//!
//! * **MS-SR(a)**: for conflicting `t_k`, `t_j` with `iᵏ <h iʲ`, the final
//!   section `fᵏ` commits after `iᵏ` and before `fʲ`.
//! * **MS-SR(b)**: if `fᵏ` conflicts with `iʲ`, then `fᵏ <h iʲ`.
//! * **MS-IA**: every initial section commits before its final section.
//! * **Section serializability** (assumed by both levels): the conflict
//!   graph over committed *sections* is acyclic.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use croesus_store::{Key, TxnId};

/// Which section of a multi-stage transaction.
///
/// The two-stage model of §4 uses `Initial` and `Final`; the generalized
/// m-stage model of §3.5 adds numbered `Intermediate` sections between
/// them. The derived ordering (`Initial < Intermediate(0) < … < Final`)
/// matches the required commit order within a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SectionKind {
    /// The edge-triggered initial section (stage `s₀`).
    Initial,
    /// An intermediate stage of the generalized model, numbered from 0.
    Intermediate(u16),
    /// The final section (stage `s_{m-1}`), triggered by the most accurate
    /// model's labels.
    Final,
}

impl fmt::Display for SectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionKind::Initial => write!(f, "initial"),
            SectionKind::Intermediate(i) => write!(f, "intermediate[{i}]"),
            SectionKind::Final => write!(f, "final"),
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub enum SectionEvent {
    /// A section began.
    Begin {
        /// Transaction id.
        txn: TxnId,
        /// Section kind.
        section: SectionKind,
        /// Global sequence number.
        seq: u64,
    },
    /// A read was performed.
    Read {
        /// Transaction id.
        txn: TxnId,
        /// Section kind.
        section: SectionKind,
        /// Key read.
        key: Key,
        /// Global sequence number.
        seq: u64,
    },
    /// A write was performed.
    Write {
        /// Transaction id.
        txn: TxnId,
        /// Section kind.
        section: SectionKind,
        /// Key written.
        key: Key,
        /// Global sequence number.
        seq: u64,
    },
    /// A section committed.
    Commit {
        /// Transaction id.
        txn: TxnId,
        /// Section kind.
        section: SectionKind,
        /// Global sequence number.
        seq: u64,
    },
    /// The transaction aborted (before initial commit; §4's guarantee).
    Abort {
        /// Transaction id.
        txn: TxnId,
        /// Global sequence number.
        seq: u64,
    },
}

impl SectionEvent {
    /// The global sequence number of this event.
    pub fn seq(&self) -> u64 {
        match self {
            SectionEvent::Begin { seq, .. }
            | SectionEvent::Read { seq, .. }
            | SectionEvent::Write { seq, .. }
            | SectionEvent::Commit { seq, .. }
            | SectionEvent::Abort { seq, .. } => *seq,
        }
    }
}

#[derive(Default)]
struct Inner {
    events: Vec<SectionEvent>,
    next_seq: u64,
}

/// A thread-safe, shareable history recorder.
#[derive(Clone, Default)]
pub struct HistoryRecorder {
    inner: Arc<Mutex<Inner>>,
}

impl HistoryRecorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        HistoryRecorder::default()
    }

    fn push(&self, f: impl FnOnce(u64) -> SectionEvent) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let ev = f(seq);
        inner.events.push(ev);
    }

    /// Record a section begin.
    pub fn record_begin(&self, txn: TxnId, section: SectionKind) {
        self.push(|seq| SectionEvent::Begin { txn, section, seq });
    }

    /// Record a read.
    pub fn record_read(&self, txn: TxnId, section: SectionKind, key: &Key) {
        let key = key.clone();
        self.push(move |seq| SectionEvent::Read {
            txn,
            section,
            key,
            seq,
        });
    }

    /// Record a write.
    pub fn record_write(&self, txn: TxnId, section: SectionKind, key: &Key) {
        let key = key.clone();
        self.push(move |seq| SectionEvent::Write {
            txn,
            section,
            key,
            seq,
        });
    }

    /// Record a section commit.
    pub fn record_commit(&self, txn: TxnId, section: SectionKind) {
        self.push(|seq| SectionEvent::Commit { txn, section, seq });
    }

    /// Record a transaction abort.
    pub fn record_abort(&self, txn: TxnId) {
        self.push(|seq| SectionEvent::Abort { txn, seq });
    }

    /// Snapshot of all events, in order.
    pub fn events(&self) -> Vec<SectionEvent> {
        self.inner.lock().events.clone()
    }

    /// Build a checker over the current history.
    pub fn checker(&self) -> HistoryChecker {
        HistoryChecker::from_events(self.events())
    }
}

/// A section instance in the analyzed history.
#[derive(Clone, Debug)]
struct SectionInfo {
    txn: TxnId,
    section: SectionKind,
    commit_seq: Option<u64>,
    reads: Vec<Key>,
    writes: Vec<Key>,
}

impl SectionInfo {
    fn conflicts_with(&self, other: &SectionInfo) -> bool {
        let hits = |a: &[Key], b: &[Key]| a.iter().any(|k| b.contains(k));
        hits(&self.writes, &other.writes)
            || hits(&self.writes, &other.reads)
            || hits(&self.reads, &other.writes)
    }
}

/// Analyzes a recorded history against the multi-stage safety conditions.
pub struct HistoryChecker {
    sections: Vec<SectionInfo>,
    aborted: Vec<TxnId>,
}

impl HistoryChecker {
    /// Build from an event stream.
    pub fn from_events(events: Vec<SectionEvent>) -> Self {
        let mut map: HashMap<(TxnId, SectionKind), SectionInfo> = HashMap::new();
        let mut aborted = Vec::new();
        for ev in &events {
            match ev {
                SectionEvent::Begin { txn, section, .. } => {
                    map.entry((*txn, *section)).or_insert_with(|| SectionInfo {
                        txn: *txn,
                        section: *section,
                        commit_seq: None,
                        reads: Vec::new(),
                        writes: Vec::new(),
                    });
                }
                SectionEvent::Read {
                    txn, section, key, ..
                } => {
                    if let Some(s) = map.get_mut(&(*txn, *section)) {
                        s.reads.push(key.clone());
                    }
                }
                SectionEvent::Write {
                    txn, section, key, ..
                } => {
                    if let Some(s) = map.get_mut(&(*txn, *section)) {
                        s.writes.push(key.clone());
                    }
                }
                SectionEvent::Commit { txn, section, seq } => {
                    if let Some(s) = map.get_mut(&(*txn, *section)) {
                        s.commit_seq = Some(*seq);
                    }
                }
                SectionEvent::Abort { txn, .. } => aborted.push(*txn),
            }
        }
        let mut sections: Vec<SectionInfo> = map.into_values().collect();
        sections.sort_by_key(|s| (s.commit_seq, s.txn, s.section));
        HistoryChecker { sections, aborted }
    }

    fn committed(&self, txn: TxnId, kind: SectionKind) -> Option<&SectionInfo> {
        self.sections
            .iter()
            .find(|s| s.txn == txn && s.section == kind && s.commit_seq.is_some())
    }

    /// Committed transaction ids (those whose initial section committed).
    pub fn committed_txns(&self) -> Vec<TxnId> {
        let mut out: Vec<TxnId> = self
            .sections
            .iter()
            .filter(|s| s.section == SectionKind::Initial && s.commit_seq.is_some())
            .map(|s| s.txn)
            .collect();
        out.sort();
        out
    }

    /// Aborted transaction ids.
    pub fn aborted_txns(&self) -> &[TxnId] {
        &self.aborted
    }

    /// The multi-stage base guarantee (also the whole of MS-IA's ordering
    /// condition): every transaction whose initial section committed has a
    /// committed final section, committed after the initial. Transactions
    /// in `still_pending` (final input not yet delivered) are exempt from
    /// the "final committed" half.
    pub fn check_ms_ia(&self, still_pending: &[TxnId]) -> Result<(), String> {
        for s in &self.sections {
            if s.section != SectionKind::Initial {
                continue;
            }
            let Some(init_seq) = s.commit_seq else {
                continue;
            };
            match self.committed(s.txn, SectionKind::Final) {
                Some(f) => {
                    let f_seq = f.commit_seq.expect("committed() implies Some");
                    if f_seq <= init_seq {
                        return Err(format!(
                            "{}: final committed at {} before initial at {}",
                            s.txn, f_seq, init_seq
                        ));
                    }
                }
                None if still_pending.contains(&s.txn) => {}
                None => {
                    return Err(format!("{}: initial committed but final never did", s.txn));
                }
            }
        }
        Ok(())
    }

    /// Generalized stage ordering (§3.5): within each transaction, the
    /// committed sections' commit order must follow the stage order
    /// `Initial < Intermediate(0) < … < Final`.
    pub fn check_stage_order(&self) -> Result<(), String> {
        let mut txns: Vec<TxnId> = self.sections.iter().map(|s| s.txn).collect();
        txns.sort();
        txns.dedup();
        for txn in txns {
            let mut stages: Vec<(&SectionKind, u64)> = self
                .sections
                .iter()
                .filter(|s| s.txn == txn && s.commit_seq.is_some())
                .map(|s| (&s.section, s.commit_seq.expect("filtered to committed")))
                .collect();
            stages.sort_by_key(|(k, _)| **k);
            for pair in stages.windows(2) {
                if pair[0].1 >= pair[1].1 {
                    return Err(format!(
                        "{txn}: section {} committed at {} but {} at {}",
                        pair[0].0, pair[0].1, pair[1].0, pair[1].1
                    ));
                }
            }
        }
        Ok(())
    }

    /// MS-SR conditions (a) and (b) over all conflicting committed pairs.
    pub fn check_ms_sr(&self) -> Result<(), String> {
        // The base guarantee first.
        self.check_ms_ia(&[])?;
        let committed = self.committed_txns();
        for (i, &tk) in committed.iter().enumerate() {
            for &tj in &committed[i + 1..] {
                self.check_ms_sr_pair(tk, tj)?;
                self.check_ms_sr_pair(tj, tk)?;
            }
        }
        Ok(())
    }

    fn check_ms_sr_pair(&self, tk: TxnId, tj: TxnId) -> Result<(), String> {
        let (Some(ik), Some(ij), Some(fk), Some(fj)) = (
            self.committed(tk, SectionKind::Initial),
            self.committed(tj, SectionKind::Initial),
            self.committed(tk, SectionKind::Final),
            self.committed(tj, SectionKind::Final),
        ) else {
            return Ok(());
        };
        let seq = |s: &SectionInfo| s.commit_seq.expect("committed");
        // Only pairs with at least one conflicting section matter (§4.1).
        let conflicting = ik.conflicts_with(ij)
            || ik.conflicts_with(fj)
            || fk.conflicts_with(ij)
            || fk.conflicts_with(fj);
        if !conflicting || seq(ik) >= seq(ij) {
            return Ok(());
        }
        // MS-SR(a): iᵏ <h fᵏ <h fʲ.
        if !(seq(ik) < seq(fk) && seq(fk) < seq(fj)) {
            return Err(format!(
                "MS-SR(a) violated for ({tk},{tj}): i_k={} f_k={} f_j={}",
                seq(ik),
                seq(fk),
                seq(fj)
            ));
        }
        // MS-SR(b): conflict(fᵏ, iʲ) ⟹ fᵏ <h iʲ.
        if fk.conflicts_with(ij) && seq(fk) >= seq(ij) {
            return Err(format!(
                "MS-SR(b) violated for ({tk},{tj}): f_k={} i_j={}",
                seq(fk),
                seq(ij)
            ));
        }
        Ok(())
    }

    /// Conflict-serializability of *sections*: the conflict graph whose
    /// edges follow commit order must be acyclic. Both safety levels assume
    /// "each section is serializable relative to other transactions'
    /// sections" (§4.2).
    pub fn check_section_serializability(&self) -> Result<(), String> {
        let committed: Vec<&SectionInfo> = self
            .sections
            .iter()
            .filter(|s| s.commit_seq.is_some())
            .collect();
        // Edge u→v when u committed before v and they conflict. Since edges
        // always point from earlier commit to later commit, the graph is a
        // DAG by construction *unless* operations interleaved so that a
        // later-committing section's op preceded an earlier-committing
        // section's conflicting op. Our recorder logs op seqs, so detect
        // that: for conflicting sections, all of u's ops on shared keys must
        // precede v's commit consistently. We approximate by checking op
        // windows: max op seq of the earlier-committed section on conflicting
        // keys must be < commit seq of the later, and the later's first
        // conflicting op must be > the earlier's commit... which is exactly
        // section-atomicity under locking. Simpler and sufficient: verify
        // that sections' operation windows on conflicting keys do not
        // interleave.
        for (a_idx, a) in committed.iter().enumerate() {
            for b in committed.iter().skip(a_idx + 1) {
                if a.txn == b.txn || !a.conflicts_with(b) {
                    continue;
                }
                // Windows from the raw events are not retained here; the
                // executors guarantee atomicity by holding locks during
                // execution. This checker validates the *commit order*
                // consistency instead: conflicting sections must have
                // distinct commit seqs (they do, globally ordered) — nothing
                // further to verify at this granularity.
                let (sa, sb) = (
                    a.commit_seq.expect("committed"),
                    b.commit_seq.expect("committed"),
                );
                if sa == sb {
                    return Err(format!(
                        "sections of {} and {} share a commit seq",
                        a.txn, b.txn
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    /// Record a full transaction: initial (read x, write y), later final
    /// (write z). Returns recorder for further composition.
    fn record_txn(
        h: &HistoryRecorder,
        id: u64,
        initial_rw: (&[&str], &[&str]),
        final_rw: (&[&str], &[&str]),
    ) {
        let t = TxnId(id);
        h.record_begin(t, SectionKind::Initial);
        for r in initial_rw.0 {
            h.record_read(t, SectionKind::Initial, &k(r));
        }
        for w in initial_rw.1 {
            h.record_write(t, SectionKind::Initial, &k(w));
        }
        h.record_commit(t, SectionKind::Initial);
        h.record_begin(t, SectionKind::Final);
        for r in final_rw.0 {
            h.record_read(t, SectionKind::Final, &k(r));
        }
        for w in final_rw.1 {
            h.record_write(t, SectionKind::Final, &k(w));
        }
        h.record_commit(t, SectionKind::Final);
    }

    #[test]
    fn sequential_transactions_satisfy_both_levels() {
        let h = HistoryRecorder::new();
        record_txn(&h, 1, (&["x"], &[]), (&[], &["x"]));
        record_txn(&h, 2, (&["x"], &[]), (&[], &["x"]));
        let c = h.checker();
        assert!(c.check_ms_ia(&[]).is_ok());
        assert!(c.check_ms_sr().is_ok());
        assert!(c.check_section_serializability().is_ok());
        assert_eq!(c.committed_txns(), vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn missing_final_fails_ms_ia() {
        let h = HistoryRecorder::new();
        let t = TxnId(1);
        h.record_begin(t, SectionKind::Initial);
        h.record_write(t, SectionKind::Initial, &k("x"));
        h.record_commit(t, SectionKind::Initial);
        let c = h.checker();
        assert!(c.check_ms_ia(&[]).is_err());
        // ... unless the final input simply has not arrived yet.
        assert!(c.check_ms_ia(&[t]).is_ok());
    }

    #[test]
    fn interleaved_finals_fail_ms_sr_but_pass_ms_ia() {
        // The §4.2 anomaly: both initial sections read x, then both finals
        // write x — i1 i2 f1 f2. MS-SR(b) requires f1 <h i2 (they conflict).
        let h = HistoryRecorder::new();
        let (t1, t2) = (TxnId(1), TxnId(2));
        for t in [t1, t2] {
            h.record_begin(t, SectionKind::Initial);
            h.record_read(t, SectionKind::Initial, &k("x"));
            h.record_commit(t, SectionKind::Initial);
        }
        for t in [t1, t2] {
            h.record_begin(t, SectionKind::Final);
            h.record_write(t, SectionKind::Final, &k("x"));
            h.record_commit(t, SectionKind::Final);
        }
        let c = h.checker();
        assert!(c.check_ms_ia(&[]).is_ok(), "MS-IA allows this interleaving");
        assert!(c.check_ms_sr().is_err(), "MS-SR must reject it");
    }

    #[test]
    fn tspl_style_ordering_passes_ms_sr() {
        // i1 f1 i2 f2 — what TSPL produces for conflicting transactions.
        let h = HistoryRecorder::new();
        record_txn(&h, 1, (&["x"], &[]), (&[], &["x"]));
        record_txn(&h, 2, (&["x"], &[]), (&[], &["x"]));
        assert!(h.checker().check_ms_sr().is_ok());
    }

    #[test]
    fn non_conflicting_interleaving_passes_ms_sr() {
        // Interleaved finals are fine when transactions do not conflict.
        let h = HistoryRecorder::new();
        let (t1, t2) = (TxnId(1), TxnId(2));
        h.record_begin(t1, SectionKind::Initial);
        h.record_read(t1, SectionKind::Initial, &k("a"));
        h.record_commit(t1, SectionKind::Initial);
        h.record_begin(t2, SectionKind::Initial);
        h.record_read(t2, SectionKind::Initial, &k("b"));
        h.record_commit(t2, SectionKind::Initial);
        for t in [t2, t1] {
            h.record_begin(t, SectionKind::Final);
            h.record_write(t, SectionKind::Final, &k(if t == t1 { "a" } else { "b" }));
            h.record_commit(t, SectionKind::Final);
        }
        assert!(h.checker().check_ms_sr().is_ok());
    }

    #[test]
    fn final_before_initial_fails() {
        let h = HistoryRecorder::new();
        let t = TxnId(1);
        h.record_begin(t, SectionKind::Final);
        h.record_commit(t, SectionKind::Final);
        h.record_begin(t, SectionKind::Initial);
        h.record_commit(t, SectionKind::Initial);
        assert!(h.checker().check_ms_ia(&[]).is_err());
    }

    #[test]
    fn aborts_are_tracked_and_exempt() {
        let h = HistoryRecorder::new();
        let t = TxnId(9);
        h.record_begin(t, SectionKind::Initial);
        h.record_abort(t);
        let c = h.checker();
        assert_eq!(c.aborted_txns(), &[t]);
        // An aborted transaction never initially committed: no obligation.
        assert!(c.check_ms_ia(&[]).is_ok());
        assert!(c.committed_txns().is_empty());
    }

    #[test]
    fn events_carry_monotonic_seqs() {
        let h = HistoryRecorder::new();
        record_txn(&h, 1, (&["x"], &[]), (&[], &["x"]));
        let evs = h.events();
        for w in evs.windows(2) {
            assert!(w[0].seq() < w[1].seq());
        }
    }
}
