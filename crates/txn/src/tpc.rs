//! Two-phase commit for multi-partition multi-stage transactions (§4.5).
//!
//! "Locking data objects in remote partitions will be performed by sending
//! the lock requests to the remote edge node that is responsible for the
//! partition. ... after the transaction finishes, the partitions engage in a
//! two-phase commit protocol to ensure that the distributed commit is
//! performed in an atomic way." For MS-SR the atomic-commit step runs at
//! the end of the final section only (locks are never released in between);
//! for MS-IA it runs at the end of both sections.
//!
//! Participants here are in-process [`Partition`]s; the [`Participant`]
//! trait allows tests to inject failures (a participant voting no).
//!
//! With a WAL attached ([`Coordinator::with_wal`]), the coordinator logs
//! its phase-1 decision — durably, before any participant enters phase 2.
//! A coordinator crash between the two phases then leaves participants
//! prepared (locks held, writes staged) but *not* in doubt: recovery
//! reads the decision record and finishes phase 2 via
//! [`Coordinator::resolve_in_doubt`]. No decision record means phase 1
//! never completed, and presumed-abort applies.

use std::sync::Arc;

use croesus_store::{Key, Partition, PartitionMap, TxnId, UndoLog, Value};
use croesus_wal::Wal;

/// A participant's prepare vote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// Ready to commit: locks held, writes staged.
    Yes,
    /// Cannot commit; the coordinator must abort globally.
    No,
}

/// A two-phase-commit participant.
pub trait Participant {
    /// Phase 1: attempt to lock and stage the given writes. A `Yes` vote
    /// promises that `commit` will succeed.
    fn prepare(&self, txn: TxnId, writes: &[(Key, Value)]) -> Vote;

    /// Phase 2 (commit): make staged writes durable and release locks.
    fn commit(&self, txn: TxnId);

    /// Phase 2 (abort): discard staged writes and release locks.
    fn abort(&self, txn: TxnId);
}

/// A partition acting as a participant: prepare locks the keys and applies
/// the writes through an undo log; abort rolls the log back.
pub struct PartitionParticipant {
    partition: Arc<Partition>,
    staged: parking_lot::Mutex<Vec<(TxnId, UndoLog, Vec<Key>)>>,
}

impl PartitionParticipant {
    /// Wrap a partition.
    pub fn new(partition: Arc<Partition>) -> Self {
        PartitionParticipant {
            partition,
            staged: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// The wrapped partition.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.partition
    }
}

impl Participant for PartitionParticipant {
    fn prepare(&self, txn: TxnId, writes: &[(Key, Value)]) -> Vote {
        let pairs: Vec<(Key, croesus_store::LockMode)> = writes
            .iter()
            .map(|(k, _)| (k.clone(), croesus_store::LockMode::Exclusive))
            .collect();
        if self.partition.locks.acquire_all(txn, &pairs, None).is_err() {
            return Vote::No;
        }
        let mut undo = UndoLog::new();
        for (k, v) in writes {
            undo.put(&self.partition.store, k.clone(), v.clone());
        }
        let keys = pairs.into_iter().map(|(k, _)| k).collect();
        self.staged.lock().push((txn, undo, keys));
        Vote::Yes
    }

    fn commit(&self, txn: TxnId) {
        let mut staged = self.staged.lock();
        if let Some(pos) = staged.iter().position(|(t, _, _)| *t == txn) {
            let (_, _undo, keys) = staged.remove(pos);
            // Writes already applied; just release.
            self.partition.locks.release_all(txn, keys.iter());
        }
    }

    fn abort(&self, txn: TxnId) {
        let mut staged = self.staged.lock();
        if let Some(pos) = staged.iter().position(|(t, _, _)| *t == txn) {
            let (_, undo, keys) = staged.remove(pos);
            undo.rollback(&self.partition.store);
            self.partition.locks.release_all(txn, keys.iter());
        }
    }
}

/// A participant paired with the writes routed to it.
pub type ParticipantWrites<'a> = (&'a dyn Participant, &'a [(Key, Value)]);

/// Bounded-backoff retry for the coordinator path. Cross-edge commits
/// contend on remote locks (and remote edges stall); rather than failing
/// the client on the first `No` vote, the coordinator retries with
/// exponential backoff up to a cap, then degrades gracefully by reporting
/// the abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (≥ 1); 1 means no retry.
    pub max_attempts: u32,
    /// Backoff before the second attempt, in microseconds; doubles per
    /// attempt.
    pub base_backoff_us: u64,
    /// Backoff ceiling, in microseconds.
    pub max_backoff_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_us: 50,
            max_backoff_us: 800,
        }
    }
}

impl RetryPolicy {
    /// No retries at all — the pre-retry behaviour.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before attempt `attempt` (1-based; attempt 0 is the
    /// first try and waits nothing).
    #[must_use]
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        self.base_backoff_us
            .checked_shl(attempt - 1)
            .unwrap_or(u64::MAX)
            .min(self.max_backoff_us)
    }
}

/// The coordinator: runs 2PC over the partitions owning a write set.
pub struct Coordinator {
    partitions: Arc<PartitionMap>,
    wal: Option<Arc<Wal>>,
    obs: croesus_obs::EdgeObs,
}

/// Result of a coordinated commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TpcOutcome {
    /// All participants voted yes; writes are durable everywhere.
    Committed {
        /// How many partitions participated.
        participants: usize,
    },
    /// Some participant voted no; nothing took effect anywhere.
    Aborted {
        /// How many participants voted before the abort.
        voted: usize,
    },
}

impl Coordinator {
    /// Create a coordinator over a partition map.
    pub fn new(partitions: Arc<PartitionMap>) -> Self {
        Coordinator {
            partitions,
            wal: None,
            obs: croesus_obs::EdgeObs::disabled(),
        }
    }

    /// Log phase-1 decisions to a WAL (synced before phase 2 starts).
    #[must_use]
    pub fn with_wal(mut self, wal: Arc<Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Emit `TpcDecision` events to an observability stream.
    #[must_use]
    pub fn with_obs(mut self, obs: croesus_obs::EdgeObs) -> Self {
        self.obs = obs;
        self
    }

    fn log_decision(&self, txn: TxnId, commit: bool) {
        if let Some(wal) = &self.wal {
            wal.append_tpc_decision(txn, commit)
                .expect("WAL append failed — the 2PC decision must be durable before phase 2");
        }
        self.obs
            .emit_txn(txn.0, croesus_obs::EventKind::TpcDecision { commit });
    }

    /// Log that phase 2 finished: every participant acked, so the decision
    /// entry may be expired from the shadow state. Unsynced on purpose —
    /// losing the record only means a recovering coordinator re-runs an
    /// idempotent phase 2.
    fn log_end(&self, txn: TxnId) {
        if let Some(wal) = &self.wal {
            wal.append_tpc_end(txn)
                .expect("WAL append failed — durability cannot be guaranteed");
        }
    }

    /// Finish phase 2 for an in-doubt transaction after a coordinator
    /// crash: `decision` is what recovery found in the coordinator's log
    /// (`Some(true)` = commit everywhere; `Some(false)` or `None` =
    /// presumed abort — no durable commit decision means phase 1 never
    /// completed, so aborting cannot contradict any acknowledged commit).
    pub fn resolve_in_doubt<'a>(
        decision: Option<bool>,
        txn: TxnId,
        participants: impl IntoIterator<Item = &'a dyn Participant>,
    ) -> TpcOutcome {
        let participants: Vec<&dyn Participant> = participants.into_iter().collect();
        if decision == Some(true) {
            for p in &participants {
                p.commit(txn);
            }
            TpcOutcome::Committed {
                participants: participants.len(),
            }
        } else {
            for p in &participants {
                p.abort(txn);
            }
            TpcOutcome::Aborted {
                voted: participants.len(),
            }
        }
    }

    /// Atomically apply `writes`, which may span partitions.
    pub fn commit_writes(&self, txn: TxnId, writes: &[(Key, Value)]) -> TpcOutcome {
        let keys: Vec<Key> = writes.iter().map(|(k, _)| k.clone()).collect();
        let groups = self.partitions.group_by_partition(keys.iter());
        let participants: Vec<(PartitionParticipant, Vec<(Key, Value)>)> = groups
            .into_iter()
            .map(|(pid, keys)| {
                let part = Arc::clone(
                    self.partitions
                        .get(pid)
                        .expect("group_by_partition returns valid ids"),
                );
                let ws: Vec<(Key, Value)> = writes
                    .iter()
                    .filter(|(k, _)| keys.contains(k))
                    .cloned()
                    .collect();
                (PartitionParticipant::new(part), ws)
            })
            .collect();
        self.run(
            txn,
            participants
                .iter()
                .map(|(p, w)| (p as &dyn Participant, w.as_slice())),
        )
    }

    /// Phase 1 only: collect votes and (with a WAL) durably log the
    /// decision. `Ok(())` means every participant is prepared and the
    /// commit decision is logged — phase 2 may run now, or after a
    /// coordinator crash via [`resolve_in_doubt`](Self::resolve_in_doubt).
    /// `Err(voted)` means some participant refused; everyone who had
    /// already staged is rolled back here (their locks released), and the
    /// abort decision is logged.
    pub fn run_phase1(
        &self,
        txn: TxnId,
        participants: &[ParticipantWrites<'_>],
    ) -> Result<(), usize> {
        let mut voted = 0;
        for (p, writes) in participants {
            crate::sched::yield_point("tpc.prepare");
            match p.prepare(txn, writes) {
                Vote::Yes => voted += 1,
                Vote::No => {
                    self.log_decision(txn, false);
                    // Abort everyone who already voted: staged writes roll
                    // back and every prepared lock is released.
                    for (q, _) in participants.iter().take(voted) {
                        q.abort(txn);
                    }
                    return Err(voted);
                }
            }
        }
        self.log_decision(txn, true);
        crate::sched::yield_point("tpc.decided");
        Ok(())
    }

    /// Run 2PC over explicit participants (for failure-injection tests).
    pub fn run<'a>(
        &self,
        txn: TxnId,
        participants: impl IntoIterator<Item = ParticipantWrites<'a>>,
    ) -> TpcOutcome {
        let participants: Vec<ParticipantWrites<'a>> = participants.into_iter().collect();
        match self.run_phase1(txn, &participants) {
            Ok(()) => {
                // Phase 2: commit everywhere.
                for (p, _) in &participants {
                    crate::sched::yield_point("tpc.phase2.commit");
                    p.commit(txn);
                }
                self.log_end(txn);
                TpcOutcome::Committed {
                    participants: participants.len(),
                }
            }
            Err(voted) => {
                // Phase 1 already rolled the voters back — phase 2 is done.
                self.log_end(txn);
                TpcOutcome::Aborted { voted }
            }
        }
    }

    /// Retry [`commit_writes`](Self::commit_writes) under a bounded
    /// exponential backoff, for write sets that contend with remote
    /// partitions. Returns the final outcome and the attempts spent. An
    /// abort after `max_attempts` is the graceful-degradation signal: the
    /// caller keeps serving edge-local reads and surfaces the abort to the
    /// client instead of wedging.
    pub fn commit_writes_with_retry(
        &self,
        txn: TxnId,
        writes: &[(Key, Value)],
        policy: RetryPolicy,
    ) -> (TpcOutcome, u32) {
        assert!(policy.max_attempts >= 1, "at least one attempt");
        let mut outcome = TpcOutcome::Aborted { voted: 0 };
        for attempt in 0..policy.max_attempts {
            let backoff = policy.backoff_us(attempt);
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_micros(backoff));
            }
            outcome = self.commit_writes(txn, writes);
            if matches!(outcome, TpcOutcome::Committed { .. }) {
                return (outcome, attempt + 1);
            }
        }
        (outcome, policy.max_attempts)
    }

    /// Resolve an in-doubt transaction against this coordinator's **own
    /// decision log** (the same log a cloud replica tails): commit if a
    /// durable commit decision exists, presumed abort otherwise, then
    /// expire the decision. This is the recovery path a new coordinator
    /// epoch runs for every transaction its predecessor left prepared.
    pub fn resolve_from_log<'a>(
        &self,
        txn: TxnId,
        participants: impl IntoIterator<Item = &'a dyn Participant>,
    ) -> TpcOutcome {
        let decision = self.wal.as_ref().and_then(|w| w.tpc_decision(txn));
        let outcome = Self::resolve_in_doubt(decision, txn, participants);
        self.log_end(txn);
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::LockPolicy;

    fn map() -> Arc<PartitionMap> {
        Arc::new(PartitionMap::new(4, LockPolicy::NoWait))
    }

    fn writes(n: u64) -> Vec<(Key, Value)> {
        (0..n)
            .map(|i| (Key::indexed("w", i), Value::Int(i as i64)))
            .collect()
    }

    #[test]
    fn cross_partition_commit_applies_everywhere() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(20);
        let outcome = coord.commit_writes(TxnId(1), &ws);
        assert!(matches!(outcome, TpcOutcome::Committed { participants } if participants > 1));
        for (k, v) in &ws {
            assert_eq!(pm.partition_of(k).store.get(k).as_deref(), Some(&v.clone()));
        }
        // All locks released.
        for p in pm.partitions() {
            assert_eq!(p.locks.locked_keys(), 0);
        }
    }

    #[test]
    fn conflicting_lock_aborts_globally() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(20);
        // Block one key on its home partition.
        let victim = &ws[7].0;
        pm.partition_of(victim)
            .locks
            .lock(TxnId(99), victim, croesus_store::LockMode::Exclusive)
            .unwrap();
        let outcome = coord.commit_writes(TxnId(1), &ws);
        assert!(matches!(outcome, TpcOutcome::Aborted { .. }));
        // Nothing is visible anywhere — atomicity.
        for (k, _) in &ws {
            assert_eq!(pm.partition_of(k).store.get(k), None, "leaked write at {k}");
        }
    }

    #[test]
    fn abort_releases_prepared_locks() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(20);
        let victim = &ws[7].0;
        pm.partition_of(victim)
            .locks
            .lock(TxnId(99), victim, croesus_store::LockMode::Exclusive)
            .unwrap();
        let _ = coord.commit_writes(TxnId(1), &ws);
        pm.partition_of(victim).locks.release(TxnId(99), victim);
        // Retry now succeeds: every previously-prepared lock was released.
        let outcome = coord.commit_writes(TxnId(2), &ws);
        assert!(matches!(outcome, TpcOutcome::Committed { .. }));
    }

    /// A participant that always refuses — simulates a failed edge node.
    struct Refusenik;
    impl Participant for Refusenik {
        fn prepare(&self, _txn: TxnId, _writes: &[(Key, Value)]) -> Vote {
            Vote::No
        }
        fn commit(&self, _txn: TxnId) {}
        fn abort(&self, _txn: TxnId) {}
    }

    #[test]
    fn injected_no_vote_aborts_and_rolls_back() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let part = Arc::clone(&pm.partitions()[0]);
        part.store.put("pre".into(), Value::Int(1));
        let good = PartitionParticipant::new(Arc::clone(&part));
        let bad = Refusenik;
        let ws_good: Vec<(Key, Value)> = vec![("pre".into(), Value::Int(2))];
        let ws_bad: Vec<(Key, Value)> = vec![];
        let outcome = coord.run(
            TxnId(5),
            [
                (&good as &dyn Participant, ws_good.as_slice()),
                (&bad as &dyn Participant, ws_bad.as_slice()),
            ],
        );
        assert_eq!(outcome, TpcOutcome::Aborted { voted: 1 });
        assert_eq!(
            part.store.get(&"pre".into()).as_deref(),
            Some(&Value::Int(1)),
            "good participant's staged write must be rolled back"
        );
        assert_eq!(part.locks.locked_keys(), 0);
    }

    #[test]
    fn coordinator_crash_after_yes_votes_recovers_via_wal_decision() {
        use croesus_wal::{Wal, WalConfig};

        let pm = map();
        let (wal, probe) = Wal::in_memory(WalConfig::group(64));
        let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::new(wal));
        let ws = writes(20);

        // Phase 1 completes: every participant voted Yes (locks held,
        // writes staged) and the commit decision hit the log.
        let keys: Vec<Key> = ws.iter().map(|(k, _)| k.clone()).collect();
        let groups = pm.group_by_partition(keys.iter());
        let participants: Vec<(PartitionParticipant, Vec<(Key, Value)>)> = groups
            .into_iter()
            .map(|(pid, keys)| {
                let part = Arc::clone(pm.get(pid).unwrap());
                let w: Vec<(Key, Value)> = ws
                    .iter()
                    .filter(|(k, _)| keys.contains(k))
                    .cloned()
                    .collect();
                (PartitionParticipant::new(part), w)
            })
            .collect();
        assert!(participants.len() > 1, "the write set must span partitions");
        let pw: Vec<ParticipantWrites<'_>> = participants
            .iter()
            .map(|(p, w)| (p as &dyn Participant, w.as_slice()))
            .collect();
        assert!(coord.run_phase1(TxnId(7), &pw).is_ok());

        // Coordinator crashes before phase 2: participants sit prepared.
        drop(coord);
        for p in pm.partitions() {
            assert!(
                p.locks.locked_keys() > 0 || !ws.iter().any(|(k, _)| pm.partition_of(k).id == p.id),
                "prepared participants still hold their locks"
            );
        }

        // Recovery: the decision record is durable (append_tpc_decision
        // syncs unconditionally, even under a lazy group-commit policy).
        let report = croesus_wal::recover(&probe.durable());
        assert_eq!(report.tpc_decisions, vec![(TxnId(7), true)]);

        // A new coordinator epoch finishes phase 2 from the record.
        let outcome = Coordinator::resolve_in_doubt(
            report
                .tpc_decisions
                .iter()
                .find(|(t, _)| *t == TxnId(7))
                .map(|(_, c)| *c),
            TxnId(7),
            pw.iter().map(|(p, _)| *p),
        );
        assert!(matches!(outcome, TpcOutcome::Committed { .. }));
        for (k, v) in &ws {
            assert_eq!(pm.partition_of(k).store.get(k).as_deref(), Some(&v.clone()));
        }
        for p in pm.partitions() {
            assert_eq!(p.locks.locked_keys(), 0, "every prepared lock released");
        }
    }

    #[test]
    fn in_doubt_txn_without_decision_record_presumes_abort() {
        let pm = map();
        let ws = writes(8);
        let part = Arc::clone(&pm.partitions()[0]);
        let participant = PartitionParticipant::new(Arc::clone(&part));
        assert_eq!(participant.prepare(TxnId(5), &ws), Vote::Yes);
        assert!(part.locks.locked_keys() > 0);

        // No WAL decision found for TxnId(5): presumed abort.
        let outcome =
            Coordinator::resolve_in_doubt(None, TxnId(5), [&participant as &dyn Participant]);
        assert!(matches!(outcome, TpcOutcome::Aborted { .. }));
        for (k, _) in &ws {
            assert_eq!(part.store.get(k), None, "staged write rolled back at {k}");
        }
        assert_eq!(part.locks.locked_keys(), 0);
    }

    #[test]
    fn abort_after_partial_prepare_releases_all_staged_locks() {
        // Two participants vote Yes (staging writes, holding locks), the
        // third refuses: phase 1 must leave zero locks held anywhere and
        // no staged write visible.
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let a = PartitionParticipant::new(Arc::clone(&pm.partitions()[0]));
        let b = PartitionParticipant::new(Arc::clone(&pm.partitions()[1]));
        let bad = Refusenik;
        let ws_a: Vec<(Key, Value)> = vec![("a/1".into(), Value::Int(1))];
        let ws_b: Vec<(Key, Value)> = vec![("b/1".into(), Value::Int(2))];
        let pw: Vec<ParticipantWrites<'_>> = vec![
            (&a as &dyn Participant, ws_a.as_slice()),
            (&b as &dyn Participant, ws_b.as_slice()),
            (&bad as &dyn Participant, &[]),
        ];
        assert_eq!(coord.run_phase1(TxnId(9), &pw), Err(2));
        for p in pm.partitions() {
            assert_eq!(
                p.locks.locked_keys(),
                0,
                "partition {:?} leaked locks",
                p.id
            );
        }
        assert_eq!(pm.partitions()[0].store.get(&"a/1".into()), None);
        assert_eq!(pm.partitions()[1].store.get(&"b/1".into()), None);
    }

    #[test]
    fn abort_decision_is_logged_too() {
        use croesus_wal::{Wal, WalConfig};
        let pm = map();
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::new(wal));
        let bad = Refusenik;
        let pw: Vec<ParticipantWrites<'_>> = vec![(&bad as &dyn Participant, &[])];
        assert!(coord.run_phase1(TxnId(4), &pw).is_err());
        let report = croesus_wal::recover(&probe.durable());
        assert_eq!(report.tpc_decisions, vec![(TxnId(4), false)]);
    }

    #[test]
    fn single_partition_degenerates_to_local_commit() {
        let pm = Arc::new(PartitionMap::new(1, LockPolicy::NoWait));
        let coord = Coordinator::new(Arc::clone(&pm));
        let outcome = coord.commit_writes(TxnId(1), &writes(5));
        assert_eq!(outcome, TpcOutcome::Committed { participants: 1 });
    }

    #[test]
    fn empty_write_set_commits_trivially() {
        let pm = map();
        let coord = Coordinator::new(pm);
        let outcome = coord.commit_writes(TxnId(1), &[]);
        assert_eq!(outcome, TpcOutcome::Committed { participants: 0 });
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff_us: 50,
            max_backoff_us: 800,
        };
        assert_eq!(p.backoff_us(0), 0, "the first try waits nothing");
        assert_eq!(p.backoff_us(1), 50);
        assert_eq!(p.backoff_us(2), 100);
        assert_eq!(p.backoff_us(5), 800, "capped");
        assert_eq!(p.backoff_us(63), 800, "shift overflow saturates at the cap");
    }

    #[test]
    fn retry_commits_once_the_contending_lock_clears() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(8);
        let victim = ws[3].0.clone();
        pm.partition_of(&victim)
            .locks
            .lock(TxnId(99), &victim, croesus_store::LockMode::Exclusive)
            .unwrap();
        // The contender releases while the coordinator is backing off.
        let pm2 = Arc::clone(&pm);
        let v2 = victim.clone();
        let holder = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_micros(2_000));
            pm2.partition_of(&v2).locks.release(TxnId(99), &v2);
        });
        let policy = RetryPolicy {
            max_attempts: 200,
            base_backoff_us: 100,
            max_backoff_us: 1_000,
        };
        let (outcome, attempts) = coord.commit_writes_with_retry(TxnId(1), &ws, policy);
        holder.join().unwrap();
        assert!(matches!(outcome, TpcOutcome::Committed { .. }));
        assert!(attempts >= 2, "the first attempt hit the held lock");
    }

    #[test]
    fn exhausted_retries_degrade_to_a_reported_abort() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(8);
        let victim = &ws[3].0;
        pm.partition_of(victim)
            .locks
            .lock(TxnId(99), victim, croesus_store::LockMode::Exclusive)
            .unwrap();
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 10,
            max_backoff_us: 20,
        };
        let (outcome, attempts) = coord.commit_writes_with_retry(TxnId(1), &ws, policy);
        assert!(matches!(outcome, TpcOutcome::Aborted { .. }));
        assert_eq!(attempts, 3);
        // Nothing leaked anywhere despite three rounds of prepare/abort.
        for (k, _) in &ws {
            assert_eq!(pm.partition_of(k).store.get(k), None);
        }
    }

    #[test]
    fn completed_phase2_expires_the_decision_entry() {
        use croesus_wal::{Wal, WalConfig};
        let pm = map();
        let (wal, _) = Wal::in_memory(WalConfig::group(64));
        let wal = Arc::new(wal);
        let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::clone(&wal));
        for i in 0..100u64 {
            coord.commit_writes(TxnId(i), &writes(6));
        }
        assert_eq!(
            wal.tpc_decision_count(),
            0,
            "every acked phase 2 expired its decision"
        );
    }

    #[test]
    fn resolve_from_log_finishes_phase2_and_expires() {
        use croesus_wal::{Wal, WalConfig};
        let pm = map();
        let (wal, _) = Wal::in_memory(WalConfig::strict());
        let wal = Arc::new(wal);
        let coord = Coordinator::new(Arc::clone(&pm)).with_wal(Arc::clone(&wal));
        let part = Arc::clone(&pm.partitions()[0]);
        let participant = PartitionParticipant::new(Arc::clone(&part));
        let ws: Vec<(Key, Value)> = vec![("k".into(), Value::Int(1))];
        let pw: Vec<ParticipantWrites<'_>> =
            vec![(&participant as &dyn Participant, ws.as_slice())];
        assert!(coord.run_phase1(TxnId(7), &pw).is_ok());
        assert_eq!(wal.tpc_decision(TxnId(7)), Some(true));
        // The old epoch dies here; a new one resolves from the log.
        let outcome = coord.resolve_from_log(TxnId(7), [&participant as &dyn Participant]);
        assert!(matches!(outcome, TpcOutcome::Committed { .. }));
        assert_eq!(part.store.get(&"k".into()).as_deref(), Some(&Value::Int(1)));
        assert_eq!(wal.tpc_decision_count(), 0);
        assert_eq!(part.locks.locked_keys(), 0);
    }
}
