//! Two-phase commit for multi-partition multi-stage transactions (§4.5).
//!
//! "Locking data objects in remote partitions will be performed by sending
//! the lock requests to the remote edge node that is responsible for the
//! partition. ... after the transaction finishes, the partitions engage in a
//! two-phase commit protocol to ensure that the distributed commit is
//! performed in an atomic way." For MS-SR the atomic-commit step runs at
//! the end of the final section only (locks are never released in between);
//! for MS-IA it runs at the end of both sections.
//!
//! Participants here are in-process [`Partition`]s; the [`Participant`]
//! trait allows tests to inject failures (a participant voting no).

use std::sync::Arc;

use croesus_store::{Key, Partition, PartitionMap, TxnId, UndoLog, Value};

/// A participant's prepare vote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Vote {
    /// Ready to commit: locks held, writes staged.
    Yes,
    /// Cannot commit; the coordinator must abort globally.
    No,
}

/// A two-phase-commit participant.
pub trait Participant {
    /// Phase 1: attempt to lock and stage the given writes. A `Yes` vote
    /// promises that `commit` will succeed.
    fn prepare(&self, txn: TxnId, writes: &[(Key, Value)]) -> Vote;

    /// Phase 2 (commit): make staged writes durable and release locks.
    fn commit(&self, txn: TxnId);

    /// Phase 2 (abort): discard staged writes and release locks.
    fn abort(&self, txn: TxnId);
}

/// A partition acting as a participant: prepare locks the keys and applies
/// the writes through an undo log; abort rolls the log back.
pub struct PartitionParticipant {
    partition: Arc<Partition>,
    staged: parking_lot::Mutex<Vec<(TxnId, UndoLog, Vec<Key>)>>,
}

impl PartitionParticipant {
    /// Wrap a partition.
    pub fn new(partition: Arc<Partition>) -> Self {
        PartitionParticipant {
            partition,
            staged: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// The wrapped partition.
    pub fn partition(&self) -> &Arc<Partition> {
        &self.partition
    }
}

impl Participant for PartitionParticipant {
    fn prepare(&self, txn: TxnId, writes: &[(Key, Value)]) -> Vote {
        let pairs: Vec<(Key, croesus_store::LockMode)> = writes
            .iter()
            .map(|(k, _)| (k.clone(), croesus_store::LockMode::Exclusive))
            .collect();
        if self.partition.locks.acquire_all(txn, &pairs, None).is_err() {
            return Vote::No;
        }
        let mut undo = UndoLog::new();
        for (k, v) in writes {
            undo.put(&self.partition.store, k.clone(), v.clone());
        }
        let keys = pairs.into_iter().map(|(k, _)| k).collect();
        self.staged.lock().push((txn, undo, keys));
        Vote::Yes
    }

    fn commit(&self, txn: TxnId) {
        let mut staged = self.staged.lock();
        if let Some(pos) = staged.iter().position(|(t, _, _)| *t == txn) {
            let (_, _undo, keys) = staged.remove(pos);
            // Writes already applied; just release.
            self.partition.locks.release_all(txn, keys.iter());
        }
    }

    fn abort(&self, txn: TxnId) {
        let mut staged = self.staged.lock();
        if let Some(pos) = staged.iter().position(|(t, _, _)| *t == txn) {
            let (_, undo, keys) = staged.remove(pos);
            undo.rollback(&self.partition.store);
            self.partition.locks.release_all(txn, keys.iter());
        }
    }
}

/// A participant paired with the writes routed to it.
pub type ParticipantWrites<'a> = (&'a dyn Participant, &'a [(Key, Value)]);

/// The coordinator: runs 2PC over the partitions owning a write set.
pub struct Coordinator {
    partitions: Arc<PartitionMap>,
}

/// Result of a coordinated commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TpcOutcome {
    /// All participants voted yes; writes are durable everywhere.
    Committed {
        /// How many partitions participated.
        participants: usize,
    },
    /// Some participant voted no; nothing took effect anywhere.
    Aborted {
        /// How many participants voted before the abort.
        voted: usize,
    },
}

impl Coordinator {
    /// Create a coordinator over a partition map.
    pub fn new(partitions: Arc<PartitionMap>) -> Self {
        Coordinator { partitions }
    }

    /// Atomically apply `writes`, which may span partitions.
    pub fn commit_writes(&self, txn: TxnId, writes: &[(Key, Value)]) -> TpcOutcome {
        let keys: Vec<Key> = writes.iter().map(|(k, _)| k.clone()).collect();
        let groups = self.partitions.group_by_partition(keys.iter());
        let participants: Vec<(PartitionParticipant, Vec<(Key, Value)>)> = groups
            .into_iter()
            .map(|(pid, keys)| {
                let part = Arc::clone(
                    self.partitions
                        .get(pid)
                        .expect("group_by_partition returns valid ids"),
                );
                let ws: Vec<(Key, Value)> = writes
                    .iter()
                    .filter(|(k, _)| keys.contains(k))
                    .cloned()
                    .collect();
                (PartitionParticipant::new(part), ws)
            })
            .collect();
        self.run(
            txn,
            participants
                .iter()
                .map(|(p, w)| (p as &dyn Participant, w.as_slice())),
        )
    }

    /// Run 2PC over explicit participants (for failure-injection tests).
    pub fn run<'a>(
        &self,
        txn: TxnId,
        participants: impl IntoIterator<Item = ParticipantWrites<'a>>,
    ) -> TpcOutcome {
        let participants: Vec<ParticipantWrites<'a>> = participants.into_iter().collect();
        // Phase 1: collect votes.
        let mut voted = 0;
        for (p, writes) in &participants {
            match p.prepare(txn, writes) {
                Vote::Yes => voted += 1,
                Vote::No => {
                    // Phase 2: abort everyone who already voted.
                    for (q, _) in participants.iter().take(voted) {
                        q.abort(txn);
                    }
                    return TpcOutcome::Aborted { voted };
                }
            }
        }
        // Phase 2: commit everywhere.
        for (p, _) in &participants {
            p.commit(txn);
        }
        TpcOutcome::Committed {
            participants: participants.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_store::LockPolicy;

    fn map() -> Arc<PartitionMap> {
        Arc::new(PartitionMap::new(4, LockPolicy::NoWait))
    }

    fn writes(n: u64) -> Vec<(Key, Value)> {
        (0..n)
            .map(|i| (Key::indexed("w", i), Value::Int(i as i64)))
            .collect()
    }

    #[test]
    fn cross_partition_commit_applies_everywhere() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(20);
        let outcome = coord.commit_writes(TxnId(1), &ws);
        assert!(matches!(outcome, TpcOutcome::Committed { participants } if participants > 1));
        for (k, v) in &ws {
            assert_eq!(pm.partition_of(k).store.get(k).as_deref(), Some(&v.clone()));
        }
        // All locks released.
        for p in pm.partitions() {
            assert_eq!(p.locks.locked_keys(), 0);
        }
    }

    #[test]
    fn conflicting_lock_aborts_globally() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(20);
        // Block one key on its home partition.
        let victim = &ws[7].0;
        pm.partition_of(victim)
            .locks
            .lock(TxnId(99), victim, croesus_store::LockMode::Exclusive)
            .unwrap();
        let outcome = coord.commit_writes(TxnId(1), &ws);
        assert!(matches!(outcome, TpcOutcome::Aborted { .. }));
        // Nothing is visible anywhere — atomicity.
        for (k, _) in &ws {
            assert_eq!(pm.partition_of(k).store.get(k), None, "leaked write at {k}");
        }
    }

    #[test]
    fn abort_releases_prepared_locks() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let ws = writes(20);
        let victim = &ws[7].0;
        pm.partition_of(victim)
            .locks
            .lock(TxnId(99), victim, croesus_store::LockMode::Exclusive)
            .unwrap();
        let _ = coord.commit_writes(TxnId(1), &ws);
        pm.partition_of(victim).locks.release(TxnId(99), victim);
        // Retry now succeeds: every previously-prepared lock was released.
        let outcome = coord.commit_writes(TxnId(2), &ws);
        assert!(matches!(outcome, TpcOutcome::Committed { .. }));
    }

    /// A participant that always refuses — simulates a failed edge node.
    struct Refusenik;
    impl Participant for Refusenik {
        fn prepare(&self, _txn: TxnId, _writes: &[(Key, Value)]) -> Vote {
            Vote::No
        }
        fn commit(&self, _txn: TxnId) {}
        fn abort(&self, _txn: TxnId) {}
    }

    #[test]
    fn injected_no_vote_aborts_and_rolls_back() {
        let pm = map();
        let coord = Coordinator::new(Arc::clone(&pm));
        let part = Arc::clone(&pm.partitions()[0]);
        part.store.put("pre".into(), Value::Int(1));
        let good = PartitionParticipant::new(Arc::clone(&part));
        let bad = Refusenik;
        let ws_good: Vec<(Key, Value)> = vec![("pre".into(), Value::Int(2))];
        let ws_bad: Vec<(Key, Value)> = vec![];
        let outcome = coord.run(
            TxnId(5),
            [
                (&good as &dyn Participant, ws_good.as_slice()),
                (&bad as &dyn Participant, ws_bad.as_slice()),
            ],
        );
        assert_eq!(outcome, TpcOutcome::Aborted { voted: 1 });
        assert_eq!(
            part.store.get(&"pre".into()).as_deref(),
            Some(&Value::Int(1)),
            "good participant's staged write must be rolled back"
        );
        assert_eq!(part.locks.locked_keys(), 0);
    }

    #[test]
    fn single_partition_degenerates_to_local_commit() {
        let pm = Arc::new(PartitionMap::new(1, LockPolicy::NoWait));
        let coord = Coordinator::new(Arc::clone(&pm));
        let outcome = coord.commit_writes(TxnId(1), &writes(5));
        assert_eq!(outcome, TpcOutcome::Committed { participants: 1 });
    }

    #[test]
    fn empty_write_set_commits_trivially() {
        let pm = map();
        let coord = Coordinator::new(pm);
        let outcome = coord.commit_writes(TxnId(1), &[]);
        assert_eq!(outcome, TpcOutcome::Committed { participants: 0 });
    }
}
