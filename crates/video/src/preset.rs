//! The paper's five evaluation videos as scene presets.
//!
//! §5.1: "Experiments run on a subset of five types of videos: Street
//! traffic (vehicles), street traffic (pedestrians), mall surveillance (all
//! three querying for 'person'), airport runway querying for 'airplane',
//! and home video of pet in the park querying for 'dog'."
//!
//! Figure 2 / Table 1 name them v1 (park), v2 (street traffic), v3 (airport
//! runway) and v4 (mall surveillance). The presets encode the qualitative
//! properties the paper attributes to each:
//!
//! * **Airport runway** — large, unmistakable objects; the edge model
//!   detects with high confidence, so the optimal bandwidth utilization is
//!   near 0% and edge-only accuracy is already high (§5.2.1, §5.2.2).
//! * **Mall surveillance** — "objects are smaller and not as clear", so
//!   edge detections are poor and cloud validation improves accuracy
//!   dramatically (§5.2.3, Fig 5b).
//! * **Street traffic / park** — in between.

use crate::label::{classes, LabelClass};
use crate::scene::{SceneConfig, Video};

/// One of the paper's five video types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VideoPreset {
    /// v1 — home video of a pet in the park, querying "dog".
    ParkDog,
    /// v2 — street traffic, querying "car" (vehicles).
    StreetTraffic,
    /// v3 — airport runway, querying "airplane".
    AirportRunway,
    /// v4 — mall surveillance, querying "person".
    MallSurveillance,
    /// The fifth paper video — street traffic querying "person"
    /// (pedestrians); used by Fig 5(a).
    StreetPedestrians,
}

impl VideoPreset {
    /// All presets, in paper order v1..v4 plus the pedestrian video.
    pub const ALL: [VideoPreset; 5] = [
        VideoPreset::ParkDog,
        VideoPreset::StreetTraffic,
        VideoPreset::AirportRunway,
        VideoPreset::MallSurveillance,
        VideoPreset::StreetPedestrians,
    ];

    /// The four videos of Figure 2 / Table 1, in order v1..v4.
    pub const FIG2: [VideoPreset; 4] = [
        VideoPreset::ParkDog,
        VideoPreset::StreetTraffic,
        VideoPreset::AirportRunway,
        VideoPreset::MallSurveillance,
    ];

    /// The paper's short identifier for this video, when it has one.
    pub fn paper_id(&self) -> &'static str {
        match self {
            VideoPreset::ParkDog => "v1",
            VideoPreset::StreetTraffic => "v2",
            VideoPreset::AirportRunway => "v3",
            VideoPreset::MallSurveillance => "v4",
            VideoPreset::StreetPedestrians => "v5",
        }
    }

    /// Human-readable description.
    pub fn description(&self) -> &'static str {
        match self {
            VideoPreset::ParkDog => "pet in the park (dog)",
            VideoPreset::StreetTraffic => "street traffic (vehicles)",
            VideoPreset::AirportRunway => "airport runway (airplane)",
            VideoPreset::MallSurveillance => "mall surveillance (person)",
            VideoPreset::StreetPedestrians => "street traffic (pedestrians)",
        }
    }

    /// The query class for this video.
    pub fn query(&self) -> LabelClass {
        match self {
            VideoPreset::ParkDog => classes::dog(),
            VideoPreset::StreetTraffic => classes::car(),
            VideoPreset::AirportRunway => classes::airplane(),
            VideoPreset::MallSurveillance | VideoPreset::StreetPedestrians => classes::person(),
        }
    }

    /// The scene configuration for this preset.
    pub fn config(&self) -> SceneConfig {
        let base = SceneConfig::default();
        match self {
            VideoPreset::ParkDog => SceneConfig {
                name: "park (dog)".to_string(),
                classes: vec![(classes::dog(), 1.0), (classes::person(), 0.6)],
                query_class: classes::dog(),
                initial_objects: 2,
                spawn_rate: 0.06,
                mean_lifetime: 140.0,
                size_range: (0.06, 0.2),
                speed: 0.006,
                clarity_base: 0.55,
                clarity_spread: 0.18,
                ..base
            },
            VideoPreset::StreetTraffic => SceneConfig {
                name: "street traffic (vehicles)".to_string(),
                classes: vec![
                    (classes::car(), 1.0),
                    (classes::bus(), 0.25),
                    (classes::person(), 0.4),
                ],
                query_class: classes::car(),
                initial_objects: 4,
                spawn_rate: 0.25,
                mean_lifetime: 70.0,
                size_range: (0.05, 0.22),
                speed: 0.008,
                clarity_base: 0.58,
                clarity_spread: 0.16,
                ..base
            },
            VideoPreset::AirportRunway => SceneConfig {
                name: "airport runway (airplane)".to_string(),
                classes: vec![(classes::airplane(), 1.0)],
                query_class: classes::airplane(),
                initial_objects: 1,
                spawn_rate: 0.02,
                mean_lifetime: 220.0,
                size_range: (0.3, 0.55),
                speed: 0.003,
                clarity_base: 0.9,
                clarity_spread: 0.05,
                ..base
            },
            VideoPreset::MallSurveillance => SceneConfig {
                name: "mall surveillance (person)".to_string(),
                classes: vec![(classes::person(), 1.0)],
                query_class: classes::person(),
                initial_objects: 6,
                spawn_rate: 0.35,
                mean_lifetime: 60.0,
                size_range: (0.03, 0.09),
                speed: 0.005,
                clarity_base: 0.38,
                clarity_spread: 0.14,
                ..base
            },
            VideoPreset::StreetPedestrians => SceneConfig {
                name: "street traffic (pedestrians)".to_string(),
                classes: vec![(classes::person(), 1.0), (classes::car(), 0.5)],
                query_class: classes::person(),
                initial_objects: 4,
                spawn_rate: 0.3,
                mean_lifetime: 80.0,
                size_range: (0.04, 0.12),
                speed: 0.006,
                clarity_base: 0.5,
                clarity_spread: 0.16,
                ..base
            },
        }
    }

    /// Generate the video for this preset with a number of frames and seed.
    pub fn generate(&self, num_frames: u64, seed: u64) -> Video {
        let config = SceneConfig {
            num_frames,
            ..self.config()
        };
        Video::generate(config, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate() {
        for p in VideoPreset::ALL {
            let v = p.generate(60, 42);
            assert_eq!(v.len(), 60);
            assert!(!v.tracks.is_empty(), "{p:?} has no objects");
        }
    }

    #[test]
    fn query_class_matches_scene_config() {
        for p in VideoPreset::ALL {
            assert_eq!(p.config().query_class, p.query());
        }
    }

    #[test]
    fn paper_ids_are_v1_to_v4_for_fig2() {
        let ids: Vec<&str> = VideoPreset::FIG2.iter().map(|p| p.paper_id()).collect();
        assert_eq!(ids, vec!["v1", "v2", "v3", "v4"]);
    }

    #[test]
    fn airport_is_clearest_mall_is_hardest() {
        let airport = VideoPreset::AirportRunway.config().clarity_base;
        let mall = VideoPreset::MallSurveillance.config().clarity_base;
        assert!(airport > 0.8);
        assert!(mall < 0.45);
        for p in VideoPreset::ALL {
            let c = p.config().clarity_base;
            assert!(c >= mall - 1e-9, "{p:?} clearer than mall");
            assert!(c <= airport + 1e-9, "{p:?} darker than airport");
        }
    }

    #[test]
    fn airport_objects_are_large_mall_objects_small() {
        let airport = VideoPreset::AirportRunway.config();
        let mall = VideoPreset::MallSurveillance.config();
        assert!(airport.size_range.0 > mall.size_range.1);
    }

    #[test]
    fn query_objects_exist_in_every_preset() {
        for p in VideoPreset::ALL {
            let v = p.generate(120, 9);
            assert!(v.query_instance_count() > 0, "{p:?} has no query objects");
        }
    }

    #[test]
    fn presets_are_deterministic() {
        let a = VideoPreset::StreetTraffic.generate(50, 5);
        let b = VideoPreset::StreetTraffic.generate(50, 5);
        assert_eq!(a.tracks.len(), b.tracks.len());
    }
}
