//! Tracked objects: the ground truth behind a synthetic video.

use crate::bbox::BoundingBox;
use crate::label::LabelClass;

/// A unique identifier for a tracked object within one video.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

/// An object that exists over a span of frames and moves linearly.
///
/// Objects carry a latent *clarity* in `[0, 1]`: how visually unambiguous the
/// object is (size, contrast, occlusion all folded into one number). The
/// detector simulator maps clarity to detection probability and confidence.
#[derive(Clone, Debug)]
pub struct TrackedObject {
    /// Stable identity across frames.
    pub id: ObjectId,
    /// Ground-truth class.
    pub class: LabelClass,
    /// Bounding box at `spawn_frame`.
    pub initial_bbox: BoundingBox,
    /// Per-frame translation (fractions of the frame per frame).
    pub velocity: (f64, f64),
    /// First frame (inclusive) in which the object is visible.
    pub spawn_frame: u64,
    /// Last frame (exclusive); the object is gone from this frame on.
    pub despawn_frame: u64,
    /// Latent visual clarity in `[0, 1]`.
    pub clarity: f64,
}

impl TrackedObject {
    /// Whether the object is visible in `frame`.
    pub fn visible_at(&self, frame: u64) -> bool {
        frame >= self.spawn_frame && frame < self.despawn_frame && !self.bbox_at(frame).is_empty()
    }

    /// The object's bounding box at `frame` (linear motion, clamped to the
    /// frame). Meaningful only when `visible_at(frame)`.
    pub fn bbox_at(&self, frame: u64) -> BoundingBox {
        let dt = frame.saturating_sub(self.spawn_frame) as f64;
        self.initial_bbox
            .translated(self.velocity.0 * dt, self.velocity.1 * dt)
    }

    /// The ground-truth snapshot of this object at `frame`.
    pub fn at(&self, frame: u64) -> GroundTruthObject {
        GroundTruthObject {
            id: self.id,
            class: self.class.clone(),
            bbox: self.bbox_at(frame),
            clarity: self.clarity,
        }
    }

    /// Number of frames the object is visible for.
    pub fn lifetime(&self) -> u64 {
        self.despawn_frame.saturating_sub(self.spawn_frame)
    }
}

/// The per-frame snapshot of a tracked object: what a perfect detector
/// would report, plus the latent clarity used by imperfect detectors.
#[derive(Clone, Debug)]
pub struct GroundTruthObject {
    /// Identity of the underlying tracked object.
    pub id: ObjectId,
    /// Ground-truth class.
    pub class: LabelClass,
    /// Ground-truth box in this frame.
    pub bbox: BoundingBox,
    /// Latent visual clarity in `[0, 1]`.
    pub clarity: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj() -> TrackedObject {
        TrackedObject {
            id: ObjectId(1),
            class: LabelClass::new("car"),
            initial_bbox: BoundingBox::new(0.1, 0.4, 0.2, 0.2),
            velocity: (0.01, 0.0),
            spawn_frame: 10,
            despawn_frame: 50,
            clarity: 0.7,
        }
    }

    #[test]
    fn visibility_window() {
        let o = obj();
        assert!(!o.visible_at(9));
        assert!(o.visible_at(10));
        assert!(o.visible_at(49));
        assert!(!o.visible_at(50));
        assert_eq!(o.lifetime(), 40);
    }

    #[test]
    fn linear_motion() {
        let o = obj();
        let b10 = o.bbox_at(10);
        let b20 = o.bbox_at(20);
        assert!((b20.x - (b10.x + 0.1)).abs() < 1e-12);
        assert_eq!(b10.y, b20.y);
    }

    #[test]
    fn motion_clamps_at_frame_edge() {
        let mut o = obj();
        o.velocity = (0.1, 0.0);
        let late = o.bbox_at(49);
        assert!(late.x + late.w <= 1.0 + 1e-12);
    }

    #[test]
    fn object_leaving_frame_becomes_invisible() {
        let mut o = obj();
        // Fast object: fully out of frame well before despawn.
        o.velocity = (0.2, 0.0);
        // After enough frames the clamped box has zero width.
        let visible_frames: Vec<u64> = (10..50).filter(|&f| o.visible_at(f)).collect();
        assert!(
            visible_frames.len() < 40,
            "object should exit the frame early"
        );
        assert!(o.visible_at(10));
    }

    #[test]
    fn snapshot_carries_identity_and_clarity() {
        let o = obj();
        let g = o.at(15);
        assert_eq!(g.id, ObjectId(1));
        assert_eq!(g.class, LabelClass::new("car"));
        assert_eq!(g.clarity, 0.7);
        assert_eq!(g.bbox, o.bbox_at(15));
    }
}
