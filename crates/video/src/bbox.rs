//! Axis-aligned bounding boxes in normalized frame coordinates.

/// An axis-aligned bounding box with corners in `[0, 1]²` (fractions of the
/// frame width/height). Stored as `(x, y)` of the top-left corner plus
/// width/height.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundingBox {
    /// Left edge, in `[0, 1]`.
    pub x: f64,
    /// Top edge, in `[0, 1]`.
    pub y: f64,
    /// Width, in `[0, 1]`.
    pub w: f64,
    /// Height, in `[0, 1]`.
    pub h: f64,
}

impl BoundingBox {
    /// Construct a box, clamping it to the frame. Degenerate inputs (negative
    /// extents) clamp to zero size.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        let x = x.clamp(0.0, 1.0);
        let y = y.clamp(0.0, 1.0);
        let w = w.max(0.0).min(1.0 - x);
        let h = h.max(0.0).min(1.0 - y);
        BoundingBox { x, y, w, h }
    }

    /// A box centred at `(cx, cy)` with the given extents, clamped to frame.
    pub fn centered(cx: f64, cy: f64, w: f64, h: f64) -> Self {
        BoundingBox::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Box area (0 for degenerate boxes).
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Whether the box has zero area.
    pub fn is_empty(&self) -> bool {
        self.area() == 0.0
    }

    /// Centre point.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Euclidean distance from the box centre to the frame centre
    /// `(0.5, 0.5)`. Task 2 of the paper's example application picks "the
    /// label that is closest to the center of the frame".
    pub fn distance_to_frame_center(&self) -> f64 {
        let (cx, cy) = self.center();
        ((cx - 0.5).powi(2) + (cy - 0.5).powi(2)).sqrt()
    }

    /// Area of the intersection with `other`.
    pub fn intersection_area(&self, other: &BoundingBox) -> f64 {
        let ix = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let iy = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        if ix <= 0.0 || iy <= 0.0 {
            0.0
        } else {
            ix * iy
        }
    }

    /// Intersection-over-union with `other`; 0 when both are degenerate.
    pub fn iou(&self, other: &BoundingBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Fraction of the *smaller* box covered by the intersection. This is the
    /// "overlap more than X%" test used when matching edge labels to cloud
    /// labels (§3.3.2): lenient to scale differences between the two models'
    /// boxes.
    pub fn overlap_fraction(&self, other: &BoundingBox) -> f64 {
        let inter = self.intersection_area(other);
        let min_area = self.area().min(other.area());
        if min_area <= 0.0 {
            0.0
        } else {
            inter / min_area
        }
    }

    /// Whether the overlap fraction with `other` exceeds `threshold`
    /// (a value in `[0, 1]`).
    pub fn overlaps(&self, other: &BoundingBox, threshold: f64) -> bool {
        self.overlap_fraction(other) > threshold
    }

    /// A copy of this box translated by `(dx, dy)` and re-clamped to the
    /// frame.
    pub fn translated(&self, dx: f64, dy: f64) -> BoundingBox {
        BoundingBox::new(self.x + dx, self.y + dy, self.w, self.h)
    }

    /// A copy jittered by the given offsets applied to position and size —
    /// used by the detector simulator to imitate imperfect localization.
    pub fn jittered(&self, dx: f64, dy: f64, dw: f64, dh: f64) -> BoundingBox {
        BoundingBox::new(
            self.x + dx,
            self.y + dy,
            (self.w + dw).max(0.005),
            (self.h + dh).max(0.005),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_to_frame() {
        let b = BoundingBox::new(-0.5, 0.9, 2.0, 0.5);
        assert_eq!(b.x, 0.0);
        assert_eq!(b.w, 1.0);
        assert_eq!(b.y, 0.9);
        assert!((b.h - 0.1).abs() < 1e-12);
    }

    #[test]
    fn negative_extent_clamps_to_zero() {
        let b = BoundingBox::new(0.5, 0.5, -0.1, -0.1);
        assert!(b.is_empty());
        assert_eq!(b.area(), 0.0);
    }

    #[test]
    fn centered_constructor() {
        let b = BoundingBox::centered(0.5, 0.5, 0.2, 0.4);
        assert!((b.x - 0.4).abs() < 1e-12);
        assert!((b.y - 0.3).abs() < 1e-12);
        let (cx, cy) = b.center();
        assert!((cx - 0.5).abs() < 1e-12);
        assert!((cy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_boxes_have_full_iou() {
        let b = BoundingBox::new(0.1, 0.1, 0.3, 0.3);
        assert!((b.iou(&b) - 1.0).abs() < 1e-12);
        assert!((b.overlap_fraction(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_boxes_have_zero_overlap() {
        let a = BoundingBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BoundingBox::new(0.5, 0.5, 0.2, 0.2);
        assert_eq!(a.intersection_area(&b), 0.0);
        assert_eq!(a.iou(&b), 0.0);
        assert!(!a.overlaps(&b, 0.1));
    }

    #[test]
    fn touching_boxes_have_zero_overlap() {
        let a = BoundingBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BoundingBox::new(0.2, 0.0, 0.2, 0.2);
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn partial_overlap_values() {
        let a = BoundingBox::new(0.0, 0.0, 0.4, 0.4);
        let b = BoundingBox::new(0.2, 0.2, 0.4, 0.4);
        let inter = a.intersection_area(&b);
        assert!((inter - 0.04).abs() < 1e-12);
        let iou = a.iou(&b);
        assert!((iou - 0.04 / 0.28).abs() < 1e-12);
        assert!((a.overlap_fraction(&b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn small_box_inside_large_box_has_full_overlap_fraction() {
        let small = BoundingBox::new(0.4, 0.4, 0.1, 0.1);
        let large = BoundingBox::new(0.2, 0.2, 0.6, 0.6);
        assert!((small.overlap_fraction(&large) - 1.0).abs() < 1e-12);
        assert!(small.iou(&large) < 0.1);
        // The paper's 10% overlap rule matches these; IoU would not.
        assert!(small.overlaps(&large, 0.10));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = BoundingBox::new(0.0, 0.0, 0.5, 0.5);
        let b = BoundingBox::new(0.25, 0.25, 0.5, 0.5);
        assert!((a.overlap_fraction(&b) - b.overlap_fraction(&a)).abs() < 1e-12);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_boxes_zero_metrics() {
        let z = BoundingBox::new(0.5, 0.5, 0.0, 0.0);
        let b = BoundingBox::new(0.4, 0.4, 0.3, 0.3);
        assert_eq!(z.iou(&b), 0.0);
        assert_eq!(z.overlap_fraction(&b), 0.0);
        assert_eq!(z.iou(&z), 0.0);
    }

    #[test]
    fn translation_and_clamping() {
        let b = BoundingBox::new(0.8, 0.8, 0.1, 0.1);
        let t = b.translated(0.5, 0.0);
        assert!(t.x <= 1.0);
        assert!(t.x + t.w <= 1.0 + 1e-12);
    }

    #[test]
    fn jitter_keeps_minimum_size() {
        let b = BoundingBox::new(0.5, 0.5, 0.01, 0.01);
        let j = b.jittered(0.0, 0.0, -1.0, -1.0);
        assert!(j.w >= 0.004 && j.h >= 0.004);
    }

    #[test]
    fn distance_to_frame_center() {
        let centered = BoundingBox::centered(0.5, 0.5, 0.1, 0.1);
        assert!(centered.distance_to_frame_center() < 1e-12);
        let corner = BoundingBox::new(0.0, 0.0, 0.1, 0.1);
        assert!(corner.distance_to_frame_center() > 0.5);
    }
}
