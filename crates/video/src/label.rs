//! Label classes.
//!
//! A label class is the name a detection model assigns to an object
//! ("person", "car", ...). Classes are interned behind an `Arc<str>` so they
//! are cheap to clone and hash — detections are produced per frame at video
//! rate and flow through the whole pipeline.

use std::fmt;
use std::sync::Arc;

/// An interned object-class name.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelClass(Arc<str>);

impl LabelClass {
    /// Create a class from a name.
    pub fn new(name: &str) -> Self {
        LabelClass(Arc::from(name))
    }

    /// The class name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl From<&str> for LabelClass {
    fn from(name: &str) -> Self {
        LabelClass::new(name)
    }
}

impl From<String> for LabelClass {
    fn from(name: String) -> Self {
        LabelClass(Arc::from(name.as_str()))
    }
}

impl fmt::Debug for LabelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LabelClass({})", self.0)
    }
}

impl fmt::Display for LabelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Common classes used by the paper's workloads, provided for convenience.
pub mod classes {
    use super::LabelClass;

    /// "person" — mall surveillance / pedestrian queries.
    pub fn person() -> LabelClass {
        LabelClass::new("person")
    }
    /// "car" — street traffic query.
    pub fn car() -> LabelClass {
        LabelClass::new("car")
    }
    /// "bus" — the optimization-formulation example object.
    pub fn bus() -> LabelClass {
        LabelClass::new("bus")
    }
    /// "airplane" — airport runway query.
    pub fn airplane() -> LabelClass {
        LabelClass::new("airplane")
    }
    /// "dog" — pet-in-the-park query.
    pub fn dog() -> LabelClass {
        LabelClass::new("dog")
    }
    /// "building" — the smart-campus AR example (§2.1).
    pub fn building() -> LabelClass {
        LabelClass::new("building")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_by_name() {
        assert_eq!(LabelClass::new("person"), LabelClass::from("person"));
        assert_ne!(LabelClass::new("person"), LabelClass::new("car"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = LabelClass::new("dog");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.name(), "dog");
    }

    #[test]
    fn display_and_debug() {
        let c = LabelClass::new("airplane");
        assert_eq!(format!("{c}"), "airplane");
        assert_eq!(format!("{c:?}"), "LabelClass(airplane)");
    }

    #[test]
    fn usable_as_hash_key() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(LabelClass::new("car"), 1);
        m.insert(LabelClass::new("car"), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m[&LabelClass::new("car")], 2);
    }

    #[test]
    fn from_string() {
        let c: LabelClass = String::from("bus").into();
        assert_eq!(c, classes::bus());
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(LabelClass::new("airplane") < LabelClass::new("bus"));
    }
}
