//! Scene generation: turning a [`SceneConfig`] into a deterministic [`Video`].

use croesus_sim::DetRng;

use crate::bbox::BoundingBox;
use crate::label::LabelClass;
use crate::object::{GroundTruthObject, ObjectId, TrackedObject};

/// Parameters describing a synthetic scene.
///
/// The defaults produce a moderate street-like scene; the paper's five
/// videos are provided as presets in [`crate::preset`].
#[derive(Clone, Debug)]
pub struct SceneConfig {
    /// Human-readable scene name (used in reports).
    pub name: String,
    /// Number of frames to generate.
    pub num_frames: u64,
    /// Frames per second (for timestamps only).
    pub fps: f64,
    /// Encoded payload size of one frame in bytes (drives network cost).
    pub frame_bytes: u64,
    /// Classes present in the scene with relative spawn weights.
    pub classes: Vec<(LabelClass, f64)>,
    /// The object query `O` of the optimization formulation (§3.4) — the
    /// class the application is looking for.
    pub query_class: LabelClass,
    /// Objects present at frame 0.
    pub initial_objects: usize,
    /// Expected newly-spawned objects per frame.
    pub spawn_rate: f64,
    /// Mean object lifetime, in frames (exponentially distributed).
    pub mean_lifetime: f64,
    /// Range of object box extents (width/height are drawn independently).
    pub size_range: (f64, f64),
    /// Magnitude of per-frame motion (fraction of the frame).
    pub speed: f64,
    /// Base latent clarity of objects in this scene, `[0, 1]`.
    pub clarity_base: f64,
    /// Standard deviation of per-object clarity noise.
    pub clarity_spread: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        SceneConfig {
            name: "default".to_string(),
            num_frames: 300,
            fps: 30.0,
            frame_bytes: 150_000,
            classes: vec![(LabelClass::new("car"), 1.0)],
            query_class: LabelClass::new("car"),
            initial_objects: 3,
            spawn_rate: 0.15,
            mean_lifetime: 90.0,
            size_range: (0.08, 0.25),
            speed: 0.004,
            clarity_base: 0.6,
            clarity_spread: 0.15,
        }
    }
}

impl SceneConfig {
    /// Total weight across the class mix; used for sampling.
    fn total_class_weight(&self) -> f64 {
        self.classes.iter().map(|(_, w)| *w).sum()
    }

    /// Sample a class from the mix.
    fn sample_class(&self, rng: &mut DetRng) -> LabelClass {
        let total = self.total_class_weight();
        assert!(total > 0.0, "scene has no classes to sample");
        let mut pick = rng.uniform() * total;
        for (class, w) in &self.classes {
            pick -= w;
            if pick <= 0.0 {
                return class.clone();
            }
        }
        self.classes
            .last()
            .expect("classes non-empty (total weight > 0)")
            .0
            .clone()
    }
}

/// One frame of a video: index, timestamp, ground-truth objects, payload.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Zero-based frame index.
    pub index: u64,
    /// Seconds since the start of the video.
    pub timestamp_secs: f64,
    /// Objects visible in this frame.
    pub objects: Vec<GroundTruthObject>,
    /// Encoded payload size in bytes.
    pub bytes: u64,
}

impl Frame {
    /// Ground-truth objects of the given class.
    pub fn objects_of<'a>(
        &'a self,
        class: &'a LabelClass,
    ) -> impl Iterator<Item = &'a GroundTruthObject> + 'a {
        self.objects.iter().filter(move |o| &o.class == class)
    }
}

/// A generated video: a deterministic function of `(SceneConfig, seed)`.
#[derive(Clone, Debug)]
pub struct Video {
    /// The configuration that produced this video.
    pub config: SceneConfig,
    /// The seed that produced this video.
    pub seed: u64,
    /// The tracked objects behind the frames.
    pub tracks: Vec<TrackedObject>,
    frames: Vec<Frame>,
}

impl Video {
    /// Generate a video from a configuration and seed.
    pub fn generate(config: SceneConfig, seed: u64) -> Video {
        assert!(config.num_frames > 0, "video must have at least one frame");
        assert!(!config.classes.is_empty(), "scene needs at least one class");
        let mut rng = DetRng::new(seed).fork_named("scene");
        let mut tracks: Vec<TrackedObject> = Vec::new();
        let mut next_id: u64 = 0;

        let mut spawn = |rng: &mut DetRng, frame: u64, tracks: &mut Vec<TrackedObject>| {
            let class = config.sample_class(rng);
            let w = rng.uniform_range(config.size_range.0, config.size_range.1);
            let h = rng.uniform_range(config.size_range.0, config.size_range.1);
            let cx = rng.uniform_range(0.1, 0.9);
            let cy = rng.uniform_range(0.1, 0.9);
            let angle = rng.uniform() * std::f64::consts::TAU;
            let speed = config.speed * rng.uniform_range(0.5, 1.5);
            // Lifetime ~ exponential with the configured mean, at least 5 frames.
            let u: f64 = rng.uniform().max(f64::MIN_POSITIVE);
            let lifetime = (-u.ln() * config.mean_lifetime).max(5.0) as u64;
            // Larger objects are clearer; small distant ones are harder.
            let size_norm = ((w + h) / 2.0 - config.size_range.0)
                / (config.size_range.1 - config.size_range.0).max(1e-9);
            let clarity = (config.clarity_base
                + 0.15 * (size_norm - 0.5)
                + config.clarity_spread * rng.standard_normal())
            .clamp(0.02, 0.99);
            tracks.push(TrackedObject {
                id: ObjectId(next_id),
                class,
                initial_bbox: BoundingBox::centered(cx, cy, w, h),
                velocity: (angle.cos() * speed, angle.sin() * speed),
                spawn_frame: frame,
                despawn_frame: (frame + lifetime).min(config.num_frames),
                clarity,
            });
            next_id += 1;
        };

        for _ in 0..config.initial_objects {
            spawn(&mut rng, 0, &mut tracks);
        }
        for frame in 1..config.num_frames {
            // Bernoulli-thinned spawn process with the configured rate.
            let mut budget = config.spawn_rate;
            while budget > 0.0 {
                let p = budget.min(1.0);
                if rng.bernoulli(p) {
                    spawn(&mut rng, frame, &mut tracks);
                }
                budget -= 1.0;
            }
        }

        let frames = (0..config.num_frames)
            .map(|index| {
                let objects: Vec<GroundTruthObject> = tracks
                    .iter()
                    .filter(|t| t.visible_at(index))
                    .map(|t| t.at(index))
                    .collect();
                Frame {
                    index,
                    timestamp_secs: index as f64 / config.fps,
                    objects,
                    bytes: config.frame_bytes,
                }
            })
            .collect();

        Video {
            config,
            seed,
            tracks,
            frames,
        }
    }

    /// All frames, in order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// One frame by index.
    pub fn frame(&self, index: u64) -> &Frame {
        &self.frames[index as usize]
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the video has no frames (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The query class of this video.
    pub fn query_class(&self) -> &LabelClass {
        &self.config.query_class
    }

    /// Total ground-truth instances of the query class over the video.
    pub fn query_instance_count(&self) -> usize {
        let q = self.query_class().clone();
        self.frames.iter().map(|f| f.objects_of(&q).count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Video::generate(SceneConfig::default(), 7);
        let b = Video::generate(SceneConfig::default(), 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.tracks.len(), b.tracks.len());
        for (fa, fb) in a.frames().iter().zip(b.frames()) {
            assert_eq!(fa.objects.len(), fb.objects.len());
            for (oa, ob) in fa.objects.iter().zip(&fb.objects) {
                assert_eq!(oa.id, ob.id);
                assert_eq!(oa.bbox, ob.bbox);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Video::generate(SceneConfig::default(), 1);
        let b = Video::generate(SceneConfig::default(), 2);
        let same_tracks = a.tracks.len() == b.tracks.len()
            && a.tracks
                .iter()
                .zip(&b.tracks)
                .all(|(x, y)| x.initial_bbox == y.initial_bbox);
        assert!(!same_tracks);
    }

    #[test]
    fn frame_indices_and_timestamps() {
        let v = Video::generate(SceneConfig::default(), 3);
        for (i, f) in v.frames().iter().enumerate() {
            assert_eq!(f.index as usize, i);
            assert!((f.timestamp_secs - i as f64 / 30.0).abs() < 1e-9);
            assert_eq!(f.bytes, 150_000);
        }
    }

    #[test]
    fn objects_stay_in_frame() {
        let v = Video::generate(SceneConfig::default(), 5);
        for f in v.frames() {
            for o in &f.objects {
                assert!(o.bbox.x >= 0.0 && o.bbox.y >= 0.0);
                assert!(o.bbox.x + o.bbox.w <= 1.0 + 1e-9);
                assert!(o.bbox.y + o.bbox.h <= 1.0 + 1e-9);
                assert!(!o.bbox.is_empty());
            }
        }
    }

    #[test]
    fn clarity_is_bounded() {
        let v = Video::generate(SceneConfig::default(), 11);
        for t in &v.tracks {
            assert!((0.0..=1.0).contains(&t.clarity));
        }
    }

    #[test]
    fn initial_objects_appear_in_frame_zero() {
        let cfg = SceneConfig {
            initial_objects: 5,
            ..SceneConfig::default()
        };
        let v = Video::generate(cfg, 13);
        assert!(
            v.frame(0).objects.len() >= 4,
            "most initial objects visible"
        );
    }

    #[test]
    fn spawn_rate_scales_population() {
        let sparse = Video::generate(
            SceneConfig {
                spawn_rate: 0.02,
                ..SceneConfig::default()
            },
            17,
        );
        let dense = Video::generate(
            SceneConfig {
                spawn_rate: 0.8,
                ..SceneConfig::default()
            },
            17,
        );
        assert!(dense.tracks.len() > sparse.tracks.len() * 3);
    }

    #[test]
    fn class_mix_is_respected() {
        let cfg = SceneConfig {
            classes: vec![
                (LabelClass::new("car"), 9.0),
                (LabelClass::new("person"), 1.0),
            ],
            spawn_rate: 1.0,
            num_frames: 600,
            ..SceneConfig::default()
        };
        let v = Video::generate(cfg, 19);
        let cars = v
            .tracks
            .iter()
            .filter(|t| t.class == LabelClass::new("car"))
            .count();
        let people = v.tracks.len() - cars;
        assert!(cars > people * 4, "cars {cars} people {people}");
    }

    #[test]
    fn query_instance_count_counts_only_query_class() {
        let cfg = SceneConfig {
            classes: vec![
                (LabelClass::new("car"), 1.0),
                (LabelClass::new("person"), 1.0),
            ],
            query_class: LabelClass::new("person"),
            ..SceneConfig::default()
        };
        let v = Video::generate(cfg, 23);
        let q = LabelClass::new("person");
        let manual: usize = v.frames().iter().map(|f| f.objects_of(&q).count()).sum();
        assert_eq!(v.query_instance_count(), manual);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        Video::generate(
            SceneConfig {
                num_frames: 0,
                ..SceneConfig::default()
            },
            1,
        );
    }
}
