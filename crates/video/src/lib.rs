//! Synthetic video substrate.
//!
//! The Croesus paper evaluates on five real videos (street traffic with
//! vehicles, street traffic with pedestrians, mall surveillance, an airport
//! runway, and a pet in a park). Real footage is unavailable here, so this
//! crate generates *synthetic scenes*: sequences of frames, each carrying a
//! set of ground-truth objects (class, bounding box, and a latent *clarity*
//! score describing how easy the object is to detect) plus an encoded payload
//! size. The detector simulator (`croesus-detect`) consumes exactly this
//! information — which is all a black-box CNN interface exposes to Croesus.
//!
//! * [`bbox`] — normalized bounding boxes with IoU/overlap computations.
//! * [`label`] — interned label classes.
//! * [`object`] — tracked objects with linear motion and lifetimes.
//! * [`scene`] — the scene generator, parametrized by [`scene::SceneConfig`].
//! * [`preset`] — the five paper videos as ready-made configurations.

pub mod bbox;
pub mod label;
pub mod object;
pub mod preset;
pub mod scene;

pub use bbox::BoundingBox;
pub use label::LabelClass;
pub use object::{GroundTruthObject, ObjectId, TrackedObject};
pub use preset::VideoPreset;
pub use scene::{Frame, SceneConfig, Video};
