//! Microbenchmarks for the threshold optimizer: single-pair evaluation,
//! and brute force vs gradient search (the §5.2.3 comparison — the paper
//! reports the gradient method 2.2× faster).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use croesus_core::{ThresholdEvaluator, ThresholdPair};
use croesus_detect::{ModelProfile, SimulatedModel};
use croesus_video::VideoPreset;

fn optimizer(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimizer");
    g.measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    g.sample_size(20);

    let video = VideoPreset::StreetTraffic.generate(150, 42);
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 42);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), 43);
    let ev = ThresholdEvaluator::build(&video, &edge, &cloud, 0.10);

    g.bench_function("evaluate_pair", |b| {
        b.iter(|| black_box(ev.evaluate(ThresholdPair::new(0.4, 0.6))))
    });
    g.bench_function("brute_force_grid", |b| {
        b.iter(|| black_box(ev.brute_force(0.85, 0.1)))
    });
    g.bench_function("gradient_search", |b| {
        b.iter(|| black_box(ev.gradient(0.85, 0.1)))
    });
    g.bench_function("build_evaluator_150_frames", |b| {
        b.iter(|| black_box(ThresholdEvaluator::build(&video, &edge, &cloud, 0.10)))
    });
    g.finish();
}

criterion_group!(benches, optimizer);
criterion_main!(benches);
