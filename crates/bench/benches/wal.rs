//! WAL microbenchmarks: record append throughput, the group-commit sync
//! amortization, checkpointing, and recovery replay speed.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use croesus_store::{Key, TxnId, Value};
use croesus_wal::{recover, scratch_dir, StageFlags, StageRecord, Wal, WalConfig, WriteImage};

fn stage_record(txn: u64, final_stage: bool) -> StageRecord {
    let flags = if final_stage {
        StageFlags::COMMIT_POINT | StageFlags::FINAL
    } else {
        StageFlags::COMMIT_POINT | StageFlags::REGISTER
    };
    StageRecord {
        txn: TxnId(txn),
        stage: u32::from(final_stage),
        total: 2,
        flags: StageFlags(flags),
        reads: vec![Key::indexed("r", txn % 64)],
        writes: vec![Key::indexed("w", txn % 64)],
        images: vec![
            WriteImage {
                key: Key::indexed("w", txn % 64),
                pre: Some(Arc::new(Value::Int(txn as i64))),
                post: Some(Arc::new(Value::Int(txn as i64 + 1))),
            },
            WriteImage {
                key: Key::indexed("w2", txn % 64),
                pre: None,
                post: Some(Arc::new(Value::Str("payload-string".into()))),
            },
        ],
    }
}

fn append_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // Pure append path: no sync ever (buffered mode) — the cost of
    // encode + CRC + shadow-state bookkeeping.
    let (wal, _probe) = Wal::in_memory(WalConfig {
        group_commit: usize::MAX,
        checkpoint_every: 0,
    });
    let mut txn = 0u64;
    g.bench_function("append_stage_mem", |b| {
        b.iter(|| {
            txn += 1;
            wal.append_stage(black_box(stage_record(txn, false)))
                .unwrap();
        })
    });

    // Group commit against memory: sync every 8 commit points.
    let (wal8, _probe8) = Wal::in_memory(WalConfig {
        group_commit: 8,
        checkpoint_every: 0,
    });
    let mut t8 = 0u64;
    g.bench_function("append_commit_group8_mem", |b| {
        b.iter(|| {
            t8 += 1;
            wal8.append_stage(black_box(stage_record(t8, false)))
                .unwrap();
        })
    });
    g.finish();
}

fn file_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_file");
    // fsync-bound: keep the window small so CI smoke stays fast.
    g.measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(100));

    let dir = scratch_dir("bench-file-commit");
    for group in [1usize, 8, 64] {
        let wal = Wal::create(
            dir.join(format!("group-{group}.wal")),
            WalConfig {
                group_commit: group,
                checkpoint_every: 0,
            },
        )
        .unwrap();
        let mut txn = 0u64;
        g.bench_function(format!("commit_file_group{group}"), |b| {
            b.iter(|| {
                txn += 1;
                wal.append_stage(black_box(stage_record(txn, false)))
                    .unwrap();
            })
        });
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

fn recovery_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_recover");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // A log of 1000 two-stage transactions.
    let (wal, probe) = Wal::in_memory(WalConfig {
        group_commit: usize::MAX,
        checkpoint_every: 0,
    });
    for txn in 0..1_000u64 {
        wal.append_stage(stage_record(txn, false)).unwrap();
        wal.append_stage(stage_record(txn, true)).unwrap();
    }
    wal.flush().unwrap();
    let bytes = probe.durable();
    g.bench_function("replay_1000_txns", |b| {
        b.iter(|| black_box(recover(&bytes)).frames)
    });

    // Checkpointed log: replay is one snapshot record.
    let (wal_cp, probe_cp) = Wal::in_memory(WalConfig {
        group_commit: usize::MAX,
        checkpoint_every: 0,
    });
    for txn in 0..1_000u64 {
        wal_cp.append_stage(stage_record(txn, false)).unwrap();
        wal_cp.append_stage(stage_record(txn, true)).unwrap();
    }
    wal_cp.checkpoint().unwrap();
    let cp_bytes = probe_cp.durable();
    g.bench_function("replay_after_checkpoint", |b| {
        b.iter(|| black_box(recover(&cp_bytes)).frames)
    });
    g.finish();
}

criterion_group!(benches, append_ops, file_commit, recovery_replay);
criterion_main!(benches);
