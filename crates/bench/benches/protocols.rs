//! Microbenchmarks for the multi-stage transaction protocols, all driven
//! through `dyn MultiStageProtocol`: the full commit path of each protocol
//! (without the cloud wait — the protocol overhead itself) and the batch
//! sequencer.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use croesus_core::HotspotWorkload;
use croesus_sim::DetRng;
use croesus_store::{KvStore, LockManager, LockPolicy, TxnId};
use croesus_txn::{
    ExecutorCore, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind, RwSet, Sequencer,
};

fn protocol_commit_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let rw = RwSet::new()
        .write("a")
        .write("b")
        .write("c")
        .read("d")
        .read("e");

    // Keep the historical bench ids (tspl_full_txn / ms_ia_full_txn) so
    // the perf trajectory stays comparable across PRs; staged is new.
    let mut id = 0u64;
    for (bench_id, kind) in [
        ("tspl_full_txn", ProtocolKind::MsSr),
        ("ms_ia_full_txn", ProtocolKind::MsIa),
        ("staged_full_txn", ProtocolKind::Staged),
    ] {
        let ex: Box<dyn MultiStageProtocol> = kind.build(ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(LockPolicy::Block)),
        ));
        let stages = [rw.clone(), rw.clone()];
        g.bench_function(bench_id, |b| {
            b.iter(|| {
                id += 1;
                let h = ex.begin(TxnId(id), &stages);
                let (_, h) = ex
                    .stage(h, &rw, |ctx| {
                        ctx.write("a", 1i64)?;
                        Ok(())
                    })
                    .unwrap();
                ex.stage(h.unwrap(), &rw, |ctx| {
                    ctx.write("b", 2i64)?;
                    Ok(())
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

fn sequencer_waves(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequencer");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, key_range) in [("hot_50txn", 100u64), ("wide_50txn", 100_000u64)] {
        let workload = HotspotWorkload {
            key_range,
            updates: 5,
        };
        let mut rng = DetRng::new(1).fork_named("bench");
        let sets: Vec<RwSet> = (0..50).map(|_| workload.rwset(&mut rng)).collect();
        g.bench_function(label, |b| b.iter(|| black_box(Sequencer::waves(&sets))));
    }
    g.finish();
}

criterion_group!(benches, protocol_commit_paths, sequencer_waves);
criterion_main!(benches);
