//! End-to-end pipeline benchmarks: a whole Croesus run (and the baselines)
//! over a short video. These measure the *simulator's* execution speed —
//! the latencies the pipeline reports are virtual.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use croesus_core::{run_cloud_only, run_croesus, run_edge_only, CroesusConfig, ThresholdPair};
use croesus_video::VideoPreset;

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    g.sample_size(10);

    let cfg = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.4, 0.6))
        .with_frames(60);
    g.bench_function("croesus_60_frames", |b| {
        b.iter(|| black_box(run_croesus(&cfg)))
    });
    g.bench_function("edge_only_60_frames", |b| {
        b.iter(|| black_box(run_edge_only(&cfg)))
    });
    g.bench_function("cloud_only_60_frames", |b| {
        b.iter(|| black_box(run_cloud_only(&cfg)))
    });
    g.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
