//! End-to-end pipeline benchmarks: a whole Croesus run (and the baselines)
//! over a short video. These measure the *simulator's* execution speed —
//! the latencies the pipeline reports are virtual.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use croesus_core::{Croesus, CroesusConfig, ProtocolKind, ThresholdPair};
use croesus_video::VideoPreset;

fn pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(500));
    g.sample_size(10);

    let cfg = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.4, 0.6))
        .with_frames(60);
    g.bench_function("croesus_60_frames", |b| {
        b.iter(|| black_box(Croesus::multistage(&cfg).run()))
    });
    // The protocol axis: the same pipeline under MS-SR and staged.
    for kind in [ProtocolKind::MsSr, ProtocolKind::Staged] {
        let cfg = cfg.clone();
        g.bench_function(format!("croesus_60_frames_{kind}"), |b| {
            b.iter(|| {
                black_box(
                    Croesus::builder()
                        .config(cfg.clone())
                        .protocol(kind)
                        .build()
                        .run(),
                )
            })
        });
    }
    g.bench_function("edge_only_60_frames", |b| {
        b.iter(|| black_box(Croesus::edge_only(&cfg).run()))
    });
    g.bench_function("cloud_only_60_frames", |b| {
        b.iter(|| black_box(Croesus::cloud_only(&cfg).run()))
    });
    g.finish();
}

criterion_group!(benches, pipeline);
criterion_main!(benches);
