//! Microbenchmarks for the storage substrate: KV operations and the lock
//! manager under its three conflict policies.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use croesus_store::{Key, KvStore, LockManager, LockMode, LockPolicy, TxnId, UndoLog, Value};

fn kv_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("kv");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let store = KvStore::new();
    for i in 0..10_000u64 {
        store.put(Key::indexed("k", i), Value::Int(i as i64));
    }
    let mut n = 0u64;
    g.bench_function("get_hit", |b| {
        b.iter(|| {
            n = (n + 1) % 10_000;
            black_box(store.get(&Key::indexed("k", n)))
        })
    });
    g.bench_function("put_overwrite", |b| {
        b.iter(|| {
            n = (n + 1) % 10_000;
            black_box(store.put(Key::indexed("k", n), Value::Int(7)))
        })
    });
    g.bench_function("put_get_delete_fresh", |b| {
        let mut i = 10_000u64;
        b.iter(|| {
            i += 1;
            let k = Key::indexed("fresh", i);
            store.put(k.clone(), Value::Int(1));
            black_box(store.get(&k));
            store.delete(&k);
        })
    });
    g.finish();
}

fn lock_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for policy in [LockPolicy::Block, LockPolicy::NoWait, LockPolicy::WaitDie] {
        let lm = LockManager::new(policy);
        let key = Key::new("uncontended");
        g.bench_function(format!("acquire_release_{policy:?}"), |b| {
            b.iter(|| {
                lm.lock(TxnId(1), &key, LockMode::Exclusive).unwrap();
                lm.release(TxnId(1), &key);
            })
        });
    }

    let lm = Arc::new(LockManager::new(LockPolicy::Block));
    let keys: Vec<(Key, LockMode)> = (0..10)
        .map(|i| (Key::indexed("multi", i), LockMode::Exclusive))
        .collect();
    g.bench_function("acquire_all_10_keys", |b| {
        b.iter(|| {
            lm.acquire_all(TxnId(1), &keys, None).unwrap();
            lm.release_all(TxnId(1), keys.iter().map(|(k, _)| k));
        })
    });
    g.finish();
}

fn undo_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("undo");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let store = KvStore::new();
    for i in 0..100u64 {
        store.put(Key::indexed("u", i), Value::Int(0));
    }
    g.bench_function("log_5_writes_and_rollback", |b| {
        b.iter_batched(
            UndoLog::new,
            |mut log| {
                for i in 0..5u64 {
                    log.put(&store, Key::indexed("u", i), Value::Int(1));
                }
                log.rollback(&store);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, kv_ops, lock_ops, undo_ops);
criterion_main!(benches);
