//! Microbenchmarks for the detection substrate: simulated inference and
//! edge↔cloud label matching.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use croesus_core::match_edge_to_cloud;
use croesus_detect::{DetectionModel, ModelProfile, SimulatedModel};
use croesus_video::VideoPreset;

fn detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detect");
    g.measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let video = VideoPreset::MallSurveillance.generate(64, 42);
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 42);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), 43);

    let mut i = 0usize;
    g.bench_function("edge_detect_frame", |b| {
        b.iter(|| {
            i = (i + 1) % video.len();
            black_box(edge.detect(video.frame(i as u64)))
        })
    });
    g.bench_function("cloud_detect_frame", |b| {
        b.iter(|| {
            i = (i + 1) % video.len();
            black_box(cloud.detect(video.frame(i as u64)))
        })
    });

    // Matching on a busy frame.
    let busiest = (0..video.len() as u64)
        .max_by_key(|&f| video.frame(f).objects.len())
        .unwrap();
    let edge_dets = edge.detect(video.frame(busiest));
    let cloud_dets = cloud.detect(video.frame(busiest));
    g.bench_function("match_edge_to_cloud", |b| {
        b.iter(|| black_box(match_edge_to_cloud(&edge_dets, &cloud_dets, 0.10)))
    });
    g.finish();
}

criterion_group!(benches, detection);
criterion_main!(benches);
