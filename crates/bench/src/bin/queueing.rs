//! Ablation: queueing behaviour under increasing frame rates.
//!
//! The paper's latency figures are per-frame; this harness adds the
//! arrival-rate dimension: a single Tiny-YOLO edge unit saturates near
//! 5.3 fps, after which waits explode and the bounded queue starts
//! sampling frames out — quantifying how far the per-frame numbers carry.

use croesus_bench::{banner, ms, pct, Table};
use croesus_core::{run_queueing, QueueingConfig};
use croesus_video::VideoPreset;

fn main() {
    banner("Ablation: edge/cloud queueing vs frame arrival rate (street traffic)");
    let mut t = Table::new(&[
        "fps",
        "processed",
        "dropped",
        "edge wait (ms)",
        "cloud wait (ms)",
        "final latency (ms)",
        "edge util",
    ]);
    for fps in [1.0, 2.0, 4.0, 5.0, 6.0, 10.0, 30.0] {
        let m = run_queueing(&QueueingConfig::new(VideoPreset::StreetTraffic, fps));
        t.row(vec![
            format!("{fps:.0}"),
            m.processed.to_string(),
            m.dropped.to_string(),
            ms(m.edge_wait_ms),
            ms(m.cloud_wait_ms),
            ms(m.final_latency_ms),
            pct(m.edge_utilization),
        ]);
    }
    t.print();
    println!(
        "\n  Shape: below ~5.3 fps (1 / 190 ms) the edge keeps up and the paper's\n  \
         per-frame latencies hold; above it, waits grow with the queue bound and the\n  \
         excess frames are sampled out — matching how deployments process a subset\n  \
         of frames rather than every frame of a 30 fps stream."
    );
}
