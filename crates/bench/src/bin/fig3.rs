//! Figure 3: Croesus latency vs accuracy for different threshold pairs
//! (street traffic, querying vehicles).

use croesus_bench::{banner, config, f2, ms, pct, Table};
use croesus_core::{Croesus, ThresholdPair};
use croesus_video::VideoPreset;

fn main() {
    banner("Figure 3: latency/BU/F-score per threshold pair (street traffic, 'car')");
    let pairs = [
        (0.5, 0.5),
        (0.5, 0.6),
        (0.5, 0.7),
        (0.6, 0.7),
        (0.4, 0.6),
        (0.3, 0.7),
        (0.2, 0.8),
        (0.1, 0.9),
    ];
    let mut t = Table::new(&["(θL, θU)", "final latency (ms)", "BU", "F-score"]);
    for (lo, hi) in pairs {
        let m = Croesus::multistage(&config(
            VideoPreset::StreetTraffic,
            ThresholdPair::new(lo, hi),
        ))
        .run();
        t.row(vec![
            format!("({lo:.1}, {hi:.1})"),
            ms(m.final_commit_ms),
            pct(m.bandwidth_utilization),
            f2(m.f_score),
        ]);
    }
    t.print();
    println!(
        "\n  Paper shape: (0.5,0.5) → BU 0% with edge-only accuracy; widening the validate\n  \
         interval raises BU and F-score; BU grows faster than F-score, and pairs with\n  \
         similar BU can differ sharply in accuracy — hence dynamic optimization."
    );
}
