//! Machine-readable perf snapshot: measures the storage/locking hot path,
//! the Fig-6 contention harness, the throughput of each multi-stage
//! protocol through the unified `dyn MultiStageProtocol` API (PR 2), the
//! WAL (PR 3): record append throughput, durable commit throughput per
//! group-commit size (the fsync amortization curve), and recovery replay
//! speed — since PR 9, the wave-parallel worker-pool scaling curve — and,
//! since PR 10, the pipelined writer (sync off the commit path) and the
//! cross-edge coalesced-sync fleet curve.
//! Writes `BENCH_PR10.json` so the perf trajectory is tracked PR over PR
//! (future PRs emit `BENCH_PR<n>.json` next to it; never overwrite an
//! earlier PR's file).
//!
//! Usage:
//!
//! ```text
//! cargo run -p croesus-bench --release --bin perf_json [-- <output-path>] [--quick]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use croesus_bench::contention::{run_ms_ia, run_ms_sr, run_released_pooled, ContentionConfig};
use croesus_store::{Key, KvStore, LockManager, LockMode, LockPolicy, TxnId, Value};
use croesus_txn::{ExecutorCore, MultiStageProtocolExt, ProtocolKind, RwSet};
use croesus_wal::{
    FileStorage, PipelineConfig, StageFlags, StageRecord, SyncCoalescer, Wal, WalConfig, WriteImage,
};

/// Criterion `ns/iter` numbers recorded during PR 1 (median of 3
/// interleaved `CRITERION_QUICK=1` runs): seed code vs. the PR-1 hot-path
/// rework. Kept as data so the trajectory survives even if the old code is
/// gone. For live criterion numbers run the benches with
/// `CRITERION_JSON=<path>`.
const CRITERION_PRE_PR1: &[(&str, f64)] = &[
    ("kv/get_hit", 140.1),
    ("kv/put_overwrite", 155.3),
    ("kv/put_get_delete_fresh", 295.6),
    ("locks/acquire_release_Block", 320.3),
    ("locks/acquire_release_NoWait", 317.5),
    ("locks/acquire_release_WaitDie", 325.6),
    ("locks/acquire_all_10_keys", 3399.6),
    ("undo/log_5_writes_and_rollback", 1550.3),
    ("protocol/tspl_full_txn", 4009.6),
    ("protocol/ms_ia_full_txn", 4846.6),
    ("sequencer/hot_50txn", 14121.5),
    ("sequencer/wide_50txn", 100794.7),
];

const CRITERION_POST_PR1: &[(&str, f64)] = &[
    ("kv/get_hit", 114.9),
    ("kv/put_overwrite", 138.2),
    ("kv/put_get_delete_fresh", 204.6),
    ("locks/acquire_release_Block", 250.4),
    ("locks/acquire_release_NoWait", 252.4),
    ("locks/acquire_release_WaitDie", 250.1),
    ("locks/acquire_all_10_keys", 2565.5),
    ("undo/log_5_writes_and_rollback", 1106.5),
    ("protocol/tspl_full_txn", 3467.7),
    ("protocol/ms_ia_full_txn", 4095.0),
    ("sequencer/hot_50txn", 4721.7),
    ("sequencer/wide_50txn", 28445.3),
];

/// Time `op` in batches until `budget` elapses (after a 10% warm-up);
/// returns operations per second.
fn ops_per_sec(budget: Duration, mut op: impl FnMut()) -> f64 {
    let warm_end = Instant::now() + budget / 10;
    while Instant::now() < warm_end {
        op();
    }
    let start = Instant::now();
    let mut iters = 0u64;
    let mut batch = 64u64;
    loop {
        for _ in 0..batch {
            op();
        }
        iters += batch;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return iters as f64 / elapsed.as_secs_f64();
        }
        if batch < 1 << 18 {
            batch *= 2;
        }
    }
}

/// Full two-stage transactions per second for one protocol, driven through
/// `dyn MultiStageProtocol` exactly like the pipeline drives it.
fn protocol_txn_per_sec(kind: ProtocolKind, budget: Duration) -> f64 {
    let ex = kind.build(ExecutorCore::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(LockPolicy::Block)),
    ));
    let rw = RwSet::new()
        .write("a")
        .write("b")
        .write("c")
        .read("d")
        .read("e");
    let stages = [rw.clone(), rw.clone()];
    let mut id = 0u64;
    ops_per_sec(budget, || {
        id += 1;
        let h = ex.begin(TxnId(id), &stages);
        let (_, h) = ex
            .stage(h, &rw, |ctx| {
                ctx.write("a", 1i64)?;
                Ok(())
            })
            .unwrap();
        ex.stage(h.expect("two stages"), &rw, |ctx| {
            ctx.write("b", 2i64)?;
            Ok(())
        })
        .unwrap();
    })
}

/// One WAL stage record shaped like the pipeline's YCSB transactions.
fn wal_stage(txn: u64) -> StageRecord {
    StageRecord {
        txn: TxnId(txn),
        stage: 0,
        total: 2,
        flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::REGISTER),
        reads: vec![Key::indexed("r", txn % 64)],
        writes: vec![Key::indexed("w", txn % 64)],
        images: vec![
            WriteImage {
                key: Key::indexed("w", txn % 64),
                pre: Some(Arc::new(Value::Int(txn as i64))),
                post: Some(Arc::new(Value::Int(txn as i64 + 1))),
            },
            WriteImage {
                key: Key::indexed("w2", txn % 64),
                pre: None,
                post: Some(Arc::new(Value::Str("payload-string".into()))),
            },
        ],
    }
}

/// Durable commit points per second through the *pipelined* writer over a
/// real file: appends land in the active buffer while the dedicated
/// flusher syncs sealed ones — same group-64 loss window as
/// `commit_file_group64`, without the inline sync stall. The final
/// `flush` (draining every in-flight buffer) is inside the timed window,
/// so every commit counted is durable by the end of it.
fn wal_file_pipelined_commits_per_sec(dir: &std::path::Path, group: usize, n: u64) -> f64 {
    let storage = FileStorage::create(dir.join(format!("perf-pipelined-{group}.wal")))
        .expect("temp dir is writable");
    let wal = Wal::with_storage_pipelined(
        Box::new(storage),
        WalConfig {
            group_commit: group,
            checkpoint_every: 0,
        },
        PipelineConfig {
            coalescer: None,
            manual_flusher: false,
        },
    );
    let start = Instant::now();
    for txn in 1..=n {
        wal.append_stage(wal_stage(txn)).unwrap();
    }
    wal.flush().unwrap();
    n as f64 / start.elapsed().as_secs_f64()
}

/// Aggregate durable commits per second for `edges` pipelined writers
/// sharing one directory (hence one device) and one [`SyncCoalescer`]:
/// every flusher's fsync-equivalent joins a shared device window. Returns
/// the aggregate rate plus the window counters (windows < requests is
/// the coalescing win).
fn coalesced_fleet_commits_per_sec(
    dir: &std::path::Path,
    edges: usize,
    n_per_edge: u64,
) -> (f64, croesus_wal::CoalesceStats) {
    let coalescer = Arc::new(SyncCoalescer::new());
    let wals: Vec<Arc<Wal>> = (0..edges)
        .map(|i| {
            let storage = FileStorage::create(dir.join(format!("fleet-{edges}-{i}.wal")))
                .expect("temp dir is writable");
            Arc::new(Wal::with_storage_pipelined(
                Box::new(storage),
                WalConfig {
                    group_commit: 64,
                    checkpoint_every: 0,
                },
                PipelineConfig {
                    coalescer: Some(Arc::clone(&coalescer)),
                    manual_flusher: false,
                },
            ))
        })
        .collect();
    let start = Instant::now();
    let handles: Vec<_> = wals
        .iter()
        .map(|wal| {
            let wal = Arc::clone(wal);
            std::thread::spawn(move || {
                for txn in 1..=n_per_edge {
                    wal.append_stage(wal_stage(txn)).unwrap();
                }
                wal.flush().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let rate = (edges as u64 * n_per_edge) as f64 / start.elapsed().as_secs_f64();
    (rate, coalescer.stats())
}

/// Durable commit points per second at a given group-commit size, against
/// a real file (fsync-bound for small groups — the amortization curve is
/// the point of group commit).
fn wal_file_commits_per_sec(dir: &std::path::Path, group: usize, budget: Duration) -> f64 {
    let wal = Wal::create(
        dir.join(format!("perf-group-{group}.wal")),
        WalConfig {
            group_commit: group,
            checkpoint_every: 0,
        },
    )
    .expect("temp dir is writable");
    let mut txn = 0u64;
    ops_per_sec(budget, || {
        txn += 1;
        wal.append_stage(wal_stage(txn)).unwrap();
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let budget = if quick {
        Duration::from_millis(120)
    } else {
        Duration::from_millis(600)
    };

    eprintln!("measuring store ops...");
    let store = KvStore::new();
    for i in 0..10_000u64 {
        store.put(Key::indexed("k", i), Value::Int(i as i64));
    }
    let keys: Vec<Key> = (0..10_000u64).map(|i| Key::indexed("k", i)).collect();
    let mut n = 0usize;
    let get_hit = ops_per_sec(budget, || {
        n = (n + 1) % keys.len();
        std::hint::black_box(store.get(&keys[n]));
    });
    let mut m = 0usize;
    let put_overwrite = ops_per_sec(budget, || {
        m = (m + 1) % keys.len();
        std::hint::black_box(store.put(keys[m].clone(), Value::Int(7)));
    });

    eprintln!("measuring lock ops...");
    let lm = LockManager::new(LockPolicy::WaitDie);
    let hot = Key::new("uncontended");
    let acquire_release = ops_per_sec(budget, || {
        lm.lock(TxnId(1), &hot, LockMode::Exclusive).unwrap();
        lm.release(TxnId(1), &hot);
    });
    let batch_pairs: Vec<(Key, LockMode)> = (0..10)
        .map(|i| (Key::indexed("multi", i), LockMode::Exclusive))
        .collect();
    let lm2 = Arc::new(LockManager::new(LockPolicy::Block));
    let acquire_all_batches = ops_per_sec(budget, || {
        lm2.acquire_all(TxnId(1), &batch_pairs, None).unwrap();
        lm2.release_all(TxnId(1), batch_pairs.iter().map(|(k, _)| k));
    });

    eprintln!("measuring per-protocol transaction throughput...");
    let ms_sr_tps = protocol_txn_per_sec(ProtocolKind::MsSr, budget);
    let ms_ia_tps = protocol_txn_per_sec(ProtocolKind::MsIa, budget);
    let staged_tps = protocol_txn_per_sec(ProtocolKind::Staged, budget);

    eprintln!("measuring WAL append / group commit / recovery...");
    let (mem_wal, mem_probe) = Wal::in_memory(WalConfig {
        group_commit: usize::MAX,
        checkpoint_every: 0,
    });
    let mut wtxn = 0u64;
    let wal_append = ops_per_sec(budget, || {
        wtxn += 1;
        mem_wal.append_stage(wal_stage(wtxn)).unwrap();
    });
    let wal_dir = croesus_wal::scratch_dir("perf-json");
    // fsync-bound measurements get a shorter budget; the curve matters,
    // not the absolute precision.
    let sync_budget = budget / 2;
    let wal_file_strict = wal_file_commits_per_sec(&wal_dir, 1, sync_budget);
    let wal_file_group8 = wal_file_commits_per_sec(&wal_dir, 8, sync_budget);
    let wal_file_group64 = wal_file_commits_per_sec(&wal_dir, 64, sync_budget);

    eprintln!("measuring pipelined WAL / coalesced fleet curve...");
    let pipelined_n = if quick { 2_000 } else { 12_000 };
    let wal_file_pipelined = wal_file_pipelined_commits_per_sec(&wal_dir, 64, pipelined_n);
    let fleet_n = if quick { 600 } else { 4_000 };
    let fleet_json = [1usize, 2, 4, 8]
        .iter()
        .map(|&edges| {
            let (rate, stats) = coalesced_fleet_commits_per_sec(&wal_dir, edges, fleet_n);
            format!(
                "      {{\"edges\": {edges}, \"commits_per_sec\": {rate:.0}, \
\"sync_requests\": {}, \"sync_windows\": {}}}",
                stats.requests, stats.windows
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let _ = std::fs::remove_dir_all(&wal_dir);
    // Recovery replay: records per second over the log built above.
    mem_wal.flush().unwrap();
    let replay_bytes = mem_probe.durable();
    let replay_frames = croesus_wal::recover(&replay_bytes).frames as f64;
    let replay_runs = ops_per_sec(budget, || {
        std::hint::black_box(croesus_wal::recover(&replay_bytes).frames);
    });
    let wal_replay_records = replay_runs * replay_frames;

    eprintln!("running Fig-6 contention harness...");
    let mut cfg = ContentionConfig::paper(100);
    if quick {
        cfg.txns = 40;
        cfg.scaled_cloud_wait = Duration::from_micros(1_000);
        cfg.section_work = Duration::from_micros(100);
    }
    let sr = run_ms_sr(&cfg);
    let ia = run_ms_ia(&cfg);

    eprintln!("measuring worker-pool scaling curve...");
    // Wide hot-spot range: waves are broad, so the pool's parallelism —
    // not conflict structure — is what the curve measures. Section work
    // dominates the run, which is the edge's actual shape (detection and
    // validation inside the stage bodies).
    let mut scale_cfg = ContentionConfig::paper(100_000);
    if quick {
        scale_cfg.txns = 64;
        scale_cfg.section_work = Duration::from_micros(200);
    }
    let worker_counts = [1usize, 2, 4, 8];
    let curve: Vec<(usize, f64)> = worker_counts
        .iter()
        .map(|&w| {
            let r = run_released_pooled(ProtocolKind::MsIa, &scale_cfg, w);
            assert_eq!(r.commits as usize, scale_cfg.txns, "pooled run lost txns");
            (w, r.txn_per_sec())
        })
        .collect();
    let base_tps = curve[0].1;
    let scaling_json = curve
        .iter()
        .map(|(w, tps)| {
            format!(
                "    {{\"workers\": {w}, \"txn_per_sec\": {tps:.1}, \"speedup\": {:.2}}}",
                tps / base_tps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let fmt_pairs = |pairs: &[(&str, f64)]| -> String {
        pairs
            .iter()
            .map(|(id, ns)| format!("      \"{id}\": {ns:.1}"))
            .collect::<Vec<_>>()
            .join(",\n")
    };

    let json = format!(
        r#"{{
  "pr": 10,
  "generated_by": "cargo run -p croesus-bench --release --bin perf_json",
  "quick": {quick},
  "store": {{
    "get_hit_ops_per_sec": {get_hit:.0},
    "put_overwrite_ops_per_sec": {put_overwrite:.0}
  }},
  "locks": {{
    "acquire_release_ops_per_sec": {acquire_release:.0},
    "acquire_all_10_keys_batches_per_sec": {acquire_all_batches:.0},
    "acquire_all_10_keys_locks_per_sec": {locks_per_sec:.0}
  }},
  "protocols": {{
    "note": "full 2-stage txns/sec (5-key rw-set, no cloud wait), each driven through dyn MultiStageProtocol — the unified API introduced in PR 2",
    "ms_sr_txn_per_sec": {ms_sr_tps:.0},
    "ms_ia_txn_per_sec": {ms_ia_tps:.0},
    "staged_txn_per_sec": {staged_tps:.0}
  }},
  "wal": {{
    "note": "PR 3 durability subsystem: append = encode+CRC+shadow-state per stage record (2 write images) into a memory device, never synced; commit_file_groupN = durable commit points/sec against a real file syncing every N commit points (the group-commit amortization curve); replay = recovery records/sec over a 1-commit-point-per-record log",
    "append_stage_ops_per_sec": {wal_append:.0},
    "commit_file_group1_per_sec": {wal_file_strict:.0},
    "commit_file_group8_per_sec": {wal_file_group8:.0},
    "commit_file_group64_per_sec": {wal_file_group64:.0},
    "replay_records_per_sec": {wal_replay_records:.0}
  }},
  "wal_pipelined": {{
    "note": "PR 10 pipelined double-buffered writer: appends take a global monotone LSN in the active buffer while a dedicated flusher syncs sealed ones; commit_file_pipelined = durable commits/sec over a real file at the same group-64 loss window as commit_file_group64 (final drain inside the timed window); fleet_shared_device = N pipelined edges sharing one directory and one SyncCoalescer, aggregate durable commits/sec (sync_windows < sync_requests is the device-level group commit)",
    "commit_file_pipelined_per_sec": {wal_file_pipelined:.0},
    "pipelined_vs_group64_speedup": {pipelined_speedup:.2},
    "fleet_shared_device": [
{fleet_json}
    ]
  }},
  "fig6_contention": {{
    "config": {{"txns": {txns}, "threads": {threads}, "key_range": {key_range}, "updates": {updates}}},
    "ms_sr": {{"avg_lock_hold_ms": {sr_hold:.3}, "abort_rate": {sr_abort:.4}, "commits": {sr_commits}}},
    "ms_ia": {{"avg_lock_hold_ms": {ia_hold:.3}, "abort_rate": {ia_abort:.4}, "commits": {ia_commits}}}
  }},
  "workers_scaling": {{
    "note": "PR 9 wave-parallel edge runtime: MS-IA over a wide hot-spot range ({scale_range} keys, {scale_txns} txns, {scale_work_us}us/section), sequencer waves executed on the per-edge WorkerPool; workers=1 is the inline (historic, byte-identical) path",
    "curve": [
{scaling_json}
    ]
  }},
  "criterion_ns_per_iter_pr1_record": {{
    "note": "frozen historical record measured once during PR 1, NOT re-measured by this binary; for live criterion numbers run the benches with CRITERION_JSON=<path>",
    "pre_pr1_seed": {{
{pre}
    }},
    "post_pr1": {{
{post}
    }}
  }}
}}
"#,
        locks_per_sec = acquire_all_batches * batch_pairs.len() as f64,
        pipelined_speedup = wal_file_pipelined / wal_file_group64,
        scale_range = scale_cfg.key_range,
        scale_txns = scale_cfg.txns,
        scale_work_us = scale_cfg.section_work.as_micros(),
        txns = cfg.txns,
        threads = cfg.threads,
        key_range = cfg.key_range,
        updates = cfg.updates,
        sr_hold = sr.avg_hold_ms,
        sr_abort = sr.abort_rate,
        sr_commits = sr.commits,
        ia_hold = ia.avg_hold_ms,
        ia_abort = ia.abort_rate,
        ia_commits = ia.commits,
        pre = fmt_pairs(CRITERION_PRE_PR1),
        post = fmt_pairs(CRITERION_POST_PR1),
    );

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {out_path}");
}
