//! Figure 4: latency of Croesus at the optimal thresholds across the four
//! deployment setups ({small, regular edge} × {same, different location}).

use croesus_bench::{banner, config, f2, ms, pct, Table, DEFAULT_MU, FRAMES, SEED};
use croesus_core::{Croesus, CroesusConfig, ThresholdEvaluator, ThresholdPair, ValidationPolicy};
use croesus_detect::{ModelProfile, SimulatedModel};
use croesus_net::Setup;
use croesus_video::VideoPreset;

/// Find the optimal pair for a video (independent of setup: thresholds
/// concern detection quality, not deployment).
fn optimal(preset: VideoPreset) -> ThresholdPair {
    let video = preset.generate(FRAMES, SEED);
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let ev = ThresholdEvaluator::build(&video, &edge, &cloud, 0.10);
    ev.brute_force(DEFAULT_MU, 0.1).pair
}

fn main() {
    banner("Figure 4: optimal-threshold Croesus latency across deployment setups");
    for preset in VideoPreset::FIG2 {
        let pair = optimal(preset);
        println!(
            "\n  --- {} : {} — optimal thresholds ({:.1}, {:.1}), µ={DEFAULT_MU} ---",
            preset.paper_id(),
            preset.description(),
            pair.lower,
            pair.upper
        );
        let mut t = Table::new(&["setup", "initial (ms)", "final (ms)", "F-score", "BU"]);
        for setup in Setup::ALL {
            let cfg: CroesusConfig = config(preset, pair)
                .with_setup(setup)
                .with_validation(ValidationPolicy::Thresholds(pair));
            let m = Croesus::multistage(&cfg).run();
            t.row(vec![
                setup.label(),
                ms(m.initial_commit_ms),
                ms(m.final_commit_ms),
                f2(m.f_score),
                pct(m.bandwidth_utilization),
            ]);
        }
        t.print();
    }
    println!(
        "\n  Paper shape: co-locating edge and cloud removes the ~62 ms (each way)\n  \
         cross-country hop from the final latency; the t3a.small edge inflates the\n  \
         initial commit via slower Tiny-YOLO inference; v3's near-0% BU makes its\n  \
         final latency track the edge path in every setup."
    );
}
