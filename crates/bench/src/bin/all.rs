//! Run every figure/table reproduction harness in sequence.
//!
//! Equivalent to running the `fig2`, `fig3`, `fig4`, `fig5`, `fig6a`,
//! `fig6b`, `fig6c`, `table1` and `table2` binaries one after another;
//! kept as process invocations so each harness stays independently
//! runnable and this driver cannot drift from them.

use std::process::Command;

fn main() {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let harnesses = [
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6a",
        "fig6b",
        "fig6c",
        "table1",
        "table2",
        "multistage",
        "queueing",
        "feedback",
    ];
    for h in harnesses {
        let path = dir.join(h);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {h}: {e}"));
        assert!(status.success(), "{h} exited with {status}");
    }
    println!("\nAll {} harnesses completed.", harnesses.len());
}
