//! Figure 2: Croesus vs state-of-the-art baselines — latency breakdown and
//! F-score for four videos under varying bandwidth-utilization
//! configurations.

use croesus_bench::{banner, config, f2, ms, pct, Table};
use croesus_core::{Croesus, ThresholdPair, ValidationPolicy};
use croesus_video::VideoPreset;

fn main() {
    banner("Figure 2: Croesus vs edge/cloud baselines (latency breakdown + F-score)");
    println!("  components (ms): edge-link | edge-detect | init-txn | cloud-link | cloud-detect | final-txn");
    for preset in VideoPreset::FIG2 {
        println!(
            "\n  --- {} : {} ---",
            preset.paper_id(),
            preset.description()
        );
        let mut t = Table::new(&[
            "system",
            "edge-link",
            "edge-det",
            "init-txn",
            "cloud-link",
            "cloud-det",
            "final-txn",
            "initial",
            "final",
            "F-score",
            "BU",
        ]);
        let base = config(preset, ThresholdPair::new(0.4, 0.6));

        let mut push = |label: &str, m: &croesus_core::RunMetrics| {
            let b = &m.breakdown;
            t.row(vec![
                label.to_string(),
                ms(b.edge_link_ms),
                ms(b.edge_detect_ms),
                ms(b.initial_txn_ms),
                ms(b.cloud_link_ms),
                ms(b.cloud_detect_ms),
                ms(b.final_txn_ms),
                ms(m.initial_commit_ms),
                ms(m.final_commit_ms),
                f2(m.f_score),
                pct(m.bandwidth_utilization),
            ]);
        };

        let edge = Croesus::edge_only(&base).run();
        push("edge (SotA)", &edge);
        for bu in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let m =
                Croesus::multistage(&base.clone().with_validation(ValidationPolicy::ForcedBu(bu)))
                    .run();
            push(&format!("croesus BU={:.0}%", bu * 100.0), &m);
        }
        let cloud = Croesus::cloud_only(&base).run();
        push("cloud (SotA)", &cloud);
        t.print();
    }
    println!(
        "\n  Paper shape: initial commits stay edge-fast at every BU; final latency and\n  \
         F-score rise with BU; at BU=100% Croesus' cloud latency exceeds the cloud\n  \
         baseline (it pays both paths); the airport video (v3) is accurate even at low BU."
    );
}
