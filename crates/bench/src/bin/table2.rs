//! Table 2: the effect of the cloud model size (YOLOv3-320/416/608) at
//! µ = 0.8, on the park video — optimal thresholds, F-score, bandwidth
//! utilization, and cloud detection latency.
//!
//! Ablation beyond the paper: the edge→cloud transfer cost per 1000
//! frames (§3.4 motivates thresholding with monetary cost).

use croesus_bench::{banner, config, f2, pct, Table, FRAMES, SEED};
use croesus_core::{Croesus, ThresholdEvaluator};
use croesus_detect::{ModelKind, ModelProfile, SimulatedModel};
use croesus_video::VideoPreset;

fn main() {
    banner("Table 2: effect of the cloud model size (µ = 0.8, park video)");
    let mu = 0.8;
    let preset = VideoPreset::ParkDog;
    let video = preset.generate(FRAMES, SEED);
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);

    let mut t = Table::new(&[
        "cloud model",
        "optimal (θL,θU)",
        "F-score",
        "BU",
        "detect latency (s)",
        "$/1k frames",
    ]);
    for kind in ModelKind::CLOUD_SIZES {
        let cloud_model = SimulatedModel::new(kind.profile(), SEED ^ 0xC);
        let ev = ThresholdEvaluator::build(&video, &edge_model, &cloud_model, 0.10);
        let opt = ev.brute_force(mu, 0.1);
        let m = Croesus::multistage(&config(preset, opt.pair).with_cloud_model(kind)).run();
        let dollars_per_1k = m.transfer_dollars * 1000.0 / FRAMES as f64;
        t.row(vec![
            kind.name().to_string(),
            format!("({:.1}, {:.1})", opt.pair.lower, opt.pair.upper),
            f2(m.f_score),
            pct(m.bandwidth_utilization),
            format!("{:.2}", m.breakdown.cloud_detect_ms / 1000.0),
            format!("{:.3}", dollars_per_1k),
        ]);
    }
    t.print();
    println!(
        "\n  Paper shape: detection latency grows with model size (0.70 / 1.12 / 2.34 s);\n  \
         F-score and BU stay in the same band because the optimizer re-tunes the\n  \
         thresholds per model to hit the same accuracy floor µ."
    );
}
