//! Table 1: accuracy and latency of optimal-threshold Croesus vs the
//! state-of-the-art edge and cloud baselines, for videos v1..v4.
//!
//! Accuracy is normalized to the cloud baseline (1.0 by the ground-truth
//! convention); Croesus latency shows the final commit with the initial
//! commit in parentheses, as in the paper.

use croesus_bench::{banner, config, pct, Table, DEFAULT_MU, FRAMES, SEED};
use croesus_core::{Croesus, ThresholdEvaluator, ThresholdPair};
use croesus_detect::{ModelProfile, SimulatedModel};
use croesus_video::VideoPreset;

fn main() {
    banner("Table 1: optimal-threshold Croesus vs edge and cloud baselines");
    let mut t = Table::new(&[
        "video",
        "(θL,θU)",
        "acc Croesus",
        "acc edge",
        "acc cloud",
        "lat Croesus ms",
        "lat edge ms",
        "lat cloud ms",
        "BU",
    ]);
    for preset in VideoPreset::FIG2 {
        let video = preset.generate(FRAMES, SEED);
        let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
        let cloud_model = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
        let ev = ThresholdEvaluator::build(&video, &edge_model, &cloud_model, 0.10);
        let opt = ev.brute_force(DEFAULT_MU, 0.1);

        let base = config(preset, opt.pair);
        let croesus = Croesus::multistage(&base).run();
        let edge = Croesus::edge_only(&base).run();
        let cloud = Croesus::cloud_only(&config(preset, ThresholdPair::new(0.4, 0.6))).run();

        t.row(vec![
            preset.paper_id().to_string(),
            format!("({:.1},{:.1})", opt.pair.lower, opt.pair.upper),
            format!("{:.2}x", croesus.f_score / cloud.f_score),
            format!("{:.2}x", edge.f_score / cloud.f_score),
            "1.00".to_string(),
            format!(
                "{:.1} ({:.1})",
                croesus.final_commit_ms, croesus.initial_commit_ms
            ),
            format!("{:.1}", edge.final_commit_ms),
            format!("{:.1}", cloud.final_commit_ms),
            pct(croesus.bandwidth_utilization),
        ]);
    }
    t.print();
    println!(
        "\n  Paper shape: Croesus accuracy ≈0.8x of cloud (vs ≈0.4-0.5x for edge-only,\n  \
         except the easy airport video); Croesus final latency sits well below the cloud\n  \
         baseline, and its initial commit matches the edge baseline."
    );
}
