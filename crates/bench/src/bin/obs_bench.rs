//! Observability overhead snapshot: measures raw event-emission
//! throughput, then runs the quickstart pipeline observed and unobserved
//! (interleaved, minimum wall time) to put a number on the enabled-path
//! overhead — the budget is ≤5%, and the disabled path is a single
//! `Option`-is-`None` branch pinned byte-identical by the golden tests.
//! The observed run's trace is replayed through the ordering contract
//! and its commit-latency quantiles (the new `RunMetrics` fields) are
//! recorded.
//!
//! Usage:
//!
//! ```text
//! cargo run -p croesus-bench --release --bin obs_bench [-- --quick] [--merge <BENCH_PRn.json>]
//! ```
//!
//! With `--merge <path>` the `"obs"` section is spliced into an existing
//! perf snapshot written by `perf_json` (and its `"pr"` field is bumped
//! to 8); without it, the section alone goes to stdout.

use std::sync::Arc;
use std::time::{Duration, Instant};

use croesus_core::{Croesus, CroesusConfig, RunMetrics, ThresholdPair};
use croesus_obs::{check_obs, EdgeObs, EventKind, Obs, Quantiles};
use croesus_video::VideoPreset;

fn config(frames: u64) -> CroesusConfig {
    CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
        .with_frames(frames)
        .with_seed(42)
}

/// One pipeline run; returns wall milliseconds and the metrics.
fn run_once(frames: u64, obs: Option<&Arc<Obs>>) -> (f64, RunMetrics) {
    let mut builder = Croesus::builder().config(config(frames));
    if let Some(o) = obs {
        builder = builder.observe(Arc::clone(o));
    }
    let deployment = builder.build();
    let start = Instant::now();
    let metrics = deployment.run();
    (start.elapsed().as_secs_f64() * 1e3, metrics)
}

/// Minimum-of-N: the standard denoiser for short wall-clock runs —
/// scheduling hiccups and allocator warm-up only ever add time, so the
/// minimum is the cleanest estimate of the true cost on both sides.
fn min_ms(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Raw enabled-path emission throughput (events/sec into one stream).
fn emit_events_per_sec(budget: Duration) -> f64 {
    let edge = EdgeObs::standalone(0);
    let mut txn = 0u64;
    let warm_end = Instant::now() + budget / 10;
    while Instant::now() < warm_end {
        txn += 1;
        edge.emit_txn(txn, EventKind::InitialCommit);
    }
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        for _ in 0..1024 {
            txn += 1;
            edge.emit_txn(txn, EventKind::InitialCommit);
        }
        iters += 1024;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return iters as f64 / elapsed.as_secs_f64();
        }
    }
}

fn quantiles_json(q: Quantiles) -> String {
    format!(
        "{{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}}}",
        q.p50, q.p90, q.p99, q.p999
    )
}

fn section(quick: bool) -> String {
    let budget = if quick {
        Duration::from_millis(120)
    } else {
        Duration::from_millis(600)
    };
    eprintln!("measuring raw emission throughput...");
    let emit_rate = emit_events_per_sec(budget);

    let frames = if quick { 60 } else { 1200 };
    let repeats = if quick { 3 } else { 17 };
    eprintln!("running the quickstart pipeline {repeats}x observed and {repeats}x unobserved...");
    // One untimed warmup per side: page in the code, warm the allocator.
    run_once(frames, None);
    run_once(frames, Some(&Obs::shared()));
    let mut disabled = Vec::with_capacity(repeats);
    let mut enabled = Vec::with_capacity(repeats);
    let mut last: Option<(Arc<Obs>, RunMetrics)> = None;
    for _ in 0..repeats {
        // Interleave so thermal / cache drift hits both sides equally.
        disabled.push(run_once(frames, None).0);
        // Free the previous ring first so the allocator hands the new one
        // already-faulted pages instead of cold ones.
        drop(last.take());
        let obs = Obs::shared();
        let (ms, metrics) = run_once(frames, Some(&obs));
        enabled.push(ms);
        last = Some((obs, metrics));
    }
    let disabled_ms = min_ms(&disabled);
    let enabled_ms = min_ms(&enabled);
    let overhead_pct = (enabled_ms / disabled_ms - 1.0) * 100.0;

    let (obs, metrics) = last.expect("repeats >= 1");
    let report = match check_obs(&obs) {
        Ok(r) => r,
        Err(v) => {
            eprintln!("error: the observed run's trace violates the ordering contract: {v}");
            std::process::exit(1);
        }
    };

    format!(
        r#""obs": {{
    "note": "PR 8 observability: emit = enabled-path events/sec into one edge stream (one locked counter+seq+ring-push critical section); pipeline = min wall ms of the quickstart pipeline over {repeats} interleaved runs, observed vs unobserved — the overhead budget is 5%, and the *disabled* path is a single Option-is-None branch, pinned byte-identical by the golden-pin tests; quantiles are the new RunMetrics histogram fields from the observed run, whose full trace passed the executable ordering contract",
    "emit_events_per_sec": {emit_rate:.0},
    "pipeline": {{
      "frames": {frames},
      "repeats": {repeats},
      "disabled_ms_min": {disabled_ms:.2},
      "enabled_ms_min": {enabled_ms:.2},
      "enabled_overhead_pct": {overhead_pct:.2}
    }},
    "trace": {{
      "events": {events},
      "dropped": {dropped},
      "ordering_check": "passed",
      "finalized_txns": {finalized},
      "initial_commit_quantiles_ms": {iq},
      "final_commit_quantiles_ms": {fq}
    }}
  }}"#,
        events = report.events,
        dropped = obs.dropped(),
        finalized = report.finalized,
        iq = quantiles_json(metrics.initial_commit_quantiles),
        fq = quantiles_json(metrics.final_commit_quantiles),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let merge = args
        .iter()
        .position(|a| a == "--merge")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let section = section(quick);
    match merge {
        Some(path) => {
            let base = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            let Some(end) = base.rfind('}') else {
                eprintln!("error: {path} does not look like a JSON object");
                std::process::exit(1);
            };
            let merged = format!("{},\n  {}\n}}\n", base[..end].trim_end(), section)
                .replacen("\"pr\": 3", "\"pr\": 8", 1)
                .replacen("\"pr\": 7", "\"pr\": 8", 1);
            if let Err(e) = std::fs::write(&path, &merged) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("merged obs section into {path}");
        }
        None => println!("{{\n  {section}\n}}"),
    }
}
