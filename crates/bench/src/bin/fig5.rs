//! Figure 5: heatmaps of bandwidth utilization and F-score over the
//! (θL, θU) grid, with the brute-force (★) and gradient-step (☆) optima.
//!
//! (a) street traffic querying "person", µ = 0.90;
//! (b) mall surveillance querying "person", µ = 0.80.

use croesus_bench::{banner, FRAMES, SEED};
use croesus_core::{ThresholdEvaluator, ThresholdPair};
use croesus_detect::{ModelProfile, SimulatedModel};
use croesus_video::VideoPreset;

fn heatmaps(preset: VideoPreset, mu: f64) {
    let video = preset.generate(FRAMES, SEED);
    let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
    let ev = ThresholdEvaluator::build(&video, &edge, &cloud, 0.10);

    let brute = ev.brute_force(mu, 0.1);
    let grad = ev.gradient(mu, 0.1);

    println!(
        "\n  --- {} (µ = {mu}) — ★ brute force ({:.1},{:.1}) in {} evals, ☆ gradient ({:.1},{:.1}) in {} evals ---",
        preset.description(),
        brute.pair.lower,
        brute.pair.upper,
        brute.evaluations,
        grad.pair.lower,
        grad.pair.upper,
        grad.evaluations,
    );
    println!(
        "  gradient evaluation speedup: {:.1}x",
        brute.evaluations as f64 / grad.evaluations as f64
    );

    for (title, metric) in [("BU %", 0usize), ("F-score %", 1usize)] {
        println!("\n  {title} (rows θL 0.0..0.9, cols θU 0.0..0.9; '.' = invalid θL>θU)");
        print!("   θL\\θU");
        for u in 0..10 {
            print!(" {:>4}", format!("0.{u}"));
        }
        println!();
        for l in 0..10 {
            print!("   {:>5}", format!("0.{l}"));
            for u in 0..10 {
                if u < l {
                    print!(" {:>4}", ".");
                    continue;
                }
                let pair = ThresholdPair::new(l as f64 / 10.0, u as f64 / 10.0);
                let out = ev.evaluate(pair);
                let v = if metric == 0 { out.bu } else { out.f_score };
                let mark = if pair == brute.pair {
                    "*"
                } else if pair == grad.pair {
                    "+"
                } else {
                    ""
                };
                print!(" {:>4}", format!("{}{:.0}", mark, v * 100.0));
            }
            println!();
        }
    }
}

fn main() {
    banner("Figure 5: BU and F-score heatmaps over the threshold grid");
    heatmaps(VideoPreset::StreetPedestrians, 0.90);
    heatmaps(VideoPreset::MallSurveillance, 0.80);
    println!(
        "\n  Paper shape: widening the validate interval (larger θU−θL, lower θL) raises\n  \
         both BU and F; the mall video jumps sharply once validation starts (small,\n  \
         unclear objects); the gradient search lands near the brute-force optimum with\n  \
         a fraction of the evaluations (paper: 2.2x faster)."
    );
}
