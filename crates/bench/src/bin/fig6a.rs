//! Figure 6(a): lock contention of MS-SR vs MS-IA, measured as the average
//! latency of holding locks.
//!
//! The workload mirrors §5.2.4 (v4, "person"): update transactions over a
//! moderate hot spot, with the YOLOv3-416-class cloud round trip (~1.25 s)
//! between initial and final sections. MS-SR (TSPL) holds every lock across
//! that round trip; MS-IA releases at initial commit. The cloud wait runs
//! scaled 1:100 in real time and reported holds are corrected back to the
//! unscaled value (see `croesus_bench::contention`).

use croesus_bench::contention::{run_ms_ia, run_ms_sr, ContentionConfig};
use croesus_bench::{banner, Table};

fn main() {
    banner("Figure 6(a): average lock-hold latency, MS-SR vs MS-IA");
    let cfg = ContentionConfig::paper(10_000);
    let sr = run_ms_sr(&cfg);
    let ia = run_ms_ia(&cfg);

    let mut t = Table::new(&["protocol", "avg lock hold (ms)", "commits", "aborts"]);
    t.row(vec![
        "MS-SR (TSPL)".into(),
        format!("{:.2}", sr.avg_hold_ms),
        sr.commits.to_string(),
        sr.total_aborts.to_string(),
    ]);
    t.row(vec![
        "MS-IA".into(),
        format!("{:.3}", ia.avg_hold_ms),
        ia.commits.to_string(),
        ia.total_aborts.to_string(),
    ]);
    t.print();
    println!(
        "\n  ratio: MS-SR holds locks {:.0}x longer than MS-IA",
        sr.avg_hold_ms / ia.avg_hold_ms.max(1e-6)
    );
    println!(
        "\n  Paper shape: MS-IA holds are in the order of milliseconds; MS-SR holds are\n  \
         hundreds of milliseconds and beyond because locks span cloud-model processing."
    );
}
