//! Ablation (§3.5): does a third stage help? The paper generalizes the
//! model to m stages but reports that "the general design turned out to add
//! additional overhead without providing a significant benefit for
//! edge-cloud video analytics". This harness compares the 2-stage
//! edge→cloud chain with a 3-stage edge→fog→cloud chain on every preset.

use croesus_bench::{banner, f2, ms, pct, Table, FRAMES, SEED};
use croesus_core::{edge_cloud_chain, edge_fog_cloud_chain, run_stage_chain, ThresholdPair};
use croesus_video::VideoPreset;

fn main() {
    banner("Ablation: 2-stage (edge→cloud) vs 3-stage (edge→fog→cloud) chains");
    let mut t = Table::new(&[
        "video",
        "chain",
        "initial (ms)",
        "final (ms)",
        "F-score",
        "settled@s0",
        "settled@s1",
        "settled@s2",
    ]);
    for preset in VideoPreset::FIG2 {
        let video = preset.generate(FRAMES, SEED);
        let two = run_stage_chain(
            &video,
            &edge_cloud_chain(SEED, ThresholdPair::new(0.4, 0.6)),
            SEED,
        );
        let three = run_stage_chain(
            &video,
            &edge_fog_cloud_chain(
                SEED,
                ThresholdPair::new(0.4, 0.6),
                ThresholdPair::new(0.5, 0.8),
            ),
            SEED,
        );
        for (label, m) in [("edge→cloud", &two), ("edge→fog→cloud", &three)] {
            t.row(vec![
                preset.paper_id().to_string(),
                label.to_string(),
                ms(m.initial_latency_ms),
                ms(m.final_latency_ms),
                f2(m.f_score),
                pct(m.stages[0].settle_rate),
                pct(m.stages[1].settle_rate),
                m.stages
                    .get(2)
                    .map_or("-".to_string(), |s| pct(s.settle_rate)),
            ]);
        }
    }
    t.print();
    println!(
        "\n  Paper claim under test: the fog tier absorbs some frames cheaply, but the\n  \
         two-fold edge/cloud asymmetry means the extra stage rarely changes accuracy\n  \
         enough to justify its added latency and machinery."
    );
}
