//! Ablation (footnote 1): feeding cloud corrections back into the edge
//! model. The paper notes that "the corrected information would also
//! influence the small model — via retraining and heuristics such as
//! smoothing"; this harness quantifies the smoothing heuristic on every
//! video preset.

use croesus_bench::{banner, f2, Table, FRAMES, SEED};
use croesus_detect::{
    match_detections, score_against, Detection, DetectionModel, FeedbackModel, MatchOutcome,
    ModelProfile, SimulatedModel,
};
use croesus_sim::stats::PrecisionRecall;
use croesus_video::VideoPreset;

fn main() {
    banner("Ablation: edge-model smoothing from cloud corrections (footnote 1)");
    let mut t = Table::new(&["video", "edge F (raw)", "edge F (smoothed)", "gain"]);
    for preset in VideoPreset::FIG2 {
        let video = preset.generate(FRAMES, SEED);
        let query = video.query_class().clone();
        let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), SEED ^ 0xC);
        let raw_edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
        let smoothed = FeedbackModel::new(
            SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE),
            15,
        );

        let mut raw_pr = PrecisionRecall::default();
        let mut smooth_pr = PrecisionRecall::default();
        for f in video.frames() {
            let reference: Vec<Detection> = cloud.detect(f);
            let raw = raw_edge.detect(f);
            let smooth = smoothed.detect_smoothed(f);
            raw_pr.add(score_against(&raw, &reference, &query, 0.10));
            smooth_pr.add(score_against(&smooth, &reference, &query, 0.10));

            // Feed this frame's verdicts back, as Croesus' final stage would.
            let m = match_detections(&smooth, &reference, 0.10);
            for (d, outcome) in smooth.iter().zip(&m.outcomes) {
                match outcome {
                    MatchOutcome::Corrected { reference: ri } => smoothed.record_correction(
                        f.index,
                        reference[*ri].bbox,
                        Some(reference[*ri].class.clone()),
                    ),
                    MatchOutcome::Erroneous => smoothed.record_correction(f.index, d.bbox, None),
                    MatchOutcome::Correct { .. } => {}
                }
            }
            for &ri in &m.unmatched_references {
                // Only confident cloud detections are worth recalling —
                // the cloud has (rare) low-confidence false positives too.
                if reference[ri].confidence >= 0.6 {
                    smoothed.record_correction(
                        f.index,
                        reference[ri].bbox,
                        Some(reference[ri].class.clone()),
                    );
                }
            }
        }
        t.row(vec![
            format!("{} {}", preset.paper_id(), preset.description()),
            f2(raw_pr.f_score()),
            f2(smooth_pr.f_score()),
            format!("{:+.2}", smooth_pr.f_score() - raw_pr.f_score()),
        ]);
    }
    t.print();
    println!(
        "\n  Shape: smoothing recovers part of the edge model's error on hard videos\n  \
         (mall, pedestrians), and has little to add where the edge is already right\n  \
         (airport) — corrections only help when there are errors to remember."
    );
}
