//! Figure 6(c): hybrid edge-cloud techniques — compression and difference
//! communication — applied to the cloud baseline and to Croesus, on the
//! park video (v1) with the larger YOLOv3-608 cloud model.

use croesus_bench::{banner, config, f2, ms, pct, Table, DEFAULT_MU, FRAMES, SEED};
use croesus_core::{Croesus, ThresholdEvaluator, ThresholdPair};
use croesus_detect::{ModelKind, ModelProfile, SimulatedModel};
use croesus_net::PayloadCodec;
use croesus_video::VideoPreset;

fn main() {
    banner("Figure 6(c): hybrid techniques (v1, YOLOv3-608)");
    let preset = VideoPreset::ParkDog;

    // Optimal thresholds for v1 under the 608 cloud model.
    let video = preset.generate(FRAMES, SEED);
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), SEED ^ 0xE);
    let cloud_model = SimulatedModel::new(ModelProfile::yolov3_608(), SEED ^ 0xC);
    let pair = ThresholdEvaluator::build(&video, &edge_model, &cloud_model, 0.10)
        .brute_force(DEFAULT_MU, 0.1)
        .pair;

    let mut t = Table::new(&[
        "system",
        "final latency (ms)",
        "bytes sent (MB)",
        "F-score",
        "BU",
    ]);
    for codec in PayloadCodec::FIG6C {
        let cfg = config(preset, ThresholdPair::new(0.4, 0.6))
            .with_cloud_model(ModelKind::YoloV3_608)
            .with_codec(codec);
        let m = Croesus::cloud_only(&cfg).run();
        t.row(vec![
            format!("cloud{}", codec.label()),
            ms(m.final_commit_ms),
            format!("{:.1}", m.bytes_sent as f64 / 1e6),
            f2(m.f_score),
            pct(m.bandwidth_utilization),
        ]);
    }
    for codec in PayloadCodec::FIG6C {
        let cfg = config(preset, pair)
            .with_cloud_model(ModelKind::YoloV3_608)
            .with_codec(codec);
        let m = Croesus::multistage(&cfg).run();
        t.row(vec![
            format!("croesus{}", codec.label()),
            ms(m.final_commit_ms),
            format!("{:.1}", m.bytes_sent as f64 / 1e6),
            f2(m.f_score),
            pct(m.bandwidth_utilization),
        ]);
    }
    t.print();
    println!(
        "\n  Paper shape: compression/difference shave transfer time but the improvement is\n  \
         small — cloud detection latency dominates; in isolation the hybrid techniques\n  \
         still pay for every frame, while Croesus cuts the frames themselves."
    );
}
