//! Figure 6(b): MS-SR transaction abort rate vs hot-spot key range.
//!
//! §5.2.4: batches of 50 transactions, 5 updates each, over hot spots of
//! 10..100K keys. MS-IA's rate is 0% for every range (the single-threaded
//! sequencer orders conflicting transactions into non-overlapping waves).
//!
//! Ablation beyond the paper: the same sweep under NoWait instead of
//! wait-die, separating the cost of the deadlock-avoidance policy from the
//! cost of holding locks across the cloud round trip.

use croesus_bench::contention::{run_ms_ia, run_ms_sr, run_ms_sr_with_policy, ContentionConfig};
use croesus_bench::{banner, pct, Table};
use croesus_store::LockPolicy;

fn main() {
    banner("Figure 6(b): MS-SR abort rate vs hot-spot key range");
    let mut t = Table::new(&[
        "key range",
        "MS-SR abort rate",
        "MS-IA abort rate",
        "MS-SR/NoWait (ablation)",
    ]);
    for key_range in [10u64, 100, 1_000, 10_000, 100_000] {
        let cfg = ContentionConfig::paper(key_range);
        let sr = run_ms_sr(&cfg);
        let ia = run_ms_ia(&cfg);
        let nowait = run_ms_sr_with_policy(&cfg, LockPolicy::NoWait);
        t.row(vec![
            key_range.to_string(),
            pct(sr.abort_rate),
            pct(ia.abort_rate),
            pct(nowait.abort_rate),
        ]);
    }
    t.print();
    println!(
        "\n  Paper shape: MS-SR aborts are significant below ~10K keys and fade as the\n  \
         hot spot widens; MS-IA stays at 0% everywhere thanks to the sequencer."
    );
}
