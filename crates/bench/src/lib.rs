//! Shared helpers for the per-figure/table reproduction harnesses.
//!
//! Each binary in `src/bin/` regenerates one figure or table from the
//! paper's evaluation (§5); `src/bin/all.rs` runs the full set. This
//! library holds the common run configurations and plain-text table
//! rendering so every harness prints comparable, paper-shaped output.

use croesus_core::{CroesusConfig, RunMetrics, ThresholdPair};
use croesus_video::VideoPreset;

pub mod contention;

/// Frames per experiment. 300 frames ≈ 10 s of 30 fps video — enough for
/// stable statistics while keeping every harness under a few seconds.
pub const FRAMES: u64 = 300;

/// The workspace-wide experiment seed.
pub const SEED: u64 = 42;

/// The default accuracy floor µ used where the paper does not state one.
pub const DEFAULT_MU: f64 = 0.80;

/// Standard config for a Croesus run at a threshold pair.
pub fn config(preset: VideoPreset, pair: ThresholdPair) -> CroesusConfig {
    CroesusConfig::new(preset, pair)
        .with_frames(FRAMES)
        .with_seed(SEED)
}

/// A plain-text table printer with right-aligned numeric columns.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row/header arity mismatch");
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format milliseconds compactly.
pub fn ms(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format an F-score / ratio with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// One-line summary of a run for the latency-style tables.
pub fn summary_row(m: &RunMetrics) -> Vec<String> {
    vec![
        m.label.clone(),
        ms(m.initial_commit_ms),
        ms(m.final_commit_ms),
        f2(m.f_score),
        pct(m.bandwidth_utilization),
    ]
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!();
    println!("== {title} ==");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_accepts_matching_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_arity_panics() {
        let mut t = Table::new(&["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(123.456), "123.5");
        assert_eq!(pct(0.385), "38.5%");
        assert_eq!(f2(0.8123), "0.81");
    }

    #[test]
    fn config_uses_experiment_defaults() {
        let c = config(VideoPreset::ParkDog, ThresholdPair::new(0.3, 0.6));
        assert_eq!(c.num_frames, FRAMES);
        assert_eq!(c.seed, SEED);
    }
}
