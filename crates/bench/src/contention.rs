//! The concurrency experiments behind Figure 6(a) and 6(b): genuinely
//! concurrent execution of the real protocol implementations over a
//! hot-spot workload, driven through `dyn`
//! [`MultiStageProtocol`] so every protocol runs under the same harness.
//!
//! The edge→cloud round trip (≈1.25 s with YOLOv3-416) is replaced by a
//! scaled-down real sleep; reported lock-hold times add back the unscaled
//! remainder for MS-SR, whose holds span that wait by construction. MS-IA
//! holds never include the wait (locks are released at initial commit), so
//! its numbers need no correction. Each section also performs a small
//! amount of simulated work (`section_work`), calibrated to the paper's
//! Python prototype where a 5-update section takes on the order of a
//! millisecond.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use croesus_core::HotspotWorkload;
use croesus_sim::DetRng;
use croesus_store::{KvStore, LockManager, LockPolicy, TxnId};
use croesus_txn::{
    ExecutorCore, MultiStageProtocol, MultiStageProtocolExt, ProtocolKind, RwSet, Sequencer,
    TxnHandle, WorkerPool,
};

/// Configuration of one contention run.
#[derive(Clone, Copy, Debug)]
pub struct ContentionConfig {
    /// Total transactions to commit.
    pub txns: usize,
    /// Worker threads (MS-SR only; the released protocols use the
    /// sequencer).
    pub threads: usize,
    /// Hot-spot key range.
    pub key_range: u64,
    /// Updates per transaction (5 in the paper).
    pub updates: usize,
    /// The *scaled* real sleep standing in for the cloud round trip.
    pub scaled_cloud_wait: Duration,
    /// The full (unscaled) cloud round trip being modeled.
    pub full_cloud_wait: Duration,
    /// Simulated per-section execution work (inside the lock scope).
    pub section_work: Duration,
    /// Seed for workload key selection.
    pub seed: u64,
}

impl ContentionConfig {
    /// The paper's Figure-6 shape: batches of 50 transactions with 5
    /// updates each over the given hot-spot range; v4-style workload. The
    /// cloud wait is scaled 1:100 to keep the experiment fast; each
    /// section performs ~0.5 ms of work as in the Python prototype.
    pub fn paper(key_range: u64) -> Self {
        ContentionConfig {
            txns: 200,
            threads: 8,
            key_range,
            updates: 5,
            scaled_cloud_wait: Duration::from_micros(12_500),
            full_cloud_wait: Duration::from_millis(1_250),
            section_work: Duration::from_micros(500),
            seed: 42,
        }
    }
}

/// The outcome of one contention run.
#[derive(Clone, Copy, Debug)]
pub struct ContentionResult {
    /// Committed transactions.
    pub commits: u64,
    /// Total aborted attempts (each aborted attempt was retried).
    pub total_aborts: u64,
    /// Transactions whose *first* attempt aborted — the paper's batch
    /// abort rate counts a transaction once.
    pub first_attempt_aborts: u64,
    /// `first_attempt_aborts / txns`.
    pub abort_rate: f64,
    /// Mean lock-hold time per transaction, corrected to the unscaled
    /// cloud wait, in milliseconds.
    pub avg_hold_ms: f64,
    /// Wall-clock time of the whole run — the scaling-curve numerator.
    pub elapsed: Duration,
}

impl ContentionResult {
    /// Committed transactions per wall-clock second.
    pub fn txn_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.commits as f64 / secs
        } else {
            0.0
        }
    }
}

fn rwsets(cfg: &ContentionConfig) -> Vec<RwSet> {
    let workload = HotspotWorkload {
        key_range: cfg.key_range,
        updates: cfg.updates,
    };
    let mut rng = DetRng::new(cfg.seed).fork_named("contention");
    (0..cfg.txns).map(|_| workload.rwset(&mut rng)).collect()
}

fn protocol(kind: ProtocolKind, policy: LockPolicy) -> Arc<Box<dyn MultiStageProtocol>> {
    Arc::new(kind.build(ExecutorCore::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(policy)),
    )))
}

/// Run the workload under MS-SR (TSPL) with the given lock policy
/// (wait-die in the paper; no-wait as an ablation), `cfg.threads` workers,
/// retrying killed transactions with their original ids until they commit.
/// Locks stay held across the (scaled) cloud wait — that is the protocol.
pub fn run_ms_sr_with_policy(cfg: &ContentionConfig, policy: LockPolicy) -> ContentionResult {
    let sets = Arc::new(rwsets(cfg));
    let executor = protocol(ProtocolKind::MsSr, policy);
    let next = Arc::new(AtomicUsize::new(0));
    let first_attempt_aborts = Arc::new(AtomicU64::new(0));
    let wait = cfg.scaled_cloud_wait;
    let work = cfg.section_work;
    let started = Instant::now();

    let handles: Vec<_> = (0..cfg.threads)
        .map(|_| {
            let sets = Arc::clone(&sets);
            let executor = Arc::clone(&executor);
            let next = Arc::clone(&next);
            let first_attempt_aborts = Arc::clone(&first_attempt_aborts);
            thread::spawn(move || loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= sets.len() {
                    break;
                }
                let rw = &sets[idx];
                let mut attempt = 0u32;
                // The final section updates the same keys: TSPL must lock
                // them before initial commit and hold across the wait.
                loop {
                    attempt += 1;
                    let h = executor.begin(TxnId(idx as u64), &[rw.clone(), rw.clone()]);
                    let initial = executor.stage(h, rw, |ctx| {
                        thread::sleep(work);
                        for k in &rw.writes {
                            ctx.write(k.clone(), 1i64)?;
                        }
                        Ok(())
                    });
                    match initial {
                        Ok((_, pending)) => {
                            thread::sleep(wait);
                            executor
                                .stage(pending.expect("two stages"), rw, |ctx| {
                                    thread::sleep(work);
                                    for k in &rw.writes {
                                        ctx.write(k.clone(), 2i64)?;
                                    }
                                    Ok(())
                                })
                                .expect("final stages cannot abort");
                            break;
                        }
                        Err(_) => {
                            if attempt == 1 {
                                first_attempt_aborts.fetch_add(1, Ordering::Relaxed);
                            }
                            thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let snap = executor.stats().snapshot();
    // Committed holds span one scaled wait each; add back the remainder.
    let correction_ms =
        (cfg.full_cloud_wait.as_secs_f64() - cfg.scaled_cloud_wait.as_secs_f64()) * 1e3;
    let first = first_attempt_aborts.load(Ordering::Relaxed);
    ContentionResult {
        commits: snap.commits,
        total_aborts: snap.aborts,
        first_attempt_aborts: first,
        abort_rate: first as f64 / cfg.txns.max(1) as f64,
        avg_hold_ms: snap.avg_lock_hold_ms + correction_ms,
        elapsed: started.elapsed(),
    }
}

/// MS-SR with the paper's wait-die policy.
pub fn run_ms_sr(cfg: &ContentionConfig) -> ContentionResult {
    run_ms_sr_with_policy(cfg, LockPolicy::WaitDie)
}

/// Run the workload under a lock-releasing protocol (MS-IA or staged)
/// with the paper's single-threaded batch sequencer: conflicting
/// transactions never overlap, so the abort rate is 0% and locks are held
/// only for the duration of a section. The cloud wait happens between the
/// stages, with no locks held — the whole point of MS-IA.
pub fn run_released(kind: ProtocolKind, cfg: &ContentionConfig) -> ContentionResult {
    assert!(
        kind != ProtocolKind::MsSr,
        "MS-SR holds locks across waits; use run_ms_sr"
    );
    let sets = rwsets(cfg);
    let executor = kind.build(ExecutorCore::new(
        Arc::new(KvStore::new()),
        Arc::new(LockManager::new(LockPolicy::Block)),
    ));
    let work = cfg.section_work;
    let started = Instant::now();

    // Initial sections wave by wave, then final sections.
    let mut pendings: Vec<Option<TxnHandle>> = (0..sets.len()).map(|_| None).collect();
    Sequencer::run_batch::<croesus_txn::TxnError>(&sets, |idx| {
        let rw = &sets[idx];
        let h = executor.begin(TxnId(idx as u64), &[rw.clone(), rw.clone()]);
        let (_, p) = executor.stage(h, rw, |ctx| {
            thread::sleep(work);
            for k in &rw.writes {
                ctx.write(k.clone(), 1i64)?;
            }
            Ok(())
        })?;
        pendings[idx] = p;
        Ok(())
    })
    .expect("sequenced initial sections cannot conflict");

    for (idx, pending) in pendings.into_iter().enumerate() {
        let rw = &sets[idx];
        let p = pending.expect("every initial committed");
        executor
            .stage(p, rw, |ctx| {
                thread::sleep(work);
                for k in &rw.writes {
                    ctx.write(k.clone(), 2i64)?;
                }
                Ok(())
            })
            .expect("final sections cannot abort");
    }

    let snap = executor.stats().snapshot();
    ContentionResult {
        commits: snap.commits,
        total_aborts: snap.aborts,
        first_attempt_aborts: snap.aborts,
        abort_rate: snap.abort_rate(),
        avg_hold_ms: snap.avg_lock_hold_ms,
        elapsed: started.elapsed(),
    }
}

/// MS-IA under the sequencer (the paper's 0%-abort configuration).
pub fn run_ms_ia(cfg: &ContentionConfig) -> ContentionResult {
    run_released(ProtocolKind::MsIa, cfg)
}

/// Run a lock-releasing protocol with the sequencer's waves executed on a
/// [`WorkerPool`] — the wave-parallel edge runtime's harness, measured in
/// isolation for the scaling curve.
///
/// Both the initial *and* final sections run wave-parallel here. That is
/// safe because the contention workload has no retraction cascades: a
/// final section touches exactly its declared footprint, so wave-mates
/// stay disjoint. (The edge pipeline must honour cascades that can
/// restore keys outside any declared footprint, which is why it keeps
/// finals sequential — see DESIGN.md.)
pub fn run_released_pooled(
    kind: ProtocolKind,
    cfg: &ContentionConfig,
    workers: usize,
) -> ContentionResult {
    assert!(
        kind != ProtocolKind::MsSr,
        "MS-SR holds locks across waits; use run_ms_sr"
    );
    let sets = Arc::new(rwsets(cfg));
    let executor = protocol(kind, LockPolicy::Block);
    let pool = WorkerPool::new(workers);
    let work = cfg.section_work;
    let started = Instant::now();

    let waves = Sequencer::waves(&sets);
    let mut pendings: Vec<Option<TxnHandle>> = (0..sets.len()).map(|_| None).collect();
    for wave in &waves {
        let jobs: Vec<_> = wave
            .iter()
            .map(|&idx| {
                let sets = Arc::clone(&sets);
                let executor = Arc::clone(&executor);
                move || {
                    let rw = &sets[idx];
                    let h = executor.begin(TxnId(idx as u64), &[rw.clone(), rw.clone()]);
                    let (_, p) = executor
                        .stage(h, rw, |ctx| {
                            thread::sleep(work);
                            for k in &rw.writes {
                                ctx.write(k.clone(), 1i64)?;
                            }
                            Ok(())
                        })
                        .expect("sequenced initial sections cannot conflict");
                    (idx, p)
                }
            })
            .collect();
        for (idx, p) in pool.run_wave(jobs) {
            pendings[idx] = p;
        }
    }

    for wave in &waves {
        let jobs: Vec<_> = wave
            .iter()
            .map(|&idx| {
                let sets = Arc::clone(&sets);
                let executor = Arc::clone(&executor);
                let p = pendings[idx].take().expect("every initial committed");
                move || {
                    let rw = &sets[idx];
                    executor
                        .stage(p, rw, |ctx| {
                            thread::sleep(work);
                            for k in &rw.writes {
                                ctx.write(k.clone(), 2i64)?;
                            }
                            Ok(())
                        })
                        .expect("final sections cannot abort");
                }
            })
            .collect();
        pool.run_wave(jobs);
    }

    let snap = executor.stats().snapshot();
    ContentionResult {
        commits: snap.commits,
        total_aborts: snap.aborts,
        first_attempt_aborts: snap.aborts,
        abort_rate: snap.abort_rate(),
        avg_hold_ms: snap.avg_lock_hold_ms,
        elapsed: started.elapsed(),
    }
}

/// Any protocol under its natural harness: MS-SR threaded with wait-die,
/// the others sequenced.
pub fn run_protocol(kind: ProtocolKind, cfg: &ContentionConfig) -> ContentionResult {
    match kind {
        ProtocolKind::MsSr => run_ms_sr(cfg),
        _ => run_released(kind, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(key_range: u64) -> ContentionConfig {
        ContentionConfig {
            txns: 60,
            threads: 4,
            key_range,
            updates: 5,
            scaled_cloud_wait: Duration::from_micros(500),
            full_cloud_wait: Duration::from_millis(1_250),
            section_work: Duration::from_micros(100),
            seed: 42,
        }
    }

    #[test]
    fn ms_sr_commits_everything_despite_aborts() {
        let r = run_ms_sr(&small(20));
        assert_eq!(r.commits, 60);
        assert!(
            r.total_aborts > 0,
            "hot spot of 20 keys must cause wait-die kills"
        );
        assert!(r.abort_rate > 0.0 && r.abort_rate <= 1.0);
        assert!(r.first_attempt_aborts <= r.total_aborts);
    }

    #[test]
    fn ms_ia_has_zero_aborts() {
        let r = run_ms_ia(&small(20));
        assert_eq!(r.commits, 60);
        assert_eq!(r.total_aborts, 0);
        assert_eq!(r.abort_rate, 0.0);
    }

    #[test]
    fn staged_matches_ms_ia_under_the_sequencer() {
        let r = run_protocol(ProtocolKind::Staged, &small(20));
        assert_eq!(r.commits, 60);
        assert_eq!(r.total_aborts, 0);
    }

    #[test]
    fn ms_sr_holds_locks_across_cloud_wait_ms_ia_does_not() {
        let sr = run_ms_sr(&small(10_000));
        let ia = run_ms_ia(&small(10_000));
        assert!(
            sr.avg_hold_ms > 1_000.0,
            "MS-SR holds span the (corrected) cloud wait: {}",
            sr.avg_hold_ms
        );
        assert!(
            ia.avg_hold_ms < 50.0,
            "MS-IA holds are section-local: {}",
            ia.avg_hold_ms
        );
        // With simulated section work, MS-IA holds are sub-10ms but
        // non-trivial (the paper reports milliseconds).
        assert!(
            ia.avg_hold_ms > 0.05,
            "holds include section work: {}",
            ia.avg_hold_ms
        );
    }

    #[test]
    fn bigger_hotspot_reduces_ms_sr_aborts() {
        let tiny = run_ms_sr(&small(10));
        let wide = run_ms_sr(&small(100_000));
        assert!(
            tiny.abort_rate > wide.abort_rate,
            "tiny {} vs wide {}",
            tiny.abort_rate,
            wide.abort_rate
        );
    }

    #[test]
    fn nowait_policy_runs_to_completion() {
        let r = run_ms_sr_with_policy(&small(50), LockPolicy::NoWait);
        assert_eq!(r.commits, 60);
    }

    #[test]
    fn pooled_release_matches_the_sequential_harness() {
        for kind in [ProtocolKind::MsIa, ProtocolKind::Staged] {
            let seq = run_released(kind, &small(20));
            let pooled = run_released_pooled(kind, &small(20), 4);
            assert_eq!(pooled.commits, seq.commits, "{kind}");
            assert_eq!(pooled.commits, 60, "{kind}");
            assert_eq!(pooled.total_aborts, 0, "{kind}: waves stay conflict-free");
            assert_eq!(pooled.abort_rate, 0.0, "{kind}");
        }
    }

    #[test]
    fn pooled_single_worker_is_the_inline_path() {
        let r = run_released_pooled(ProtocolKind::MsIa, &small(20), 1);
        assert_eq!(r.commits, 60);
        assert_eq!(r.total_aborts, 0);
        assert!(r.txn_per_sec() > 0.0);
    }
}
