//! Fixed-bucket atomic latency histograms and exact mean/max
//! accumulators — the hot-path recording primitives.
//!
//! [`AtomicHistogram`] is an HDR-lite design: values are quantized to
//! integer "ticks" (microseconds for latencies, raw units otherwise)
//! and bucketed with a linear region for small values followed by
//! base-2 groups of 16 sub-buckets each, giving a bounded
//! relative error (< 1/SUB_BUCKETS) across the full range. Every bucket
//! is an `AtomicU64`, so recording is a couple of relaxed atomic adds —
//! no locks, no allocation, safe from any thread. Values past the top
//! bucket saturate into it rather than being dropped.
//!
//! [`AtomicStat`] keeps the exact running count/sum/max that
//! `StatsSnapshot`-style mean/max reporting needs, again with only
//! atomic operations on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per base-2 group: bounds the quantile's relative error.
const SUB_BUCKETS: u64 = 16;
/// Values below this are bucketed exactly (one tick per bucket).
const LINEAR_CUT: u64 = SUB_BUCKETS;
/// Base-2 groups covered before saturation (ticks up to ~2^32).
const GROUPS: u64 = 29;
/// Total bucket count, including the saturating overflow bucket.
pub(crate) const BUCKETS: usize = (LINEAR_CUT + GROUPS * SUB_BUCKETS) as usize;

/// The four quantiles the paper-adjacent reporting cares about.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Quantiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
}

/// A fixed-bucket, lock-free histogram of non-negative values.
///
/// Recording is wait-free (two relaxed atomic adds); reading takes a
/// racy-but-consistent-enough snapshot, which is fine for end-of-run
/// summaries. Latencies are recorded in milliseconds and quantized to
/// microsecond ticks internally; dimensionless values (bytes, frames)
/// use one tick per unit via [`AtomicHistogram::record_value`].
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for AtomicHistogram {
    /// A snapshot copy (racy-but-consistent-enough, like every read).
    fn clone(&self) -> Self {
        let copy = AtomicHistogram::new();
        copy.merge(self);
        copy
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let buckets = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        AtomicHistogram {
            buckets,
            count: AtomicU64::new(0),
        }
    }

    /// Bucket index for a tick value (saturating at the top bucket).
    fn index(ticks: u64) -> usize {
        if ticks < LINEAR_CUT {
            return ticks as usize;
        }
        // msb >= 4 for ticks >= 16: group g = msb - 4 holds
        // [2^(g+4), 2^(g+5)) split into SUB_BUCKETS equal slices.
        let msb = 63 - u64::leading_zeros(ticks) as u64;
        let group = msb - 4;
        let sub = (ticks >> group) - SUB_BUCKETS;
        let idx = LINEAR_CUT + group * SUB_BUCKETS + sub;
        (idx as usize).min(BUCKETS - 1)
    }

    /// Inclusive lower bound (in ticks) of bucket `idx`.
    fn lower(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < LINEAR_CUT {
            return idx;
        }
        let group = (idx - LINEAR_CUT) / SUB_BUCKETS;
        let sub = (idx - LINEAR_CUT) % SUB_BUCKETS;
        (SUB_BUCKETS + sub) << group
    }

    /// Exclusive upper bound (in ticks) of bucket `idx`.
    fn upper(idx: usize) -> u64 {
        if idx + 1 >= BUCKETS {
            // The overflow bucket saturates; give it a nominal width.
            Self::lower(idx) * 2
        } else {
            Self::lower(idx + 1)
        }
    }

    /// Record a latency in milliseconds (quantized to microseconds).
    pub fn record_ms(&self, ms: f64) {
        let ticks = if ms <= 0.0 {
            0
        } else {
            (ms * 1_000.0).round() as u64
        };
        self.record_ticks(ticks);
    }

    /// Record a duration (quantized to microseconds).
    pub fn record_duration(&self, d: Duration) {
        self.record_ticks(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Record a dimensionless value (bytes, frames): one tick per unit.
    pub fn record_value(&self, value: u64) {
        self.record_ticks(value);
    }

    fn record_ticks(&self, ticks: u64) {
        self.buckets[Self::index(ticks)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Fold another histogram's buckets into this one.
    pub fn merge(&self, other: &AtomicHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The `q`-quantile (`q` in `[0, 1]`) in *ticks*, with linear
    /// interpolation inside the winning bucket. Returns 0.0 when empty.
    ///
    /// The saturating overflow bucket is **not** interpolated: its
    /// occupants are off-scale (anywhere in `[lower, u64::MAX]`), so any
    /// point inside a "nominal width" would be fabricated precision. A
    /// quantile that lands there reports the bucket's lower bound — a
    /// truthful "at least this much" — and [`Self::is_saturated`] tells
    /// readers the tail is clipped.
    #[must_use]
    pub fn quantile_ticks(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based; ceil so q=1.0 hits the max.
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                if idx == BUCKETS - 1 {
                    return Self::lower(idx) as f64;
                }
                let into = (target - seen) as f64; // 1..=n
                let frac = into / n as f64;
                let lo = Self::lower(idx) as f64;
                let hi = Self::upper(idx) as f64;
                return lo + frac * (hi - lo);
            }
            seen += n;
        }
        Self::lower(BUCKETS - 1) as f64
    }

    /// Samples that saturated into the overflow bucket (off-scale values).
    #[must_use]
    pub fn saturated_count(&self) -> u64 {
        self.buckets[BUCKETS - 1].load(Ordering::Relaxed)
    }

    /// Whether any recorded value was off-scale — quantiles that land in
    /// the overflow bucket are clamped lower bounds, not measurements.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.saturated_count() > 0
    }

    /// The `q`-quantile interpreted as milliseconds (micro-ticks).
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile_ticks(q) / 1_000.0
    }

    /// p50/p90/p99/p999 in milliseconds.
    #[must_use]
    pub fn quantiles_ms(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile_ms(0.50),
            p90: self.quantile_ms(0.90),
            p99: self.quantile_ms(0.99),
            p999: self.quantile_ms(0.999),
        }
    }

    /// p50/p90/p99/p999 in raw ticks (for dimensionless histograms).
    #[must_use]
    pub fn quantiles_value(&self) -> Quantiles {
        Quantiles {
            p50: self.quantile_ticks(0.50),
            p90: self.quantile_ticks(0.90),
            p99: self.quantile_ticks(0.99),
            p999: self.quantile_ticks(0.999),
        }
    }
}

/// Exact count / mean / max accumulator with atomic-only recording.
///
/// Keeps the numbers `StatsSnapshot` has always reported (average and
/// maximum in milliseconds) without a mutex on the record path: the sum
/// is held in integer nanoseconds (u64 wraps after ~584 years of
/// accumulated latency) and the max uses `fetch_max`.
#[derive(Debug, Default)]
pub struct AtomicStat {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl AtomicStat {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean in milliseconds (0.0 when empty).
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1_000_000.0
    }

    /// Maximum in milliseconds (0.0 when empty).
    #[must_use]
    pub fn max_ms(&self) -> f64 {
        self.max_ns.load(Ordering::Relaxed) as f64 / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact() {
        for t in 0..LINEAR_CUT {
            assert_eq!(AtomicHistogram::index(t), t as usize);
            assert_eq!(AtomicHistogram::lower(t as usize), t);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_monotone() {
        for idx in 0..BUCKETS - 1 {
            assert_eq!(
                AtomicHistogram::upper(idx),
                AtomicHistogram::lower(idx + 1),
                "gap at bucket {idx}"
            );
            assert!(AtomicHistogram::lower(idx) < AtomicHistogram::upper(idx));
        }
    }

    #[test]
    fn every_tick_lands_in_its_own_bucket_bounds() {
        for t in [
            0,
            1,
            15,
            16,
            17,
            31,
            32,
            63,
            100,
            1000,
            123_456,
            u64::MAX / 2,
        ] {
            let idx = AtomicHistogram::index(t);
            assert!(AtomicHistogram::lower(idx) <= t, "tick {t} idx {idx}");
            if idx < BUCKETS - 1 {
                assert!(t < AtomicHistogram::upper(idx), "tick {t} idx {idx}");
            }
        }
    }

    #[test]
    fn overflow_saturates_into_top_bucket() {
        let h = AtomicHistogram::new();
        h.record_ticks(u64::MAX);
        h.record_ticks(u64::MAX / 3);
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets[BUCKETS - 1].load(Ordering::Relaxed), 2);
        // The quantile stays finite.
        assert!(h.quantile_ticks(1.0).is_finite());
    }

    /// Satellite regression: the overflow bucket must not be interpolated.
    /// The old code gave it a "nominal width" (`lower * 2`) and fabricated
    /// a finite point inside it, so p999 of a tail of off-scale samples
    /// reported a precise-looking value no sample ever had.
    #[test]
    fn off_scale_quantiles_clamp_to_the_overflow_bound_and_flag_saturation() {
        let h = AtomicHistogram::new();
        assert!(!h.is_saturated());
        let overflow_lo = AtomicHistogram::lower(BUCKETS - 1) as f64;
        // 999 in-range samples, 2 far past the top bucket.
        for _ in 0..999 {
            h.record_ticks(100);
        }
        h.record_ticks(u64::MAX);
        h.record_ticks(u64::MAX / 2);
        assert!(h.is_saturated());
        assert_eq!(h.saturated_count(), 2);
        // p999 lands in the overflow bucket: exactly the lower bound, not
        // an interpolated point inside a made-up width.
        let p999 = h.quantile_ticks(0.999);
        assert_eq!(p999, overflow_lo, "p999 must clamp, got {p999}");
        assert_eq!(h.quantile_ticks(1.0), overflow_lo);
        // In-range quantiles are unaffected by the saturated tail.
        assert!(h.quantile_ticks(0.5) < 110.0);
        // A histogram whose top-bucket mass is *in range* is not flagged:
        // saturation only means "a sample may be off-scale", which is
        // indistinguishable at record time — so any top-bucket hit flags.
        let in_range = AtomicHistogram::new();
        in_range.record_ticks(1000);
        assert!(!in_range.is_saturated());
    }

    #[test]
    fn quantiles_of_uniform_ramp_are_close() {
        let h = AtomicHistogram::new();
        // 1..=10_000 microsecond ticks = 0.001..10 ms uniform.
        for t in 1..=10_000u64 {
            h.record_ticks(t);
        }
        let q = h.quantiles_ms();
        // Relative error bounded by the sub-bucket width (1/16).
        assert!((q.p50 - 5.0).abs() / 5.0 < 0.07, "p50={}", q.p50);
        assert!((q.p90 - 9.0).abs() / 9.0 < 0.07, "p90={}", q.p90);
        assert!((q.p99 - 9.9).abs() / 9.9 < 0.07, "p99={}", q.p99);
        assert!((q.p999 - 9.99).abs() / 9.99 < 0.07, "p999={}", q.p999);
    }

    #[test]
    fn quantile_interpolates_within_a_single_bucket() {
        let h = AtomicHistogram::new();
        // All mass in one bucket: [16, 17) ticks... use a wider bucket:
        // ticks 4096..4352 share group buckets; pick one bucket's lower.
        let idx = AtomicHistogram::index(4100);
        let lo = AtomicHistogram::lower(idx) as f64;
        let hi = AtomicHistogram::upper(idx) as f64;
        for _ in 0..100 {
            h.record_ticks(4100);
        }
        let p50 = h.quantile_ticks(0.5);
        assert!(p50 > lo && p50 <= hi, "p50={p50} not in ({lo}, {hi}]");
        // Halfway through the bucket mass → halfway through its width.
        assert!((p50 - (lo + 0.5 * (hi - lo))).abs() <= (hi - lo) / 2.0);
    }

    #[test]
    fn merge_sums_counts_and_mass() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        for t in 0..100 {
            a.record_ticks(t);
            b.record_ticks(t + 50);
        }
        a.merge(&b);
        assert_eq!(a.count(), 200);
        // Median of the merged mass sits between the two medians.
        let p50 = a.quantile_ticks(0.5);
        assert!(p50 > 40.0 && p50 < 120.0, "merged p50={p50}");
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let h = AtomicHistogram::new();
        assert_eq!(h.quantile_ticks(0.99), 0.0);
        assert_eq!(h.quantiles_ms(), Quantiles::default());
    }

    #[test]
    fn atomic_stat_mean_and_max() {
        let s = AtomicStat::new();
        s.record(Duration::from_millis(2));
        s.record(Duration::from_millis(4));
        s.record(Duration::from_millis(6));
        assert_eq!(s.count(), 3);
        assert!((s.mean_ms() - 4.0).abs() < 1e-9);
        assert!((s.max_ms() - 6.0).abs() < 1e-9);
    }
}
