//! The typed event vocabulary: everything the stack can say about one
//! transaction or one fleet incident, stamped with deterministic clocks.
//!
//! An [`Event`] carries three coordinates — the emitting edge, the *sim
//! frame clock* at emission, and a monotone per-edge sequence number —
//! plus an optional transaction id and an [`EventKind`] payload. The
//! frame clock is the simulation's own time base, never the wall clock:
//! two runs with the same seed produce byte-identical event streams, so
//! traces can be compared with `==`, attached to deterministic fleet
//! reports, and replayed under the mcheck scheduler.

/// One observed fact about the system, in per-edge emission order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotone per-edge sequence number (0, 1, 2, … per edge stream).
    pub seq: u64,
    /// Sim frame clock at emission (frame index, not wall time).
    pub frame: u64,
    /// The edge node that emitted the event.
    pub edge: u32,
    /// The transaction this event belongs to, if any.
    pub txn: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// What happened — the transaction + fleet lifecycle vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A video frame entered the edge pipeline.
    FrameIngest,
    /// A multi-stage transaction was opened with this many stages.
    TxnBegin {
        /// Total stages the transaction will run.
        stages: u32,
    },
    /// Stage `stage` started executing (locks granted).
    StageStart {
        /// Zero-based stage index.
        stage: u32,
    },
    /// Stage `stage` finished (stage record logged, locks releasable).
    StageEnd {
        /// Zero-based stage index.
        stage: u32,
    },
    /// The initial (stage-0) commit made the guess visible.
    InitialCommit,
    /// The final stage committed; the transaction is terminal.
    FinalCommit,
    /// Bytes were appended to the WAL buffer (not yet durable).
    WalAppend {
        /// Byte offset of the append tail within the current epoch.
        lsn: u64,
    },
    /// The WAL was fsynced up to `lsn` within `epoch`.
    WalSync {
        /// Durable byte offset within the epoch (the pipelined writer
        /// reports its global monotone LSN instead).
        lsn: u64,
        /// Checkpoint epoch the offset is relative to.
        epoch: u64,
    },
    /// The pipelined writer sealed its active buffer onto the flusher
    /// queue; appends continue into the next buffer.
    WalBufferSeal {
        /// Global LSN of the last sealed byte.
        lsn: u64,
    },
    /// A device-level sync window ran, covering this many flushers'
    /// fsync-equivalents in one coalesced round.
    WalCoalescedSync {
        /// Sync requests the window covered (≥ 1).
        requests: u64,
    },
    /// Durable bytes up to `lsn` were published to the log shipper.
    ShipPublish {
        /// Published byte offset within the epoch (≤ the synced lsn).
        lsn: u64,
        /// Checkpoint epoch the offset is relative to.
        epoch: u64,
    },
    /// The cloud replica validated and accepted a shipped batch.
    ShipAccept {
        /// Bytes accepted this round.
        bytes: u64,
    },
    /// The cloud replica rejected a damaged batch (cursor unmoved).
    ShipReject,
    /// The cloud's verdict on one frame's initial guesses arrived.
    CloudVerdict {
        /// Initial labels the cloud confirmed.
        correct: u32,
        /// Initial labels the cloud corrected.
        corrected: u32,
        /// Initial labels the cloud struck as wrong.
        erroneous: u32,
        /// Objects the edge missed entirely.
        missed: u32,
    },
    /// A committed guess was rolled back (cascades included).
    Retract,
    /// An apology was issued to clients of a retracted transaction.
    Apology,
    /// The fleet supervisor missed this edge's heartbeat this frame.
    HeartbeatMiss,
    /// Failover began: the replica log is being recovered.
    TakeoverStart,
    /// Failover finished: a replacement node is serving.
    TakeoverEnd {
        /// Unfinalized transactions recovery retracted.
        retractions: u32,
    },
    /// A deposed or stale node was fenced off from the fleet.
    Fence,
    /// The 2PC coordinator logged its commit/abort decision.
    TpcDecision {
        /// `true` for commit, `false` for abort.
        commit: bool,
    },
}

impl EventKind {
    /// Stable display / counter name for the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::FrameIngest => "frame_ingest",
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::StageStart { .. } => "stage_start",
            EventKind::StageEnd { .. } => "stage_end",
            EventKind::InitialCommit => "initial_commit",
            EventKind::FinalCommit => "final_commit",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::WalSync { .. } => "wal_sync",
            EventKind::WalBufferSeal { .. } => "wal_buffer_seal",
            EventKind::WalCoalescedSync { .. } => "wal_coalesced_sync",
            EventKind::ShipPublish { .. } => "ship_publish",
            EventKind::ShipAccept { .. } => "ship_accept",
            EventKind::ShipReject => "ship_reject",
            EventKind::CloudVerdict { .. } => "cloud_verdict",
            EventKind::Retract => "retract",
            EventKind::Apology => "apology",
            EventKind::HeartbeatMiss => "heartbeat_miss",
            EventKind::TakeoverStart => "takeover_start",
            EventKind::TakeoverEnd { .. } => "takeover_end",
            EventKind::Fence => "fence",
            EventKind::TpcDecision { .. } => "tpc_decision",
        }
    }

    /// Dense index used for the per-kind atomic counters.
    #[must_use]
    pub(crate) fn index(self) -> usize {
        match self {
            EventKind::FrameIngest => 0,
            EventKind::TxnBegin { .. } => 1,
            EventKind::StageStart { .. } => 2,
            EventKind::StageEnd { .. } => 3,
            EventKind::InitialCommit => 4,
            EventKind::FinalCommit => 5,
            EventKind::WalAppend { .. } => 6,
            EventKind::WalSync { .. } => 7,
            EventKind::WalBufferSeal { .. } => 8,
            EventKind::WalCoalescedSync { .. } => 9,
            EventKind::ShipPublish { .. } => 10,
            EventKind::ShipAccept { .. } => 11,
            EventKind::ShipReject => 12,
            EventKind::CloudVerdict { .. } => 13,
            EventKind::Retract => 14,
            EventKind::Apology => 15,
            EventKind::HeartbeatMiss => 16,
            EventKind::TakeoverStart => 17,
            EventKind::TakeoverEnd { .. } => 18,
            EventKind::Fence => 19,
            EventKind::TpcDecision { .. } => 20,
        }
    }

    /// How many distinct kinds exist (size of the counter array).
    pub(crate) const COUNT: usize = 21;

    /// All counter names, in dense counter-index order.
    #[must_use]
    pub fn names() -> [&'static str; EventKind::COUNT] {
        [
            "frame_ingest",
            "txn_begin",
            "stage_start",
            "stage_end",
            "initial_commit",
            "final_commit",
            "wal_append",
            "wal_sync",
            "wal_buffer_seal",
            "wal_coalesced_sync",
            "ship_publish",
            "ship_accept",
            "ship_reject",
            "cloud_verdict",
            "retract",
            "apology",
            "heartbeat_miss",
            "takeover_start",
            "takeover_end",
            "fence",
            "tpc_decision",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_indices() {
        let names = EventKind::names();
        for (kind, want) in [
            (EventKind::FrameIngest, "frame_ingest"),
            (EventKind::TxnBegin { stages: 2 }, "txn_begin"),
            (EventKind::StageStart { stage: 0 }, "stage_start"),
            (EventKind::StageEnd { stage: 0 }, "stage_end"),
            (EventKind::InitialCommit, "initial_commit"),
            (EventKind::FinalCommit, "final_commit"),
            (EventKind::WalAppend { lsn: 0 }, "wal_append"),
            (EventKind::WalSync { lsn: 0, epoch: 0 }, "wal_sync"),
            (EventKind::WalBufferSeal { lsn: 0 }, "wal_buffer_seal"),
            (
                EventKind::WalCoalescedSync { requests: 1 },
                "wal_coalesced_sync",
            ),
            (EventKind::ShipPublish { lsn: 0, epoch: 0 }, "ship_publish"),
            (EventKind::ShipAccept { bytes: 0 }, "ship_accept"),
            (EventKind::ShipReject, "ship_reject"),
            (
                EventKind::CloudVerdict {
                    correct: 0,
                    corrected: 0,
                    erroneous: 0,
                    missed: 0,
                },
                "cloud_verdict",
            ),
            (EventKind::Retract, "retract"),
            (EventKind::Apology, "apology"),
            (EventKind::HeartbeatMiss, "heartbeat_miss"),
            (EventKind::TakeoverStart, "takeover_start"),
            (EventKind::TakeoverEnd { retractions: 0 }, "takeover_end"),
            (EventKind::Fence, "fence"),
            (EventKind::TpcDecision { commit: true }, "tpc_decision"),
        ] {
            assert_eq!(kind.name(), want);
            assert_eq!(names[kind.index()], want);
        }
    }
}
