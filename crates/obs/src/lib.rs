//! # croesus-obs — structured tracing with an executable ordering contract
//!
//! Low-overhead structured observability for the Croesus stack: typed
//! lifecycle [`Event`]s collected into per-edge bounded rings with
//! atomic counters and fixed-bucket latency histograms, plus an
//! [`ordering`] checker that replays a collected stream against the
//! system's happens-before contract and rejects any trace that breaks
//! it.
//!
//! Three design rules hold everywhere:
//!
//! 1. **Disabled is free.** Every emission handle is an [`EdgeObs`]
//!    whose disabled form is `None` inside — one branch, no atomics, no
//!    locks — so unobserved runs are byte-identical to uninstrumented
//!    builds on the golden pins.
//! 2. **Sim clock, not wall clock.** Events are stamped with the
//!    simulation frame number and a per-edge sequence number, never
//!    wall time, so traces are deterministic, `Eq`-comparable, and
//!    valid under the mcheck scheduler. (Histograms *do* measure wall
//!    time — they are performance telemetry, not part of the trace.)
//! 3. **The trace is checkable.** [`ordering::check_stream`] is the
//!    contract-as-code: shipped ⊆ durable, begin-before-lifecycle,
//!    retract ⇒ apology, heartbeat-miss ≺ takeover ≺ fence.
//!
//! See `DESIGN.md` § Observability for the taxonomy and the full
//! invariant table.

#![warn(missing_docs)]

pub mod event;
pub mod hist;
pub mod json;
pub mod ordering;
pub mod sink;

pub use event::{Event, EventKind};
pub use hist::{AtomicHistogram, AtomicStat, Quantiles};
pub use ordering::{check_obs, check_stream, OrderingReport, Violation};
pub use sink::{EdgeObs, HistKind, Obs};
