//! The executable event-ordering contract: replay a collected stream
//! and reject it if any happens-before invariant is violated.
//!
//! This is observability as correctness tooling, the same move the
//! mcheck crate made for interleavings: the trace a run emits is not
//! just for humans, it is *checkable*. The contract (one invariant per
//! row, mirrored in DESIGN.md):
//!
//! | invariant | meaning |
//! |---|---|
//! | `seq-monotone` | per-edge sequence strictly increasing, frame clock non-decreasing |
//! | `txn-begin-first` | no lifecycle event for a txn before its `TxnBegin` (a repeated `TxnBegin` opens a new *incarnation* — crash recovery reuses ids that never became durable) |
//! | `stage-start-before-end` | every `StageEnd(s)` closes an open `StageStart(s)` |
//! | `initial-before-final` | `FinalCommit` only after `InitialCommit` |
//! | `terminal-event-last` | no lifecycle event for a txn after its `FinalCommit` |
//! | `shipped-subset-durable` | `ShipPublish(lsn, epoch)` only after `WalSync(lsn', epoch)` with `lsn' ≥ lsn` |
//! | `buffer-seal-monotone` | per-edge `WalBufferSeal` LSNs never go backwards (the pipelined writer's global LSN space) |
//! | `seal-covers-appends` | a `WalBufferSeal(lsn)` seals everything appended: `lsn ≥` every `WalAppend` LSN seen so far |
//! | `coalesced-window-nonempty` | every `WalCoalescedSync` window covers ≥ 1 request |
//! | `retract-implies-apology` | every `Retract` is followed by an `Apology` for the same txn |
//! | `takeover-sequence` | `HeartbeatMiss` precedes `TakeoverStart`; `Fence`/`TakeoverEnd` only inside an open takeover |
//!
//! Retract/Apology after `FinalCommit` are deliberately *allowed*: a
//! retraction cascade (or crash recovery) may roll back transactions
//! whose dependents already finalized.
//!
//! Streams truncated by the bounded ring (dropped > 0) are checked in
//! *pre-window* mode: per-txn invariants are skipped for transactions
//! whose `TxnBegin` may have been dropped, but stream-shape invariants
//! (`seq-monotone`, `shipped-subset-durable`) still apply.

use std::collections::HashMap;
use std::fmt;

use crate::event::{Event, EventKind};
use crate::sink::Obs;

/// A rejected stream: which invariant broke, where, and why.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated invariant (stable, test-assertable).
    pub invariant: &'static str,
    /// The edge stream the violation was found in.
    pub edge: u32,
    /// Sequence number of the offending event.
    pub seq: u64,
    /// Human-readable detail.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ordering violation [{}] at edge {} seq {}: {}",
            self.invariant, self.edge, self.seq, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// What a clean check covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderingReport {
    /// Events replayed.
    pub events: usize,
    /// Distinct edge streams seen.
    pub edges: usize,
    /// Distinct transactions tracked.
    pub txns: usize,
    /// Transactions that reached `FinalCommit` inside the window.
    pub finalized: usize,
}

#[derive(Default)]
struct TxnState {
    begun: bool,
    initial: bool,
    finalized: bool,
    open_stage: Option<u32>,
    /// Retracts not yet matched by an apology.
    pending_retracts: u64,
    last_seq: u64,
}

#[derive(Default)]
struct EdgeState {
    last_seq: Option<u64>,
    last_frame: u64,
    /// Highest synced lsn per WAL epoch.
    synced: HashMap<u64, u64>,
    /// Highest `WalAppend` lsn seen (global in pipelined mode).
    max_append: u64,
    /// Highest `WalBufferSeal` lsn seen.
    max_seal: u64,
    /// Heartbeat misses since the last completed takeover.
    misses: u64,
    takeover_open: bool,
    /// Once an edge has failed over, fencing its deposed ghost is
    /// legitimate at any later point (e.g. on resurrection).
    fence_ok: bool,
}

/// Check one edge-grouped event stream against the ordering contract.
///
/// `pre_window` relaxes per-transaction invariants for transactions
/// first seen mid-stream (use when the ring dropped events). Events
/// must be grouped by edge with each edge's events in emission order —
/// exactly what [`Obs::events`] returns.
pub fn check_stream(events: &[Event], pre_window: bool) -> Result<OrderingReport, Violation> {
    let mut edges: HashMap<u32, EdgeState> = HashMap::new();
    let mut txns: HashMap<(u32, u64), TxnState> = HashMap::new();

    for event in events {
        let edge = edges.entry(event.edge).or_default();

        // seq-monotone: strictly increasing seq, non-decreasing frame.
        if let Some(prev) = edge.last_seq {
            if event.seq <= prev {
                return Err(violation(
                    "seq-monotone",
                    event,
                    format!("seq {} after seq {prev}", event.seq),
                ));
            }
            if event.frame < edge.last_frame {
                return Err(violation(
                    "seq-monotone",
                    event,
                    format!(
                        "frame clock went backwards: {} after {}",
                        event.frame, edge.last_frame
                    ),
                ));
            }
        }
        edge.last_seq = Some(event.seq);
        edge.last_frame = edge.last_frame.max(event.frame);

        match event.kind {
            EventKind::WalAppend { lsn } => {
                // Legacy-mode appends reset with the epoch; only track
                // the high-water mark forward (seal rules only apply to
                // the pipelined writer's monotone LSNs anyway).
                edge.max_append = edge.max_append.max(lsn);
            }
            EventKind::WalBufferSeal { lsn } => {
                if lsn < edge.max_seal {
                    return Err(violation(
                        "buffer-seal-monotone",
                        event,
                        format!("seal lsn {lsn} after seal lsn {}", edge.max_seal),
                    ));
                }
                if lsn < edge.max_append {
                    return Err(violation(
                        "seal-covers-appends",
                        event,
                        format!(
                            "seal lsn {lsn} below the appended high-water mark {}",
                            edge.max_append
                        ),
                    ));
                }
                edge.max_seal = lsn;
            }
            EventKind::WalCoalescedSync { requests: 0 } => {
                return Err(violation(
                    "coalesced-window-nonempty",
                    event,
                    "a coalesced sync window covered zero requests".to_string(),
                ));
            }
            EventKind::WalCoalescedSync { .. } => {}
            EventKind::WalSync { lsn, epoch } => {
                let cur = edge.synced.entry(epoch).or_insert(0);
                *cur = (*cur).max(lsn);
            }
            EventKind::ShipPublish { lsn, epoch } => {
                let durable = edge.synced.get(&epoch).copied().unwrap_or(0);
                if lsn > durable {
                    return Err(violation(
                        "shipped-subset-durable",
                        event,
                        format!(
                            "published lsn {lsn} in epoch {epoch} but only {durable} bytes synced"
                        ),
                    ));
                }
            }
            EventKind::HeartbeatMiss => edge.misses += 1,
            EventKind::TakeoverStart => {
                if edge.misses == 0 && !pre_window {
                    return Err(violation(
                        "takeover-sequence",
                        event,
                        "TakeoverStart without a preceding HeartbeatMiss".to_string(),
                    ));
                }
                if edge.takeover_open {
                    return Err(violation(
                        "takeover-sequence",
                        event,
                        "TakeoverStart while a takeover is already in progress".to_string(),
                    ));
                }
                edge.takeover_open = true;
                edge.fence_ok = true;
            }
            EventKind::Fence if !edge.fence_ok && !pre_window => {
                return Err(violation(
                    "takeover-sequence",
                    event,
                    "Fence before any TakeoverStart".to_string(),
                ));
            }
            EventKind::TakeoverEnd { .. } => {
                if !edge.takeover_open {
                    return Err(violation(
                        "takeover-sequence",
                        event,
                        "TakeoverEnd without an open TakeoverStart".to_string(),
                    ));
                }
                edge.takeover_open = false;
                edge.misses = 0;
                // A replacement writer restarts its LSN space; the seal
                // rules track the new incarnation from scratch.
                edge.max_append = 0;
                edge.max_seal = 0;
            }
            _ => {}
        }

        let Some(txn_id) = event.txn else { continue };
        let key = (event.edge, txn_id);
        let known = txns.contains_key(&key);
        let txn = txns.entry(key).or_default();
        txn.last_seq = event.seq;

        // In pre-window mode, a transaction first seen via a non-begin
        // event is assumed to have begun before the window.
        let assumed_begun =
            pre_window && !known && !matches!(event.kind, EventKind::TxnBegin { .. });
        if assumed_begun {
            txn.begun = true;
            txn.initial = true;
        }

        match event.kind {
            EventKind::TxnBegin { .. } => {
                // A repeated TxnBegin opens a *new incarnation*: crash
                // recovery restarts the id counter at the durable
                // high-water mark, so ids whose commits never became
                // durable (or never reached the replica) are legitimately
                // reused by the replacement node on the same stream. The
                // previous incarnation's unmatched retracts still owe
                // their apologies.
                let pending = txn.pending_retracts;
                *txn = TxnState {
                    begun: true,
                    pending_retracts: pending,
                    last_seq: event.seq,
                    ..TxnState::default()
                };
            }
            EventKind::StageStart { stage } => {
                if !txn.begun {
                    return Err(violation(
                        "txn-begin-first",
                        event,
                        format!("StageStart({stage}) before TxnBegin for txn {txn_id}"),
                    ));
                }
                if txn.finalized {
                    return Err(violation(
                        "terminal-event-last",
                        event,
                        format!("StageStart({stage}) after FinalCommit for txn {txn_id}"),
                    ));
                }
                if let Some(open) = txn.open_stage {
                    return Err(violation(
                        "stage-start-before-end",
                        event,
                        format!("StageStart({stage}) while stage {open} is still open"),
                    ));
                }
                txn.open_stage = Some(stage);
            }
            EventKind::StageEnd { stage } => {
                if txn.finalized {
                    return Err(violation(
                        "terminal-event-last",
                        event,
                        format!("StageEnd({stage}) after FinalCommit for txn {txn_id}"),
                    ));
                }
                match txn.open_stage {
                    Some(open) if open == stage => txn.open_stage = None,
                    Some(open) => {
                        return Err(violation(
                            "stage-start-before-end",
                            event,
                            format!("StageEnd({stage}) while stage {open} is open"),
                        ));
                    }
                    None => {
                        if !assumed_begun && !pre_window {
                            return Err(violation(
                                "stage-start-before-end",
                                event,
                                format!("StageEnd({stage}) without a StageStart"),
                            ));
                        }
                    }
                }
            }
            EventKind::InitialCommit => {
                if !txn.begun {
                    return Err(violation(
                        "txn-begin-first",
                        event,
                        format!("InitialCommit before TxnBegin for txn {txn_id}"),
                    ));
                }
                if txn.finalized {
                    return Err(violation(
                        "terminal-event-last",
                        event,
                        format!("InitialCommit after FinalCommit for txn {txn_id}"),
                    ));
                }
                txn.initial = true;
            }
            EventKind::FinalCommit => {
                if !txn.begun {
                    return Err(violation(
                        "txn-begin-first",
                        event,
                        format!("FinalCommit before TxnBegin for txn {txn_id}"),
                    ));
                }
                if txn.finalized {
                    return Err(violation(
                        "terminal-event-last",
                        event,
                        format!("duplicate FinalCommit for txn {txn_id}"),
                    ));
                }
                if !txn.initial {
                    return Err(violation(
                        "initial-before-final",
                        event,
                        format!("FinalCommit before InitialCommit for txn {txn_id}"),
                    ));
                }
                txn.finalized = true;
            }
            EventKind::Retract => txn.pending_retracts += 1,
            EventKind::Apology => txn.pending_retracts = txn.pending_retracts.saturating_sub(1),
            _ => {}
        }
    }

    // retract-implies-apology is an end-of-stream obligation.
    for ((edge, txn_id), txn) in &txns {
        if txn.pending_retracts > 0 {
            return Err(Violation {
                invariant: "retract-implies-apology",
                edge: *edge,
                seq: txn.last_seq,
                detail: format!(
                    "txn {txn_id} was retracted {} time(s) without a matching apology",
                    txn.pending_retracts
                ),
            });
        }
    }

    Ok(OrderingReport {
        events: events.len(),
        edges: edges.len(),
        txns: txns.len(),
        finalized: txns.values().filter(|t| t.finalized).count(),
    })
}

/// Check everything a collector gathered, honouring ring truncation.
pub fn check_obs(obs: &Obs) -> Result<OrderingReport, Violation> {
    check_stream(&obs.events(), obs.dropped() > 0)
}

fn violation(invariant: &'static str, event: &Event, detail: String) -> Violation {
    Violation {
        invariant,
        edge: event.edge,
        seq: event.seq,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, txn: Option<u64>, kind: EventKind) -> Event {
        Event {
            seq,
            frame: seq / 4,
            edge: 0,
            txn,
            kind,
        }
    }

    fn clean_txn_stream() -> Vec<Event> {
        vec![
            ev(0, None, EventKind::FrameIngest),
            ev(1, Some(1), EventKind::TxnBegin { stages: 2 }),
            ev(2, Some(1), EventKind::StageStart { stage: 0 }),
            ev(3, Some(1), EventKind::StageEnd { stage: 0 }),
            ev(4, Some(1), EventKind::InitialCommit),
            ev(5, None, EventKind::WalAppend { lsn: 100 }),
            ev(6, None, EventKind::WalSync { lsn: 100, epoch: 0 }),
            ev(7, None, EventKind::ShipPublish { lsn: 100, epoch: 0 }),
            ev(8, Some(1), EventKind::StageStart { stage: 1 }),
            ev(9, Some(1), EventKind::StageEnd { stage: 1 }),
            ev(10, Some(1), EventKind::FinalCommit),
        ]
    }

    #[test]
    fn clean_stream_passes() {
        let report = check_stream(&clean_txn_stream(), false).expect("clean stream");
        assert_eq!(report.events, 11);
        assert_eq!(report.edges, 1);
        assert_eq!(report.txns, 1);
        assert_eq!(report.finalized, 1);
    }

    #[test]
    fn reordered_stream_is_rejected_naming_the_invariant() {
        // Swap StageStart(0) and TxnBegin: lifecycle before begin.
        let mut events = clean_txn_stream();
        events.swap(1, 2);
        // Re-stamp seqs so only the *logical* order is wrong.
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        let err = check_stream(&events, false).expect_err("reordered stream must be rejected");
        assert_eq!(err.invariant, "txn-begin-first");
        let msg = err.to_string();
        assert!(
            msg.contains("txn-begin-first"),
            "message must name the invariant: {msg}"
        );
    }

    #[test]
    fn publish_beyond_sync_is_rejected() {
        let events = vec![
            ev(0, None, EventKind::WalSync { lsn: 50, epoch: 0 }),
            ev(1, None, EventKind::ShipPublish { lsn: 51, epoch: 0 }),
        ];
        let err = check_stream(&events, false).expect_err("shipped beyond durable");
        assert_eq!(err.invariant, "shipped-subset-durable");
    }

    #[test]
    fn publish_in_new_epoch_needs_new_sync() {
        let events = vec![
            ev(0, None, EventKind::WalSync { lsn: 500, epoch: 0 }),
            ev(1, None, EventKind::ShipPublish { lsn: 10, epoch: 1 }),
        ];
        let err = check_stream(&events, false).expect_err("epoch-crossing publish");
        assert_eq!(err.invariant, "shipped-subset-durable");
    }

    #[test]
    fn stage_end_without_start_is_rejected() {
        let events = vec![
            ev(0, Some(1), EventKind::TxnBegin { stages: 2 }),
            ev(1, Some(1), EventKind::StageEnd { stage: 0 }),
        ];
        let err = check_stream(&events, false).expect_err("end without start");
        assert_eq!(err.invariant, "stage-start-before-end");
    }

    #[test]
    fn lifecycle_after_final_commit_is_rejected() {
        let mut events = clean_txn_stream();
        events.push(ev(11, Some(1), EventKind::StageStart { stage: 1 }));
        let err = check_stream(&events, false).expect_err("lifecycle after final");
        assert_eq!(err.invariant, "terminal-event-last");
    }

    #[test]
    fn retract_after_final_commit_is_allowed_with_apology() {
        let mut events = clean_txn_stream();
        events.push(ev(11, Some(1), EventKind::Retract));
        events.push(ev(12, Some(1), EventKind::Apology));
        check_stream(&events, false).expect("cascade retraction of a finalized dependent");
    }

    #[test]
    fn retract_without_apology_is_rejected() {
        let mut events = clean_txn_stream();
        events.push(ev(11, Some(1), EventKind::Retract));
        let err = check_stream(&events, false).expect_err("unapologetic retract");
        assert_eq!(err.invariant, "retract-implies-apology");
    }

    #[test]
    fn takeover_without_heartbeat_miss_is_rejected() {
        let events = vec![ev(0, None, EventKind::TakeoverStart)];
        let err = check_stream(&events, false).expect_err("takeover from nowhere");
        assert_eq!(err.invariant, "takeover-sequence");
    }

    #[test]
    fn full_takeover_sequence_passes() {
        let events = vec![
            ev(0, None, EventKind::HeartbeatMiss),
            ev(1, None, EventKind::HeartbeatMiss),
            ev(2, None, EventKind::TakeoverStart),
            ev(3, None, EventKind::Fence),
            ev(4, None, EventKind::TakeoverEnd { retractions: 1 }),
        ];
        check_stream(&events, false).expect("canonical failover sequence");
    }

    #[test]
    fn non_monotone_seq_is_rejected() {
        let mut events = clean_txn_stream();
        events[5].seq = 3; // duplicate/backwards
        let err = check_stream(&events, false).expect_err("seq went backwards");
        assert_eq!(err.invariant, "seq-monotone");
    }

    #[test]
    fn final_commit_without_initial_is_rejected() {
        let events = vec![
            ev(0, Some(9), EventKind::TxnBegin { stages: 2 }),
            ev(1, Some(9), EventKind::FinalCommit),
        ];
        let err = check_stream(&events, false).expect_err("final without initial");
        assert_eq!(err.invariant, "initial-before-final");
    }

    #[test]
    fn re_begin_opens_a_new_incarnation() {
        // Crash recovery restarts ids at the durable high-water mark, so
        // a replacement node can legitimately re-begin a txn id whose
        // first incarnation (even its InitialCommit) was never durable.
        let events = vec![
            ev(0, Some(5), EventKind::TxnBegin { stages: 2 }),
            ev(1, Some(5), EventKind::StageStart { stage: 0 }),
            ev(2, Some(5), EventKind::StageEnd { stage: 0 }),
            ev(3, Some(5), EventKind::InitialCommit),
            // ...crash: the unsynced tail is lost, the id comes back...
            ev(4, Some(5), EventKind::TxnBegin { stages: 2 }),
            ev(5, Some(5), EventKind::StageStart { stage: 0 }),
            ev(6, Some(5), EventKind::StageEnd { stage: 0 }),
            ev(7, Some(5), EventKind::InitialCommit),
            ev(8, Some(5), EventKind::FinalCommit),
        ];
        let report = check_stream(&events, false).expect("reincarnation is legitimate");
        assert_eq!(report.finalized, 1);
        // The new incarnation starts from scratch: its FinalCommit still
        // needs its *own* InitialCommit.
        let events = vec![
            ev(0, Some(5), EventKind::TxnBegin { stages: 2 }),
            ev(1, Some(5), EventKind::InitialCommit),
            ev(2, Some(5), EventKind::TxnBegin { stages: 2 }),
            ev(3, Some(5), EventKind::FinalCommit),
        ];
        let err = check_stream(&events, false).expect_err("state was reset");
        assert_eq!(err.invariant, "initial-before-final");
    }

    #[test]
    fn pipelined_seal_stream_passes_and_regressions_are_caught() {
        // The pipelined writer's shape: appends, a seal covering them, a
        // coalesced window, the sync, then the publish.
        let events = vec![
            ev(0, None, EventKind::WalAppend { lsn: 40 }),
            ev(1, None, EventKind::WalAppend { lsn: 80 }),
            ev(2, None, EventKind::WalBufferSeal { lsn: 80 }),
            ev(3, None, EventKind::WalCoalescedSync { requests: 3 }),
            ev(4, None, EventKind::WalSync { lsn: 80, epoch: 0 }),
            ev(5, None, EventKind::ShipPublish { lsn: 80, epoch: 0 }),
        ];
        check_stream(&events, false).expect("pipelined flush sequence");

        // A seal below an already-appended lsn sealed "into the past".
        let events = vec![
            ev(0, None, EventKind::WalAppend { lsn: 40 }),
            ev(1, None, EventKind::WalBufferSeal { lsn: 30 }),
        ];
        let err = check_stream(&events, false).expect_err("seal below append");
        assert_eq!(err.invariant, "seal-covers-appends");

        // Seals must never go backwards.
        let events = vec![
            ev(0, None, EventKind::WalBufferSeal { lsn: 80 }),
            ev(1, None, EventKind::WalBufferSeal { lsn: 40 }),
        ];
        let err = check_stream(&events, false).expect_err("seal went backwards");
        assert_eq!(err.invariant, "buffer-seal-monotone");

        // An empty coalesced window is a bookkeeping bug.
        let events = vec![ev(0, None, EventKind::WalCoalescedSync { requests: 0 })];
        let err = check_stream(&events, false).expect_err("empty window");
        assert_eq!(err.invariant, "coalesced-window-nonempty");
    }

    #[test]
    fn pre_window_mode_tolerates_truncated_transactions() {
        // Stream starts mid-transaction: no TxnBegin in the window.
        let events = vec![
            ev(5, Some(3), EventKind::StageStart { stage: 1 }),
            ev(6, Some(3), EventKind::StageEnd { stage: 1 }),
            ev(7, Some(3), EventKind::FinalCommit),
        ];
        check_stream(&events, false).expect_err("strict mode rejects");
        check_stream(&events, true).expect("pre-window mode tolerates");
    }
}
