//! Hand-rolled JSON exporters for traces and summaries.
//!
//! The workspace has no serde (no network access for dependencies), so
//! this module renders the two shapes the bench bins and CI artifacts
//! need: a full event trace (`events_json`) and a compact summary of
//! counters + histogram quantiles (`summary_json`).

use crate::event::{Event, EventKind};
use crate::hist::Quantiles;
use crate::sink::{HistKind, Obs};

fn push_field(out: &mut String, first: &mut bool, key: &str, value: impl std::fmt::Display) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn kind_fields(out: &mut String, first: &mut bool, kind: EventKind) {
    match kind {
        EventKind::TxnBegin { stages } => push_field(out, first, "stages", stages),
        EventKind::StageStart { stage } | EventKind::StageEnd { stage } => {
            push_field(out, first, "stage", stage);
        }
        EventKind::WalAppend { lsn } | EventKind::WalBufferSeal { lsn } => {
            push_field(out, first, "lsn", lsn);
        }
        EventKind::WalCoalescedSync { requests } => {
            push_field(out, first, "requests", requests);
        }
        EventKind::WalSync { lsn, epoch } | EventKind::ShipPublish { lsn, epoch } => {
            push_field(out, first, "lsn", lsn);
            push_field(out, first, "epoch", epoch);
        }
        EventKind::ShipAccept { bytes } => push_field(out, first, "bytes", bytes),
        EventKind::CloudVerdict {
            correct,
            corrected,
            erroneous,
            missed,
        } => {
            push_field(out, first, "correct", correct);
            push_field(out, first, "corrected", corrected);
            push_field(out, first, "erroneous", erroneous);
            push_field(out, first, "missed", missed);
        }
        EventKind::TakeoverEnd { retractions } => {
            push_field(out, first, "retractions", retractions);
        }
        EventKind::TpcDecision { commit } => push_field(out, first, "commit", commit),
        _ => {}
    }
}

/// Render one event as a JSON object.
#[must_use]
pub fn event_json(event: &Event) -> String {
    let mut out = String::from("{");
    let mut first = true;
    push_field(&mut out, &mut first, "seq", event.seq);
    push_field(&mut out, &mut first, "frame", event.frame);
    push_field(&mut out, &mut first, "edge", event.edge);
    if let Some(txn) = event.txn {
        push_field(&mut out, &mut first, "txn", txn);
    }
    push_field(
        &mut out,
        &mut first,
        "kind",
        format_args!("\"{}\"", event.kind.name()),
    );
    kind_fields(&mut out, &mut first, event.kind);
    out.push('}');
    out
}

/// Render a whole trace as a JSON array of event objects.
#[must_use]
pub fn events_json(events: &[Event]) -> String {
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str("  ");
        out.push_str(&event_json(event));
    }
    out.push_str("\n]");
    out
}

fn quantiles_json(q: Quantiles) -> String {
    format!(
        "{{\"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3},\"p999\":{:.3}}}",
        q.p50, q.p90, q.p99, q.p999
    )
}

/// Render a collector's counters and histogram quantiles as JSON.
#[must_use]
pub fn summary_json(obs: &Obs) -> String {
    let mut out = String::from("{\n  \"edges\": ");
    out.push_str(&obs.edge_count().to_string());
    out.push_str(",\n  \"dropped_events\": ");
    out.push_str(&obs.dropped().to_string());
    out.push_str(",\n  \"counters\": {");
    let mut first = true;
    for (kind, name) in counter_kinds() {
        let n = obs.count(kind);
        if n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(name);
        out.push_str("\": ");
        out.push_str(&n.to_string());
    }
    out.push_str("\n  },\n  \"histograms\": {");
    let mut first = true;
    for hist in HistKind::all() {
        if obs.hist_count(hist) == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(hist.name());
        out.push_str("\": ");
        out.push_str(&quantiles_json(obs.quantiles(hist)));
    }
    out.push_str("\n  }\n}");
    out
}

/// One representative of every counter kind, paired with its name.
fn counter_kinds() -> [(EventKind, &'static str); 21] {
    let names = EventKind::names();
    [
        (EventKind::FrameIngest, names[0]),
        (EventKind::TxnBegin { stages: 0 }, names[1]),
        (EventKind::StageStart { stage: 0 }, names[2]),
        (EventKind::StageEnd { stage: 0 }, names[3]),
        (EventKind::InitialCommit, names[4]),
        (EventKind::FinalCommit, names[5]),
        (EventKind::WalAppend { lsn: 0 }, names[6]),
        (EventKind::WalSync { lsn: 0, epoch: 0 }, names[7]),
        (EventKind::WalBufferSeal { lsn: 0 }, names[8]),
        (EventKind::WalCoalescedSync { requests: 1 }, names[9]),
        (EventKind::ShipPublish { lsn: 0, epoch: 0 }, names[10]),
        (EventKind::ShipAccept { bytes: 0 }, names[11]),
        (EventKind::ShipReject, names[12]),
        (
            EventKind::CloudVerdict {
                correct: 0,
                corrected: 0,
                erroneous: 0,
                missed: 0,
            },
            names[13],
        ),
        (EventKind::Retract, names[14]),
        (EventKind::Apology, names[15]),
        (EventKind::HeartbeatMiss, names[16]),
        (EventKind::TakeoverStart, names[17]),
        (EventKind::TakeoverEnd { retractions: 0 }, names[18]),
        (EventKind::Fence, names[19]),
        (EventKind::TpcDecision { commit: true }, names[20]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_includes_kind_payload() {
        let e = Event {
            seq: 4,
            frame: 2,
            edge: 1,
            txn: Some(9),
            kind: EventKind::WalSync { lsn: 128, epoch: 3 },
        };
        let json = event_json(&e);
        assert_eq!(
            json,
            "{\"seq\":4,\"frame\":2,\"edge\":1,\"txn\":9,\"kind\":\"wal_sync\",\"lsn\":128,\"epoch\":3}"
        );
    }

    #[test]
    fn summary_json_lists_nonzero_counters_and_hists() {
        let obs = Obs::new();
        let edge = obs.edge(0);
        edge.emit(EventKind::FrameIngest);
        edge.emit_txn(1, EventKind::InitialCommit);
        edge.record_duration(HistKind::WalSyncMs, std::time::Duration::from_millis(2));
        let json = summary_json(&obs);
        assert!(json.contains("\"frame_ingest\": 1"), "{json}");
        assert!(json.contains("\"initial_commit\": 1"), "{json}");
        assert!(json.contains("\"wal_sync_ms\""), "{json}");
        assert!(!json.contains("\"ship_reject\""), "zero counters omitted");
    }

    #[test]
    fn events_json_is_an_array() {
        let events = vec![
            Event {
                seq: 0,
                frame: 0,
                edge: 0,
                txn: None,
                kind: EventKind::FrameIngest,
            },
            Event {
                seq: 1,
                frame: 0,
                edge: 0,
                txn: Some(1),
                kind: EventKind::TpcDecision { commit: false },
            },
        ];
        let json = events_json(&events);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"commit\":false"), "{json}");
    }
}
