//! The collector: per-edge bounded ring buffers, per-kind counters and
//! named latency histograms behind a cheap handle.
//!
//! [`Obs`] owns one [`EdgeObs`] stream per edge. An `EdgeObs` is the
//! handle threaded through executors, WAL writers and the fleet loop;
//! it is `Clone` (all clones share the edge's stream) and defaults to
//! *disabled* — internally an `Option<Arc<..>>` that is `None`, so the
//! emission macro-path in instrumented code is a single branch and the
//! disabled build stays byte-identical on the golden pins.
//!
//! Events go into a bounded ring (oldest dropped first, with a drop
//! counter so the ordering checker knows the stream was truncated);
//! per-kind counters (kept under the same lock as the ring, so one
//! critical section covers the whole emission) and the atomic
//! histograms never drop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::event::{Event, EventKind};
use crate::hist::{AtomicHistogram, Quantiles};

/// Default per-edge ring capacity (events kept per edge).
///
/// 16Ki events ≈ 1 MiB per edge — small enough that the ring's cache
/// footprint stays out of the pipeline's way (the enabled-path overhead
/// budget is 5%), large enough to hold the last few hundred frames'
/// worth of transactions for forensics. Counters and histograms never
/// drop regardless; only the event window is bounded.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// The named latency/lag histograms every edge stream keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistKind {
    /// Frame-ingest → initial (stage-0) commit, milliseconds.
    InitialCommitMs,
    /// Final-stage execution → final commit, milliseconds.
    FinalCommitMs,
    /// One WAL fsync (group commit), milliseconds.
    WalSyncMs,
    /// Source durable bytes minus replica-consumed bytes, sampled per
    /// frame (dimensionless ticks = bytes).
    ShipLagBytes,
    /// Heartbeat-silence frames observed at the moment a takeover
    /// started (dimensionless ticks = frames).
    DetectToTakeoverFrames,
}

impl HistKind {
    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HistKind::InitialCommitMs => "initial_commit_ms",
            HistKind::FinalCommitMs => "final_commit_ms",
            HistKind::WalSyncMs => "wal_sync_ms",
            HistKind::ShipLagBytes => "ship_lag_bytes",
            HistKind::DetectToTakeoverFrames => "detect_to_takeover_frames",
        }
    }

    /// Whether samples are durations (ms) rather than raw units.
    #[must_use]
    pub fn is_duration(self) -> bool {
        matches!(
            self,
            HistKind::InitialCommitMs | HistKind::FinalCommitMs | HistKind::WalSyncMs
        )
    }

    const COUNT: usize = 5;

    fn index(self) -> usize {
        match self {
            HistKind::InitialCommitMs => 0,
            HistKind::FinalCommitMs => 1,
            HistKind::WalSyncMs => 2,
            HistKind::ShipLagBytes => 3,
            HistKind::DetectToTakeoverFrames => 4,
        }
    }

    /// All kinds, in index order.
    #[must_use]
    pub fn all() -> [HistKind; HistKind::COUNT] {
        [
            HistKind::InitialCommitMs,
            HistKind::FinalCommitMs,
            HistKind::WalSyncMs,
            HistKind::ShipLagBytes,
            HistKind::DetectToTakeoverFrames,
        ]
    }
}

/// Bounded event ring: oldest events are dropped first. The next
/// sequence number lives inside the ring (not a separate atomic) so that
/// seq allocation and insertion are one critical section — ring order
/// always equals seq order, which the ordering checker's `seq-monotone`
/// invariant relies on.
struct Ring {
    cap: usize,
    seq: u64,
    buf: std::collections::VecDeque<Event>,
    dropped: u64,
    // Per-kind totals live here too: the emitter already holds the lock,
    // so plain increments beat a second atomic RMW per event.
    counters: [u64; EventKind::COUNT],
}

impl Ring {
    fn push(&mut self, event: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

/// One edge's shared stream state.
struct EdgeInner {
    edge: u32,
    frame: AtomicU64,
    ring: Mutex<Ring>,
    hists: [AtomicHistogram; HistKind::COUNT],
}

impl EdgeInner {
    fn new(edge: u32, cap: usize) -> Self {
        EdgeInner {
            edge,
            frame: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                cap,
                seq: 0,
                buf: std::collections::VecDeque::new(),
                dropped: 0,
                counters: [0; EventKind::COUNT],
            }),
            hists: std::array::from_fn(|_| AtomicHistogram::new()),
        }
    }
}

/// Cheap per-edge emission handle; `None` inside means disabled.
///
/// Disabled is the default everywhere: every emission site first
/// branches on the `Option`, so an unobserved run does no atomic work,
/// takes no locks and allocates nothing — the golden-pin runs stay
/// byte-identical.
#[derive(Clone, Default)]
pub struct EdgeObs {
    inner: Option<Arc<EdgeInner>>,
}

impl std::fmt::Debug for EdgeObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("EdgeObs(disabled)"),
            Some(inner) => write!(f, "EdgeObs(edge={})", inner.edge),
        }
    }
}

impl EdgeObs {
    /// The no-op handle (the default for every instrumented component).
    #[must_use]
    pub fn disabled() -> Self {
        EdgeObs { inner: None }
    }

    /// A standalone enabled handle for unit tests and benches, not
    /// attached to any [`Obs`] collector.
    #[must_use]
    pub fn standalone(edge: u32) -> Self {
        EdgeObs {
            inner: Some(Arc::new(EdgeInner::new(edge, DEFAULT_RING_CAPACITY))),
        }
    }

    /// Whether events will actually be recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Advance the stream's sim frame clock (called at frame ingest).
    pub fn set_frame(&self, frame: u64) {
        if let Some(inner) = &self.inner {
            inner.frame.store(frame, Ordering::Relaxed);
        }
    }

    /// Current sim frame clock.
    #[must_use]
    pub fn frame(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.frame.load(Ordering::Relaxed))
    }

    /// Emit an event with no transaction id.
    pub fn emit(&self, kind: EventKind) {
        self.emit_opt(None, kind);
    }

    /// Emit an event for transaction `txn`.
    pub fn emit_txn(&self, txn: u64, kind: EventKind) {
        self.emit_opt(Some(txn), kind);
    }

    fn emit_opt(&self, txn: Option<u64>, kind: EventKind) {
        let Some(inner) = &self.inner else { return };
        let frame = inner.frame.load(Ordering::Relaxed);
        let mut ring = inner.ring.lock();
        ring.counters[kind.index()] += 1;
        let seq = ring.seq;
        ring.seq += 1;
        ring.push(Event {
            seq,
            frame,
            edge: inner.edge,
            txn,
            kind,
        });
    }

    /// Record a duration sample into one of the edge's histograms.
    pub fn record_duration(&self, hist: HistKind, d: Duration) {
        if let Some(inner) = &self.inner {
            inner.hists[hist.index()].record_duration(d);
        }
    }

    /// Record a dimensionless sample (bytes, frames).
    pub fn record_value(&self, hist: HistKind, value: u64) {
        if let Some(inner) = &self.inner {
            inner.hists[hist.index()].record_value(value);
        }
    }

    /// Snapshot of this edge's event stream, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.ring.lock().buf.iter().cloned().collect())
    }

    /// Events dropped from this edge's ring (stream truncated if > 0).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.lock().dropped)
    }

    /// Count of events of `kind` emitted (never truncated).
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.ring.lock().counters[kind.index()])
    }

    /// Quantiles of one of the edge's histograms.
    #[must_use]
    pub fn quantiles(&self, hist: HistKind) -> Quantiles {
        self.inner.as_ref().map_or_else(Quantiles::default, |i| {
            let h = &i.hists[hist.index()];
            if hist.is_duration() {
                h.quantiles_ms()
            } else {
                h.quantiles_value()
            }
        })
    }

    /// Samples recorded into one of the edge's histograms.
    #[must_use]
    pub fn hist_count(&self, hist: HistKind) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.hists[hist.index()].count())
    }

    fn inner_hist(&self, hist: HistKind) -> Option<&AtomicHistogram> {
        self.inner.as_ref().map(|i| &i.hists[hist.index()])
    }
}

/// The fleet-wide collector: one [`EdgeObs`] stream per edge.
pub struct Obs {
    cap: usize,
    edges: Mutex<Vec<EdgeObs>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("edges", &self.edges.lock().len())
            .field("ring_capacity", &self.cap)
            .finish()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    /// A collector with the default per-edge ring capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A collector keeping at most `cap` events per edge.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Obs {
            cap: cap.max(1),
            edges: Mutex::new(Vec::new()),
        }
    }

    /// Convenience: a shareable collector.
    #[must_use]
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// The (persistent) stream handle for edge `edge`; creating it on
    /// first use. Re-requesting the same edge returns the *same*
    /// stream, so a replacement node after failover continues the dead
    /// node's sequence numbers.
    #[must_use]
    pub fn edge(&self, edge: usize) -> EdgeObs {
        let mut edges = self.edges.lock();
        while edges.len() <= edge {
            let id = edges.len() as u32;
            edges.push(EdgeObs {
                inner: Some(Arc::new(EdgeInner::new(id, self.cap))),
            });
        }
        edges[edge].clone()
    }

    /// How many edge streams exist.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.lock().len()
    }

    /// All events, grouped by edge and in per-edge emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let edges = self.edges.lock().clone();
        let mut out = Vec::new();
        for e in &edges {
            out.extend(e.events());
        }
        out
    }

    /// One edge's events (empty if the edge was never observed).
    #[must_use]
    pub fn edge_events(&self, edge: usize) -> Vec<Event> {
        let edges = self.edges.lock();
        edges.get(edge).map_or_else(Vec::new, EdgeObs::events)
    }

    /// Total events dropped across all edge rings.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        let edges = self.edges.lock().clone();
        edges.iter().map(EdgeObs::dropped).sum()
    }

    /// Fleet-wide count of events of `kind`.
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        let edges = self.edges.lock().clone();
        edges.iter().map(|e| e.count(kind)).sum()
    }

    /// Fleet-wide merged quantiles for one histogram kind.
    #[must_use]
    pub fn quantiles(&self, hist: HistKind) -> Quantiles {
        let edges = self.edges.lock().clone();
        let merged = AtomicHistogram::new();
        for e in &edges {
            if let Some(h) = e.inner_hist(hist) {
                merged.merge(h);
            }
        }
        if hist.is_duration() {
            merged.quantiles_ms()
        } else {
            merged.quantiles_value()
        }
    }

    /// Fleet-wide sample count for one histogram kind.
    #[must_use]
    pub fn hist_count(&self, hist: HistKind) -> u64 {
        let edges = self.edges.lock().clone();
        edges.iter().map(|e| e.hist_count(hist)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = EdgeObs::disabled();
        assert!(!obs.is_enabled());
        obs.set_frame(7);
        obs.emit(EventKind::FrameIngest);
        obs.emit_txn(1, EventKind::InitialCommit);
        obs.record_duration(HistKind::WalSyncMs, Duration::from_millis(1));
        assert_eq!(obs.frame(), 0);
        assert!(obs.events().is_empty());
        assert_eq!(obs.count(EventKind::FrameIngest), 0);
        assert_eq!(obs.hist_count(HistKind::WalSyncMs), 0);
    }

    #[test]
    fn events_carry_seq_frame_edge_txn() {
        let obs = EdgeObs::standalone(3);
        obs.set_frame(10);
        obs.emit(EventKind::FrameIngest);
        obs.emit_txn(42, EventKind::TxnBegin { stages: 2 });
        obs.set_frame(11);
        obs.emit_txn(42, EventKind::FinalCommit);
        let events = obs.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].frame, 10);
        assert_eq!(events[0].edge, 3);
        assert_eq!(events[0].txn, None);
        assert_eq!(events[1].txn, Some(42));
        assert_eq!(events[2].frame, 11);
        assert_eq!(events[2].seq, 2);
        assert_eq!(obs.count(EventKind::FinalCommit), 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts_truncation() {
        let obs = Obs::with_capacity(4);
        let edge = obs.edge(0);
        for i in 0..10 {
            edge.emit_txn(i, EventKind::InitialCommit);
        }
        let events = edge.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].txn, Some(6));
        assert_eq!(edge.dropped(), 6);
        // Counters never truncate.
        assert_eq!(edge.count(EventKind::InitialCommit), 10);
    }

    #[test]
    fn same_edge_handle_is_shared_across_requests() {
        let obs = Obs::new();
        obs.edge(1).emit(EventKind::TakeoverStart);
        obs.edge(1).emit(EventKind::TakeoverEnd { retractions: 0 });
        let events = obs.edge_events(1);
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].seq, 1, "replacement continues the stream");
        assert_eq!(obs.edge_count(), 2);
    }

    #[test]
    fn fleet_quantiles_merge_edge_histograms() {
        let obs = Obs::new();
        obs.edge(0)
            .record_duration(HistKind::WalSyncMs, Duration::from_millis(2));
        obs.edge(1)
            .record_duration(HistKind::WalSyncMs, Duration::from_millis(8));
        assert_eq!(obs.hist_count(HistKind::WalSyncMs), 2);
        let q = obs.quantiles(HistKind::WalSyncMs);
        assert!(q.p999 > 7.0, "merged p999={}", q.p999);
    }
}
