//! Frame payload transforms: the hybrid edge-cloud techniques of §5.2.5.
//!
//! Figure 6(c) evaluates two pre-processing techniques from prior hybrid
//! systems: "(1) compression in which the frame is compressed before
//! sending it to reduce the communication bandwidth and latency, and (2)
//! difference communication in which only the difference between the
//! current frame and a reference frame is sent to the cloud." Both can be
//! layered on the cloud-only baseline or on Croesus.

use croesus_sim::SimDuration;

/// Payload encoding configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PayloadCodec {
    /// Re-compress the frame before sending.
    pub compression: bool,
    /// Send only the difference against a reference frame.
    pub difference: bool,
}

/// Result of encoding a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodedPayload {
    /// Bytes actually sent.
    pub bytes: u64,
    /// CPU time spent encoding at the edge.
    pub encode_latency: SimDuration,
}

impl PayloadCodec {
    /// No transform: raw frames.
    pub fn raw() -> Self {
        PayloadCodec::default()
    }

    /// Compression only.
    pub fn compressed() -> Self {
        PayloadCodec {
            compression: true,
            difference: false,
        }
    }

    /// Compression plus difference encoding.
    pub fn compressed_difference() -> Self {
        PayloadCodec {
            compression: true,
            difference: true,
        }
    }

    /// Label as Figure 6(c) prints it, suffixed to a system name.
    pub fn label(&self) -> &'static str {
        match (self.compression, self.difference) {
            (false, false) => "",
            (true, false) => "+compression",
            (false, true) => "+difference",
            (true, true) => "+compression+difference",
        }
    }

    /// Encode a frame of `frame_bytes`. `is_reference` marks frames that
    /// must be sent whole (the first frame, or a scene change): difference
    /// encoding does not apply to them.
    ///
    /// Ratios and CPU costs are calibrated to re-encoding 1080p JPEG-class
    /// frames on a t3a CPU: compression keeps ~55% of the bytes for ~6 ms;
    /// difference encoding keeps ~40% of the (possibly compressed) bytes
    /// for ~4 ms more.
    pub fn encode(&self, frame_bytes: u64, is_reference: bool) -> EncodedPayload {
        let mut bytes = frame_bytes as f64;
        let mut latency_ms = 0.0;
        if self.compression {
            bytes *= 0.55;
            latency_ms += 6.0;
        }
        if self.difference && !is_reference {
            bytes *= 0.40;
            latency_ms += 4.0;
        }
        EncodedPayload {
            bytes: bytes.round() as u64,
            encode_latency: SimDuration::from_millis_f64(latency_ms),
        }
    }

    /// The four configurations compared in Figure 6(c) for each system.
    pub const FIG6C: [PayloadCodec; 3] = [
        PayloadCodec {
            compression: false,
            difference: false,
        },
        PayloadCodec {
            compression: true,
            difference: false,
        },
        PayloadCodec {
            compression: true,
            difference: true,
        },
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_is_identity() {
        let e = PayloadCodec::raw().encode(150_000, false);
        assert_eq!(e.bytes, 150_000);
        assert_eq!(e.encode_latency, SimDuration::ZERO);
    }

    #[test]
    fn compression_shrinks_and_costs_cpu() {
        let e = PayloadCodec::compressed().encode(150_000, false);
        assert_eq!(e.bytes, 82_500);
        assert!(e.encode_latency.as_millis_f64() > 0.0);
    }

    #[test]
    fn difference_stacks_on_compression() {
        let e = PayloadCodec::compressed_difference().encode(150_000, false);
        assert_eq!(e.bytes, 33_000);
        assert!(
            e.encode_latency
                > PayloadCodec::compressed()
                    .encode(150_000, false)
                    .encode_latency
        );
    }

    #[test]
    fn reference_frames_skip_difference() {
        let c = PayloadCodec::compressed_difference();
        let reference = c.encode(150_000, true);
        let delta = c.encode(150_000, false);
        assert_eq!(reference.bytes, 82_500, "reference compressed only");
        assert!(delta.bytes < reference.bytes);
    }

    #[test]
    fn labels_match_fig6c() {
        assert_eq!(PayloadCodec::raw().label(), "");
        assert_eq!(PayloadCodec::compressed().label(), "+compression");
        assert_eq!(
            PayloadCodec::compressed_difference().label(),
            "+compression+difference"
        );
    }

    #[test]
    fn fig6c_set_is_ordered_by_aggressiveness() {
        let sizes: Vec<u64> = PayloadCodec::FIG6C
            .iter()
            .map(|c| c.encode(100_000, false).bytes)
            .collect();
        assert!(sizes[0] > sizes[1] && sizes[1] > sizes[2]);
    }
}
