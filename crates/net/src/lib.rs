//! Network substrate.
//!
//! The paper's deployments place the edge in California and the cloud in
//! Virginia (or co-located), on t3a-class machines (§5.1). This crate
//! models the links between client, edge and cloud:
//!
//! * [`link`] — a link with a propagation-delay distribution, bandwidth,
//!   and per-GB monetary cost; transfer latency = propagation +
//!   serialization.
//! * [`topology`] — the four deployment setups of Figure 4 ({small,
//!   regular edge} × {same, different location}) as presets.
//! * [`payload`] — frame payload transforms: the compression and
//!   difference-encoding hybrid techniques of §5.2.5 / Figure 6(c).
//! * [`meter`] — bandwidth-utilization and monetary-cost accounting (§3.4
//!   motivates thresholding with exactly these costs).

pub mod link;
pub mod meter;
pub mod payload;
pub mod topology;

pub use link::{FaultableLink, Link};
pub use meter::BandwidthMeter;
pub use payload::PayloadCodec;
pub use topology::{Colocation, EdgeClass, Setup, Topology};
