//! Bandwidth-utilization and transfer-cost accounting.
//!
//! §5.1 defines "Edge-Cloud Bandwidth Utilization (BU) ... as the ratio of
//! frames being sent to the cloud relative to all processed frames"; §3.4
//! motivates thresholding with the performance *and monetary* overhead of
//! edge-cloud communication. The meter tracks both.

/// Accumulates per-run bandwidth statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BandwidthMeter {
    frames_processed: u64,
    frames_sent: u64,
    bytes_sent: u64,
    dollars: f64,
}

impl BandwidthMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        BandwidthMeter::default()
    }

    /// Record a frame processed at the edge (sent to the cloud or not).
    pub fn record_processed(&mut self) {
        self.frames_processed += 1;
    }

    /// Record a frame sent to the cloud with its payload size and cost.
    pub fn record_sent(&mut self, bytes: u64, dollars: f64) {
        self.frames_sent += 1;
        self.bytes_sent += bytes;
        self.dollars += dollars;
    }

    /// The paper's BU metric: frames sent / frames processed (0 if none).
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.frames_processed as f64
        }
    }

    /// Total frames processed.
    pub fn frames_processed(&self) -> u64 {
        self.frames_processed
    }

    /// Total frames sent to the cloud.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total bytes shipped edge→cloud.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total transfer cost in dollars.
    pub fn dollars(&self) -> f64 {
        self.dollars
    }

    /// Dollar cost normalized per 1000 processed frames — the ablation
    /// metric reported alongside Table 2.
    pub fn dollars_per_1k_frames(&self) -> f64 {
        if self.frames_processed == 0 {
            0.0
        } else {
            self.dollars * 1000.0 / self.frames_processed as f64
        }
    }

    /// Merge another meter into this one.
    pub fn merge(&mut self, other: &BandwidthMeter) {
        self.frames_processed += other.frames_processed;
        self.frames_sent += other.frames_sent;
        self.bytes_sent += other.bytes_sent;
        self.dollars += other.dollars;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero() {
        let m = BandwidthMeter::new();
        assert_eq!(m.bandwidth_utilization(), 0.0);
        assert_eq!(m.dollars_per_1k_frames(), 0.0);
        assert_eq!(m.bytes_sent(), 0);
    }

    #[test]
    fn bu_is_sent_over_processed() {
        let mut m = BandwidthMeter::new();
        for i in 0..10 {
            m.record_processed();
            if i % 2 == 0 {
                m.record_sent(1000, 0.001);
            }
        }
        assert!((m.bandwidth_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(m.frames_sent(), 5);
        assert_eq!(m.bytes_sent(), 5000);
    }

    #[test]
    fn cost_accumulates() {
        let mut m = BandwidthMeter::new();
        m.record_processed();
        m.record_sent(1_000_000_000, 0.09);
        m.record_processed();
        m.record_sent(1_000_000_000, 0.09);
        assert!((m.dollars() - 0.18).abs() < 1e-12);
        assert!((m.dollars_per_1k_frames() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = BandwidthMeter::new();
        a.record_processed();
        a.record_sent(10, 0.01);
        let mut b = BandwidthMeter::new();
        b.record_processed();
        b.record_processed();
        a.merge(&b);
        assert_eq!(a.frames_processed(), 3);
        assert!((a.bandwidth_utilization() - 1.0 / 3.0).abs() < 1e-12);
    }
}
