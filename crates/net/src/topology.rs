//! Deployment topologies: the paper's four setups (Figure 4).
//!
//! §5.2.2 evaluates: (a) small edge, different locations; (b) small edge,
//! same location; (c) regular edge, different location; (d) regular edge,
//! same location. "Edge machines are implemented on either t3a.xlarge
//! instances (for the default setups) and t3a.small (for experiments with
//! limited resources). ... The default setup is of an edge machine in
//! California and a cloud machine in Virginia."

use croesus_sim::Normal;

use crate::link::Link;

/// Edge machine class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeClass {
    /// t3a.small: 2 vCPU, 2 GiB — "experiments with limited resources".
    Small,
    /// t3a.xlarge: 4 vCPU, 16 GiB — the default.
    Xlarge,
}

impl EdgeClass {
    /// Inference slowdown factor relative to the default machine. The paper
    /// does not publish per-machine inference numbers; a t3a.small has half
    /// the vCPUs and an eighth of the memory of a t3a.xlarge, and CPU
    /// inference scales close to linearly with cores for batch-1 YOLO, so
    /// we use 2.2× (slightly above 2 for memory pressure).
    pub fn hardware_factor(&self) -> f64 {
        match self {
            EdgeClass::Small => 2.2,
            EdgeClass::Xlarge => 1.0,
        }
    }

    /// The EC2 instance type name.
    pub fn instance_name(&self) -> &'static str {
        match self {
            EdgeClass::Small => "t3a.small",
            EdgeClass::Xlarge => "t3a.xlarge",
        }
    }
}

/// Where the cloud machine sits relative to the edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Colocation {
    /// Edge in California, cloud in Virginia (the default).
    CrossCountry,
    /// Both machines in the same location.
    SameLocation,
}

/// One of the four Figure-4 deployment setups.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Setup {
    /// Edge machine class.
    pub edge: EdgeClass,
    /// Edge↔cloud placement.
    pub colocation: Colocation,
}

impl Setup {
    /// The four setups in the paper's order: (a) small/different, (b)
    /// small/same, (c) regular/different, (d) regular/same.
    pub const ALL: [Setup; 4] = [
        Setup {
            edge: EdgeClass::Small,
            colocation: Colocation::CrossCountry,
        },
        Setup {
            edge: EdgeClass::Small,
            colocation: Colocation::SameLocation,
        },
        Setup {
            edge: EdgeClass::Xlarge,
            colocation: Colocation::CrossCountry,
        },
        Setup {
            edge: EdgeClass::Xlarge,
            colocation: Colocation::SameLocation,
        },
    ];

    /// The default setup: regular edge, cross-country.
    pub fn default_paper() -> Setup {
        Setup {
            edge: EdgeClass::Xlarge,
            colocation: Colocation::CrossCountry,
        }
    }

    /// The paper's label for this setup.
    pub fn label(&self) -> String {
        format!(
            "{} edge, {}",
            match self.edge {
                EdgeClass::Small => "small",
                EdgeClass::Xlarge => "regular",
            },
            match self.colocation {
                Colocation::CrossCountry => "different locations",
                Colocation::SameLocation => "same location",
            }
        )
    }

    /// Build the topology for this setup.
    pub fn topology(&self) -> Topology {
        Topology::for_setup(*self)
    }
}

/// The links of one deployment.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Client (headset) to the nearby edge node.
    pub client_edge: Link,
    /// Edge node to the cloud node.
    pub edge_cloud: Link,
    /// The setup this topology was built for.
    pub setup: Setup,
}

impl Topology {
    /// Build the topology for a setup.
    ///
    /// Calibration: the client is near its edge node (~8 ms, the "edge
    /// latency" share of the ~210 ms initial commit in Table 1);
    /// CA↔Virginia one-way is ~62 ms on AWS's backbone; co-located
    /// machines see ~1 ms. Cross-country transfers are billed at the
    /// standard $0.09/GB egress rate, intra-location at $0.01/GB.
    pub fn for_setup(setup: Setup) -> Topology {
        let client_edge = Link::new("client→edge", Normal::new(8.0, 1.5), 400e6, 0.0);
        let edge_cloud = match setup.colocation {
            Colocation::CrossCountry => {
                // 50 Mbps sustained cross-country throughput: a 150 KB frame
                // serializes in ~24 ms, so compression genuinely helps
                // (Fig 6c) while propagation still dominates.
                Link::new("edge→cloud (CA→VA)", Normal::new(62.0, 4.0), 50e6, 0.09)
            }
            Colocation::SameLocation => {
                Link::new("edge→cloud (local)", Normal::new(1.0, 0.2), 1e9, 0.01)
            }
        };
        Topology {
            client_edge,
            edge_cloud,
            setup,
        }
    }

    /// The default (paper) topology.
    pub fn default_paper() -> Topology {
        Topology::for_setup(Setup::default_paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_setups_with_distinct_labels() {
        let labels: std::collections::HashSet<String> =
            Setup::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn cross_country_is_much_slower_than_local() {
        let far = Setup {
            edge: EdgeClass::Xlarge,
            colocation: Colocation::CrossCountry,
        }
        .topology();
        let near = Setup {
            edge: EdgeClass::Xlarge,
            colocation: Colocation::SameLocation,
        }
        .topology();
        let far_ms = far.edge_cloud.mean_latency(150_000).as_millis_f64();
        let near_ms = near.edge_cloud.mean_latency(150_000).as_millis_f64();
        assert!(far_ms > near_ms * 10.0, "far {far_ms} near {near_ms}");
    }

    #[test]
    fn small_edge_is_slower_hardware() {
        assert!(EdgeClass::Small.hardware_factor() > EdgeClass::Xlarge.hardware_factor());
        assert_eq!(EdgeClass::Xlarge.hardware_factor(), 1.0);
    }

    #[test]
    fn cross_country_costs_more() {
        let far = Topology::default_paper();
        let near = Setup {
            edge: EdgeClass::Xlarge,
            colocation: Colocation::SameLocation,
        }
        .topology();
        assert!(far.edge_cloud.cost_per_gb > near.edge_cloud.cost_per_gb);
    }

    #[test]
    fn default_is_regular_cross_country() {
        let d = Setup::default_paper();
        assert_eq!(d.edge, EdgeClass::Xlarge);
        assert_eq!(d.colocation, Colocation::CrossCountry);
        assert_eq!(d.edge.instance_name(), "t3a.xlarge");
    }

    #[test]
    fn client_edge_link_is_fast_and_free() {
        let t = Topology::default_paper();
        assert!(t.client_edge.mean_latency(150_000).as_millis_f64() < 15.0);
        assert_eq!(t.client_edge.cost_per_gb, 0.0);
    }
}
