//! Point-to-point link model.

use croesus_sim::{DetRng, Normal, SimDuration};

/// A network link: propagation delay (normally distributed with jitter),
/// serialization bandwidth, and a monetary cost per transferred gigabyte
/// ("public cloud providers charge a cost for communicated data between the
/// data center and the Internet", §3.1).
#[derive(Clone, Debug)]
pub struct Link {
    /// Link name, for reports.
    pub name: String,
    /// One-way propagation delay distribution, in milliseconds.
    pub propagation_ms: Normal,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Cost per gigabyte transferred, in dollars.
    pub cost_per_gb: f64,
}

impl Link {
    /// Create a link. Panics on non-positive bandwidth.
    pub fn new(name: &str, propagation_ms: Normal, bandwidth_bps: f64, cost_per_gb: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(cost_per_gb >= 0.0, "cost must be non-negative");
        Link {
            name: name.to_string(),
            propagation_ms,
            bandwidth_bps,
            cost_per_gb,
        }
    }

    /// One-way latency to move `bytes` across this link: a propagation
    /// sample plus serialization time.
    pub fn transfer_latency(&self, bytes: u64, rng: &mut DetRng) -> SimDuration {
        let prop = self.propagation_ms.sample_clamped(
            rng,
            (self.propagation_ms.mean - 3.0 * self.propagation_ms.std).max(0.05),
            self.propagation_ms.mean + 3.0 * self.propagation_ms.std,
        );
        let serialization_ms = (bytes as f64 * 8.0) / self.bandwidth_bps * 1e3;
        SimDuration::from_millis_f64(prop + serialization_ms)
    }

    /// Mean one-way latency for `bytes` (no jitter) — used by analytic
    /// summaries.
    pub fn mean_latency(&self, bytes: u64) -> SimDuration {
        let serialization_ms = (bytes as f64 * 8.0) / self.bandwidth_bps * 1e3;
        SimDuration::from_millis_f64(self.propagation_ms.mean + serialization_ms)
    }

    /// Dollar cost of transferring `bytes`.
    pub fn transfer_cost(&self, bytes: u64) -> f64 {
        bytes as f64 / 1e9 * self.cost_per_gb
    }
}

/// A [`Link`] that can be administratively cut for a span of frames —
/// the data-plane half of a network partition.
///
/// Time is measured in frame indices (the fleet driver's clock) rather
/// than [`SimDuration`]s so a cut composes directly with a
/// `croesus_sim::fault::FaultPlan` partition event. While the link is
/// down, transfers return `None`: the caller decides what degradation
/// means (the edge falls back to local finalization; the shipper
/// reports `Offline`).
#[derive(Clone, Debug)]
pub struct FaultableLink {
    link: Link,
    /// First frame at which the link is up again; `0` means never cut.
    up_at: u64,
}

impl FaultableLink {
    /// Wrap a link; starts up.
    pub fn new(link: Link) -> Self {
        FaultableLink { link, up_at: 0 }
    }

    /// Cut the link from `now` for `frames` frames. Overlapping cuts
    /// extend, never shorten, the outage.
    pub fn cut_for(&mut self, now: u64, frames: u64) {
        self.up_at = self.up_at.max(now.saturating_add(frames));
    }

    /// Whether the link carries traffic at frame `now`.
    pub fn is_up(&self, now: u64) -> bool {
        now >= self.up_at
    }

    /// Transfer latency at frame `now`, or `None` while the link is cut.
    pub fn transfer_latency(&self, bytes: u64, rng: &mut DetRng, now: u64) -> Option<SimDuration> {
        self.is_up(now)
            .then(|| self.link.transfer_latency(bytes, rng))
    }

    /// The wrapped link.
    pub fn link(&self) -> &Link {
        &self.link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        // 60 ms propagation, 200 Mbps, $0.09/GB — a CA→VA-ish link.
        Link::new("test", Normal::new(60.0, 3.0), 200e6, 0.09)
    }

    #[test]
    fn transfer_latency_includes_serialization() {
        let mut rng = DetRng::new(1);
        let l = link();
        // 150 KB at 200 Mbps = 6 ms serialization.
        let lat: Vec<f64> = (0..2000)
            .map(|_| l.transfer_latency(150_000, &mut rng).as_millis_f64())
            .collect();
        let mean = lat.iter().sum::<f64>() / lat.len() as f64;
        assert!((mean - 66.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn zero_bytes_is_pure_propagation() {
        let l = link();
        assert!((l.mean_latency(0).as_millis_f64() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_payload_takes_longer() {
        let l = link();
        assert!(l.mean_latency(1_000_000) > l.mean_latency(100_000));
    }

    #[test]
    fn latency_is_never_negative_even_with_huge_jitter() {
        let mut rng = DetRng::new(2);
        let l = Link::new("jittery", Normal::new(1.0, 50.0), 1e9, 0.0);
        for _ in 0..1000 {
            let lat = l.transfer_latency(1000, &mut rng);
            assert!(lat.as_micros() > 0);
        }
    }

    #[test]
    fn cost_scales_linearly() {
        let l = link();
        assert!((l.transfer_cost(1_000_000_000) - 0.09).abs() < 1e-12);
        assert!((l.transfer_cost(500_000_000) - 0.045).abs() < 1e-12);
        assert_eq!(l.transfer_cost(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        Link::new("bad", Normal::new(1.0, 0.0), 0.0, 0.0);
    }

    #[test]
    fn faultable_link_drops_traffic_while_cut() {
        let mut rng = DetRng::new(3);
        let mut fl = FaultableLink::new(link());
        assert!(fl.is_up(0));
        assert!(fl.transfer_latency(1000, &mut rng, 0).is_some());
        fl.cut_for(2, 3);
        assert!(!fl.is_up(2));
        assert!(fl.transfer_latency(1000, &mut rng, 4).is_none());
        assert!(fl.is_up(5), "back up after the outage span");
        assert!(fl.transfer_latency(1000, &mut rng, 5).is_some());
    }

    #[test]
    fn overlapping_cuts_extend_the_outage() {
        let mut fl = FaultableLink::new(link());
        fl.cut_for(0, 10);
        fl.cut_for(3, 2); // ends at 5 — must not shorten the first cut
        assert!(!fl.is_up(9));
        assert!(fl.is_up(10));
    }
}
