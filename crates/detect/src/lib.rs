//! Simulated CNN object detection.
//!
//! Croesus uses detection models as black boxes (§2.2): a model maps a frame
//! to a set of labels, each with a name, a confidence, and coordinates. The
//! paper's models (Tiny-YOLOv3 at the edge, YOLOv3-{320,416,608} at the
//! cloud) are unavailable here, so this crate simulates them statistically:
//! a [`profile::ModelProfile`] describes a model's recall, label accuracy,
//! false-positive rate, bounding-box jitter, confidence calibration and
//! inference latency; [`model::SimulatedModel`] perturbs a frame's ground
//! truth accordingly, deterministically per `(seed, frame)`.
//!
//! The essential property preserved from the real system is the *joint
//! distribution of confidence and correctness*: high-confidence detections
//! are usually right, low-confidence ones are usually spurious, and the
//! middle band is genuinely ambiguous. That coupling is what makes the
//! paper's bandwidth-thresholding (§3.4) behave the way it does.
//!
//! [`eval`] implements the paper's accuracy measurement: detections are
//! matched to a reference set by bounding-box overlap (>10% by default) and
//! scored as precision/recall/F-score.

pub mod detection;
pub mod eval;
pub mod feedback;
pub mod model;
pub mod profile;

pub use detection::Detection;
pub use eval::DEFAULT_OVERLAP_THRESHOLD;
pub use eval::{match_detections, score_against, MatchOutcome, Matching};
pub use feedback::FeedbackModel;
pub use model::{DetectionModel, OracleModel, SimulatedModel};
pub use profile::{ConfidenceModel, LatencyProfile, ModelKind, ModelProfile, Vocabulary};
