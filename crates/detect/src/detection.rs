//! The detection type: what a model reports for one object in one frame.

use croesus_video::{BoundingBox, LabelClass};

/// One detected object: "each label consists of the name of the label, the
/// confidence of the label, and the coordinates of the label" (§3.3.2).
#[derive(Clone, Debug, PartialEq)]
pub struct Detection {
    /// The label name the model assigned.
    pub class: LabelClass,
    /// Model confidence in `[0, 1]`.
    pub confidence: f64,
    /// The predicted bounding box.
    pub bbox: BoundingBox,
}

impl Detection {
    /// Create a detection; confidence is clamped into `[0, 1]`.
    pub fn new(class: LabelClass, confidence: f64, bbox: BoundingBox) -> Self {
        Detection {
            class,
            confidence: confidence.clamp(0.0, 1.0),
            bbox,
        }
    }

    /// Whether this detection's class equals `class`.
    pub fn is_class(&self, class: &LabelClass) -> bool {
        &self.class == class
    }
}

/// Convenience: pick from a set of detections the one closest to the frame
/// centre (used by the paper's "reserve a study room" task, which picks
/// "the label that is closest to the center of the frame").
pub fn closest_to_center(detections: &[Detection]) -> Option<&Detection> {
    detections.iter().min_by(|a, b| {
        a.bbox
            .distance_to_frame_center()
            .partial_cmp(&b.bbox.distance_to_frame_center())
            .expect("bbox distances are never NaN")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_is_clamped() {
        let b = BoundingBox::new(0.1, 0.1, 0.2, 0.2);
        assert_eq!(Detection::new("car".into(), 1.7, b).confidence, 1.0);
        assert_eq!(Detection::new("car".into(), -0.2, b).confidence, 0.0);
    }

    #[test]
    fn class_check() {
        let d = Detection::new("dog".into(), 0.8, BoundingBox::new(0.0, 0.0, 0.1, 0.1));
        assert!(d.is_class(&"dog".into()));
        assert!(!d.is_class(&"cat".into()));
    }

    #[test]
    fn closest_to_center_picks_central_box() {
        let center = Detection::new(
            "building".into(),
            0.9,
            BoundingBox::centered(0.5, 0.5, 0.2, 0.2),
        );
        let corner = Detection::new("building".into(), 0.9, BoundingBox::new(0.0, 0.0, 0.2, 0.2));
        let dets = [corner, center.clone()];
        let picked = closest_to_center(&dets).unwrap();
        assert_eq!(picked, &center);
    }

    #[test]
    fn closest_to_center_empty_is_none() {
        assert!(closest_to_center(&[]).is_none());
    }
}
