//! Model profiles: the statistical description of a simulated detector.
//!
//! A profile captures everything Croesus can observe about a CNN from the
//! outside: how often it finds objects (as a function of how clear they
//! are), how often the label name is right, how many spurious detections it
//! emits, how tight its boxes are, how its confidence scores relate to
//! correctness, and how long inference takes. The preset profiles are
//! calibrated against the numbers the paper reports for Tiny-YOLOv3 and
//! YOLOv3-{320,416,608} (§5.1, Table 2).

use croesus_sim::{DetRng, Distribution, Kumaraswamy, Normal, SimDuration};
use croesus_video::LabelClass;

/// Inference latency model: normal with mean/std, clamped to stay positive
/// and sane, and scalable by a hardware factor (a t3a.small edge box is
/// slower than a t3a.xlarge one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyProfile {
    /// Mean inference latency, milliseconds.
    pub mean_ms: f64,
    /// Standard deviation, milliseconds.
    pub std_ms: f64,
}

impl LatencyProfile {
    /// Create a latency profile. Panics on non-positive mean or negative std.
    pub fn new(mean_ms: f64, std_ms: f64) -> Self {
        assert!(mean_ms > 0.0, "latency mean must be positive");
        assert!(std_ms >= 0.0, "latency std must be non-negative");
        LatencyProfile { mean_ms, std_ms }
    }

    /// Sample one inference latency, scaled by `hardware_factor` (1.0 =
    /// the paper's default machine for this model).
    pub fn sample(&self, rng: &mut DetRng, hardware_factor: f64) -> SimDuration {
        let n = Normal::new(self.mean_ms, self.std_ms);
        let ms = n.sample_clamped(
            rng,
            (self.mean_ms - 3.0 * self.std_ms).max(0.5),
            self.mean_ms + 3.0 * self.std_ms,
        );
        SimDuration::from_millis_f64(ms * hardware_factor.max(0.01))
    }
}

/// How confidence scores are generated.
///
/// Correct detections draw confidence around `correct_base +
/// correct_gain·q` where `q` is the latent perceived quality; wrong-label
/// detections around `wrong_base + wrong_gain·q`; false positives from a
/// Kumaraswamy distribution scaled into a low band. This is the coupling
/// that gives the discard/validate/keep intervals of §3.4 their meaning.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfidenceModel {
    /// Confidence intercept for correct detections.
    pub correct_base: f64,
    /// Confidence slope in quality for correct detections.
    pub correct_gain: f64,
    /// Confidence intercept for misclassified detections.
    pub wrong_base: f64,
    /// Confidence slope in quality for misclassified detections.
    pub wrong_gain: f64,
    /// Gaussian noise added to all real-object confidences.
    pub noise: f64,
    /// Kumaraswamy shape for false-positive confidences.
    pub fp_shape: (f64, f64),
    /// False-positive confidences live in `[0, fp_scale]`.
    pub fp_scale: f64,
}

impl ConfidenceModel {
    /// Confidence for a detection of a real object.
    pub fn sample_real(&self, rng: &mut DetRng, quality: f64, correct: bool) -> f64 {
        let mean = if correct {
            self.correct_base + self.correct_gain * quality
        } else {
            self.wrong_base + self.wrong_gain * quality
        };
        (mean + self.noise * rng.standard_normal()).clamp(0.01, 0.995)
    }

    /// Confidence for a false positive.
    pub fn sample_fp(&self, rng: &mut DetRng) -> f64 {
        let k = Kumaraswamy::new(self.fp_shape.0, self.fp_shape.1);
        (k.sample(rng) * self.fp_scale).clamp(0.01, 0.995)
    }
}

/// The kind of model, used for reporting and preset lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Tiny-YOLOv3: the compact edge model.
    TinyYoloV3,
    /// YOLOv3 with 320×320 input.
    YoloV3_320,
    /// YOLOv3 with 416×416 input (the paper's default cloud model).
    YoloV3_416,
    /// YOLOv3 with 608×608 input.
    YoloV3_608,
}

impl ModelKind {
    /// The three cloud model sizes of Table 2, in order.
    pub const CLOUD_SIZES: [ModelKind; 3] = [
        ModelKind::YoloV3_320,
        ModelKind::YoloV3_416,
        ModelKind::YoloV3_608,
    ];

    /// Model name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::TinyYoloV3 => "Tiny YOLOv3",
            ModelKind::YoloV3_320 => "YOLOv3-320",
            ModelKind::YoloV3_416 => "YOLOv3-416",
            ModelKind::YoloV3_608 => "YOLOv3-608",
        }
    }

    /// The preset profile for this model.
    pub fn profile(&self) -> ModelProfile {
        match self {
            ModelKind::TinyYoloV3 => ModelProfile::tiny_yolov3(),
            ModelKind::YoloV3_320 => ModelProfile::yolov3_320(),
            ModelKind::YoloV3_416 => ModelProfile::yolov3_416(),
            ModelKind::YoloV3_608 => ModelProfile::yolov3_608(),
        }
    }
}

/// Full statistical description of a simulated detector.
#[derive(Clone, Debug)]
pub struct ModelProfile {
    /// Model name for reports.
    pub name: String,
    /// Detection probability at perceived quality 0.
    pub recall_floor: f64,
    /// Detection probability slope in perceived quality.
    pub recall_slope: f64,
    /// P(correct label | detected) at quality 0.
    pub label_acc_floor: f64,
    /// P(correct label | detected) slope in quality.
    pub label_acc_slope: f64,
    /// Std of the perceived-quality noise around object clarity.
    pub quality_noise: f64,
    /// Expected spurious detections per frame.
    pub fp_rate: f64,
    /// Bounding-box jitter std, as a fraction of box extent.
    pub bbox_jitter: f64,
    /// Confidence generation model.
    pub confidence: ConfidenceModel,
    /// Inference latency.
    pub latency: LatencyProfile,
}

impl ModelProfile {
    /// Perceived quality of an object for this model: clarity plus
    /// model-specific noise, clamped to `[0, 1]`.
    pub fn perceived_quality(&self, rng: &mut DetRng, clarity: f64) -> f64 {
        (clarity + self.quality_noise * rng.standard_normal()).clamp(0.0, 1.0)
    }

    /// Detection probability at perceived quality `q`.
    pub fn detection_probability(&self, q: f64) -> f64 {
        (self.recall_floor + self.recall_slope * q).clamp(0.0, 1.0)
    }

    /// Probability of the correct label at perceived quality `q`.
    pub fn label_accuracy(&self, q: f64) -> f64 {
        (self.label_acc_floor + self.label_acc_slope * q).clamp(0.0, 1.0)
    }

    /// The compact, fast, less accurate edge model (§5: "Tiny YOLOv3 is
    /// faster but less accurate than YOLOv3"). Latency calibrated so edge
    /// detection on the default edge machine lands near the paper's ~190 ms
    /// share of the ~210 ms initial commit (Table 1).
    pub fn tiny_yolov3() -> ModelProfile {
        ModelProfile {
            name: ModelKind::TinyYoloV3.name().to_string(),
            recall_floor: 0.10,
            recall_slope: 0.92,
            label_acc_floor: 0.28,
            label_acc_slope: 0.70,
            quality_noise: 0.12,
            fp_rate: 0.30,
            bbox_jitter: 0.05,
            confidence: ConfidenceModel {
                correct_base: 0.28,
                correct_gain: 0.62,
                wrong_base: 0.18,
                wrong_gain: 0.38,
                noise: 0.09,
                fp_shape: (1.4, 4.0),
                fp_scale: 0.55,
            },
            latency: LatencyProfile::new(190.0, 12.0),
        }
    }

    fn yolov3(name: &str, acuity: f64, mean_latency_ms: f64) -> ModelProfile {
        ModelProfile {
            name: name.to_string(),
            recall_floor: 0.78 + 0.1 * acuity,
            recall_slope: 0.16,
            label_acc_floor: 0.86 + 0.06 * acuity,
            label_acc_slope: 0.08,
            quality_noise: 0.05,
            fp_rate: 0.03,
            bbox_jitter: 0.012,
            confidence: ConfidenceModel {
                correct_base: 0.55,
                correct_gain: 0.40,
                wrong_base: 0.30,
                wrong_gain: 0.30,
                noise: 0.05,
                fp_shape: (1.4, 4.5),
                fp_scale: 0.45,
            },
            latency: LatencyProfile::new(mean_latency_ms, mean_latency_ms * 0.05),
        }
    }

    /// YOLOv3-320 — smallest cloud model (Table 2: 0.70 s detection).
    pub fn yolov3_320() -> ModelProfile {
        Self::yolov3(ModelKind::YoloV3_320.name(), 0.4, 700.0)
    }

    /// YOLOv3-416 — the default cloud model (Table 2: 1.12 s detection).
    pub fn yolov3_416() -> ModelProfile {
        Self::yolov3(ModelKind::YoloV3_416.name(), 0.7, 1120.0)
    }

    /// YOLOv3-608 — largest cloud model (Table 2: 2.34 s detection).
    pub fn yolov3_608() -> ModelProfile {
        Self::yolov3(ModelKind::YoloV3_608.name(), 1.0, 2340.0)
    }
}

/// A vocabulary of label classes a model can confuse an object with.
/// Misclassifications draw uniformly from the vocabulary minus the true
/// class.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    classes: Vec<LabelClass>,
}

impl Vocabulary {
    /// Build a vocabulary from class names. Panics when fewer than two
    /// classes are supplied — misclassification needs an alternative.
    pub fn new(classes: Vec<LabelClass>) -> Self {
        assert!(classes.len() >= 2, "vocabulary needs at least two classes");
        Vocabulary { classes }
    }

    /// The standard vocabulary used in the experiments: the classes present
    /// in the paper's videos plus a few common COCO confusables.
    pub fn standard() -> Vocabulary {
        Vocabulary::new(
            [
                "person",
                "car",
                "bus",
                "truck",
                "airplane",
                "dog",
                "cat",
                "bicycle",
                "motorbike",
                "building",
            ]
            .iter()
            .map(|s| LabelClass::new(s))
            .collect(),
        )
    }

    /// All classes.
    pub fn classes(&self) -> &[LabelClass] {
        &self.classes
    }

    /// A uniformly random class different from `not`.
    pub fn confusable(&self, rng: &mut DetRng, not: &LabelClass) -> LabelClass {
        loop {
            let pick = rng.choose(&self.classes);
            if pick != not {
                return pick.clone();
            }
        }
    }

    /// A uniformly random class (for false positives).
    pub fn any(&self, rng: &mut DetRng) -> LabelClass {
        rng.choose(&self.classes).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sampling_is_positive_and_near_mean() {
        let mut rng = DetRng::new(1);
        let lat = LatencyProfile::new(190.0, 12.0);
        let samples: Vec<f64> = (0..2000)
            .map(|_| lat.sample(&mut rng, 1.0).as_millis_f64())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 190.0).abs() < 3.0, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn latency_hardware_factor_scales() {
        let mut rng = DetRng::new(2);
        let lat = LatencyProfile::new(100.0, 0.0);
        let fast = lat.sample(&mut rng, 1.0);
        let slow = lat.sample(&mut rng, 2.2);
        assert_eq!(slow.as_micros(), fast.as_micros() * 22 / 10);
    }

    #[test]
    fn confidence_orders_correct_above_wrong_above_fp() {
        let mut rng = DetRng::new(3);
        let cm = ModelProfile::tiny_yolov3().confidence;
        let n = 5000;
        let q = 0.7;
        let correct: f64 = (0..n)
            .map(|_| cm.sample_real(&mut rng, q, true))
            .sum::<f64>()
            / n as f64;
        let wrong: f64 = (0..n)
            .map(|_| cm.sample_real(&mut rng, q, false))
            .sum::<f64>()
            / n as f64;
        let fp: f64 = (0..n).map(|_| cm.sample_fp(&mut rng)).sum::<f64>() / n as f64;
        assert!(correct > wrong + 0.1, "correct {correct} wrong {wrong}");
        assert!(wrong > fp, "wrong {wrong} fp {fp}");
    }

    #[test]
    fn detection_probability_monotone_in_quality() {
        let p = ModelProfile::tiny_yolov3();
        assert!(p.detection_probability(0.9) > p.detection_probability(0.4));
        assert!(p.detection_probability(1.0) <= 1.0);
        assert!(p.detection_probability(0.0) >= 0.0);
    }

    #[test]
    fn cloud_models_are_more_accurate_than_edge() {
        let edge = ModelProfile::tiny_yolov3();
        let cloud = ModelProfile::yolov3_416();
        for q in [0.2, 0.5, 0.8] {
            assert!(cloud.detection_probability(q) > edge.detection_probability(q));
            assert!(cloud.label_accuracy(q) > edge.label_accuracy(q));
        }
        assert!(cloud.fp_rate < edge.fp_rate);
        assert!(cloud.bbox_jitter < edge.bbox_jitter);
    }

    #[test]
    fn cloud_latency_ordering_matches_table2() {
        let l320 = ModelProfile::yolov3_320().latency.mean_ms;
        let l416 = ModelProfile::yolov3_416().latency.mean_ms;
        let l608 = ModelProfile::yolov3_608().latency.mean_ms;
        assert!(l320 < l416 && l416 < l608);
        // Table 2 reports 0.70 / 1.12 / 2.34 seconds.
        assert_eq!(l320, 700.0);
        assert_eq!(l416, 1120.0);
        assert_eq!(l608, 2340.0);
    }

    #[test]
    fn edge_is_much_faster_than_cloud_models() {
        let edge = ModelProfile::tiny_yolov3().latency.mean_ms;
        let cloud = ModelProfile::yolov3_416().latency.mean_ms;
        assert!(cloud / edge > 4.0);
    }

    #[test]
    fn perceived_quality_is_bounded_and_tracks_clarity() {
        let mut rng = DetRng::new(5);
        let p = ModelProfile::tiny_yolov3();
        let clear: f64 = (0..2000)
            .map(|_| p.perceived_quality(&mut rng, 0.9))
            .sum::<f64>()
            / 2000.0;
        let murky: f64 = (0..2000)
            .map(|_| p.perceived_quality(&mut rng, 0.3))
            .sum::<f64>()
            / 2000.0;
        assert!(clear > murky + 0.4);
        for _ in 0..1000 {
            let q = p.perceived_quality(&mut rng, 0.5);
            assert!((0.0..=1.0).contains(&q));
        }
    }

    #[test]
    fn vocabulary_confusable_never_returns_truth() {
        let mut rng = DetRng::new(6);
        let v = Vocabulary::standard();
        let truth = LabelClass::new("car");
        for _ in 0..500 {
            assert_ne!(v.confusable(&mut rng, &truth), truth);
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn vocabulary_needs_two_classes() {
        Vocabulary::new(vec![LabelClass::new("only")]);
    }

    #[test]
    fn model_kind_presets_resolve() {
        for kind in [
            ModelKind::TinyYoloV3,
            ModelKind::YoloV3_320,
            ModelKind::YoloV3_416,
            ModelKind::YoloV3_608,
        ] {
            let p = kind.profile();
            assert_eq!(p.name, kind.name());
        }
        assert_eq!(ModelKind::CLOUD_SIZES.len(), 3);
    }
}
