//! Correction feedback for the edge model.
//!
//! Footnote 1 of the paper: "In a real application, the corrected
//! information would also influence the small model — via retraining and
//! heuristics such as smoothing — so that the error would not be incurred
//! in the following frames."
//!
//! [`FeedbackModel`] wraps an edge model with exactly that heuristic. Each
//! cloud verdict is cached against its frame *region* for a time-to-live
//! window; within that window the region's truth is treated as known:
//!
//! * a region the cloud labelled `c` rewrites any differently-labelled edge
//!   detection overlapping it to `c` (and raises its confidence), and
//!   *recalls* `c` when the edge misses it entirely;
//! * a region the cloud said was empty suppresses low-confidence edge
//!   detections overlapping it.
//!
//! Objects move slowly relative to the frame rate, so region overlap is a
//! serviceable stand-in for object identity over a short TTL.

use parking_lot::Mutex;

use croesus_sim::SimDuration;
use croesus_video::{BoundingBox, Frame, LabelClass};

use crate::detection::Detection;
use crate::model::DetectionModel;

/// One remembered cloud verdict.
#[derive(Clone, Debug)]
struct Correction {
    /// Where the verdict applies.
    region: BoundingBox,
    /// What the cloud said is there; `None` means the region is empty.
    right: Option<LabelClass>,
    /// Last frame index this verdict applies to.
    expires_at: u64,
}

/// An edge model augmented with cloud-correction smoothing.
pub struct FeedbackModel<M> {
    inner: M,
    corrections: Mutex<Vec<Correction>>,
    /// How many frames a verdict stays active.
    ttl_frames: u64,
    /// Minimum region overlap for a verdict to apply.
    overlap_threshold: f64,
    /// Suppression only applies below this confidence — a strong fresh
    /// detection overrides a stale "nothing there" verdict.
    suppress_below: f64,
    /// Recalled (injected) detections are only emitted this many frames
    /// past the verdict; beyond that the object has likely moved.
    recall_window: u64,
}

impl<M: DetectionModel> FeedbackModel<M> {
    /// Wrap a model. A TTL of ~15 frames (half a second of video) balances
    /// reuse of verdicts against objects drifting away from their regions.
    pub fn new(inner: M, ttl_frames: u64) -> Self {
        FeedbackModel {
            inner,
            corrections: Mutex::new(Vec::new()),
            ttl_frames,
            overlap_threshold: 0.10,
            suppress_below: 0.35,
            recall_window: ttl_frames.min(4),
        }
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Record a cloud verdict observed at `frame_index`: at `region`, the
    /// cloud saw `right` (`None` = nothing was there).
    pub fn record_correction(
        &self,
        frame_index: u64,
        region: BoundingBox,
        right: Option<LabelClass>,
    ) {
        self.corrections.lock().push(Correction {
            region,
            right,
            expires_at: frame_index + self.ttl_frames,
        });
    }

    /// Number of live verdicts at `frame_index`.
    pub fn live_corrections(&self, frame_index: u64) -> usize {
        self.corrections
            .lock()
            .iter()
            .filter(|c| c.expires_at >= frame_index)
            .count()
    }

    /// Detect with smoothing applied.
    pub fn detect_smoothed(&self, frame: &Frame) -> Vec<Detection> {
        let raw = self.inner.detect(frame);
        let mut cache = self.corrections.lock();
        cache.retain(|c| c.expires_at >= frame.index);
        if cache.is_empty() {
            return raw;
        }

        let mut out: Vec<Detection> = Vec::with_capacity(raw.len());
        let mut region_seen = vec![false; cache.len()];
        for det in raw {
            // Mark every region this detection plausibly covers (lenient
            // overlap), so recall does not duplicate it.
            for (i, c) in cache.iter().enumerate() {
                if c.region.overlap_fraction(&det.bbox) > self.overlap_threshold {
                    region_seen[i] = true;
                }
            }
            // Verdicts only *apply* to boxes of comparable extent (IoU):
            // a small spurious box inside a large object's region is not
            // the same object and must not inherit its label.
            let hit = cache
                .iter()
                .map(|c| (c, c.region.iou(&det.bbox)))
                .filter(|(_, iou)| *iou > 0.25)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("IoU is never NaN"));
            match hit {
                Some((correction, _)) => match &correction.right {
                    Some(right) => {
                        if &det.class == right {
                            out.push(det);
                        } else {
                            // Known misclassification: rewrite, and trust
                            // it — the cloud vouched for this region.
                            out.push(Detection::new(
                                right.clone(),
                                det.confidence.max(0.9),
                                det.bbox,
                            ));
                        }
                    }
                    None => {
                        // Known-empty region: suppress weak detections.
                        if det.confidence >= self.suppress_below {
                            out.push(det);
                        }
                    }
                },
                None => out.push(det),
            }
        }
        // Recall: regions the cloud recently confirmed but the edge missed
        // entirely. Recalls are only trusted for a short window (objects
        // drift out of their cached boxes) — see `recall_window`.
        for (i, correction) in cache.iter().enumerate() {
            if region_seen[i] {
                continue;
            }
            if let Some(right) = &correction.right {
                if correction.expires_at - frame.index >= self.ttl_frames - self.recall_window {
                    out.push(Detection::new(right.clone(), 0.85, correction.region));
                }
            }
        }
        out
    }
}

impl<M: DetectionModel> DetectionModel for FeedbackModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn detect(&self, frame: &Frame) -> Vec<Detection> {
        self.detect_smoothed(frame)
    }

    fn inference_latency(&self, frame: &Frame) -> SimDuration {
        // The smoothing lookup is negligible next to inference.
        self.inner.inference_latency(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::score_against;
    use crate::model::SimulatedModel;
    use crate::profile::ModelProfile;
    use croesus_sim::stats::PrecisionRecall;
    use croesus_video::VideoPreset;

    /// A model that always reports one fixed detection.
    struct FixedModel(Vec<Detection>);
    impl DetectionModel for FixedModel {
        fn name(&self) -> &str {
            "fixed"
        }
        fn detect(&self, _frame: &Frame) -> Vec<Detection> {
            self.0.clone()
        }
        fn inference_latency(&self, _frame: &Frame) -> SimDuration {
            SimDuration::from_millis(1)
        }
    }

    fn frame(index: u64) -> Frame {
        Frame {
            index,
            timestamp_secs: index as f64 / 30.0,
            objects: vec![],
            bytes: 1000,
        }
    }

    fn det(class: &str, conf: f64) -> Detection {
        Detection::new(class.into(), conf, BoundingBox::new(0.4, 0.4, 0.2, 0.2))
    }

    #[test]
    fn misclassification_is_rewritten_within_ttl() {
        let m = FeedbackModel::new(FixedModel(vec![det("bus", 0.6)]), 10);
        m.record_correction(0, BoundingBox::new(0.4, 0.4, 0.2, 0.2), Some("car".into()));
        let out = m.detect_smoothed(&frame(5));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class, LabelClass::new("car"));
        assert!(out[0].confidence >= 0.9, "corrected labels gain confidence");
    }

    #[test]
    fn matching_class_is_left_alone() {
        let m = FeedbackModel::new(FixedModel(vec![det("car", 0.6)]), 10);
        m.record_correction(0, BoundingBox::new(0.4, 0.4, 0.2, 0.2), Some("car".into()));
        let out = m.detect_smoothed(&frame(1));
        assert_eq!(out.len(), 1);
        assert_eq!(
            out[0].confidence, 0.6,
            "confirmed detections keep their confidence"
        );
    }

    #[test]
    fn weak_false_positive_is_suppressed_strong_is_kept() {
        let m = FeedbackModel::new(FixedModel(vec![det("car", 0.3)]), 10);
        m.record_correction(0, BoundingBox::new(0.4, 0.4, 0.2, 0.2), None);
        assert!(m.detect_smoothed(&frame(3)).is_empty());
        let strong = FeedbackModel::new(FixedModel(vec![det("car", 0.8)]), 10);
        strong.record_correction(0, BoundingBox::new(0.4, 0.4, 0.2, 0.2), None);
        assert_eq!(strong.detect_smoothed(&frame(3)).len(), 1);
    }

    #[test]
    fn missed_object_is_recalled() {
        let m = FeedbackModel::new(FixedModel(vec![]), 10);
        m.record_correction(
            0,
            BoundingBox::new(0.4, 0.4, 0.2, 0.2),
            Some("person".into()),
        );
        let out = m.detect_smoothed(&frame(2));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].class, LabelClass::new("person"));
    }

    #[test]
    fn corrections_expire_after_ttl() {
        let m = FeedbackModel::new(FixedModel(vec![det("bus", 0.6)]), 5);
        m.record_correction(0, BoundingBox::new(0.4, 0.4, 0.2, 0.2), Some("car".into()));
        assert_eq!(m.live_corrections(3), 1);
        let late = m.detect_smoothed(&frame(20));
        assert_eq!(late[0].class, LabelClass::new("bus"), "correction expired");
        assert_eq!(m.live_corrections(20), 0, "expired entries are pruned");
    }

    #[test]
    fn non_overlapping_corrections_do_not_apply() {
        let m = FeedbackModel::new(FixedModel(vec![det("bus", 0.6)]), 10);
        m.record_correction(
            0,
            BoundingBox::new(0.0, 0.0, 0.05, 0.05),
            Some("car".into()),
        );
        let out = m.detect_smoothed(&frame(1));
        // The bus stands AND the car region is recalled.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|d| d.class == LabelClass::new("bus")));
        assert!(out.iter().any(|d| d.class == LabelClass::new("car")));
    }

    #[test]
    fn feedback_improves_accuracy_on_a_real_video() {
        // Replay the Croesus loop by hand on a hard video: for each frame,
        // feed the frame's cloud verdicts back into the edge model and
        // score the *next* frames' smoothed detections.
        let video = VideoPreset::MallSurveillance.generate(150, 7);
        let query: LabelClass = video.query_class().clone();
        let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), 5);
        let raw_edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let smoothed = FeedbackModel::new(SimulatedModel::new(ModelProfile::tiny_yolov3(), 5), 15);

        let mut raw_pr = PrecisionRecall::default();
        let mut smooth_pr = PrecisionRecall::default();
        for f in video.frames() {
            let reference: Vec<Detection> = cloud.detect(f);
            let raw: Vec<Detection> = raw_edge.detect(f);
            let smooth: Vec<Detection> = smoothed.detect_smoothed(f);
            raw_pr.add(score_against(&raw, &reference, &query, 0.10));
            smooth_pr.add(score_against(&smooth, &reference, &query, 0.10));

            // Feed back this frame's verdicts (as Croesus' final stage
            // would): every edge label matched against all cloud labels,
            // plus recalls for cloud labels the edge missed.
            let m = crate::eval::match_detections(&smooth, &reference, 0.10);
            for (d, outcome) in smooth.iter().zip(&m.outcomes) {
                match outcome {
                    crate::eval::MatchOutcome::Corrected { reference: ri } => {
                        smoothed.record_correction(
                            f.index,
                            reference[*ri].bbox,
                            Some(reference[*ri].class.clone()),
                        );
                    }
                    crate::eval::MatchOutcome::Erroneous => {
                        smoothed.record_correction(f.index, d.bbox, None);
                    }
                    crate::eval::MatchOutcome::Correct { .. } => {}
                }
            }
            for &ri in &m.unmatched_references {
                // Only confident cloud detections are worth recalling —
                // the cloud has (rare) low-confidence false positives too.
                if reference[ri].confidence >= 0.6 {
                    smoothed.record_correction(
                        f.index,
                        reference[ri].bbox,
                        Some(reference[ri].class.clone()),
                    );
                }
            }
        }
        assert!(
            smooth_pr.f_score() > raw_pr.f_score() + 0.05,
            "feedback must help substantially: raw {} smoothed {}",
            raw_pr.f_score(),
            smooth_pr.f_score()
        );
    }
}
