//! Detection models: the oracle and the statistical simulator.

use croesus_sim::{DetRng, SimDuration};
use croesus_video::Frame;

use crate::detection::Detection;
use crate::profile::{ModelProfile, Vocabulary};

/// A black-box detection model, as Croesus sees one (§2.2: "Our work
/// applies to a wide-range of CNN models as we use them as a black box").
pub trait DetectionModel {
    /// Model name for reports.
    fn name(&self) -> &str;

    /// Detect objects in a frame. Deterministic per `(model, frame)`.
    fn detect(&self, frame: &Frame) -> Vec<Detection>;

    /// Sample one inference latency for this frame.
    fn inference_latency(&self, frame: &Frame) -> SimDuration;
}

/// A perfect detector: reports every ground-truth object with confidence 1
/// and exact boxes. Useful as a reference in tests.
#[derive(Clone, Debug)]
pub struct OracleModel;

impl DetectionModel for OracleModel {
    fn name(&self) -> &str {
        "oracle"
    }

    fn detect(&self, frame: &Frame) -> Vec<Detection> {
        frame
            .objects
            .iter()
            .map(|o| Detection::new(o.class.clone(), 1.0, o.bbox))
            .collect()
    }

    fn inference_latency(&self, _frame: &Frame) -> SimDuration {
        SimDuration::ZERO
    }
}

/// A statistically simulated detector.
///
/// For every ground-truth object the model:
/// 1. perceives a quality `q` (object clarity + model noise),
/// 2. detects it with probability `recall_floor + recall_slope·q`,
/// 3. if detected, reports the correct class with probability
///    `label_acc_floor + label_acc_slope·q`, otherwise a confusable class,
/// 4. draws a confidence coupled to correctness (see
///    [`crate::profile::ConfidenceModel`]), and
/// 5. jitters the bounding box.
///
/// It then adds false positives at the profile's `fp_rate`.
///
/// All draws come from `DetRng::new(seed).fork(frame.index)`, then a
/// per-object fork, so results are stable regardless of how many frames or
/// in what order the model is invoked — a property the threshold optimizer
/// relies on (it evaluates the same video under many threshold pairs).
#[derive(Clone, Debug)]
pub struct SimulatedModel {
    profile: ModelProfile,
    vocabulary: Vocabulary,
    seed: u64,
    /// Hardware scaling for inference latency (1.0 = the paper's default
    /// machine class for this model).
    hardware_factor: f64,
}

impl SimulatedModel {
    /// Create a model from a profile with the standard vocabulary.
    pub fn new(profile: ModelProfile, seed: u64) -> Self {
        SimulatedModel {
            profile,
            vocabulary: Vocabulary::standard(),
            seed,
            hardware_factor: 1.0,
        }
    }

    /// Replace the vocabulary.
    pub fn with_vocabulary(mut self, vocabulary: Vocabulary) -> Self {
        self.vocabulary = vocabulary;
        self
    }

    /// Scale inference latency by a hardware factor (e.g. 2.2 for a
    /// t3a.small-class edge machine instead of t3a.xlarge).
    pub fn with_hardware_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "hardware factor must be positive");
        self.hardware_factor = factor;
        self
    }

    /// The model profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn frame_rng(&self, frame: &Frame) -> DetRng {
        DetRng::new(self.seed).fork(frame.index)
    }
}

impl DetectionModel for SimulatedModel {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn detect(&self, frame: &Frame) -> Vec<Detection> {
        let rng = self.frame_rng(frame);
        let p = &self.profile;
        let mut out = Vec::with_capacity(frame.objects.len());

        for obj in &frame.objects {
            let mut orng = rng.fork(obj.id.0);
            let q = p.perceived_quality(&mut orng, obj.clarity);
            if !orng.bernoulli(p.detection_probability(q)) {
                continue;
            }
            let correct = orng.bernoulli(p.label_accuracy(q));
            let class = if correct {
                obj.class.clone()
            } else {
                self.vocabulary.confusable(&mut orng, &obj.class)
            };
            let confidence = p.confidence.sample_real(&mut orng, q, correct);
            let jitter = p.bbox_jitter;
            let bbox = obj.bbox.jittered(
                jitter * obj.bbox.w * orng.standard_normal(),
                jitter * obj.bbox.h * orng.standard_normal(),
                jitter * obj.bbox.w * orng.standard_normal(),
                jitter * obj.bbox.h * orng.standard_normal(),
            );
            out.push(Detection::new(class, confidence, bbox));
        }

        // False positives: spurious small boxes at random positions.
        let mut fp_rng = rng.fork_named("fp");
        let mut budget = p.fp_rate;
        while budget > 0.0 {
            let pr = budget.min(1.0);
            if fp_rng.bernoulli(pr) {
                let class = self.vocabulary.any(&mut fp_rng);
                let w = fp_rng.uniform_range(0.02, 0.10);
                let h = fp_rng.uniform_range(0.02, 0.10);
                let cx = fp_rng.uniform_range(0.05, 0.95);
                let cy = fp_rng.uniform_range(0.05, 0.95);
                let confidence = p.confidence.sample_fp(&mut fp_rng);
                out.push(Detection::new(
                    class,
                    confidence,
                    croesus_video::BoundingBox::centered(cx, cy, w, h),
                ));
            }
            budget -= 1.0;
        }
        out
    }

    fn inference_latency(&self, frame: &Frame) -> SimDuration {
        let mut rng = self.frame_rng(frame).fork_named("latency");
        self.profile.latency.sample(&mut rng, self.hardware_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::{SceneConfig, Video, VideoPreset};

    fn video() -> Video {
        Video::generate(SceneConfig::default(), 99)
    }

    #[test]
    fn oracle_reports_exact_truth() {
        let v = video();
        let m = OracleModel;
        for f in v.frames() {
            let dets = m.detect(f);
            assert_eq!(dets.len(), f.objects.len());
            for (d, o) in dets.iter().zip(&f.objects) {
                assert_eq!(d.class, o.class);
                assert_eq!(d.bbox, o.bbox);
                assert_eq!(d.confidence, 1.0);
            }
        }
    }

    #[test]
    fn detection_is_deterministic_per_frame() {
        let v = video();
        let m = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let f = v.frame(10);
        assert_eq!(m.detect(f), m.detect(f));
        // Detecting other frames in between must not perturb the result.
        let _ = m.detect(v.frame(3));
        assert_eq!(m.detect(f), m.detect(f));
    }

    #[test]
    fn different_model_seeds_differ() {
        let v = video();
        let a = SimulatedModel::new(ModelProfile::tiny_yolov3(), 1);
        let b = SimulatedModel::new(ModelProfile::tiny_yolov3(), 2);
        let fa: usize = v.frames().iter().map(|f| a.detect(f).len()).sum();
        let fb: usize = v.frames().iter().map(|f| b.detect(f).len()).sum();
        // Same distribution but not the identical realization.
        let identical = v.frames().iter().all(|f| a.detect(f) == b.detect(f));
        assert!(!identical, "fa {fa} fb {fb}");
    }

    #[test]
    fn cloud_model_detects_more_than_edge_on_hard_video() {
        let v = VideoPreset::MallSurveillance.generate(200, 7);
        let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let cloud = SimulatedModel::new(ModelProfile::yolov3_416(), 5);
        let truth: usize = v.frames().iter().map(|f| f.objects.len()).sum();
        let edge_hits: usize = v.frames().iter().map(|f| edge.detect(f).len()).sum();
        let cloud_hits: usize = v.frames().iter().map(|f| cloud.detect(f).len()).sum();
        assert!(
            cloud_hits > edge_hits,
            "cloud {cloud_hits} edge {edge_hits} truth {truth}"
        );
    }

    #[test]
    fn easy_video_yields_high_edge_confidence() {
        let v = VideoPreset::AirportRunway.generate(150, 7);
        let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let confs: Vec<f64> = v
            .frames()
            .iter()
            .flat_map(|f| edge.detect(f))
            .filter(|d| d.is_class(&"airplane".into()))
            .map(|d| d.confidence)
            .collect();
        assert!(!confs.is_empty());
        let mean = confs.iter().sum::<f64>() / confs.len() as f64;
        assert!(mean > 0.7, "airport edge confidence {mean}");
    }

    #[test]
    fn hard_video_yields_lower_edge_confidence() {
        let easy = VideoPreset::AirportRunway.generate(150, 7);
        let hard = VideoPreset::MallSurveillance.generate(150, 7);
        let edge = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let mean_conf = |v: &Video| {
            let confs: Vec<f64> = v
                .frames()
                .iter()
                .flat_map(|f| edge.detect(f))
                .map(|d| d.confidence)
                .collect();
            confs.iter().sum::<f64>() / confs.len().max(1) as f64
        };
        assert!(mean_conf(&easy) > mean_conf(&hard) + 0.15);
    }

    #[test]
    fn latency_respects_hardware_factor() {
        let v = video();
        let f = v.frame(0);
        let base = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let slow = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5).with_hardware_factor(2.2);
        let lb = base.inference_latency(f).as_millis_f64();
        let ls = slow.inference_latency(f).as_millis_f64();
        assert!((ls / lb - 2.2).abs() < 0.01, "ratio {}", ls / lb);
    }

    #[test]
    fn latency_is_deterministic_per_frame() {
        let v = video();
        let m = SimulatedModel::new(ModelProfile::yolov3_416(), 5);
        assert_eq!(
            m.inference_latency(v.frame(4)),
            m.inference_latency(v.frame(4))
        );
    }

    #[test]
    fn false_positive_rate_is_respected() {
        let v = Video::generate(
            SceneConfig {
                initial_objects: 0,
                spawn_rate: 0.0,
                num_frames: 2000,
                ..SceneConfig::default()
            },
            3,
        );
        let m = SimulatedModel::new(ModelProfile::tiny_yolov3(), 5);
        let fps: usize = v.frames().iter().map(|f| m.detect(f).len()).sum();
        let rate = fps as f64 / 2000.0;
        assert!((rate - 0.30).abs() < 0.05, "fp rate {rate}");
    }

    #[test]
    fn boxes_track_truth_roughly() {
        let v = video();
        let m = SimulatedModel::new(ModelProfile::yolov3_416(), 5);
        for f in v.frames().iter().take(30) {
            for d in m.detect(f) {
                // Every real detection overlaps some truth object decently.
                let best = f
                    .objects
                    .iter()
                    .map(|o| o.bbox.overlap_fraction(&d.bbox))
                    .fold(0.0, f64::max);
                // False positives are possible but rare for the cloud model.
                if best < 0.5 {
                    assert!(d.confidence < 0.6, "unanchored box with high confidence");
                }
            }
        }
    }
}
