//! Matching detections against a reference set and scoring accuracy.
//!
//! Two uses, mirroring the paper:
//!
//! 1. **Protocol matching** (§3.3.2): when cloud labels arrive at the edge,
//!    each edge label is matched to the overlapping cloud label (the bigger
//!    overlap wins when there are several candidates), producing three
//!    cases — erroneous (no match), correct (match, same name), corrected
//!    (match, different name) — plus cloud labels with no edge counterpart.
//! 2. **Accuracy scoring** (§5.1): "We consider the YOLOv3 output to be the
//!    ground truth... When the overlap between the truth boundaries and the
//!    predicted boundaries is more than 10%, we consider the prediction
//!    correct." F-score is computed from the resulting TP/FP/FN counts.

use croesus_sim::stats::PrecisionRecall;
use croesus_video::LabelClass;

use crate::detection::Detection;

/// Default overlap threshold from the paper: 10%.
pub const DEFAULT_OVERLAP_THRESHOLD: f64 = 0.10;

/// The outcome of matching one detection against the reference set.
#[derive(Clone, Debug, PartialEq)]
pub enum MatchOutcome {
    /// Overlapping reference exists and the class name agrees.
    Correct {
        /// Index of the matched reference detection.
        reference: usize,
    },
    /// Overlapping reference exists but the class name differs — the
    /// final section is called with the overlapping (correct) label.
    Corrected {
        /// Index of the matched reference detection.
        reference: usize,
    },
    /// No overlapping reference — the detection was erroneous; the final
    /// section is called with an empty label.
    Erroneous,
}

/// Result of matching a set of detections to a reference set.
#[derive(Clone, Debug, Default)]
pub struct Matching {
    /// Per-detection outcome, parallel to the input detections.
    pub outcomes: Vec<MatchOutcome>,
    /// Indices of reference detections that no input detection matched —
    /// these trigger fresh initial+final sections (§3.3.2).
    pub unmatched_references: Vec<usize>,
}

impl Matching {
    /// Count of correct matches.
    pub fn correct(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MatchOutcome::Correct { .. }))
            .count()
    }

    /// Count of corrected (overlap, wrong name) matches.
    pub fn corrected(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MatchOutcome::Corrected { .. }))
            .count()
    }

    /// Count of erroneous (no overlap) detections.
    pub fn erroneous(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MatchOutcome::Erroneous))
            .count()
    }
}

/// Match `detections` against `references` by bounding-box overlap.
///
/// A detection matches the reference with the greatest overlap fraction
/// above `overlap_threshold`; each reference is matched at most once
/// (greedy, in order of decreasing overlap, which resolves the paper's
/// "the one with the bigger overlap is chosen").
pub fn match_detections(
    detections: &[Detection],
    references: &[Detection],
    overlap_threshold: f64,
) -> Matching {
    // Candidate (overlap, det, ref) triples above threshold.
    let mut candidates: Vec<(f64, usize, usize)> = Vec::new();
    for (di, d) in detections.iter().enumerate() {
        for (ri, r) in references.iter().enumerate() {
            let ov = d.bbox.overlap_fraction(&r.bbox);
            if ov > overlap_threshold {
                candidates.push((ov, di, ri));
            }
        }
    }
    // Greatest overlap first; ties broken by (det, ref) index for determinism.
    candidates.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("overlap is never NaN")
            .then_with(|| (a.1, a.2).cmp(&(b.1, b.2)))
    });

    let mut det_matched: Vec<Option<usize>> = vec![None; detections.len()];
    let mut ref_taken = vec![false; references.len()];
    for (_, di, ri) in candidates {
        if det_matched[di].is_none() && !ref_taken[ri] {
            det_matched[di] = Some(ri);
            ref_taken[ri] = true;
        }
    }

    let outcomes = detections
        .iter()
        .enumerate()
        .map(|(di, d)| match det_matched[di] {
            Some(ri) if references[ri].class == d.class => MatchOutcome::Correct { reference: ri },
            Some(ri) => MatchOutcome::Corrected { reference: ri },
            None => MatchOutcome::Erroneous,
        })
        .collect();

    let unmatched_references = ref_taken
        .iter()
        .enumerate()
        .filter(|(_, taken)| !**taken)
        .map(|(ri, _)| ri)
        .collect();

    Matching {
        outcomes,
        unmatched_references,
    }
}

/// Score `detections` against `references` for one query class, producing
/// TP/FP/FN counts à la §5.1. Only detections and references of the query
/// class participate.
pub fn score_against(
    detections: &[Detection],
    references: &[Detection],
    query: &LabelClass,
    overlap_threshold: f64,
) -> PrecisionRecall {
    let dets: Vec<Detection> = detections
        .iter()
        .filter(|d| d.is_class(query))
        .cloned()
        .collect();
    let refs: Vec<Detection> = references
        .iter()
        .filter(|r| r.is_class(query))
        .cloned()
        .collect();
    let m = match_detections(&dets, &refs, overlap_threshold);
    let tp = m.correct() as u64;
    let fp = dets.len() as u64 - tp;
    let fn_ = m.unmatched_references.len() as u64 + m.corrected() as u64;
    PrecisionRecall { tp, fp, fn_ }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::BoundingBox;

    fn det(class: &str, conf: f64, x: f64, y: f64, w: f64, h: f64) -> Detection {
        Detection::new(class.into(), conf, BoundingBox::new(x, y, w, h))
    }

    #[test]
    fn exact_match_is_correct() {
        let d = vec![det("car", 0.9, 0.1, 0.1, 0.2, 0.2)];
        let r = vec![det("car", 0.95, 0.1, 0.1, 0.2, 0.2)];
        let m = match_detections(&d, &r, 0.10);
        assert_eq!(m.outcomes, vec![MatchOutcome::Correct { reference: 0 }]);
        assert!(m.unmatched_references.is_empty());
    }

    #[test]
    fn wrong_name_is_corrected() {
        let d = vec![det("bus", 0.9, 0.1, 0.1, 0.2, 0.2)];
        let r = vec![det("car", 0.95, 0.12, 0.12, 0.2, 0.2)];
        let m = match_detections(&d, &r, 0.10);
        assert_eq!(m.outcomes, vec![MatchOutcome::Corrected { reference: 0 }]);
    }

    #[test]
    fn no_overlap_is_erroneous() {
        let d = vec![det("car", 0.9, 0.0, 0.0, 0.1, 0.1)];
        let r = vec![det("car", 0.95, 0.7, 0.7, 0.2, 0.2)];
        let m = match_detections(&d, &r, 0.10);
        assert_eq!(m.outcomes, vec![MatchOutcome::Erroneous]);
        assert_eq!(m.unmatched_references, vec![0]);
    }

    #[test]
    fn bigger_overlap_wins_with_multiple_candidates() {
        let d = vec![det("car", 0.9, 0.1, 0.1, 0.3, 0.3)];
        let near = det("car", 0.95, 0.1, 0.1, 0.3, 0.3); // full overlap
        let far = det("car", 0.95, 0.3, 0.3, 0.3, 0.3); // partial overlap
        let r = vec![far, near];
        let m = match_detections(&d, &r, 0.10);
        assert_eq!(m.outcomes, vec![MatchOutcome::Correct { reference: 1 }]);
        assert_eq!(m.unmatched_references, vec![0]);
    }

    #[test]
    fn each_reference_matched_at_most_once() {
        // Two detections over one reference: only one may claim it.
        let d = vec![
            det("car", 0.9, 0.1, 0.1, 0.2, 0.2),
            det("car", 0.8, 0.12, 0.12, 0.2, 0.2),
        ];
        let r = vec![det("car", 0.95, 0.1, 0.1, 0.2, 0.2)];
        let m = match_detections(&d, &r, 0.10);
        let correct = m.correct();
        let erroneous = m.erroneous();
        assert_eq!(correct, 1);
        assert_eq!(erroneous, 1);
    }

    #[test]
    fn unmatched_cloud_labels_are_reported() {
        let d = vec![];
        let r = vec![
            det("car", 0.95, 0.1, 0.1, 0.2, 0.2),
            det("person", 0.9, 0.6, 0.6, 0.1, 0.2),
        ];
        let m = match_detections(&d, &r, 0.10);
        assert_eq!(m.unmatched_references, vec![0, 1]);
    }

    #[test]
    fn matching_is_deterministic_under_ties() {
        let d = vec![
            det("car", 0.9, 0.1, 0.1, 0.2, 0.2),
            det("car", 0.9, 0.1, 0.1, 0.2, 0.2),
        ];
        let r = vec![
            det("car", 0.9, 0.1, 0.1, 0.2, 0.2),
            det("car", 0.9, 0.1, 0.1, 0.2, 0.2),
        ];
        let m1 = match_detections(&d, &r, 0.10);
        let m2 = match_detections(&d, &r, 0.10);
        assert_eq!(m1.outcomes, m2.outcomes);
        assert_eq!(m1.correct(), 2);
    }

    #[test]
    fn score_perfect_agreement() {
        let d = vec![det("car", 0.9, 0.1, 0.1, 0.2, 0.2)];
        let pr = score_against(&d, &d, &"car".into(), 0.10);
        assert_eq!(pr.tp, 1);
        assert_eq!(pr.fp, 0);
        assert_eq!(pr.fn_, 0);
        assert_eq!(pr.f_score(), 1.0);
    }

    #[test]
    fn score_counts_fp_and_fn() {
        let d = vec![
            det("car", 0.9, 0.0, 0.0, 0.1, 0.1), // no ref overlap -> FP
            det("car", 0.9, 0.5, 0.5, 0.2, 0.2), // TP
        ];
        let r = vec![
            det("car", 0.95, 0.5, 0.5, 0.2, 0.2),   // matched
            det("car", 0.95, 0.8, 0.1, 0.15, 0.15), // missed -> FN
        ];
        let pr = score_against(&d, &r, &"car".into(), 0.10);
        assert_eq!((pr.tp, pr.fp, pr.fn_), (1, 1, 1));
    }

    #[test]
    fn score_ignores_other_classes() {
        let d = vec![
            det("person", 0.9, 0.1, 0.1, 0.2, 0.2),
            det("car", 0.9, 0.5, 0.5, 0.2, 0.2),
        ];
        let r = vec![det("car", 0.95, 0.5, 0.5, 0.2, 0.2)];
        let pr = score_against(&d, &r, &"car".into(), 0.10);
        assert_eq!((pr.tp, pr.fp, pr.fn_), (1, 0, 0));
    }

    #[test]
    fn corrected_label_counts_as_fn_for_query() {
        // The edge said "bus" where the reference says "car": for the query
        // "car" this is a missed car (FN); the "bus" detection is not a
        // query-class detection so it is not an FP for "car".
        let d = vec![det("bus", 0.9, 0.5, 0.5, 0.2, 0.2)];
        let r = vec![det("car", 0.95, 0.5, 0.5, 0.2, 0.2)];
        let pr = score_against(&d, &r, &"car".into(), 0.10);
        assert_eq!((pr.tp, pr.fp, pr.fn_), (0, 0, 1));
    }

    #[test]
    fn empty_inputs_score_zero() {
        let pr = score_against(&[], &[], &"car".into(), 0.10);
        assert_eq!(pr, PrecisionRecall::default());
    }
}
