//! Per-edge durability for Croesus: an append-only, CRC-framed
//! redo/undo log with group commit, checkpoints and **apology-aware**
//! crash recovery.
//!
//! The multi-stage model makes recovery unusual. Croesus exposes initial
//! results to clients before the cloud validates them (§3.3.2), so a
//! crashed edge owes more than redo: a transaction whose **initial**
//! commit survived but whose **final** commit did not can never be
//! finished — its final-section input (the cloud labels) died with the
//! process — and the only §4.4-consistent exit is to *retract its effects
//! and apologize*, exactly as a live final section would on a wrong guess.
//!
//! The pieces:
//!
//! * [`frame`] — CRC-32 framing; a torn tail cleanly delimits the valid
//!   prefix.
//! * [`record`] — one frame per record: a whole executed [`StageRecord`]
//!   (write images + commit metadata), a [`RetractRecord`], a 2PC
//!   coordinator decision, or a [`CheckpointRecord`].
//! * [`writer`] — the [`Wal`] appender: group commit
//!   ([`WalConfig::group_commit`] commit points per durable sync),
//!   scheduled checkpoints that atomically truncate the log.
//! * [`mod@recover`] — replay: [`recover()`](recover::recover) rebuilds a
//!   [`KvStore`](croesus_store::KvStore) from the valid prefix and
//!   reports the [`unfinalized`](RecoveryReport::unfinalized)
//!   transactions the edge owes apologies for.
//! * [`mode`] — [`DurabilityMode`], the deployment-level switch
//!   (`Croesus::builder().durability(..)`; off by default).
//!
//! Commit points are **per protocol**: MS-IA and the staged discipline
//! log one at every stage (their stages are client-visible commits);
//! MS-SR logs only final commit (its locks hide earlier stages, so a
//! crash legitimately un-happens an unfinished transaction). The glue
//! that feeds unfinalized transactions through
//! `ApologyManager::retract` lives in `croesus_txn::recovery`, keeping
//! this crate dependent on `croesus-store` alone.
//!
//! ```
//! use croesus_store::{KvStore, TxnId, Value};
//! use croesus_wal::{recover, StageFlags, StageRecord, Wal, WalConfig, WriteImage};
//! use std::sync::Arc;
//!
//! let (wal, probe) = Wal::in_memory(WalConfig::group(4));
//! wal.append_stage(StageRecord {
//!     txn: TxnId(1),
//!     stage: 0,
//!     total: 2,
//!     flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::REGISTER),
//!     reads: vec![],
//!     writes: vec!["balance".into()],
//!     images: vec![WriteImage {
//!         key: "balance".into(),
//!         pre: None,
//!         post: Some(Arc::new(Value::Int(50))),
//!     }],
//! }).unwrap();
//! wal.flush().unwrap();
//!
//! // Crash: only the durable bytes survive.
//! let report = recover(&probe.durable());
//! assert_eq!(report.store.get(&"balance".into()).as_deref(), Some(&Value::Int(50)));
//! assert_eq!(report.unfinalized, vec![TxnId(1)]); // owes an apology
//! ```

pub mod coalesce;
pub mod frame;
pub mod mode;
pub mod record;
pub mod recover;
#[cfg(feature = "mcheck")]
pub(crate) use croesus_store::sched;
#[cfg(not(feature = "mcheck"))]
pub(crate) mod sched {
    //! No-op stand-ins for the model-checker hooks (`mcheck` feature off).
    #[inline(always)]
    pub fn active() -> bool {
        false
    }
    #[inline(always)]
    pub fn yield_point(_label: &'static str) {}
    #[inline(always)]
    pub fn block_point(_label: &'static str) {}
    #[inline(always)]
    pub fn progress(_label: &'static str) {}
}
pub mod ship;
pub mod storage;
pub mod writer;

pub use coalesce::{CoalesceStats, SyncCoalescer};
pub use frame::{crc32, FrameReader, TailState};
pub use mode::DurabilityMode;
pub use record::{CheckpointRecord, RetractRecord, StageFlags, StageRecord, WalRecord, WriteImage};
pub use recover::{recover, recover_file, RecoveredEntry, RecoveryReport, RecoveryState};
pub use ship::{LogShipper, ShipBatch, ShipCursor, ShipFetch};
pub use storage::{scratch_dir, FileStorage, MemStorage, Storage};
pub use writer::{PipelineConfig, Wal, WalConfig, WalStats};
