//! Cross-edge sync coalescing: one fsync window per storage device.
//!
//! Several edges on one host usually share a single storage device. With
//! each edge's flusher issuing its own fsync-equivalent, a fleet of N
//! edges pays N *concurrent, contending* device rounds; the device
//! serializes them anyway, with queueing in the worst order. The
//! [`SyncCoalescer`] turns that into classic group commit at the device
//! level: sync requests that arrive while a window is in flight park in
//! the next window, and a single *leader* runs every member's sync
//! back-to-back. Requests never lose durability — a request's bytes are
//! durable when its window completes, exactly as if it had called
//! [`Storage::sync`] itself — they only share the wait.
//!
//! The flusher owns its storage while syncing (checked out of the
//! pipeline state), so it can hand the whole `Box<dyn Storage>` into the
//! window and get it back with the outcome. Followers block on the
//! window; under the model checker that block routes through
//! `croesus_store::sched` (`wal.buffer.coalesce`) like every other
//! pipeline wait.

use std::io;
use std::sync::{Arc, Condvar, Mutex};

use crate::storage::Storage;

/// Window counters, exposed for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Sync requests made by flushers.
    pub requests: u64,
    /// Device windows actually run (coalescing ⇒ `windows ≤ requests`).
    pub windows: u64,
}

/// One member's parking spot: the leader takes the storage, syncs it,
/// and puts it back with the outcome.
struct Slot {
    storage: Option<Box<dyn Storage>>,
    /// `io::Error` is not `Clone`; ferry kind+message across the window.
    outcome: Option<Result<(), (io::ErrorKind, String)>>,
}

#[derive(Default)]
struct Inner {
    /// Requests waiting for the next window.
    queue: Vec<Arc<Mutex<Slot>>>,
    /// A leader is draining windows; new requests park as followers.
    leader_active: bool,
    stats: CoalesceStats,
}

/// What a [`SyncCoalescer::sync`] call learned: the sync outcome, plus —
/// for the request that ended up leading — the size of each window it
/// ran, so the flusher can emit one `WalCoalescedSync` event per window.
pub struct SyncOutcome {
    /// The request's own sync result.
    pub result: io::Result<()>,
    /// Sizes (request counts) of the windows this caller led; empty for
    /// followers.
    pub windows_led: Vec<usize>,
}

/// A per-device sync window shared by every WAL flusher on the device.
#[derive(Default)]
pub struct SyncCoalescer {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl std::fmt::Debug for SyncCoalescer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SyncCoalescer")
            .field("stats", &self.stats())
            .finish()
    }
}

impl SyncCoalescer {
    /// A fresh coalescer; share one `Arc` per storage device.
    #[must_use]
    pub fn new() -> Self {
        SyncCoalescer::default()
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CoalesceStats {
        self.inner.lock().expect("coalescer lock").stats
    }

    /// Sync `storage` as part of a shared device window. Blocks until the
    /// request's window completes; returns the storage and the outcome.
    pub fn sync(&self, storage: Box<dyn Storage>) -> (Box<dyn Storage>, SyncOutcome) {
        let slot = Arc::new(Mutex::new(Slot {
            storage: Some(storage),
            outcome: None,
        }));
        let lead = {
            let mut inner = self.inner.lock().expect("coalescer lock");
            inner.queue.push(Arc::clone(&slot));
            inner.stats.requests += 1;
            if inner.leader_active {
                false
            } else {
                inner.leader_active = true;
                true
            }
        };
        let windows_led = if lead { self.run_windows() } else { Vec::new() };
        if !lead {
            self.wait_done(&slot);
        }
        let mut s = slot.lock().expect("slot lock");
        let storage = s.storage.take().expect("window returned the storage");
        let result = match s.outcome.take().expect("window recorded an outcome") {
            Ok(()) => Ok(()),
            Err((kind, msg)) => Err(io::Error::new(kind, msg)),
        };
        (
            storage,
            SyncOutcome {
                result,
                windows_led,
            },
        )
    }

    /// Leader: drain windows until no request is waiting. Each drain pass
    /// is one device window — its members' fsync-equivalents run
    /// back-to-back on this thread; requests arriving mid-pass form the
    /// next window.
    fn run_windows(&self) -> Vec<usize> {
        let mut led = Vec::new();
        loop {
            let members = {
                let mut inner = self.inner.lock().expect("coalescer lock");
                if inner.queue.is_empty() {
                    inner.leader_active = false;
                    break;
                }
                inner.stats.windows += 1;
                std::mem::take(&mut inner.queue)
            };
            led.push(members.len());
            for member in &members {
                let mut storage = {
                    let mut s = member.lock().expect("slot lock");
                    s.storage.take().expect("member parked its storage")
                };
                let result = storage.sync().map_err(|e| (e.kind(), e.to_string()));
                let mut s = member.lock().expect("slot lock");
                s.storage = Some(storage);
                s.outcome = Some(result);
            }
            // Wake this window's followers; the notify runs under the
            // inner lock so a follower between its outcome check and its
            // wait cannot miss it.
            let _inner = self.inner.lock().expect("coalescer lock");
            self.cv.notify_all();
            drop(_inner);
            crate::sched::progress("wal.buffer.coalesce");
        }
        led
    }

    /// Follower: park until the leader records this slot's outcome.
    fn wait_done(&self, slot: &Arc<Mutex<Slot>>) {
        loop {
            let inner = self.inner.lock().expect("coalescer lock");
            if slot.lock().expect("slot lock").outcome.is_some() {
                return;
            }
            if crate::sched::active() {
                drop(inner);
                crate::sched::block_point("wal.buffer.coalesce");
            } else {
                drop(self.cv.wait(inner).expect("coalescer lock"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    #[test]
    fn single_request_runs_one_window_of_one() {
        let c = SyncCoalescer::new();
        let probe = MemStorage::new();
        let mut owned: Box<dyn Storage> = Box::new(probe.clone());
        owned.append(b"abc").unwrap();
        let (_owned, out) = c.sync(owned);
        out.result.unwrap();
        assert_eq!(out.windows_led, vec![1]);
        assert_eq!(probe.durable(), b"abc");
        assert_eq!(
            c.stats(),
            CoalesceStats {
                requests: 1,
                windows: 1
            }
        );
    }

    #[test]
    fn concurrent_requests_share_windows() {
        let c = Arc::new(SyncCoalescer::new());
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    let probe = MemStorage::new();
                    for r in 0..16 {
                        let mut owned: Box<dyn Storage> = Box::new(probe.clone());
                        owned.append(format!("{i}:{r};").as_bytes()).unwrap();
                        let (_owned, out) = c.sync(owned);
                        out.result.unwrap();
                    }
                    assert_eq!(probe.unsynced_len(), 0, "every request is durable");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = c.stats();
        assert_eq!(stats.requests, 8 * 16);
        assert!(
            stats.windows <= stats.requests,
            "windows never exceed requests"
        );
    }
}
