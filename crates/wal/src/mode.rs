//! Deployment-level durability selection.
//!
//! [`DurabilityMode`] is what `Croesus::builder().durability(..)` takes:
//! it names a directory and a flush discipline, and the builder opens one
//! log per edge node (`edge-<i>.wal`) — per-edge logs because each edge
//! owns its partition of the data (§4.5) and recovers independently.

use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use crate::coalesce::SyncCoalescer;
use crate::writer::{PipelineConfig, Wal, WalConfig};

/// How (and whether) a deployment logs transactions durably.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No logging at all — byte-identical behaviour with the pre-WAL
    /// system. The default.
    #[default]
    Disabled,
    /// Log with group commit: one durable sync per `group` commit points.
    GroupCommit {
        /// Directory holding the per-edge log files.
        dir: PathBuf,
        /// Commit points per sync (≥ 1).
        group: usize,
    },
    /// Log with a sync at every commit point (group size 1).
    Strict {
        /// Directory holding the per-edge log files.
        dir: PathBuf,
    },
    /// Log without syncing on commit: durable only at checkpoints and
    /// explicit flushes (the largest loss window, the fewest syncs).
    Buffered {
        /// Directory holding the per-edge log files.
        dir: PathBuf,
    },
    /// Pipelined double-buffered logging: appends receive global
    /// monotone LSNs and land in an active buffer; every `group` commit
    /// points the buffer seals onto a dedicated flusher, which syncs it
    /// while new appends keep going. Group-commit loss window, without
    /// the inline sync stall.
    Pipelined {
        /// Directory holding the per-edge log files.
        dir: PathBuf,
        /// Commit points per buffer seal (≥ 1).
        group: usize,
        /// Share one sync window across every edge in the deployment
        /// (they share `dir`, hence a device) via a [`SyncCoalescer`].
        coalesce: bool,
    },
}

impl DurabilityMode {
    /// Group commit in `dir` with the default group size.
    #[must_use]
    pub fn group_commit(dir: impl Into<PathBuf>) -> Self {
        DurabilityMode::GroupCommit {
            dir: dir.into(),
            group: WalConfig::default().group_commit,
        }
    }

    /// Pipelined logging in `dir` with the default group size and
    /// cross-edge sync coalescing on.
    #[must_use]
    pub fn pipelined(dir: impl Into<PathBuf>) -> Self {
        DurabilityMode::Pipelined {
            dir: dir.into(),
            group: WalConfig::default().group_commit,
            coalesce: true,
        }
    }

    /// Whether this mode runs the pipelined writer.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        matches!(self, DurabilityMode::Pipelined { .. })
    }

    /// A shared per-device sync window for this deployment, when the
    /// mode asks for one. The builder calls this once and threads the
    /// same `Arc` through every [`DurabilityMode::open_edge_wal_with`].
    #[must_use]
    pub fn device_coalescer(&self) -> Option<Arc<SyncCoalescer>> {
        match self {
            DurabilityMode::Pipelined { coalesce: true, .. } => {
                Some(Arc::new(SyncCoalescer::new()))
            }
            _ => None,
        }
    }

    /// Whether logging is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !matches!(self, DurabilityMode::Disabled)
    }

    /// The log file path for edge `i`, if logging is enabled.
    #[must_use]
    pub fn edge_log_path(&self, edge: usize) -> Option<PathBuf> {
        let dir = match self {
            DurabilityMode::Disabled => return None,
            DurabilityMode::GroupCommit { dir, .. }
            | DurabilityMode::Strict { dir }
            | DurabilityMode::Buffered { dir }
            | DurabilityMode::Pipelined { dir, .. } => dir,
        };
        Some(dir.join(format!("edge-{edge}.wal")))
    }

    /// The writer configuration this mode implies.
    #[must_use]
    pub fn wal_config(&self) -> WalConfig {
        match self {
            DurabilityMode::Disabled => WalConfig::default(),
            DurabilityMode::Strict { .. } => WalConfig::strict(),
            DurabilityMode::GroupCommit { group, .. } => WalConfig::group(*group),
            DurabilityMode::Buffered { .. } => WalConfig {
                group_commit: usize::MAX,
                ..WalConfig::default()
            },
            DurabilityMode::Pipelined { group, .. } => WalConfig::group(*group),
        }
    }

    /// The pipeline tuning this mode implies (`None` for the
    /// synchronous modes). The coalescer is deployment-shared state the
    /// caller owns; see [`DurabilityMode::device_coalescer`].
    #[must_use]
    pub fn pipeline_config(&self, coalescer: Option<Arc<SyncCoalescer>>) -> Option<PipelineConfig> {
        match self {
            DurabilityMode::Pipelined { .. } => Some(PipelineConfig {
                coalescer,
                manual_flusher: false,
            }),
            _ => None,
        }
    }

    /// Open a fresh log for edge `i` (truncating a previous one — recover
    /// from it first if its contents matter). `Ok(None)` when disabled.
    /// Pipelined deployments that coalesce should prefer
    /// [`DurabilityMode::open_edge_wal_with`] so every edge shares one
    /// window; this entry point gives each edge a private one.
    pub fn open_edge_wal(&self, edge: usize) -> io::Result<Option<Wal>> {
        self.open_edge_wal_with(edge, self.device_coalescer())
    }

    /// [`open_edge_wal`](DurabilityMode::open_edge_wal) with the
    /// deployment's shared device coalescer threaded through.
    pub fn open_edge_wal_with(
        &self,
        edge: usize,
        coalescer: Option<Arc<SyncCoalescer>>,
    ) -> io::Result<Option<Wal>> {
        let Some(path) = self.edge_log_path(edge) else {
            return Ok(None);
        };
        match self.pipeline_config(coalescer) {
            None => Ok(Some(Wal::create(path, self.wal_config())?)),
            Some(pipe) => {
                let storage = crate::storage::FileStorage::create(&path)?;
                Ok(Some(Wal::with_storage_pipelined(
                    Box::new(storage),
                    self.wal_config(),
                    pipe,
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_default_and_opens_nothing() {
        let mode = DurabilityMode::default();
        assert!(!mode.is_enabled());
        assert_eq!(mode.edge_log_path(0), None);
        assert!(mode.open_edge_wal(0).unwrap().is_none());
    }

    #[test]
    fn modes_map_to_configs() {
        let dir = PathBuf::from("/tmp/x");
        assert_eq!(
            DurabilityMode::Strict { dir: dir.clone() }.wal_config(),
            WalConfig::strict()
        );
        assert_eq!(
            DurabilityMode::GroupCommit {
                dir: dir.clone(),
                group: 16
            }
            .wal_config()
            .group_commit,
            16
        );
        assert_eq!(
            DurabilityMode::Buffered { dir: dir.clone() }
                .wal_config()
                .group_commit,
            usize::MAX
        );
        assert_eq!(
            DurabilityMode::group_commit(&dir).edge_log_path(3),
            Some(dir.join("edge-3.wal"))
        );
    }

    #[test]
    fn open_edge_wal_creates_the_file() {
        let dir = crate::storage::scratch_dir("mode-test");
        let mode = DurabilityMode::Strict { dir: dir.clone() };
        let wal = mode.open_edge_wal(2).unwrap().unwrap();
        wal.flush().unwrap();
        assert!(dir.join("edge-2.wal").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
