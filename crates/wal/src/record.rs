//! Log record types and their binary codec.
//!
//! One frame carries one [`WalRecord`]. A whole executed *stage* — its
//! write images and its commit metadata — is a single [`StageRecord`]
//! frame, so recovery never sees half a stage: a frame either decodes
//! completely or marks the torn tail.
//!
//! Commit-point semantics are per protocol (§4 of the paper):
//!
//! * MS-IA and the staged discipline reach a durable commit point at
//!   **every** stage ([`StageFlags::COMMIT_POINT`] on each record; stage 0
//!   is the initial commit the client already saw).
//! * MS-SR reaches its only durable commit point at **final commit** —
//!   earlier stages are logged without the flag and their writes stay
//!   buffered during replay, because locks hid them from every other
//!   transaction and a crash simply un-happens them.
//!
//! [`StageFlags::REGISTER`] marks a stage whose footprint was registered
//! with the apology manager as a retractable guess; recovery rebuilds
//! exactly those entries.

use std::sync::Arc;

use croesus_store::{Key, TxnId, Value};

/// Decoding failure: the payload did not parse as a record. Carries the
/// reason for diagnostics; recovery treats any decode failure as
/// corruption at that frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WAL record decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

type DecodeResult<T> = Result<T, DecodeError>;

/// Bit flags on a [`StageRecord`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageFlags(pub u8);

impl StageFlags {
    /// This stage is a durable commit point: replay applies the
    /// transaction's buffered writes when it sees this record.
    pub const COMMIT_POINT: u8 = 0b001;
    /// This stage is the transaction's final stage.
    pub const FINAL: u8 = 0b010;
    /// This stage's footprint was registered with the apology manager as a
    /// retractable guess.
    pub const REGISTER: u8 = 0b100;

    /// Whether the commit-point bit is set.
    #[must_use]
    pub fn commit_point(self) -> bool {
        self.0 & Self::COMMIT_POINT != 0
    }

    /// Whether the final bit is set.
    #[must_use]
    pub fn is_final(self) -> bool {
        self.0 & Self::FINAL != 0
    }

    /// Whether the register bit is set.
    #[must_use]
    pub fn register(self) -> bool {
        self.0 & Self::REGISTER != 0
    }
}

/// One write performed by a stage: the key, its pre-image (for undo /
/// retraction) and its post-image (for redo). `post = None` is a delete.
#[derive(Clone, Debug, PartialEq)]
pub struct WriteImage {
    /// The written key.
    pub key: Key,
    /// Value before the stage's first write to the key (None = absent).
    pub pre: Option<Arc<Value>>,
    /// Value after the stage (None = the stage deleted the key).
    pub post: Option<Arc<Value>>,
}

/// One executed stage of a multi-stage transaction.
#[derive(Clone, Debug, PartialEq)]
pub struct StageRecord {
    /// The transaction.
    pub txn: TxnId,
    /// 0-based stage index.
    pub stage: u32,
    /// Total stages declared at `begin`.
    pub total: u32,
    /// Commit-point / final / register flags.
    pub flags: StageFlags,
    /// Declared read set (the retraction cascade is computed from these).
    pub reads: Vec<Key>,
    /// Declared write set.
    pub writes: Vec<Key>,
    /// The writes actually performed, in execution order.
    pub images: Vec<WriteImage>,
}

/// The retraction of one apology-manager entry: the store restores that
/// were applied (in rollback order), logged so replay repeats the exact
/// mutations instead of re-deriving them.
#[derive(Clone, Debug, PartialEq)]
pub struct RetractRecord {
    /// The retracted transaction.
    pub txn: TxnId,
    /// `(key, restored value)` in the order the rollback applied them;
    /// `None` deletes the key.
    pub restores: Vec<(Key, Option<Arc<Value>>)>,
}

/// A log record — one per frame.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// One executed stage (writes + commit metadata, atomically).
    Stage(StageRecord),
    /// One apology-manager entry retracted (with its store restores).
    Retract(RetractRecord),
    /// The 2PC coordinator's phase-1 decision for a cross-partition
    /// transaction, logged before any participant enters phase 2. After a
    /// coordinator crash, recovery reads this record to finish phase 2
    /// instead of leaving participants in doubt (§4.5).
    TpcDecision {
        /// The distributed transaction.
        txn: TxnId,
        /// True = commit everywhere, false = abort everywhere.
        commit: bool,
    },
    /// A checkpoint: the full recovery state at a moment in time. The log
    /// is truncated to just this record, bounding replay work.
    Checkpoint(Box<CheckpointRecord>),
    /// A settle point: the edge was quiescent (no frame in flight) and
    /// dropped every registered apology entry — finalized guesses included
    /// — because no retraction can reach back past a quiescent boundary.
    /// Replay drops the same entries, so shadow state and checkpoints stay
    /// bounded however long the run (the settle-and-prune pass).
    Settle,
    /// The 2PC coordinator finished phase 2 for `txn`: every participant
    /// acked. The decision entry can be dropped from the shadow state —
    /// nobody can be in doubt about a transaction whose phase 2 completed.
    /// Not synced on its own: losing it re-runs an idempotent phase 2.
    TpcEnd {
        /// The finished distributed transaction.
        txn: TxnId,
    },
}

/// Serialized recovery state (see `recover::RecoveryState`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CheckpointRecord {
    /// Committed store contents at the checkpoint (pending uncommitted
    /// MS-SR writes are overlaid back to their pre-images before
    /// snapshotting).
    pub store: Vec<(Key, Arc<Value>)>,
    /// Per-transaction replay state (settled transactions are pruned).
    pub txns: Vec<CheckpointTxn>,
    /// Next apology-entry sequence number.
    pub next_seq: u64,
    /// Running count of finalized transactions.
    pub finalized: u64,
    /// Coordinator decisions not yet resolved.
    pub tpc: Vec<(TxnId, bool)>,
    /// Next transaction id the edge would assign (so a replacement node
    /// taking over the partition continues the id sequence instead of
    /// colliding with ids the dead edge already used).
    pub next_txn: u64,
}

/// One transaction's state inside a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointTxn {
    /// The transaction.
    pub txn: TxnId,
    /// Writes logged but not yet covered by a commit point.
    pub pending: Vec<WriteImage>,
    /// Registered (retractable) entries, in registration order.
    pub entries: Vec<CheckpointEntry>,
    /// Whether any commit point was reached.
    pub initial_committed: bool,
    /// Whether the final stage committed.
    pub finalized: bool,
}

/// One registered apology entry inside a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointEntry {
    /// Registration sequence number (cascade ordering).
    pub seq: u64,
    /// Whether this entry was already retracted (a later stage of the
    /// same transaction may register *new* live entries afterwards, so
    /// retraction is per entry, not per transaction — mirroring the
    /// live `ApologyManager`).
    pub retracted: bool,
    /// Declared reads.
    pub reads: Vec<Key>,
    /// Declared writes.
    pub writes: Vec<Key>,
    /// Undo pre-images, first-write-wins, in record order.
    pub undo: Vec<(Key, Option<Arc<Value>>)>,
}

// ---------------------------------------------------------------------------
// Codec. Little-endian integers, u32 length prefixes, one leading tag byte.

const TAG_STAGE: u8 = 1;
const TAG_RETRACT: u8 = 2;
const TAG_TPC: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;
const TAG_SETTLE: u8 = 5;
const TAG_TPC_END: u8 = 6;

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(DecodeError("unexpected end of record"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A length prefix that must be satisfiable by the remaining bytes
    /// (each element needs ≥ 1 byte), so corrupt lengths fail fast instead
    /// of attempting huge allocations.
    fn len(&mut self) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        if n > self.bytes.len() - self.pos {
            return Err(DecodeError("length prefix exceeds record size"));
        }
        Ok(n)
    }

    fn str_bytes(&mut self) -> DecodeResult<&'a [u8]> {
        let n = self.len()?;
        self.take(n)
    }

    fn key(&mut self) -> DecodeResult<Key> {
        let bytes = self.str_bytes()?;
        let s = std::str::from_utf8(bytes).map_err(|_| DecodeError("key is not UTF-8"))?;
        Ok(Key::new(s))
    }

    fn done(&self) -> DecodeResult<()> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError("trailing bytes after record"))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, n: u32) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, n: u64) {
    out.extend_from_slice(&n.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_key(out: &mut Vec<u8>, key: &Key) {
    put_bytes(out, key.as_str().as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(1);
            put_bytes(out, s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(2);
            put_bytes(out, b);
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> DecodeResult<Value> {
    match c.u8()? {
        0 => Ok(Value::Int(c.i64()?)),
        1 => {
            let b = c.str_bytes()?;
            let s = std::str::from_utf8(b).map_err(|_| DecodeError("string value not UTF-8"))?;
            Ok(Value::Str(s.to_string()))
        }
        2 => Ok(Value::Bytes(c.str_bytes()?.to_vec())),
        _ => Err(DecodeError("unknown value tag")),
    }
}

fn put_opt_value(out: &mut Vec<u8>, v: Option<&Value>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_value(out, v);
        }
    }
}

fn get_opt_value(c: &mut Cursor<'_>) -> DecodeResult<Option<Arc<Value>>> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Arc::new(get_value(c)?))),
        _ => Err(DecodeError("unknown option tag")),
    }
}

fn put_keys(out: &mut Vec<u8>, keys: &[Key]) {
    put_u32(out, keys.len() as u32);
    for k in keys {
        put_key(out, k);
    }
}

fn get_keys(c: &mut Cursor<'_>) -> DecodeResult<Vec<Key>> {
    let n = c.len()?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(c.key()?);
    }
    Ok(keys)
}

fn put_images(out: &mut Vec<u8>, images: &[WriteImage]) {
    put_u32(out, images.len() as u32);
    for w in images {
        put_key(out, &w.key);
        put_opt_value(out, w.pre.as_deref());
        put_opt_value(out, w.post.as_deref());
    }
}

fn get_images(c: &mut Cursor<'_>) -> DecodeResult<Vec<WriteImage>> {
    let n = c.len()?;
    let mut images = Vec::with_capacity(n);
    for _ in 0..n {
        images.push(WriteImage {
            key: c.key()?,
            pre: get_opt_value(c)?,
            post: get_opt_value(c)?,
        });
    }
    Ok(images)
}

fn put_restores(out: &mut Vec<u8>, restores: &[(Key, Option<Arc<Value>>)]) {
    put_u32(out, restores.len() as u32);
    for (k, v) in restores {
        put_key(out, k);
        put_opt_value(out, v.as_deref());
    }
}

fn get_restores(c: &mut Cursor<'_>) -> DecodeResult<Vec<(Key, Option<Arc<Value>>)>> {
    let n = c.len()?;
    let mut restores = Vec::with_capacity(n);
    for _ in 0..n {
        restores.push((c.key()?, get_opt_value(c)?));
    }
    Ok(restores)
}

impl WalRecord {
    /// Serialize to one frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            WalRecord::Stage(s) => {
                out.push(TAG_STAGE);
                put_u64(&mut out, s.txn.0);
                put_u32(&mut out, s.stage);
                put_u32(&mut out, s.total);
                out.push(s.flags.0);
                put_keys(&mut out, &s.reads);
                put_keys(&mut out, &s.writes);
                put_images(&mut out, &s.images);
            }
            WalRecord::Retract(r) => {
                out.push(TAG_RETRACT);
                put_u64(&mut out, r.txn.0);
                put_restores(&mut out, &r.restores);
            }
            WalRecord::TpcDecision { txn, commit } => {
                out.push(TAG_TPC);
                put_u64(&mut out, txn.0);
                out.push(u8::from(*commit));
            }
            WalRecord::Checkpoint(cp) => {
                out.push(TAG_CHECKPOINT);
                put_u32(&mut out, cp.store.len() as u32);
                for (k, v) in &cp.store {
                    put_key(&mut out, k);
                    put_value(&mut out, v);
                }
                put_u32(&mut out, cp.txns.len() as u32);
                for t in &cp.txns {
                    put_u64(&mut out, t.txn.0);
                    out.push(u8::from(t.initial_committed) | u8::from(t.finalized) << 1);
                    put_images(&mut out, &t.pending);
                    put_u32(&mut out, t.entries.len() as u32);
                    for e in &t.entries {
                        put_u64(&mut out, e.seq);
                        out.push(u8::from(e.retracted));
                        put_keys(&mut out, &e.reads);
                        put_keys(&mut out, &e.writes);
                        put_restores(&mut out, &e.undo);
                    }
                }
                put_u64(&mut out, cp.next_seq);
                put_u64(&mut out, cp.finalized);
                put_u32(&mut out, cp.tpc.len() as u32);
                for (txn, commit) in &cp.tpc {
                    put_u64(&mut out, txn.0);
                    out.push(u8::from(*commit));
                }
                put_u64(&mut out, cp.next_txn);
            }
            WalRecord::Settle => {
                out.push(TAG_SETTLE);
            }
            WalRecord::TpcEnd { txn } => {
                out.push(TAG_TPC_END);
                put_u64(&mut out, txn.0);
            }
        }
        out
    }

    /// Deserialize one frame payload.
    pub fn decode(payload: &[u8]) -> DecodeResult<WalRecord> {
        let mut c = Cursor::new(payload);
        let record = match c.u8()? {
            TAG_STAGE => WalRecord::Stage(StageRecord {
                txn: TxnId(c.u64()?),
                stage: c.u32()?,
                total: c.u32()?,
                flags: StageFlags(c.u8()?),
                reads: get_keys(&mut c)?,
                writes: get_keys(&mut c)?,
                images: get_images(&mut c)?,
            }),
            TAG_RETRACT => WalRecord::Retract(RetractRecord {
                txn: TxnId(c.u64()?),
                restores: get_restores(&mut c)?,
            }),
            TAG_TPC => WalRecord::TpcDecision {
                txn: TxnId(c.u64()?),
                commit: c.u8()? != 0,
            },
            TAG_CHECKPOINT => {
                let n = c.len()?;
                let mut store = Vec::with_capacity(n);
                for _ in 0..n {
                    store.push((c.key()?, Arc::new(get_value(&mut c)?)));
                }
                let n = c.len()?;
                let mut txns = Vec::with_capacity(n);
                for _ in 0..n {
                    let txn = TxnId(c.u64()?);
                    let bits = c.u8()?;
                    let pending = get_images(&mut c)?;
                    let en = c.len()?;
                    let mut entries = Vec::with_capacity(en);
                    for _ in 0..en {
                        entries.push(CheckpointEntry {
                            seq: c.u64()?,
                            retracted: c.u8()? != 0,
                            reads: get_keys(&mut c)?,
                            writes: get_keys(&mut c)?,
                            undo: get_restores(&mut c)?,
                        });
                    }
                    txns.push(CheckpointTxn {
                        txn,
                        pending,
                        entries,
                        initial_committed: bits & 1 != 0,
                        finalized: bits & 2 != 0,
                    });
                }
                let next_seq = c.u64()?;
                let finalized = c.u64()?;
                let n = c.len()?;
                let mut tpc = Vec::with_capacity(n);
                for _ in 0..n {
                    tpc.push((TxnId(c.u64()?), c.u8()? != 0));
                }
                let next_txn = c.u64()?;
                WalRecord::Checkpoint(Box::new(CheckpointRecord {
                    store,
                    txns,
                    next_seq,
                    finalized,
                    tpc,
                    next_txn,
                }))
            }
            TAG_SETTLE => WalRecord::Settle,
            TAG_TPC_END => WalRecord::TpcEnd {
                txn: TxnId(c.u64()?),
            },
            _ => return Err(DecodeError("unknown record tag")),
        };
        c.done()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: WalRecord) {
        let bytes = r.encode();
        assert_eq!(WalRecord::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn stage_roundtrips() {
        roundtrip(WalRecord::Stage(StageRecord {
            txn: TxnId(42),
            stage: 1,
            total: 3,
            flags: StageFlags(StageFlags::COMMIT_POINT | StageFlags::REGISTER),
            reads: vec!["a".into(), "b/7".into()],
            writes: vec!["c".into()],
            images: vec![
                WriteImage {
                    key: "c".into(),
                    pre: None,
                    post: Some(Arc::new(Value::Int(-9))),
                },
                WriteImage {
                    key: "d".into(),
                    pre: Some(Arc::new(Value::Str("old".into()))),
                    post: None,
                },
            ],
        }));
    }

    #[test]
    fn retract_and_tpc_roundtrip() {
        roundtrip(WalRecord::Retract(RetractRecord {
            txn: TxnId(7),
            restores: vec![
                ("x".into(), Some(Arc::new(Value::Bytes(vec![1, 2, 3])))),
                ("y".into(), None),
            ],
        }));
        roundtrip(WalRecord::TpcDecision {
            txn: TxnId(u64::MAX),
            commit: true,
        });
        roundtrip(WalRecord::TpcDecision {
            txn: TxnId(0),
            commit: false,
        });
    }

    #[test]
    fn checkpoint_roundtrips() {
        roundtrip(WalRecord::Checkpoint(Box::new(CheckpointRecord {
            store: vec![
                ("k/1".into(), Arc::new(Value::Int(5))),
                ("k/2".into(), Arc::new(Value::Str("s".into()))),
            ],
            txns: vec![CheckpointTxn {
                txn: TxnId(3),
                pending: vec![WriteImage {
                    key: "p".into(),
                    pre: Some(Arc::new(Value::Int(1))),
                    post: Some(Arc::new(Value::Int(2))),
                }],
                entries: vec![CheckpointEntry {
                    seq: 9,
                    retracted: true,
                    reads: vec!["r".into()],
                    writes: vec!["w".into()],
                    undo: vec![("w".into(), None)],
                }],
                initial_committed: true,
                finalized: false,
            }],
            next_seq: 10,
            finalized: 4,
            tpc: vec![(TxnId(11), true)],
            next_txn: 77,
        })));
    }

    #[test]
    fn settle_and_tpc_end_roundtrip() {
        roundtrip(WalRecord::Settle);
        roundtrip(WalRecord::TpcEnd { txn: TxnId(19) });
        roundtrip(WalRecord::TpcEnd {
            txn: TxnId(u64::MAX),
        });
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        roundtrip(WalRecord::Checkpoint(Box::default()));
    }

    #[test]
    fn garbage_fails_cleanly() {
        assert!(WalRecord::decode(&[]).is_err());
        assert!(WalRecord::decode(&[99]).is_err());
        assert!(WalRecord::decode(&[TAG_STAGE, 1, 2]).is_err());
        // Trailing bytes are corruption, not silently ignored.
        let mut ok = WalRecord::TpcDecision {
            txn: TxnId(1),
            commit: true,
        }
        .encode();
        ok.push(0);
        assert!(WalRecord::decode(&ok).is_err());
        // A length prefix larger than the record must fail, not allocate.
        let mut huge = vec![TAG_RETRACT];
        huge.extend_from_slice(&1u64.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(WalRecord::decode(&huge).is_err());
    }

    #[test]
    fn flag_accessors() {
        let f = StageFlags(StageFlags::COMMIT_POINT | StageFlags::FINAL);
        assert!(f.commit_point() && f.is_final() && !f.register());
        assert!(!StageFlags::default().commit_point());
    }
}
