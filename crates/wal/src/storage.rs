//! Log storage backends.
//!
//! The WAL distinguishes *appended* bytes (handed to the backend, may
//! still sit in a buffer) from *durable* bytes (survive a crash — the
//! fsync boundary). [`FileStorage`] maps the distinction onto a real file
//! and `sync_data`; [`MemStorage`] keeps both byte strings in memory so
//! tests can crash the "process" at any boundary and hand the durable
//! prefix to recovery.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// Where log bytes go.
pub trait Storage: Send {
    /// Buffer `bytes` at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Make everything appended so far durable (the group-commit flush
    /// boundary — fsync-equivalent).
    fn sync(&mut self) -> io::Result<()>;

    /// Atomically replace the whole log with `bytes` (checkpoint
    /// truncation) and make it durable.
    fn reset(&mut self, bytes: &[u8]) -> io::Result<()>;

    /// Bytes appended so far (durable or not).
    fn len(&self) -> u64;

    /// Whether nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// File-backed storage: appends buffer in memory, [`Storage::sync`]
/// writes and fsyncs, [`Storage::reset`] rewrites via a temp file +
/// rename so a crash mid-checkpoint leaves either the old or the new log.
pub struct FileStorage {
    path: PathBuf,
    file: File,
    buffer: Vec<u8>,
    len: u64,
}

/// Fsync the parent directory of `path`, so a just-created or
/// just-renamed directory entry survives a power failure. (Best effort on
/// platforms where directories cannot be opened for sync.)
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let Some(parent) = path.parent() else {
        return Ok(());
    };
    if parent.as_os_str().is_empty() {
        return Ok(());
    }
    match File::open(parent) {
        Ok(dir) => dir.sync_all(),
        // e.g. Windows refuses to open directories; the rename itself is
        // atomic there, only the power-failure window differs.
        Err(_) => Ok(()),
    }
}

impl FileStorage {
    /// Create (truncating any previous log at `path`).
    pub fn create(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        sync_parent_dir(&path)?;
        Ok(FileStorage {
            path,
            file,
            buffer: Vec::new(),
            len: 0,
        })
    }

    /// The log file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Storage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.buffer.extend_from_slice(bytes);
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        if !self.buffer.is_empty() {
            self.file.write_all(&self.buffer)?;
            self.buffer.clear();
        }
        self.file.sync_data()
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename itself durable: without a directory fsync, a
        // power failure could resurrect the old inode and lose every
        // commit synced to the new one afterwards.
        sync_parent_dir(&self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.buffer.clear();
        self.len = bytes.len() as u64;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }
}

/// The shared byte store behind [`MemStorage`] handles.
#[derive(Default)]
struct MemDevice {
    durable: Vec<u8>,
    buffered: Vec<u8>,
}

/// In-memory storage with an explicit durability boundary. Cloning the
/// handle shares the device, so a test can keep one handle while the WAL
/// owns the other, then read [`MemStorage::durable`] (what a crash would
/// preserve) or [`MemStorage::all_bytes`] (what a lucky crash — or an OS
/// that flushed on its own — could have preserved) at any point.
#[derive(Clone, Default)]
pub struct MemStorage {
    device: Arc<Mutex<MemDevice>>,
}

impl MemStorage {
    /// A fresh empty device.
    #[must_use]
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// The durable prefix: everything up to the last sync.
    #[must_use]
    pub fn durable(&self) -> Vec<u8> {
        self.device.lock().durable.clone()
    }

    /// Every appended byte, synced or not.
    #[must_use]
    pub fn all_bytes(&self) -> Vec<u8> {
        let d = self.device.lock();
        let mut out = d.durable.clone();
        out.extend_from_slice(&d.buffered);
        out
    }

    /// Bytes appended since the last sync.
    #[must_use]
    pub fn unsynced_len(&self) -> usize {
        self.device.lock().buffered.len()
    }
}

impl Storage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.device.lock().buffered.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> io::Result<()> {
        let mut d = self.device.lock();
        let buffered = std::mem::take(&mut d.buffered);
        d.durable.extend_from_slice(&buffered);
        Ok(())
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        let mut d = self.device.lock();
        d.durable = bytes.to_vec();
        d.buffered.clear();
        Ok(())
    }

    fn len(&self) -> u64 {
        let d = self.device.lock();
        (d.durable.len() + d.buffered.len()) as u64
    }
}

/// A unique scratch path under the system temp dir (no external tempfile
/// crate in this workspace). The directory is created; the caller removes
/// it when done — or leaves it, temp dirs are scratch by definition.
pub fn scratch_dir(label: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("croesus-wal-{label}-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is writable");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_tracks_durability_boundary() {
        let probe = MemStorage::new();
        let mut s = probe.clone();
        s.append(b"aaa").unwrap();
        assert_eq!(probe.durable(), b"");
        assert_eq!(probe.all_bytes(), b"aaa");
        assert_eq!(probe.unsynced_len(), 3);
        s.sync().unwrap();
        assert_eq!(probe.durable(), b"aaa");
        s.append(b"bb").unwrap();
        assert_eq!(probe.durable(), b"aaa");
        s.reset(b"cp").unwrap();
        assert_eq!(probe.durable(), b"cp");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn file_storage_roundtrips_through_disk() {
        let dir = scratch_dir("storage-test");
        let path = dir.join("edge-0.wal");
        let mut s = FileStorage::create(&path).unwrap();
        s.append(b"hello ").unwrap();
        s.append(b"wal").unwrap();
        assert_eq!(s.len(), 9);
        s.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"hello wal");
        // Reset replaces contents atomically.
        s.reset(b"checkpoint!").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"checkpoint!");
        s.append(b" tail").unwrap();
        s.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"checkpoint! tail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_file_bytes_stay_buffered() {
        let dir = scratch_dir("storage-buf");
        let path = dir.join("buffered.wal");
        let mut s = FileStorage::create(&path).unwrap();
        s.append(b"not yet").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"", "no sync, no bytes");
        s.sync().unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"not yet");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
