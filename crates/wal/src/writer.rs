//! The append-side of the log: group commit, checkpoint scheduling,
//! truncation.
//!
//! # Group commit
//!
//! Every record is appended (buffered) immediately, but the
//! fsync-equivalent [`Storage::sync`] runs only when
//! [`WalConfig::group_commit`] commit points have accumulated — one
//! durable flush amortized over a batch of transactions, the classic
//! group-commit trade: bounded loss window (the unsynced tail) for an
//! order-of-magnitude fewer syncs. `group_commit = 1` is strict mode
//! (sync at every commit point); `usize::MAX` never syncs on commit and
//! relies on checkpoints / [`Wal::flush`].
//!
//! # Checkpoints
//!
//! The writer mirrors its own log through the shared
//! [`RecoveryState`] machine *with a shadow store attached* — the exact
//! committed state a from-genesis replay of the log would produce,
//! maintained incrementally under the writer mutex (cheap: the shadow
//! store's `Arc<Value>`s alias the live store's allocations). A
//! checkpoint is therefore a pure serialization of writer-internal
//! state, written as one record that *replaces* the log
//! ([`Storage::reset`]) — truncation and checkpoint are the same atomic
//! step, and it is consistent even while other threads are mid-stage on
//! the live store (their uncommitted writes exist only there, never in
//! the shadow). [`Wal::maybe_checkpoint`] runs one every
//! [`WalConfig::checkpoint_every`] commit points; the executors call it
//! from the commit path.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

use parking_lot::Mutex;

use croesus_obs::{EdgeObs, EventKind, HistKind};
use croesus_store::{KvStore, TxnId};

use crate::coalesce::SyncCoalescer;
use crate::frame::write_frame;
use crate::record::{RetractRecord, StageRecord, WalRecord};
use crate::recover::RecoveryState;
use crate::ship::LogShipper;
use crate::storage::{FileStorage, MemStorage, Storage};

/// Message used when the std pipeline mutexes are poisoned — only a
/// panicking flusher could poison them, and that already aborts the run.
const PIPE_LOCK: &str = "wal pipeline lock";

/// Writer tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Commit points per durable sync (1 = strict, `usize::MAX` = only
    /// explicit flushes and checkpoints).
    pub group_commit: usize,
    /// Commit points between automatic checkpoints (0 = never).
    pub checkpoint_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            group_commit: 8,
            checkpoint_every: 1024,
        }
    }
}

impl WalConfig {
    /// Strict durability: sync at every commit point.
    #[must_use]
    pub fn strict() -> Self {
        WalConfig {
            group_commit: 1,
            ..WalConfig::default()
        }
    }

    /// Group commit with the given batch size.
    #[must_use]
    pub fn group(group_commit: usize) -> Self {
        assert!(group_commit >= 1, "group size must be at least 1");
        WalConfig {
            group_commit,
            ..WalConfig::default()
        }
    }
}

/// Counters exposed for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Commit points among them.
    pub commit_points: u64,
    /// Durable syncs performed (group commit amortizes these).
    pub syncs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Bytes handed to storage (excluding checkpoint rewrites).
    pub bytes_appended: u64,
}

/// Tuning for the pipelined (double-buffered) writer.
///
/// In pipelined mode appends land in an in-memory *active buffer* and
/// receive a global monotone LSN; every [`WalConfig::group_commit`]
/// commit points the active buffer is *sealed* and handed to a dedicated
/// flusher, which lands it (append + fsync-equivalent) while new appends
/// keep filling the next buffer. Commit points therefore wait on an LSN
/// boundary at most one buffer behind — never on the whole log.
#[derive(Clone, Default)]
pub struct PipelineConfig {
    /// Shared per-device sync window, when several edges' logs live on
    /// one storage device. `None` syncs alone.
    pub coalescer: Option<Arc<SyncCoalescer>>,
    /// Skip spawning the dedicated flusher thread. Harness mode: the
    /// test or model checker drives [`Wal::flusher_step`] itself (the
    /// mcheck scenario runs it as a virtual task), and seal-time
    /// backpressure is disabled outside the checker so a single-threaded
    /// harness can interleave appends and flushes freely.
    pub manual_flusher: bool,
}

/// One sealed buffer travelling from the appenders to the flusher.
struct SealedBuf {
    bytes: Vec<u8>,
    /// Global LSN of the last byte in this buffer; landing the buffer
    /// advances `last_flushed_lsn` to exactly here.
    up_to_lsn: u64,
}

/// Everything the appenders and the flusher exchange. One plain mutex:
/// appenders touch it briefly (extend the active buffer, bump counters),
/// the flusher holds it only outside I/O — the fsync itself runs with
/// the state unlocked, which is the whole point of the pipeline.
struct PipeState {
    /// The log device. `None` while the flusher has it checked out for
    /// I/O (appenders never touch storage in pipelined mode).
    storage: Option<Box<dyn Storage>>,
    /// Bytes appended since the last seal.
    active: Vec<u8>,
    /// Commit points in the active buffer.
    active_commits: usize,
    /// Sealed buffers awaiting the flusher.
    sealed: VecDeque<SealedBuf>,
    /// Global LSN of the last appended byte. Never resets — epochs
    /// re-frame the on-device log, not the LSN space.
    latest_lsn: u64,
    /// Global LSN of the last *sealed* byte.
    sealed_lsn: u64,
    /// Global durable boundary: everything at or below is synced (or
    /// folded into a durable checkpoint). Monotone.
    last_flushed_lsn: u64,
    /// A buffer is checked out and mid-I/O on the flusher.
    flushing: bool,
    /// Accepting no more work; the flusher drains `sealed` and exits.
    shutdown: bool,
    /// Durable syncs performed by the flusher (merged into [`WalStats`]).
    syncs: u64,
    /// Checkpoint epoch (the on-device log restarted this many times).
    epoch: u64,
    /// Bytes landed in the current epoch's on-device log.
    epoch_len: u64,
    /// Shipping endpoint; published to *only* in the flusher's post-sync
    /// path and the checkpoint's epoch restart — shipped ⊆ durable.
    shipper: Option<Arc<LogShipper>>,
    /// Observability stream (mirrors `WalInner::obs`). Pipelined events
    /// carry global LSNs.
    obs: EdgeObs,
    /// A flusher I/O failure is sticky: appends and boundary waits fail
    /// fast instead of acking commits that can never become durable.
    io_error: Option<(io::ErrorKind, String)>,
    /// Model-checker mutation: publish a buffer *before* syncing it,
    /// violating shipped ⊆ durable. Exists so `tests/mcheck.rs` can
    /// prove the checker catches the bug class this writer must avoid.
    #[cfg(feature = "mcheck")]
    publish_before_sync: bool,
}

/// The pipelined half of a [`Wal`], shared with the flusher thread.
struct PipelineShared {
    state: StdMutex<PipeState>,
    /// Signals the flusher: a buffer was sealed (or shutdown was set).
    work_cv: Condvar,
    /// Signals boundary waiters: `last_flushed_lsn` advanced.
    boundary_cv: Condvar,
    coalescer: Option<Arc<SyncCoalescer>>,
    /// A dedicated flusher thread exists (i.e. not harness mode).
    has_flusher: bool,
}

impl PipelineShared {
    /// Whether seal-time backpressure applies: something else is driving
    /// the flusher, so waiting for the previous buffer's boundary cannot
    /// deadlock. True for the thread, and for mcheck's virtual task.
    fn backpressure(&self) -> bool {
        self.has_flusher || crate::sched::active()
    }

    fn io_error_locked(state: &PipeState) -> io::Result<()> {
        match &state.io_error {
            Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
            None => Ok(()),
        }
    }

    /// Seal the active buffer onto the flusher queue. Caller holds the
    /// state lock; returns whether anything was sealed so the caller can
    /// mark scheduler progress *after* unlocking.
    fn seal_locked(&self, state: &mut PipeState) -> bool {
        if state.active.is_empty() {
            return false;
        }
        let bytes = std::mem::take(&mut state.active);
        state.active_commits = 0;
        state.sealed_lsn = state.latest_lsn;
        state.sealed.push_back(SealedBuf {
            bytes,
            up_to_lsn: state.latest_lsn,
        });
        state.obs.emit(EventKind::WalBufferSeal {
            lsn: state.latest_lsn,
        });
        self.work_cv.notify_one();
        true
    }

    /// Commit-point seal: apply backpressure (wait for the *previous*
    /// buffer's LSN boundary — double buffering bounds the pipeline at
    /// one in-flight buffer), then seal. `group` is re-checked under the
    /// lock because a racing commit may have sealed first.
    fn seal_for_commit(&self, group: usize) -> io::Result<()> {
        let mut state = self.state.lock().expect(PIPE_LOCK);
        if state.active_commits < group {
            return Ok(()); // someone else sealed this group already
        }
        if self.backpressure() {
            while state.last_flushed_lsn < state.sealed_lsn && state.io_error.is_none() {
                if crate::sched::active() {
                    drop(state);
                    crate::sched::block_point("wal.buffer.backpressure");
                    state = self.state.lock().expect(PIPE_LOCK);
                } else {
                    state = self.boundary_cv.wait(state).expect(PIPE_LOCK);
                }
            }
        }
        Self::io_error_locked(&state)?;
        let sealed = self.seal_locked(&mut state);
        drop(state);
        if sealed {
            crate::sched::progress("wal.buffer.sealed");
        }
        Ok(())
    }

    /// Wait until the durable boundary covers `lsn`, sealing the active
    /// buffer first when `lsn` still sits inside it. Returns immediately
    /// when `lsn ≤ last_flushed_lsn`. In harness mode outside the model
    /// checker there is nobody to wait for, so the caller's thread pumps
    /// the flusher inline instead of blocking.
    fn flush_lsn(&self, lsn: u64) -> io::Result<()> {
        crate::sched::yield_point("wal.buffer.flush_lsn");
        if !self.has_flusher && !crate::sched::active() {
            loop {
                {
                    let mut state = self.state.lock().expect(PIPE_LOCK);
                    if state.last_flushed_lsn >= lsn {
                        return Ok(());
                    }
                    PipelineShared::io_error_locked(&state)?;
                    if lsn > state.sealed_lsn {
                        self.seal_locked(&mut state);
                    }
                }
                self.step(true)?;
            }
        }
        let mut state = self.state.lock().expect(PIPE_LOCK);
        loop {
            if state.last_flushed_lsn >= lsn {
                return Ok(());
            }
            Self::io_error_locked(&state)?;
            if lsn > state.sealed_lsn && self.seal_locked(&mut state) {
                drop(state);
                crate::sched::progress("wal.buffer.sealed");
                state = self.state.lock().expect(PIPE_LOCK);
                continue;
            }
            if crate::sched::active() {
                drop(state);
                crate::sched::block_point("wal.buffer.boundary");
                state = self.state.lock().expect(PIPE_LOCK);
            } else {
                state = self.boundary_cv.wait(state).expect(PIPE_LOCK);
            }
        }
    }

    /// One flusher iteration: wait for a sealed buffer, land it (append +
    /// sync, through the device coalescer when present), advance
    /// `last_flushed_lsn`, and publish the landed bytes — publication
    /// lives *here*, strictly after the sync, which is the structural
    /// form of the shipped ⊆ durable contract. Returns `Ok(false)` once
    /// shut down and drained.
    fn step(&self, wait_for_work: bool) -> io::Result<bool> {
        crate::sched::yield_point("wal.buffer.flusher");
        #[cfg_attr(not(feature = "mcheck"), allow(unused_mut))]
        let mut pre_published = false;
        let (mut storage, buf, obs_enabled) = {
            let mut state = self.state.lock().expect(PIPE_LOCK);
            loop {
                if let Some(buf) = state.sealed.pop_front() {
                    let storage = state.storage.take().expect("storage checked in");
                    state.flushing = true;
                    #[cfg(feature = "mcheck")]
                    if state.publish_before_sync {
                        // The deliberately wrong order the self-test hunts.
                        Self::publish_locked(&mut state, &buf);
                        pre_published = true;
                    }
                    let enabled = state.obs.is_enabled();
                    break (storage, buf, enabled);
                }
                if state.shutdown || !wait_for_work {
                    return Ok(false);
                }
                if crate::sched::active() {
                    drop(state);
                    crate::sched::block_point("wal.buffer.drain");
                    state = self.state.lock().expect(PIPE_LOCK);
                } else {
                    state = self.work_cv.wait(state).expect(PIPE_LOCK);
                }
            }
        };
        // The I/O runs with the state unlocked: appends keep landing in
        // the next buffer while this one syncs.
        crate::sched::yield_point("wal.buffer.sync");
        let timer = obs_enabled.then(std::time::Instant::now);
        let mut windows_led = Vec::new();
        let io_result = match storage.append(&buf.bytes) {
            Err(e) => Err(e),
            Ok(()) => {
                if let Some(coalescer) = &self.coalescer {
                    let (returned, outcome) = coalescer.sync(storage);
                    storage = returned;
                    windows_led = outcome.windows_led;
                    outcome.result
                } else {
                    storage.sync()
                }
            }
        };
        let mut state = self.state.lock().expect(PIPE_LOCK);
        state.storage = Some(storage);
        state.flushing = false;
        match io_result {
            Err(e) => {
                state.io_error = Some((e.kind(), e.to_string()));
                drop(state);
                self.boundary_cv.notify_all();
                crate::sched::progress("wal.buffer.flushed");
                Err(e)
            }
            Ok(()) => {
                state.last_flushed_lsn = buf.up_to_lsn;
                state.syncs += 1;
                state.epoch_len += buf.bytes.len() as u64;
                if let Some(t0) = timer {
                    state.obs.record_duration(HistKind::WalSyncMs, t0.elapsed());
                }
                for window in windows_led {
                    state.obs.emit(EventKind::WalCoalescedSync {
                        requests: window as u64,
                    });
                }
                state.obs.emit(EventKind::WalSync {
                    lsn: buf.up_to_lsn,
                    epoch: state.epoch,
                });
                if !pre_published {
                    Self::publish_locked(&mut state, &buf);
                }
                drop(state);
                self.boundary_cv.notify_all();
                crate::sched::progress("wal.buffer.flushed");
                Ok(true)
            }
        }
    }

    /// Publish one landed buffer to the shipper (caller holds the state
    /// lock, making the publish atomic with the boundary advance — a
    /// checkpoint can never slide an epoch bump between them).
    fn publish_locked(state: &mut PipeState, buf: &SealedBuf) {
        if let Some(shipper) = &state.shipper {
            shipper.publish(&buf.bytes);
            state.obs.emit(EventKind::ShipPublish {
                lsn: buf.up_to_lsn,
                epoch: state.epoch,
            });
        }
    }
}

struct WalInner {
    storage: Box<dyn Storage>,
    config: WalConfig,
    shadow: RecoveryState,
    /// The committed state at the log tip — what replaying the log now
    /// would rebuild. Values alias the live store's `Arc`s.
    shadow_store: KvStore,
    unsynced_commits: usize,
    commits_since_checkpoint: u64,
    /// Bytes of the current epoch's log known durable (legacy modes
    /// only; the pipelined boundary lives in `PipeState`). Lets
    /// `flush_lsn` answer at-or-below-the-boundary requests without I/O.
    flushed_len: u64,
    stats: WalStats,
    /// Cloud replication endpoint, when shipping is on. Published to only
    /// inside the sync paths, so the shipped image is exactly the durable
    /// image — a replica can lag but never run ahead of a crash.
    shipper: Option<Arc<LogShipper>>,
    /// Frame bytes appended since the last sync — the batch the next sync
    /// publishes.
    unshipped: Vec<u8>,
    /// Observability stream (disabled by default). Events use the log
    /// length as the LSN and the checkpoint epoch as the epoch, so the
    /// ordering contract's shipped ⊆ durable check is byte-exact.
    obs: EdgeObs,
    /// Checkpoint epoch: bumped at every truncation (mirrors the
    /// shipper's epoch when one is attached).
    epoch: u64,
}

impl WalInner {
    /// Make everything appended durable and publish it to the shipper.
    /// The single exit through which bytes become both synced and shipped.
    fn sync_and_publish(&mut self) -> io::Result<()> {
        let timer = self.obs.is_enabled().then(std::time::Instant::now);
        self.storage.sync()?;
        self.stats.syncs += 1;
        self.unsynced_commits = 0;
        let lsn = self.storage.len();
        self.flushed_len = lsn;
        if let Some(t0) = timer {
            self.obs.record_duration(HistKind::WalSyncMs, t0.elapsed());
        }
        self.obs.emit(EventKind::WalSync {
            lsn,
            epoch: self.epoch,
        });
        if let Some(shipper) = &self.shipper {
            shipper.publish(&self.unshipped);
            if !self.unshipped.is_empty() {
                self.obs.emit(EventKind::ShipPublish {
                    lsn,
                    epoch: self.epoch,
                });
            }
        }
        self.unshipped.clear();
        Ok(())
    }
}

/// A per-edge write-ahead log. Thread-safe; share via `Arc`.
pub struct Wal {
    inner: Mutex<WalInner>,
    /// `Some` in pipelined mode. The legacy (synchronous) modes never
    /// touch it and stay byte-identical with the pre-pipeline writer; in
    /// pipelined mode the real storage lives inside, and `inner.storage`
    /// is an empty placeholder device nothing writes to.
    pipeline: Option<Arc<PipelineShared>>,
    /// The dedicated flusher thread, joined on drop.
    flusher: Option<JoinHandle<()>>,
}

impl Wal {
    /// A log over any storage backend.
    #[must_use]
    pub fn with_storage(storage: Box<dyn Storage>, config: WalConfig) -> Self {
        Wal {
            inner: Mutex::new(WalInner {
                storage,
                config,
                shadow: RecoveryState::new(),
                shadow_store: KvStore::new(),
                unsynced_commits: 0,
                commits_since_checkpoint: 0,
                flushed_len: 0,
                stats: WalStats::default(),
                shipper: None,
                unshipped: Vec::new(),
                obs: EdgeObs::disabled(),
                epoch: 0,
            }),
            pipeline: None,
            flusher: None,
        }
    }

    /// A *pipelined* log over any storage backend: appends receive
    /// global monotone LSNs, buffers seal every
    /// [`WalConfig::group_commit`] commit points, and a dedicated
    /// flusher lands them while new appends keep going. See
    /// [`PipelineConfig`].
    #[must_use]
    pub fn with_storage_pipelined(
        storage: Box<dyn Storage>,
        config: WalConfig,
        pipe: PipelineConfig,
    ) -> Self {
        let mut wal = Wal::with_storage(Box::new(MemStorage::new()), config);
        let shared = Arc::new(PipelineShared {
            state: StdMutex::new(PipeState {
                storage: Some(storage),
                active: Vec::new(),
                active_commits: 0,
                sealed: VecDeque::new(),
                latest_lsn: 0,
                sealed_lsn: 0,
                last_flushed_lsn: 0,
                flushing: false,
                shutdown: false,
                syncs: 0,
                epoch: 0,
                epoch_len: 0,
                shipper: None,
                obs: EdgeObs::disabled(),
                io_error: None,
                #[cfg(feature = "mcheck")]
                publish_before_sync: false,
            }),
            work_cv: Condvar::new(),
            boundary_cv: Condvar::new(),
            coalescer: pipe.coalescer,
            has_flusher: !pipe.manual_flusher,
        });
        if !pipe.manual_flusher {
            let for_thread = Arc::clone(&shared);
            wal.flusher = Some(
                std::thread::Builder::new()
                    .name("wal-flusher".into())
                    .spawn(move || {
                        // An Err is sticky in the state; waiters fail
                        // fast, so the thread just stops pumping.
                        while matches!(for_thread.step(true), Ok(true)) {}
                    })
                    .expect("spawn wal flusher"),
            );
        }
        wal.pipeline = Some(shared);
        wal
    }

    /// A fresh pipelined in-memory log; the [`MemStorage`] handle shares
    /// the device, for crash simulation at buffer-seal and post-sync
    /// boundaries.
    #[must_use]
    pub fn pipelined_in_memory(config: WalConfig, pipe: PipelineConfig) -> (Self, MemStorage) {
        let probe = MemStorage::new();
        let wal = Wal::with_storage_pipelined(Box::new(probe.clone()), config, pipe);
        (wal, probe)
    }

    /// Whether this writer runs the pipelined path.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// Attach an observability stream: appends, syncs and publishes are
    /// emitted as typed events, and sync latency feeds the per-edge
    /// histogram. Safe to call at any point; the default is disabled.
    pub fn set_obs(&self, obs: EdgeObs) {
        if let Some(shared) = &self.pipeline {
            shared.state.lock().expect(PIPE_LOCK).obs = obs.clone();
        }
        self.inner.lock().obs = obs;
    }

    /// Attach a cloud shipping endpoint. Must happen before the first
    /// append — the writer cannot read already-written bytes back out of
    /// its storage to backfill the replica.
    pub fn attach_shipper(&self, shipper: Arc<LogShipper>) {
        let mut inner = self.inner.lock();
        if let Some(shared) = &self.pipeline {
            let mut state = shared.state.lock().expect(PIPE_LOCK);
            assert!(
                state.latest_lsn == 0,
                "attach the shipper before the first append"
            );
            state.shipper = Some(Arc::clone(&shipper));
        } else {
            assert!(
                inner.storage.is_empty(),
                "attach the shipper before the first append"
            );
        }
        inner.shipper = Some(shipper);
    }

    /// The attached shipping endpoint, if any.
    #[must_use]
    pub fn shipper(&self) -> Option<Arc<LogShipper>> {
        self.inner.lock().shipper.clone()
    }

    /// Rebuild a writer over recovered state: the log restarts as a single
    /// checkpoint frame serializing `state` (as recovered — see
    /// [`RecoveryReport::state`](crate::RecoveryReport)) over `store` (the
    /// recovered committed store). Writes the recovered transactions never
    /// committed are abandoned first: their owners died with their locks,
    /// so they can never finish, and their stale pre-images must not
    /// overlay future checkpoints. With a shipper, the replica's tail
    /// restarts at the new epoch.
    pub fn resume(
        storage: Box<dyn Storage>,
        config: WalConfig,
        mut state: RecoveryState,
        store: &KvStore,
        shipper: Option<Arc<LogShipper>>,
    ) -> io::Result<Self> {
        state.abandon_pending();
        let shadow_store = KvStore::new();
        for (key, versioned) in store.snapshot() {
            shadow_store.put(key, versioned.value);
        }
        let cp = state.to_checkpoint(&shadow_store);
        let mut framed = Vec::new();
        write_frame(&mut framed, &WalRecord::Checkpoint(Box::new(cp)).encode());
        let wal = Wal::with_storage(storage, config);
        {
            let mut inner = wal.inner.lock();
            inner.storage.reset(&framed)?;
            inner.shadow = state;
            inner.shadow_store = shadow_store;
            inner.stats.checkpoints += 1;
            inner.stats.syncs += 1;
            inner.flushed_len = framed.len() as u64;
            inner.epoch = 1;
            if let Some(shipper) = &shipper {
                shipper.restart_epoch(&framed);
            }
            inner.shipper = shipper;
        }
        Ok(wal)
    }

    /// [`resume`](Wal::resume), pipelined: the recovered log restarts as
    /// a single durable checkpoint frame at epoch 1, and new appends go
    /// through the buffer/flusher pipeline.
    pub fn resume_pipelined(
        mut storage: Box<dyn Storage>,
        config: WalConfig,
        pipe: PipelineConfig,
        mut state: RecoveryState,
        store: &KvStore,
        shipper: Option<Arc<LogShipper>>,
    ) -> io::Result<Self> {
        state.abandon_pending();
        let shadow_store = KvStore::new();
        for (key, versioned) in store.snapshot() {
            shadow_store.put(key, versioned.value);
        }
        let cp = state.to_checkpoint(&shadow_store);
        let mut framed = Vec::new();
        write_frame(&mut framed, &WalRecord::Checkpoint(Box::new(cp)).encode());
        storage.reset(&framed)?;
        if let Some(shipper) = &shipper {
            shipper.restart_epoch(&framed);
        }
        let wal = Wal::with_storage_pipelined(storage, config, pipe);
        {
            let mut inner = wal.inner.lock();
            inner.shadow = state;
            inner.shadow_store = shadow_store;
            inner.stats.checkpoints += 1;
            inner.shipper = shipper.clone();
        }
        {
            let shared = wal.pipeline.as_ref().expect("pipelined constructor");
            let mut pstate = shared.state.lock().expect(PIPE_LOCK);
            pstate.epoch = 1;
            pstate.epoch_len = framed.len() as u64;
            pstate.syncs = 1;
            pstate.shipper = shipper;
        }
        Ok(wal)
    }

    /// [`resume`](Wal::resume) over a file (truncating whatever is there —
    /// recover from it *first*).
    pub fn resume_file(
        path: impl AsRef<Path>,
        config: WalConfig,
        state: RecoveryState,
        store: &KvStore,
        shipper: Option<Arc<LogShipper>>,
    ) -> io::Result<Self> {
        Wal::resume(
            Box::new(FileStorage::create(path.as_ref())?),
            config,
            state,
            store,
            shipper,
        )
    }

    /// A fresh file-backed log at `path` (truncates an existing file —
    /// recover from it *first* via [`crate::recover_file`]).
    pub fn create(path: impl AsRef<Path>, config: WalConfig) -> io::Result<Self> {
        Ok(Wal::with_storage(
            Box::new(FileStorage::create(path.as_ref())?),
            config,
        ))
    }

    /// A fresh in-memory log; the returned [`MemStorage`] handle shares
    /// the device, for crash simulation.
    #[must_use]
    pub fn in_memory(config: WalConfig) -> (Self, MemStorage) {
        let probe = MemStorage::new();
        let wal = Wal::with_storage(Box::new(probe.clone()), config);
        (wal, probe)
    }

    fn append_record(inner: &mut WalInner, record: &WalRecord) -> io::Result<()> {
        let mut framed = Vec::with_capacity(64);
        write_frame(&mut framed, &record.encode());
        inner.storage.append(&framed)?;
        // Split-borrow: fold into the shadow state *and* shadow store.
        let WalInner {
            shadow,
            shadow_store,
            ..
        } = inner;
        shadow.apply(record, Some(shadow_store));
        inner.stats.records += 1;
        inner.stats.bytes_appended += framed.len() as u64;
        inner.unshipped.extend_from_slice(&framed);
        inner.obs.emit(EventKind::WalAppend {
            lsn: inner.storage.len(),
        });
        Ok(())
    }

    /// Pipelined append: the shadow fold and counters stay under the
    /// writer mutex (log order == shadow order), but the bytes land in
    /// the active buffer and the record gets a global monotone LSN —
    /// storage is never touched on this path.
    fn append_record_pipelined(
        shared: &PipelineShared,
        inner: &mut WalInner,
        record: &WalRecord,
    ) -> io::Result<u64> {
        let mut framed = Vec::with_capacity(64);
        write_frame(&mut framed, &record.encode());
        let WalInner {
            shadow,
            shadow_store,
            ..
        } = inner;
        shadow.apply(record, Some(shadow_store));
        inner.stats.records += 1;
        inner.stats.bytes_appended += framed.len() as u64;
        let mut state = shared.state.lock().expect(PIPE_LOCK);
        PipelineShared::io_error_locked(&state)?;
        state.active.extend_from_slice(&framed);
        state.latest_lsn += framed.len() as u64;
        let lsn = state.latest_lsn;
        state.obs.emit(EventKind::WalAppend { lsn });
        Ok(lsn)
    }

    /// Append one record through whichever path this writer runs,
    /// returning its LSN (global in pipelined mode, the epoch-relative
    /// log length in the synchronous modes).
    fn append_any(&self, inner: &mut WalInner, record: &WalRecord) -> io::Result<u64> {
        match &self.pipeline {
            None => {
                Self::append_record(inner, record)?;
                Ok(inner.storage.len())
            }
            Some(shared) => Self::append_record_pipelined(shared, inner, record),
        }
    }

    fn commit_point(inner: &mut WalInner) -> io::Result<()> {
        inner.stats.commit_points += 1;
        inner.commits_since_checkpoint += 1;
        inner.unsynced_commits += 1;
        if inner.unsynced_commits >= inner.config.group_commit {
            inner.sync_and_publish()?;
        }
        Ok(())
    }

    /// Log one executed stage, returning its LSN. If the record is a
    /// commit point, the group policy decides what this call pays: the
    /// synchronous modes may sync inline; the pipelined mode at most
    /// seals the buffer and waits on the *previous* buffer's LSN
    /// boundary while this one syncs in the background.
    pub fn append_stage(&self, record: StageRecord) -> io::Result<u64> {
        crate::sched::yield_point("wal.append_stage");
        let is_commit = record.flags.commit_point();
        let (lsn, seal_group) = {
            let mut inner = self.inner.lock();
            let lsn = self.append_any(&mut inner, &WalRecord::Stage(record))?;
            let mut seal_group = None;
            if is_commit {
                match &self.pipeline {
                    None => Self::commit_point(&mut inner)?,
                    Some(shared) => {
                        inner.stats.commit_points += 1;
                        inner.commits_since_checkpoint += 1;
                        let group = inner.config.group_commit;
                        let mut state = shared.state.lock().expect(PIPE_LOCK);
                        state.active_commits += 1;
                        if state.active_commits >= group {
                            seal_group = Some(group);
                        }
                    }
                }
            }
            (lsn, seal_group)
        };
        if let Some(group) = seal_group {
            // Outside the writer mutex: the backpressure wait must not
            // block other appenders' non-sealing commits.
            self.pipeline
                .as_ref()
                .expect("seal only set in pipelined mode")
                .seal_for_commit(group)?;
        }
        Ok(lsn)
    }

    /// Log the retraction of apology entries (one record per entry, in
    /// rollback order). Durability rides the enclosing stage's commit.
    pub fn append_retracts(
        &self,
        retracts: impl IntoIterator<Item = RetractRecord>,
    ) -> io::Result<()> {
        crate::sched::yield_point("wal.append_retracts");
        let mut inner = self.inner.lock();
        for r in retracts {
            self.append_any(&mut inner, &WalRecord::Retract(r))?;
        }
        Ok(())
    }

    /// Log a 2PC coordinator decision and make it durable *before*
    /// returning — the decision must be durable before any participant
    /// enters phase 2, or a coordinator crash leaves them in doubt
    /// forever. The pipelined mode waits on the decision's own LSN
    /// boundary instead of draining the whole log.
    pub fn append_tpc_decision(&self, txn: TxnId, commit: bool) -> io::Result<()> {
        crate::sched::yield_point("wal.append_tpc_decision");
        let lsn = {
            let mut inner = self.inner.lock();
            let lsn = self.append_any(&mut inner, &WalRecord::TpcDecision { txn, commit })?;
            match &self.pipeline {
                None => return inner.sync_and_publish(),
                Some(_) => lsn,
            }
        };
        self.flush_lsn(lsn)
    }

    /// Log the completion of a 2PC transaction's phase 2: every
    /// participant acked, so the decision entry may be forgotten. Not
    /// synced on its own — losing this record merely re-runs an
    /// idempotent phase 2 under presumed abort.
    pub fn append_tpc_end(&self, txn: TxnId) -> io::Result<()> {
        crate::sched::yield_point("wal.append_tpc_end");
        let mut inner = self.inner.lock();
        self.append_any(&mut inner, &WalRecord::TpcEnd { txn })?;
        Ok(())
    }

    /// Log a settle point: the caller vouches the edge is quiescent (no
    /// frame in flight) and the apology manager dropped all its entries;
    /// the shadow state drops its mirror of them. Durability rides the
    /// next sync — a lost settle only means some entries get re-dropped
    /// by the next one.
    pub fn append_settle(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        self.append_any(&mut inner, &WalRecord::Settle)?;
        Ok(())
    }

    /// The phase-1 decision the shadow state holds for `txn`, if it has
    /// not been expired by a [`WalRecord::TpcEnd`].
    #[must_use]
    pub fn tpc_decision(&self, txn: TxnId) -> Option<bool> {
        self.inner.lock().shadow.tpc_decision(txn)
    }

    /// Unexpired coordinator decisions currently tracked.
    #[must_use]
    pub fn tpc_decision_count(&self) -> usize {
        self.inner.lock().shadow.tpc_decisions().len()
    }

    /// Registered entries (live or retracted) still mirrored in the shadow
    /// state — what the settle pass keeps bounded.
    #[must_use]
    pub fn shadow_entry_count(&self) -> usize {
        self.inner.lock().shadow.tracked_entries()
    }

    /// Force the durable boundary forward over everything appended.
    pub fn flush(&self) -> io::Result<()> {
        match &self.pipeline {
            None => self.inner.lock().sync_and_publish(),
            Some(shared) => {
                let target = shared.state.lock().expect(PIPE_LOCK).latest_lsn;
                shared.flush_lsn(target)
            }
        }
    }

    /// Wait until the durable boundary covers `lsn` (as returned by
    /// [`Wal::append_stage`]). Returns immediately at or below
    /// `last_flushed_lsn`; past it, the pipelined mode seals as needed
    /// and waits for the flusher to land the covering buffer, while the
    /// synchronous modes fall back to a full sync.
    pub fn flush_lsn(&self, lsn: u64) -> io::Result<()> {
        match &self.pipeline {
            Some(shared) => shared.flush_lsn(lsn),
            None => {
                let mut inner = self.inner.lock();
                if lsn <= inner.flushed_len {
                    Ok(())
                } else {
                    inner.sync_and_publish()
                }
            }
        }
    }

    /// The global LSN of the last appended byte (pipelined mode; the
    /// synchronous modes report the epoch-relative log length).
    #[must_use]
    pub fn latest_lsn(&self) -> u64 {
        match &self.pipeline {
            Some(shared) => shared.state.lock().expect(PIPE_LOCK).latest_lsn,
            None => self.inner.lock().storage.len(),
        }
    }

    /// The durable LSN boundary: everything at or below survives a
    /// crash (directly, or folded into a durable checkpoint).
    #[must_use]
    pub fn last_flushed_lsn(&self) -> u64 {
        match &self.pipeline {
            Some(shared) => shared.state.lock().expect(PIPE_LOCK).last_flushed_lsn,
            None => self.inner.lock().flushed_len,
        }
    }

    /// Drive one flusher iteration by hand (harness mode — see
    /// [`PipelineConfig::manual_flusher`]): the crash sweep uses it to
    /// cut the device at exact buffer boundaries, and the model checker
    /// runs it as a virtual task. Returns `Ok(false)` once shut down and
    /// drained.
    pub fn flusher_step(&self) -> io::Result<bool> {
        self.pipeline
            .as_ref()
            .expect("flusher_step is a pipelined-mode API")
            .step(crate::sched::active())
    }

    /// Seal the active buffer onto the flusher queue without waiting
    /// for any boundary (harness mode companion to
    /// [`Wal::flusher_step`]).
    pub fn seal_active(&self) {
        let shared = self
            .pipeline
            .as_ref()
            .expect("seal_active is a pipelined-mode API");
        let sealed = {
            let mut state = shared.state.lock().expect(PIPE_LOCK);
            shared.seal_locked(&mut state)
        };
        if sealed {
            crate::sched::progress("wal.buffer.sealed");
        }
    }

    /// Stop accepting flusher work after the queue drains: pending
    /// sealed buffers still land, the unsealed active tail is the loss
    /// window (exactly like dropping a synchronous writer with an
    /// unsynced tail). Idempotent; `Drop` calls it too.
    pub fn shutdown_flusher(&self) {
        if let Some(shared) = &self.pipeline {
            shared.state.lock().expect(PIPE_LOCK).shutdown = true;
            shared.work_cv.notify_all();
            crate::sched::progress("wal.buffer.shutdown");
        }
    }

    /// Model-checker mutation hook: make the flusher publish each buffer
    /// *before* syncing it. This plants the exact bug class the shipping
    /// contract forbids; `tests/mcheck.rs` proves the checker finds it.
    #[cfg(feature = "mcheck")]
    pub fn mutate_publish_before_sync(&self) {
        self.pipeline
            .as_ref()
            .expect("mutation targets the pipelined writer")
            .state
            .lock()
            .expect(PIPE_LOCK)
            .publish_before_sync = true;
    }

    /// Whether enough commit points accumulated for an automatic
    /// checkpoint.
    #[must_use]
    pub fn wants_checkpoint(&self) -> bool {
        let inner = self.inner.lock();
        inner.config.checkpoint_every > 0
            && inner.commits_since_checkpoint >= inner.config.checkpoint_every
    }

    /// Take a checkpoint now: serialize the shadow store + replay state
    /// into one record and truncate the log to it (atomically, synced).
    /// Consistent under concurrency — the snapshot comes from the
    /// writer's own shadow of the log, never from the live store.
    pub fn checkpoint(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if let Some(shared) = &self.pipeline {
            return Self::checkpoint_pipelined(shared, &mut inner);
        }
        let cp = inner.shadow.to_checkpoint(&inner.shadow_store);
        let mut framed = Vec::new();
        write_frame(&mut framed, &WalRecord::Checkpoint(Box::new(cp)).encode());
        inner.storage.reset(&framed)?;
        inner.stats.checkpoints += 1;
        inner.stats.syncs += 1;
        inner.commits_since_checkpoint = 0;
        inner.unsynced_commits = 0;
        // The truncation rewrote history: unsynced bytes are gone (their
        // effects live inside the checkpoint), and the replica must
        // re-tail from the new epoch's single frame.
        inner.unshipped.clear();
        inner.flushed_len = framed.len() as u64;
        inner.epoch += 1;
        let lsn = inner.storage.len();
        let epoch = inner.epoch;
        inner.obs.emit(EventKind::WalSync { lsn, epoch });
        if let Some(shipper) = &inner.shipper {
            shipper.restart_epoch(&framed);
            inner.obs.emit(EventKind::ShipPublish { lsn, epoch });
        }
        Ok(())
    }

    /// The pipelined checkpoint. The writer mutex (held by the caller)
    /// fences appenders; the in-flight buffer — if any — is waited out,
    /// and then the truncation, the epoch bump, the boundary advance and
    /// the shipper restart all happen under the state lock, atomically
    /// with respect to the flusher. Sealed-but-unflushed buffers are
    /// discarded exactly like the synchronous writer's unsynced tail:
    /// their effects live inside the checkpoint, so the boundary jumps
    /// *forward* to `latest_lsn` and every waiter wakes durable.
    fn checkpoint_pipelined(shared: &PipelineShared, inner: &mut WalInner) -> io::Result<()> {
        let cp = inner.shadow.to_checkpoint(&inner.shadow_store);
        let mut framed = Vec::new();
        write_frame(&mut framed, &WalRecord::Checkpoint(Box::new(cp)).encode());
        let mut state = shared.state.lock().expect(PIPE_LOCK);
        while state.flushing {
            if crate::sched::active() {
                drop(state);
                crate::sched::block_point("wal.buffer.checkpoint");
                state = shared.state.lock().expect(PIPE_LOCK);
            } else {
                state = shared.boundary_cv.wait(state).expect(PIPE_LOCK);
            }
        }
        PipelineShared::io_error_locked(&state)?;
        let mut storage = state.storage.take().expect("not flushing");
        let reset = storage.reset(&framed);
        state.storage = Some(storage);
        reset?;
        state.sealed.clear();
        state.active.clear();
        state.active_commits = 0;
        state.sealed_lsn = state.latest_lsn;
        state.last_flushed_lsn = state.latest_lsn;
        state.syncs += 1;
        state.epoch += 1;
        state.epoch_len = framed.len() as u64;
        inner.stats.checkpoints += 1;
        inner.commits_since_checkpoint = 0;
        let lsn = state.latest_lsn;
        let epoch = state.epoch;
        state.obs.emit(EventKind::WalSync { lsn, epoch });
        if let Some(shipper) = &state.shipper {
            shipper.restart_epoch(&framed);
            state.obs.emit(EventKind::ShipPublish { lsn, epoch });
        }
        drop(state);
        shared.boundary_cv.notify_all();
        crate::sched::progress("wal.buffer.checkpoint");
        Ok(())
    }

    /// Checkpoint if the schedule says so (call from the commit path).
    pub fn maybe_checkpoint(&self) -> io::Result<bool> {
        if self.wants_checkpoint() {
            self.checkpoint()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        let mut stats = self.inner.lock().stats;
        if let Some(shared) = &self.pipeline {
            stats.syncs += shared.state.lock().expect(PIPE_LOCK).syncs;
        }
        stats
    }

    /// Bytes appended to the current log (post-truncation), including
    /// buffered-but-unflushed bytes in pipelined mode.
    #[must_use]
    pub fn log_len(&self) -> u64 {
        match &self.pipeline {
            None => self.inner.lock().storage.len(),
            Some(shared) => {
                let state = shared.state.lock().expect(PIPE_LOCK);
                let pending: usize = state.sealed.iter().map(|b| b.bytes.len()).sum();
                state.epoch_len + pending as u64 + state.active.len() as u64
            }
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shutdown_flusher();
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{StageFlags, WriteImage};
    use crate::recover::recover;
    use croesus_store::{Key, Value};
    use std::sync::Arc;

    fn stage_record(txn: u64, stage: u32, flags: u8, key: &str, post: i64) -> StageRecord {
        StageRecord {
            txn: TxnId(txn),
            stage,
            total: 2,
            flags: StageFlags(flags),
            reads: vec![],
            writes: vec![Key::new(key)],
            images: vec![WriteImage {
                key: Key::new(key),
                pre: None,
                post: Some(Arc::new(Value::Int(post))),
            }],
        }
    }

    const CP: u8 = StageFlags::COMMIT_POINT;
    const FIN: u8 = StageFlags::FINAL;
    const REG: u8 = StageFlags::REGISTER;

    #[test]
    fn group_commit_amortizes_syncs() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(4));
        for i in 0..8u64 {
            wal.append_stage(stage_record(i, 0, CP, "k", i as i64))
                .unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.commit_points, 8);
        assert_eq!(stats.syncs, 2, "4-commit groups → 2 syncs for 8 commits");
        assert_eq!(probe.unsynced_len(), 0);
    }

    #[test]
    fn strict_mode_syncs_every_commit() {
        let (wal, _) = Wal::in_memory(WalConfig::strict());
        for i in 0..5u64 {
            wal.append_stage(stage_record(i, 0, CP, "k", 0)).unwrap();
        }
        assert_eq!(wal.stats().syncs, 5);
    }

    #[test]
    fn unsynced_tail_is_lost_synced_prefix_survives() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(2));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap(); // sync here
        wal.append_stage(stage_record(3, 0, CP, "c", 3)).unwrap(); // buffered
        let crash = probe.durable();
        let r = recover(&crash);
        assert!(r.store.contains(&"a".into()));
        assert!(r.store.contains(&"b".into()));
        assert!(
            !r.store.contains(&"c".into()),
            "the unsynced commit is inside the group-commit loss window"
        );
        wal.flush().unwrap();
        let r = recover(&probe.durable());
        assert!(r.store.contains(&"c".into()));
    }

    #[test]
    fn non_commit_records_do_not_trigger_sync() {
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage_record(1, 0, 0, "a", 1)).unwrap(); // MS-SR early stage
        assert_eq!(wal.stats().syncs, 0);
        assert!(probe.unsynced_len() > 0);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_continues_from_it() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(1));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.append_stage(StageRecord {
            images: vec![WriteImage {
                key: "a".into(),
                pre: Some(Arc::new(Value::Int(1))),
                post: Some(Arc::new(Value::Int(2))),
            }],
            ..stage_record(1, 1, CP | FIN, "a", 2)
        })
        .unwrap();
        let before = wal.log_len();
        // The checkpoint serializes the writer's own shadow of the log —
        // no live store involved.
        wal.checkpoint().unwrap();
        assert!(wal.log_len() < before, "checkpoint shrank the log");
        // More activity after the checkpoint. Stage 0 registers its
        // footprint, like every real lock-releasing initial commit.
        wal.append_stage(stage_record(2, 0, CP | REG, "b", 9))
            .unwrap();
        let r = recover(&probe.durable());
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert_eq!(r.store.get(&"b".into()).as_deref(), Some(&Value::Int(9)));
        assert_eq!(r.unfinalized, vec![TxnId(2)]);
        assert_eq!(r.finalized, 1, "the finalized count survives truncation");
    }

    #[test]
    fn auto_checkpoint_schedule_fires() {
        let config = WalConfig {
            group_commit: 1,
            checkpoint_every: 3,
        };
        let (wal, _) = Wal::in_memory(config);
        for i in 0..7u64 {
            wal.append_stage(stage_record(i, 0, CP | FIN, "k", 0))
                .unwrap();
            wal.maybe_checkpoint().unwrap();
        }
        assert_eq!(wal.stats().checkpoints, 2, "commits 3 and 6 checkpoint");
    }

    #[test]
    fn checkpoint_mid_stage_on_another_thread_stays_committed_only() {
        // A concurrent thread has mutated the live store mid-stage (its
        // record not yet appended). The checkpoint must not see it: the
        // snapshot comes from the shadow store, which only moves at
        // appended commit points.
        let (wal, probe) = Wal::in_memory(WalConfig::group(1));
        wal.append_stage(stage_record(1, 0, CP | FIN, "committed", 1))
            .unwrap();
        // (The live store — with some other thread's uncommitted write —
        // is simply never consulted; there is nothing to pass in.)
        wal.checkpoint().unwrap();
        let r = recover(&probe.durable());
        assert_eq!(
            r.store.get(&"committed".into()).as_deref(),
            Some(&Value::Int(1))
        );
        assert_eq!(r.store.len(), 1, "only logged commits reach checkpoints");
    }

    #[test]
    fn tpc_decision_is_synced_immediately() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(1000));
        wal.append_tpc_decision(TxnId(77), true).unwrap();
        let r = recover(&probe.durable());
        assert_eq!(r.tpc_decisions, vec![(TxnId(77), true)]);
    }

    #[test]
    fn file_backed_wal_survives_a_real_roundtrip() {
        let dir = crate::storage::scratch_dir("writer-test");
        let path = dir.join("edge-0.wal");
        let wal = Wal::create(&path, WalConfig::strict()).unwrap();
        wal.append_stage(stage_record(1, 0, CP | REG, "k", 42))
            .unwrap();
        drop(wal);
        let r = crate::recover::recover_file(&path).unwrap();
        assert_eq!(r.store.get(&"k".into()).as_deref(), Some(&Value::Int(42)));
        assert_eq!(r.unfinalized, vec![TxnId(1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shipped_image_equals_durable_image_at_every_sync() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(2));
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        assert_eq!(shipper.shipped_len(), 0, "unsynced bytes are never shipped");
        wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap(); // group sync
        assert_eq!(shipper.image(), probe.durable());
        wal.append_stage(stage_record(3, 0, CP, "c", 3)).unwrap(); // buffered
        wal.flush().unwrap();
        assert_eq!(shipper.image(), probe.durable());
    }

    #[test]
    fn checkpoint_restarts_the_shipping_epoch() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(1));
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        wal.append_stage(stage_record(1, 0, CP | FIN, "a", 1))
            .unwrap();
        wal.checkpoint().unwrap();
        assert_eq!(shipper.epoch(), 1);
        assert_eq!(shipper.image(), probe.durable());
        let r = recover(&shipper.image());
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    #[should_panic(expected = "before the first append")]
    fn attaching_a_shipper_to_a_dirty_log_panics() {
        let (wal, _) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.attach_shipper(Arc::new(LogShipper::new()));
    }

    #[test]
    fn resume_restarts_the_log_as_a_checkpoint_and_continues() {
        // A crash after one unfinalized commit, then a resumed writer over
        // the recovered state.
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage_record(1, 0, CP | REG, "a", 1))
            .unwrap();
        wal.append_stage(stage_record(9, 0, 0, "held", 5)).unwrap(); // MS-SR mid-flight
        wal.flush().unwrap(); // the mid-flight record reaches the disk...
        let r = recover(&probe.durable()); // ...then the process dies
        assert_eq!(r.unfinalized, vec![TxnId(1)]);

        let shipper = Arc::new(LogShipper::new());
        let probe2 = MemStorage::new();
        let resumed = Wal::resume(
            Box::new(probe2.clone()),
            WalConfig::strict(),
            r.state,
            &r.store,
            Some(Arc::clone(&shipper)),
        )
        .unwrap();
        assert_eq!(shipper.image(), probe2.durable());
        // New work continues against the resumed log.
        resumed
            .append_stage(stage_record(1, 1, CP | FIN, "a", 2))
            .unwrap();
        let r2 = recover(&probe2.durable());
        assert_eq!(r2.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert!(r2.unfinalized.is_empty(), "txn 1 finalized after resume");
        assert!(
            !r2.store.contains(&"held".into()),
            "the dead mid-flight write never reappears"
        );
        assert_eq!(r2.next_txn, 10, "the id high-water mark survived resume");
    }

    fn manual() -> PipelineConfig {
        PipelineConfig {
            coalescer: None,
            manual_flusher: true,
        }
    }

    #[test]
    fn pipelined_manual_boundary_advances_monotonically() {
        let (wal, probe) = Wal::pipelined_in_memory(WalConfig::group(2), manual());
        assert!(wal.is_pipelined());
        let l1 = wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        // One commit in a group of two: nothing sealed, nothing durable.
        assert_eq!(wal.last_flushed_lsn(), 0);
        let l2 = wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap();
        assert!(l2 > l1, "LSNs are monotone byte offsets");
        assert_eq!(wal.latest_lsn(), l2);
        // The second commit sealed the buffer onto the flusher queue, but
        // no flusher has run: still not durable.
        assert_eq!(wal.last_flushed_lsn(), 0);
        assert_eq!(probe.durable().len(), 0);
        assert!(wal.flusher_step().unwrap(), "one sealed buffer to land");
        assert_eq!(wal.last_flushed_lsn(), l2);
        assert_eq!(probe.durable().len(), l2 as usize);
        assert!(!wal.flusher_step().unwrap(), "queue drained");
        let r = recover(&probe.durable());
        assert!(r.store.contains(&"a".into()));
        assert!(r.store.contains(&"b".into()));
    }

    #[test]
    fn pipelined_flush_lsn_returns_at_boundary_not_tail() {
        let (wal, probe) = Wal::pipelined_in_memory(WalConfig::group(2), manual());
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        let sealed = wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap();
        wal.flusher_step().unwrap();
        let tail = wal.append_stage(stage_record(3, 0, CP, "c", 3)).unwrap();
        // Waiting for an already-durable LSN is a pure boundary check; the
        // newer unsealed commit stays in the loss window.
        wal.flush_lsn(sealed).unwrap();
        assert!(
            !recover(&probe.durable()).store.contains(&"c".into()),
            "flush_lsn(sealed) must not drain the active buffer"
        );
        // Waiting past the boundary seals and (manual mode) pumps inline.
        wal.flush_lsn(tail).unwrap();
        assert_eq!(wal.last_flushed_lsn(), tail);
        assert!(recover(&probe.durable()).store.contains(&"c".into()));
    }

    #[test]
    fn pipelined_publishes_only_after_the_sync() {
        let (wal, probe) = Wal::pipelined_in_memory(WalConfig::group(2), manual());
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap();
        assert_eq!(
            shipper.shipped_len(),
            0,
            "sealed-but-unsynced bytes must not be published"
        );
        wal.flusher_step().unwrap();
        assert_eq!(shipper.image(), probe.durable());
        assert_eq!(shipper.shipped_len(), probe.durable().len());
    }

    #[test]
    fn pipelined_checkpoint_discards_queue_and_restarts_epoch() {
        let (wal, probe) = Wal::pipelined_in_memory(WalConfig::group(2), manual());
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        wal.append_stage(stage_record(1, 0, CP | REG, "a", 1))
            .unwrap();
        wal.append_stage(stage_record(1, 1, CP | FIN, "a", 2))
            .unwrap();
        wal.flusher_step().unwrap();
        // Sealed-but-unsynced work racing the checkpoint: its effects ride
        // in the checkpoint image instead of the discarded buffer.
        wal.append_stage(stage_record(2, 0, CP | REG, "b", 9))
            .unwrap();
        wal.append_stage(stage_record(3, 0, CP | REG, "c", 7))
            .unwrap(); // seals
        let tail = wal.latest_lsn();
        wal.checkpoint().unwrap();
        assert_eq!(shipper.epoch(), 1, "checkpoint bumped the shipping epoch");
        assert_eq!(shipper.image(), probe.durable(), "full re-tail");
        assert_eq!(
            wal.last_flushed_lsn(),
            tail,
            "checkpoint jumps the boundary to the tail"
        );
        assert!(
            !wal.flusher_step().unwrap(),
            "the stale sealed buffer was discarded, not flushed"
        );
        let r = recover(&probe.durable());
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert_eq!(r.store.get(&"b".into()).as_deref(), Some(&Value::Int(9)));
        assert_eq!(r.store.get(&"c".into()).as_deref(), Some(&Value::Int(7)));
        // LSNs keep counting across the checkpoint — the space is global.
        let next = wal.append_stage(stage_record(4, 0, CP, "d", 4)).unwrap();
        assert!(next > tail);
    }

    #[test]
    fn pipelined_spawned_flusher_drains_on_flush_and_drop() {
        let (wal, probe) = Wal::pipelined_in_memory(
            WalConfig::group(4),
            PipelineConfig {
                coalescer: None,
                manual_flusher: false,
            },
        );
        for i in 0..32u64 {
            wal.append_stage(stage_record(i, 0, CP, "k", i as i64))
                .unwrap();
        }
        wal.flush().unwrap();
        let stats = wal.stats();
        assert_eq!(stats.commit_points, 32);
        assert!(stats.syncs >= 1, "the flusher thread landed buffers");
        assert!(
            stats.syncs <= 9,
            "at most one sync per seal (8 groups) + the final flush"
        );
        let r = recover(&probe.durable());
        assert_eq!(r.store.get(&"k".into()).as_deref(), Some(&Value::Int(31)));
        drop(wal); // joins the flusher without hanging
    }

    #[test]
    fn pipelined_coalesced_edges_share_device_windows() {
        let coalescer = Arc::new(crate::coalesce::SyncCoalescer::new());
        let wals: Vec<_> = (0..4)
            .map(|_| {
                let (wal, probe) = Wal::pipelined_in_memory(
                    WalConfig::group(1),
                    PipelineConfig {
                        coalescer: Some(Arc::clone(&coalescer)),
                        manual_flusher: false,
                    },
                );
                (Arc::new(wal), probe)
            })
            .collect();
        let mut handles = Vec::new();
        for (edge, (wal, _)) in wals.iter().enumerate() {
            let wal = Arc::clone(wal);
            handles.push(std::thread::spawn(move || {
                for i in 0..16u64 {
                    wal.append_stage(stage_record(i, 0, CP, "k", edge as i64))
                        .unwrap();
                }
                wal.flush().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = coalescer.stats();
        assert!(stats.requests >= 4, "every edge's flusher used the device");
        assert!(stats.windows <= stats.requests);
        for (wal, probe) in &wals {
            assert_eq!(wal.last_flushed_lsn(), wal.latest_lsn());
            let r = recover(&probe.durable());
            assert!(r.store.contains(&"k".into()));
            assert_eq!(r.frames, 16, "every commit landed durably");
        }
    }

    #[test]
    fn pipelined_tpc_decision_is_durable_at_return() {
        let (wal, probe) = Wal::pipelined_in_memory(WalConfig::group(64), manual());
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.append_tpc_decision(TxnId(1), true).unwrap();
        // The decision waits on its own LSN boundary: everything up to and
        // including it is durable when the append returns.
        assert_eq!(wal.last_flushed_lsn(), wal.latest_lsn());
        let r = recover(&probe.durable());
        assert!(r.store.contains(&"a".into()));
    }

    #[test]
    fn pipelined_resume_restarts_log_and_epoch() {
        let (wal, probe) = Wal::pipelined_in_memory(WalConfig::group(2), manual());
        wal.append_stage(stage_record(1, 0, CP | REG, "a", 1))
            .unwrap();
        wal.flush().unwrap();
        let r = recover(&probe.durable());
        assert_eq!(r.unfinalized, vec![TxnId(1)]);

        let shipper = Arc::new(LogShipper::new());
        let probe2 = MemStorage::new();
        let resumed = Wal::resume_pipelined(
            Box::new(probe2.clone()),
            WalConfig::group(2),
            manual(),
            r.state,
            &r.store,
            Some(Arc::clone(&shipper)),
        )
        .unwrap();
        assert!(resumed.is_pipelined());
        assert_eq!(shipper.image(), probe2.durable());
        assert_eq!(shipper.epoch(), 1, "resume = epoch restart for shippers");
        resumed
            .append_stage(stage_record(1, 1, CP | FIN, "a", 2))
            .unwrap();
        resumed.flush().unwrap();
        let r2 = recover(&probe2.durable());
        assert_eq!(r2.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert!(r2.unfinalized.is_empty());
        assert_eq!(shipper.image(), probe2.durable());
    }
}
