//! The append-side of the log: group commit, checkpoint scheduling,
//! truncation.
//!
//! # Group commit
//!
//! Every record is appended (buffered) immediately, but the
//! fsync-equivalent [`Storage::sync`] runs only when
//! [`WalConfig::group_commit`] commit points have accumulated — one
//! durable flush amortized over a batch of transactions, the classic
//! group-commit trade: bounded loss window (the unsynced tail) for an
//! order-of-magnitude fewer syncs. `group_commit = 1` is strict mode
//! (sync at every commit point); `usize::MAX` never syncs on commit and
//! relies on checkpoints / [`Wal::flush`].
//!
//! # Checkpoints
//!
//! The writer mirrors its own log through the shared
//! [`RecoveryState`] machine *with a shadow store attached* — the exact
//! committed state a from-genesis replay of the log would produce,
//! maintained incrementally under the writer mutex (cheap: the shadow
//! store's `Arc<Value>`s alias the live store's allocations). A
//! checkpoint is therefore a pure serialization of writer-internal
//! state, written as one record that *replaces* the log
//! ([`Storage::reset`]) — truncation and checkpoint are the same atomic
//! step, and it is consistent even while other threads are mid-stage on
//! the live store (their uncommitted writes exist only there, never in
//! the shadow). [`Wal::maybe_checkpoint`] runs one every
//! [`WalConfig::checkpoint_every`] commit points; the executors call it
//! from the commit path.

use std::io;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use croesus_obs::{EdgeObs, EventKind, HistKind};
use croesus_store::{KvStore, TxnId};

use crate::frame::write_frame;
use crate::record::{RetractRecord, StageRecord, WalRecord};
use crate::recover::RecoveryState;
use crate::ship::LogShipper;
use crate::storage::{FileStorage, MemStorage, Storage};

/// Writer tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalConfig {
    /// Commit points per durable sync (1 = strict, `usize::MAX` = only
    /// explicit flushes and checkpoints).
    pub group_commit: usize,
    /// Commit points between automatic checkpoints (0 = never).
    pub checkpoint_every: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            group_commit: 8,
            checkpoint_every: 1024,
        }
    }
}

impl WalConfig {
    /// Strict durability: sync at every commit point.
    #[must_use]
    pub fn strict() -> Self {
        WalConfig {
            group_commit: 1,
            ..WalConfig::default()
        }
    }

    /// Group commit with the given batch size.
    #[must_use]
    pub fn group(group_commit: usize) -> Self {
        assert!(group_commit >= 1, "group size must be at least 1");
        WalConfig {
            group_commit,
            ..WalConfig::default()
        }
    }
}

/// Counters exposed for benches and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Commit points among them.
    pub commit_points: u64,
    /// Durable syncs performed (group commit amortizes these).
    pub syncs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Bytes handed to storage (excluding checkpoint rewrites).
    pub bytes_appended: u64,
}

struct WalInner {
    storage: Box<dyn Storage>,
    config: WalConfig,
    shadow: RecoveryState,
    /// The committed state at the log tip — what replaying the log now
    /// would rebuild. Values alias the live store's `Arc`s.
    shadow_store: KvStore,
    unsynced_commits: usize,
    commits_since_checkpoint: u64,
    stats: WalStats,
    /// Cloud replication endpoint, when shipping is on. Published to only
    /// inside the sync paths, so the shipped image is exactly the durable
    /// image — a replica can lag but never run ahead of a crash.
    shipper: Option<Arc<LogShipper>>,
    /// Frame bytes appended since the last sync — the batch the next sync
    /// publishes.
    unshipped: Vec<u8>,
    /// Observability stream (disabled by default). Events use the log
    /// length as the LSN and the checkpoint epoch as the epoch, so the
    /// ordering contract's shipped ⊆ durable check is byte-exact.
    obs: EdgeObs,
    /// Checkpoint epoch: bumped at every truncation (mirrors the
    /// shipper's epoch when one is attached).
    epoch: u64,
}

impl WalInner {
    /// Make everything appended durable and publish it to the shipper.
    /// The single exit through which bytes become both synced and shipped.
    fn sync_and_publish(&mut self) -> io::Result<()> {
        let timer = self.obs.is_enabled().then(std::time::Instant::now);
        self.storage.sync()?;
        self.stats.syncs += 1;
        self.unsynced_commits = 0;
        let lsn = self.storage.len();
        if let Some(t0) = timer {
            self.obs.record_duration(HistKind::WalSyncMs, t0.elapsed());
        }
        self.obs.emit(EventKind::WalSync {
            lsn,
            epoch: self.epoch,
        });
        if let Some(shipper) = &self.shipper {
            shipper.publish(&self.unshipped);
            if !self.unshipped.is_empty() {
                self.obs.emit(EventKind::ShipPublish {
                    lsn,
                    epoch: self.epoch,
                });
            }
        }
        self.unshipped.clear();
        Ok(())
    }
}

/// A per-edge write-ahead log. Thread-safe; share via `Arc`.
pub struct Wal {
    inner: Mutex<WalInner>,
}

impl Wal {
    /// A log over any storage backend.
    #[must_use]
    pub fn with_storage(storage: Box<dyn Storage>, config: WalConfig) -> Self {
        Wal {
            inner: Mutex::new(WalInner {
                storage,
                config,
                shadow: RecoveryState::new(),
                shadow_store: KvStore::new(),
                unsynced_commits: 0,
                commits_since_checkpoint: 0,
                stats: WalStats::default(),
                shipper: None,
                unshipped: Vec::new(),
                obs: EdgeObs::disabled(),
                epoch: 0,
            }),
        }
    }

    /// Attach an observability stream: appends, syncs and publishes are
    /// emitted as typed events, and sync latency feeds the per-edge
    /// histogram. Safe to call at any point; the default is disabled.
    pub fn set_obs(&self, obs: EdgeObs) {
        self.inner.lock().obs = obs;
    }

    /// Attach a cloud shipping endpoint. Must happen before the first
    /// append — the writer cannot read already-written bytes back out of
    /// its storage to backfill the replica.
    pub fn attach_shipper(&self, shipper: Arc<LogShipper>) {
        let mut inner = self.inner.lock();
        assert!(
            inner.storage.is_empty(),
            "attach the shipper before the first append"
        );
        inner.shipper = Some(shipper);
    }

    /// The attached shipping endpoint, if any.
    #[must_use]
    pub fn shipper(&self) -> Option<Arc<LogShipper>> {
        self.inner.lock().shipper.clone()
    }

    /// Rebuild a writer over recovered state: the log restarts as a single
    /// checkpoint frame serializing `state` (as recovered — see
    /// [`RecoveryReport::state`](crate::RecoveryReport)) over `store` (the
    /// recovered committed store). Writes the recovered transactions never
    /// committed are abandoned first: their owners died with their locks,
    /// so they can never finish, and their stale pre-images must not
    /// overlay future checkpoints. With a shipper, the replica's tail
    /// restarts at the new epoch.
    pub fn resume(
        storage: Box<dyn Storage>,
        config: WalConfig,
        mut state: RecoveryState,
        store: &KvStore,
        shipper: Option<Arc<LogShipper>>,
    ) -> io::Result<Self> {
        state.abandon_pending();
        let shadow_store = KvStore::new();
        for (key, versioned) in store.snapshot() {
            shadow_store.put(key, versioned.value);
        }
        let cp = state.to_checkpoint(&shadow_store);
        let mut framed = Vec::new();
        write_frame(&mut framed, &WalRecord::Checkpoint(Box::new(cp)).encode());
        let wal = Wal::with_storage(storage, config);
        {
            let mut inner = wal.inner.lock();
            inner.storage.reset(&framed)?;
            inner.shadow = state;
            inner.shadow_store = shadow_store;
            inner.stats.checkpoints += 1;
            inner.stats.syncs += 1;
            inner.epoch = 1;
            if let Some(shipper) = &shipper {
                shipper.restart_epoch(&framed);
            }
            inner.shipper = shipper;
        }
        Ok(wal)
    }

    /// [`resume`](Wal::resume) over a file (truncating whatever is there —
    /// recover from it *first*).
    pub fn resume_file(
        path: impl AsRef<Path>,
        config: WalConfig,
        state: RecoveryState,
        store: &KvStore,
        shipper: Option<Arc<LogShipper>>,
    ) -> io::Result<Self> {
        Wal::resume(
            Box::new(FileStorage::create(path.as_ref())?),
            config,
            state,
            store,
            shipper,
        )
    }

    /// A fresh file-backed log at `path` (truncates an existing file —
    /// recover from it *first* via [`crate::recover_file`]).
    pub fn create(path: impl AsRef<Path>, config: WalConfig) -> io::Result<Self> {
        Ok(Wal::with_storage(
            Box::new(FileStorage::create(path.as_ref())?),
            config,
        ))
    }

    /// A fresh in-memory log; the returned [`MemStorage`] handle shares
    /// the device, for crash simulation.
    #[must_use]
    pub fn in_memory(config: WalConfig) -> (Self, MemStorage) {
        let probe = MemStorage::new();
        let wal = Wal::with_storage(Box::new(probe.clone()), config);
        (wal, probe)
    }

    fn append_record(inner: &mut WalInner, record: &WalRecord) -> io::Result<()> {
        let mut framed = Vec::with_capacity(64);
        write_frame(&mut framed, &record.encode());
        inner.storage.append(&framed)?;
        // Split-borrow: fold into the shadow state *and* shadow store.
        let WalInner {
            shadow,
            shadow_store,
            ..
        } = inner;
        shadow.apply(record, Some(shadow_store));
        inner.stats.records += 1;
        inner.stats.bytes_appended += framed.len() as u64;
        inner.unshipped.extend_from_slice(&framed);
        inner.obs.emit(EventKind::WalAppend {
            lsn: inner.storage.len(),
        });
        Ok(())
    }

    fn commit_point(inner: &mut WalInner) -> io::Result<()> {
        inner.stats.commit_points += 1;
        inner.commits_since_checkpoint += 1;
        inner.unsynced_commits += 1;
        if inner.unsynced_commits >= inner.config.group_commit {
            inner.sync_and_publish()?;
        }
        Ok(())
    }

    /// Log one executed stage. If the record is a commit point, the
    /// group-commit policy decides whether this call pays the sync.
    pub fn append_stage(&self, record: StageRecord) -> io::Result<()> {
        crate::sched::yield_point("wal.append_stage");
        let mut inner = self.inner.lock();
        let is_commit = record.flags.commit_point();
        Self::append_record(&mut inner, &WalRecord::Stage(record))?;
        if is_commit {
            Self::commit_point(&mut inner)?;
        }
        Ok(())
    }

    /// Log the retraction of apology entries (one record per entry, in
    /// rollback order). Durability rides the enclosing stage's commit.
    pub fn append_retracts(
        &self,
        retracts: impl IntoIterator<Item = RetractRecord>,
    ) -> io::Result<()> {
        crate::sched::yield_point("wal.append_retracts");
        let mut inner = self.inner.lock();
        for r in retracts {
            Self::append_record(&mut inner, &WalRecord::Retract(r))?;
        }
        Ok(())
    }

    /// Log a 2PC coordinator decision and sync *immediately* — the
    /// decision must be durable before any participant enters phase 2,
    /// or a coordinator crash leaves them in doubt forever.
    pub fn append_tpc_decision(&self, txn: TxnId, commit: bool) -> io::Result<()> {
        crate::sched::yield_point("wal.append_tpc_decision");
        let mut inner = self.inner.lock();
        Self::append_record(&mut inner, &WalRecord::TpcDecision { txn, commit })?;
        inner.sync_and_publish()
    }

    /// Log the completion of a 2PC transaction's phase 2: every
    /// participant acked, so the decision entry may be forgotten. Not
    /// synced on its own — losing this record merely re-runs an
    /// idempotent phase 2 under presumed abort.
    pub fn append_tpc_end(&self, txn: TxnId) -> io::Result<()> {
        crate::sched::yield_point("wal.append_tpc_end");
        let mut inner = self.inner.lock();
        Self::append_record(&mut inner, &WalRecord::TpcEnd { txn })
    }

    /// Log a settle point: the caller vouches the edge is quiescent (no
    /// frame in flight) and the apology manager dropped all its entries;
    /// the shadow state drops its mirror of them. Durability rides the
    /// next sync — a lost settle only means some entries get re-dropped
    /// by the next one.
    pub fn append_settle(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        Self::append_record(&mut inner, &WalRecord::Settle)
    }

    /// The phase-1 decision the shadow state holds for `txn`, if it has
    /// not been expired by a [`WalRecord::TpcEnd`].
    #[must_use]
    pub fn tpc_decision(&self, txn: TxnId) -> Option<bool> {
        self.inner.lock().shadow.tpc_decision(txn)
    }

    /// Unexpired coordinator decisions currently tracked.
    #[must_use]
    pub fn tpc_decision_count(&self) -> usize {
        self.inner.lock().shadow.tpc_decisions().len()
    }

    /// Registered entries (live or retracted) still mirrored in the shadow
    /// state — what the settle pass keeps bounded.
    #[must_use]
    pub fn shadow_entry_count(&self) -> usize {
        self.inner.lock().shadow.tracked_entries()
    }

    /// Force the durable boundary forward over everything appended.
    pub fn flush(&self) -> io::Result<()> {
        self.inner.lock().sync_and_publish()
    }

    /// Whether enough commit points accumulated for an automatic
    /// checkpoint.
    #[must_use]
    pub fn wants_checkpoint(&self) -> bool {
        let inner = self.inner.lock();
        inner.config.checkpoint_every > 0
            && inner.commits_since_checkpoint >= inner.config.checkpoint_every
    }

    /// Take a checkpoint now: serialize the shadow store + replay state
    /// into one record and truncate the log to it (atomically, synced).
    /// Consistent under concurrency — the snapshot comes from the
    /// writer's own shadow of the log, never from the live store.
    pub fn checkpoint(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let cp = inner.shadow.to_checkpoint(&inner.shadow_store);
        let mut framed = Vec::new();
        write_frame(&mut framed, &WalRecord::Checkpoint(Box::new(cp)).encode());
        inner.storage.reset(&framed)?;
        inner.stats.checkpoints += 1;
        inner.stats.syncs += 1;
        inner.commits_since_checkpoint = 0;
        inner.unsynced_commits = 0;
        // The truncation rewrote history: unsynced bytes are gone (their
        // effects live inside the checkpoint), and the replica must
        // re-tail from the new epoch's single frame.
        inner.unshipped.clear();
        inner.epoch += 1;
        let lsn = inner.storage.len();
        let epoch = inner.epoch;
        inner.obs.emit(EventKind::WalSync { lsn, epoch });
        if let Some(shipper) = &inner.shipper {
            shipper.restart_epoch(&framed);
            inner.obs.emit(EventKind::ShipPublish { lsn, epoch });
        }
        Ok(())
    }

    /// Checkpoint if the schedule says so (call from the commit path).
    pub fn maybe_checkpoint(&self) -> io::Result<bool> {
        if self.wants_checkpoint() {
            self.checkpoint()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        self.inner.lock().stats
    }

    /// Bytes appended to the current log (post-truncation).
    #[must_use]
    pub fn log_len(&self) -> u64 {
        self.inner.lock().storage.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{StageFlags, WriteImage};
    use crate::recover::recover;
    use croesus_store::{Key, Value};
    use std::sync::Arc;

    fn stage_record(txn: u64, stage: u32, flags: u8, key: &str, post: i64) -> StageRecord {
        StageRecord {
            txn: TxnId(txn),
            stage,
            total: 2,
            flags: StageFlags(flags),
            reads: vec![],
            writes: vec![Key::new(key)],
            images: vec![WriteImage {
                key: Key::new(key),
                pre: None,
                post: Some(Arc::new(Value::Int(post))),
            }],
        }
    }

    const CP: u8 = StageFlags::COMMIT_POINT;
    const FIN: u8 = StageFlags::FINAL;
    const REG: u8 = StageFlags::REGISTER;

    #[test]
    fn group_commit_amortizes_syncs() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(4));
        for i in 0..8u64 {
            wal.append_stage(stage_record(i, 0, CP, "k", i as i64))
                .unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.commit_points, 8);
        assert_eq!(stats.syncs, 2, "4-commit groups → 2 syncs for 8 commits");
        assert_eq!(probe.unsynced_len(), 0);
    }

    #[test]
    fn strict_mode_syncs_every_commit() {
        let (wal, _) = Wal::in_memory(WalConfig::strict());
        for i in 0..5u64 {
            wal.append_stage(stage_record(i, 0, CP, "k", 0)).unwrap();
        }
        assert_eq!(wal.stats().syncs, 5);
    }

    #[test]
    fn unsynced_tail_is_lost_synced_prefix_survives() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(2));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap(); // sync here
        wal.append_stage(stage_record(3, 0, CP, "c", 3)).unwrap(); // buffered
        let crash = probe.durable();
        let r = recover(&crash);
        assert!(r.store.contains(&"a".into()));
        assert!(r.store.contains(&"b".into()));
        assert!(
            !r.store.contains(&"c".into()),
            "the unsynced commit is inside the group-commit loss window"
        );
        wal.flush().unwrap();
        let r = recover(&probe.durable());
        assert!(r.store.contains(&"c".into()));
    }

    #[test]
    fn non_commit_records_do_not_trigger_sync() {
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage_record(1, 0, 0, "a", 1)).unwrap(); // MS-SR early stage
        assert_eq!(wal.stats().syncs, 0);
        assert!(probe.unsynced_len() > 0);
    }

    #[test]
    fn checkpoint_truncates_and_recovery_continues_from_it() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(1));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.append_stage(StageRecord {
            images: vec![WriteImage {
                key: "a".into(),
                pre: Some(Arc::new(Value::Int(1))),
                post: Some(Arc::new(Value::Int(2))),
            }],
            ..stage_record(1, 1, CP | FIN, "a", 2)
        })
        .unwrap();
        let before = wal.log_len();
        // The checkpoint serializes the writer's own shadow of the log —
        // no live store involved.
        wal.checkpoint().unwrap();
        assert!(wal.log_len() < before, "checkpoint shrank the log");
        // More activity after the checkpoint. Stage 0 registers its
        // footprint, like every real lock-releasing initial commit.
        wal.append_stage(stage_record(2, 0, CP | REG, "b", 9))
            .unwrap();
        let r = recover(&probe.durable());
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert_eq!(r.store.get(&"b".into()).as_deref(), Some(&Value::Int(9)));
        assert_eq!(r.unfinalized, vec![TxnId(2)]);
        assert_eq!(r.finalized, 1, "the finalized count survives truncation");
    }

    #[test]
    fn auto_checkpoint_schedule_fires() {
        let config = WalConfig {
            group_commit: 1,
            checkpoint_every: 3,
        };
        let (wal, _) = Wal::in_memory(config);
        for i in 0..7u64 {
            wal.append_stage(stage_record(i, 0, CP | FIN, "k", 0))
                .unwrap();
            wal.maybe_checkpoint().unwrap();
        }
        assert_eq!(wal.stats().checkpoints, 2, "commits 3 and 6 checkpoint");
    }

    #[test]
    fn checkpoint_mid_stage_on_another_thread_stays_committed_only() {
        // A concurrent thread has mutated the live store mid-stage (its
        // record not yet appended). The checkpoint must not see it: the
        // snapshot comes from the shadow store, which only moves at
        // appended commit points.
        let (wal, probe) = Wal::in_memory(WalConfig::group(1));
        wal.append_stage(stage_record(1, 0, CP | FIN, "committed", 1))
            .unwrap();
        // (The live store — with some other thread's uncommitted write —
        // is simply never consulted; there is nothing to pass in.)
        wal.checkpoint().unwrap();
        let r = recover(&probe.durable());
        assert_eq!(
            r.store.get(&"committed".into()).as_deref(),
            Some(&Value::Int(1))
        );
        assert_eq!(r.store.len(), 1, "only logged commits reach checkpoints");
    }

    #[test]
    fn tpc_decision_is_synced_immediately() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(1000));
        wal.append_tpc_decision(TxnId(77), true).unwrap();
        let r = recover(&probe.durable());
        assert_eq!(r.tpc_decisions, vec![(TxnId(77), true)]);
    }

    #[test]
    fn file_backed_wal_survives_a_real_roundtrip() {
        let dir = crate::storage::scratch_dir("writer-test");
        let path = dir.join("edge-0.wal");
        let wal = Wal::create(&path, WalConfig::strict()).unwrap();
        wal.append_stage(stage_record(1, 0, CP | REG, "k", 42))
            .unwrap();
        drop(wal);
        let r = crate::recover::recover_file(&path).unwrap();
        assert_eq!(r.store.get(&"k".into()).as_deref(), Some(&Value::Int(42)));
        assert_eq!(r.unfinalized, vec![TxnId(1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shipped_image_equals_durable_image_at_every_sync() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(2));
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        assert_eq!(shipper.shipped_len(), 0, "unsynced bytes are never shipped");
        wal.append_stage(stage_record(2, 0, CP, "b", 2)).unwrap(); // group sync
        assert_eq!(shipper.image(), probe.durable());
        wal.append_stage(stage_record(3, 0, CP, "c", 3)).unwrap(); // buffered
        wal.flush().unwrap();
        assert_eq!(shipper.image(), probe.durable());
    }

    #[test]
    fn checkpoint_restarts_the_shipping_epoch() {
        let (wal, probe) = Wal::in_memory(WalConfig::group(1));
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        wal.append_stage(stage_record(1, 0, CP | FIN, "a", 1))
            .unwrap();
        wal.checkpoint().unwrap();
        assert_eq!(shipper.epoch(), 1);
        assert_eq!(shipper.image(), probe.durable());
        let r = recover(&shipper.image());
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    #[should_panic(expected = "before the first append")]
    fn attaching_a_shipper_to_a_dirty_log_panics() {
        let (wal, _) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage_record(1, 0, CP, "a", 1)).unwrap();
        wal.attach_shipper(Arc::new(LogShipper::new()));
    }

    #[test]
    fn resume_restarts_the_log_as_a_checkpoint_and_continues() {
        // A crash after one unfinalized commit, then a resumed writer over
        // the recovered state.
        let (wal, probe) = Wal::in_memory(WalConfig::strict());
        wal.append_stage(stage_record(1, 0, CP | REG, "a", 1))
            .unwrap();
        wal.append_stage(stage_record(9, 0, 0, "held", 5)).unwrap(); // MS-SR mid-flight
        wal.flush().unwrap(); // the mid-flight record reaches the disk...
        let r = recover(&probe.durable()); // ...then the process dies
        assert_eq!(r.unfinalized, vec![TxnId(1)]);

        let shipper = Arc::new(LogShipper::new());
        let probe2 = MemStorage::new();
        let resumed = Wal::resume(
            Box::new(probe2.clone()),
            WalConfig::strict(),
            r.state,
            &r.store,
            Some(Arc::clone(&shipper)),
        )
        .unwrap();
        assert_eq!(shipper.image(), probe2.durable());
        // New work continues against the resumed log.
        resumed
            .append_stage(stage_record(1, 1, CP | FIN, "a", 2))
            .unwrap();
        let r2 = recover(&probe2.durable());
        assert_eq!(r2.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert!(r2.unfinalized.is_empty(), "txn 1 finalized after resume");
        assert!(
            !r2.store.contains(&"held".into()),
            "the dead mid-flight write never reappears"
        );
        assert_eq!(r2.next_txn, 10, "the id high-water mark survived resume");
    }
}
