//! Log replay and crash recovery.
//!
//! [`RecoveryState`] is the one redo/undo state machine of the subsystem.
//! It runs in two places:
//!
//! * **live**, inside the [`Wal`](crate::Wal) writer, folding every
//!   appended record with no store attached — so the writer always knows
//!   exactly what its log contains and can serialize a checkpoint without
//!   asking the executor anything beyond a store snapshot;
//! * **replay**, inside [`recover`], folding the decoded records of a log
//!   byte stream into a fresh [`KvStore`].
//!
//! Redo discipline: a stage's write images are *buffered* per transaction
//! until a record with [`StageFlags::COMMIT_POINT`](crate::StageFlags::COMMIT_POINT) arrives, then applied
//! in order. MS-IA and the staged discipline mark every stage, so their
//! effects reappear exactly as clients saw them; MS-SR marks only final
//! commit, so a transaction that crashed mid-flight leaves no trace — its
//! locks guaranteed nobody read the lost writes.
//!
//! The [`RecoveryReport`] also names every transaction whose initial
//! commit survived but whose final commit did not. Those are the paper's
//! §4.4 obligation: the client already saw their initial results, so the
//! recovering edge must retract them *with apologies* — see
//! `croesus_txn::recovery` for the glue that feeds them through
//! `ApologyManager::retract`.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::Path;
use std::sync::Arc;

use croesus_store::{Key, KvStore, TxnId, UndoLog, Value};

use crate::frame::{FrameReader, TailState};
use crate::record::{
    CheckpointEntry, CheckpointRecord, CheckpointTxn, RetractRecord, StageRecord, WalRecord,
    WriteImage,
};

/// One registered (retractable) footprint rebuilt from the log — the
/// durable mirror of an `ApologyManager` entry.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredEntry {
    /// The owning transaction.
    pub txn: TxnId,
    /// Registration sequence number (cascade ordering).
    pub seq: u64,
    /// Declared reads of the registered stage.
    pub reads: Vec<Key>,
    /// Declared writes of the registered stage.
    pub writes: Vec<Key>,
    /// Undo pre-images (first write wins), in record order.
    pub undo: Vec<(Key, Option<Arc<Value>>)>,
}

/// One registered entry plus its retraction bit. Retraction is per entry
/// (not per transaction): a live retraction consumes the entries that
/// existed at that moment, but a later stage of the same transaction may
/// register fresh live entries afterwards — exactly the `ApologyManager`
/// behaviour.
#[derive(Clone, Debug)]
struct EntryState {
    entry: RecoveredEntry,
    retracted: bool,
}

/// Per-transaction replay state.
#[derive(Clone, Debug, Default)]
struct TxnState {
    /// Write images logged but not yet covered by a commit point.
    pending: Vec<WriteImage>,
    /// Registered entries, in registration order.
    entries: Vec<EntryState>,
    initial_committed: bool,
    finalized: bool,
}

impl TxnState {
    fn has_live_entry(&self) -> bool {
        self.entries.iter().any(|e| !e.retracted)
    }
}

/// The redo/undo state machine over a record stream.
#[derive(Clone, Debug, Default)]
pub struct RecoveryState {
    txns: BTreeMap<u64, TxnState>,
    next_seq: u64,
    /// Running count of final commits (transactions themselves are pruned
    /// once settled, so this cannot be derived from `txns`).
    finalized_total: u64,
    tpc: Vec<(TxnId, bool)>,
    /// One past the highest transaction id seen — the id a replacement
    /// node must continue from after taking over the partition.
    next_txn: u64,
}

impl RecoveryState {
    /// An empty state (fresh log).
    #[must_use]
    pub fn new() -> Self {
        RecoveryState::default()
    }

    /// Fold one record. With `store = Some(..)` (replay) the store
    /// mutations are performed; with `None` (live shadow) only the
    /// bookkeeping moves — the executor already mutated the real store.
    pub fn apply(&mut self, record: &WalRecord, store: Option<&KvStore>) {
        match record {
            WalRecord::Stage(s) => self.apply_stage(s, store),
            WalRecord::Retract(r) => self.apply_retract(r, store),
            WalRecord::TpcDecision { txn, commit } => {
                if let Some(slot) = self.tpc.iter_mut().find(|(t, _)| t == txn) {
                    slot.1 = *commit;
                } else {
                    self.tpc.push((*txn, *commit));
                }
            }
            WalRecord::Checkpoint(cp) => {
                *self = RecoveryState::from_checkpoint(cp);
                if let Some(store) = store {
                    store.clear();
                    for (k, v) in &cp.store {
                        store.put(k.clone(), Arc::clone(v));
                    }
                }
            }
            WalRecord::Settle => self.settle(),
            WalRecord::TpcEnd { txn } => {
                self.tpc.retain(|(t, _)| t != txn);
            }
        }
    }

    /// Replay of a [`WalRecord::Settle`]: drop every registered entry and
    /// every transaction state that is now inert. The live side only logs
    /// a settle at quiescence (no frame in flight), where no future
    /// retraction cascade can reach the dropped entries.
    fn settle(&mut self) {
        for t in self.txns.values_mut() {
            t.entries.clear();
        }
        self.txns
            .retain(|_, t| !t.pending.is_empty() || !t.finalized);
    }

    fn apply_stage(&mut self, s: &StageRecord, store: Option<&KvStore>) {
        self.next_txn = self.next_txn.max(s.txn.0 + 1);
        let t = self.txns.entry(s.txn.0).or_default();
        t.pending.extend(s.images.iter().cloned());
        if !s.flags.commit_point() {
            return;
        }
        let drained = std::mem::take(&mut t.pending);
        if let Some(store) = store {
            for w in &drained {
                match &w.post {
                    Some(v) => {
                        store.put(w.key.clone(), Arc::clone(v));
                    }
                    None => {
                        store.delete(&w.key);
                    }
                }
            }
        }
        t.initial_committed = true;
        if s.flags.register() {
            // The live executors dedupe through `UndoLog` (first write to
            // a key keeps its pre-image); rebuild through the same type so
            // the rule lives in exactly one place.
            let mut undo = UndoLog::new();
            for w in &drained {
                undo.record(w.key.clone(), w.pre.clone());
            }
            t.entries.push(EntryState {
                entry: RecoveredEntry {
                    txn: s.txn,
                    seq: self.next_seq,
                    reads: s.reads.clone(),
                    writes: s.writes.clone(),
                    undo: undo
                        .records()
                        .iter()
                        .map(|r| (r.key.clone(), r.previous.clone()))
                        .collect(),
                },
                retracted: false,
            });
            self.next_seq += 1;
        }
        if s.flags.is_final() {
            if !t.finalized {
                self.finalized_total += 1;
            }
            t.finalized = true;
        }
        self.prune(s.txn);
    }

    fn apply_retract(&mut self, r: &RetractRecord, store: Option<&KvStore>) {
        if let Some(store) = store {
            for (k, v) in &r.restores {
                store.restore(k.clone(), v.clone());
            }
        }
        if let Some(t) = self.txns.get_mut(&r.txn.0) {
            // The live retraction consumed every entry existing right now;
            // entries registered by later stages stay live.
            for e in &mut t.entries {
                e.retracted = true;
            }
        }
        self.prune(r.txn);
    }

    /// Drop a transaction's state once nothing about it can matter again:
    /// finalized, nothing buffered, and no live entry a future cascade
    /// could retract. Keeps the writer's shadow state (and checkpoints)
    /// from growing with every transaction ever executed. Finalized
    /// transactions that still hold live entries (MS-IA initial guesses)
    /// are retained — the live `ApologyManager` keeps those too; see the
    /// ROADMAP settle-and-prune item.
    fn prune(&mut self, txn: TxnId) {
        if let Some(t) = self.txns.get(&txn.0) {
            if t.finalized && t.pending.is_empty() && !t.has_live_entry() {
                self.txns.remove(&txn.0);
            }
        }
    }

    /// Live registered entries (not yet retracted), in sequence order —
    /// the registration order a rebuilt `ApologyManager` must use.
    #[must_use]
    pub fn live_entries(&self) -> Vec<RecoveredEntry> {
        let mut entries: Vec<RecoveredEntry> = self
            .txns
            .values()
            .flat_map(|t| t.entries.iter())
            .filter(|e| !e.retracted)
            .map(|e| e.entry.clone())
            .collect();
        entries.sort_by_key(|e| e.seq);
        entries
    }

    /// Transactions whose initial commit survived but whose final commit
    /// did not, and that still have a live (unretracted) footprint — the
    /// set the recovering edge owes retractions and apologies for. In
    /// commit order.
    #[must_use]
    pub fn unfinalized(&self) -> Vec<TxnId> {
        let mut with_seq: Vec<(u64, TxnId)> = self
            .txns
            .iter()
            .filter(|(_, t)| t.initial_committed && !t.finalized && t.has_live_entry())
            .map(|(id, t)| {
                let seq = t
                    .entries
                    .iter()
                    .find(|e| !e.retracted)
                    .map_or(u64::MAX, |e| e.entry.seq);
                (seq, TxnId(*id))
            })
            .collect();
        with_seq.sort();
        with_seq.into_iter().map(|(_, t)| t).collect()
    }

    /// Coordinator decisions seen (latest per transaction).
    #[must_use]
    pub fn tpc_decisions(&self) -> &[(TxnId, bool)] {
        &self.tpc
    }

    /// The phase-1 decision logged for `txn`, if any.
    #[must_use]
    pub fn tpc_decision(&self, txn: TxnId) -> Option<bool> {
        self.tpc
            .iter()
            .find(|(t, _)| *t == txn)
            .map(|(_, commit)| *commit)
    }

    /// Count of transactions whose final commit this state has seen.
    #[must_use]
    pub fn finalized_count(&self) -> usize {
        self.finalized_total as usize
    }

    /// One past the highest transaction id seen (0 for an empty log) — a
    /// replacement node continues assigning ids from here.
    #[must_use]
    pub fn next_txn(&self) -> u64 {
        self.next_txn
    }

    /// Count of registered entries still tracked (live or retracted) —
    /// what settle-and-prune keeps bounded.
    #[must_use]
    pub fn tracked_entries(&self) -> usize {
        self.txns.values().map(|t| t.entries.len()).sum()
    }

    /// Forget writes that were logged but never reached a commit point.
    /// After a crash, the transactions that buffered them are dead — their
    /// locks died with the process, so the writes can never commit — but a
    /// rebuilt writer must not overlay their stale pre-images onto future
    /// checkpoints. States left empty by the drop are removed.
    pub fn abandon_pending(&mut self) {
        for t in self.txns.values_mut() {
            t.pending.clear();
        }
        self.txns
            .retain(|_, t| t.initial_committed || !t.entries.is_empty());
    }

    /// Serialize into a checkpoint record. `store` is the *live* store;
    /// writes still pending (logged without a commit point — MS-SR
    /// transactions caught mid-flight) are overlaid back to their
    /// pre-images so the checkpointed store contains only committed state,
    /// exactly like a from-genesis replay would produce.
    #[must_use]
    pub fn to_checkpoint(&self, store: &KvStore) -> CheckpointRecord {
        // First pre-image per key wins, per transaction; concurrent
        // pending transactions hold exclusive locks, so their write sets
        // are disjoint and the union is order-independent.
        let mut overlay: HashMap<Key, Option<Arc<Value>>> = HashMap::new();
        for t in self.txns.values() {
            for w in &t.pending {
                overlay
                    .entry(w.key.clone())
                    .or_insert_with(|| w.pre.clone());
            }
        }
        let mut pairs: Vec<(Key, Arc<Value>)> = Vec::new();
        for (key, versioned) in store.snapshot() {
            match overlay.remove(&key) {
                None => pairs.push((key, versioned.value)),
                Some(Some(pre)) => pairs.push((key, pre)),
                Some(None) => {} // key did not exist before the pending write
            }
        }
        // Keys the pending writes deleted from the store but that existed
        // before them.
        for (key, pre) in overlay {
            if let Some(pre) = pre {
                pairs.push((key, pre));
            }
        }
        pairs.sort_by(|a, b| a.0.cmp(&b.0));

        CheckpointRecord {
            store: pairs,
            txns: self
                .txns
                .iter()
                .map(|(id, t)| CheckpointTxn {
                    txn: TxnId(*id),
                    pending: t.pending.clone(),
                    entries: t
                        .entries
                        .iter()
                        .map(|e| CheckpointEntry {
                            seq: e.entry.seq,
                            retracted: e.retracted,
                            reads: e.entry.reads.clone(),
                            writes: e.entry.writes.clone(),
                            undo: e.entry.undo.clone(),
                        })
                        .collect(),
                    initial_committed: t.initial_committed,
                    finalized: t.finalized,
                })
                .collect(),
            next_seq: self.next_seq,
            finalized: self.finalized_total,
            tpc: self.tpc.clone(),
            next_txn: self.next_txn,
        }
    }

    fn from_checkpoint(cp: &CheckpointRecord) -> Self {
        let mut txns = BTreeMap::new();
        for t in &cp.txns {
            txns.insert(
                t.txn.0,
                TxnState {
                    pending: t.pending.clone(),
                    entries: t
                        .entries
                        .iter()
                        .map(|e| EntryState {
                            entry: RecoveredEntry {
                                txn: t.txn,
                                seq: e.seq,
                                reads: e.reads.clone(),
                                writes: e.writes.clone(),
                                undo: e.undo.clone(),
                            },
                            retracted: e.retracted,
                        })
                        .collect(),
                    initial_committed: t.initial_committed,
                    finalized: t.finalized,
                },
            );
        }
        RecoveryState {
            txns,
            next_seq: cp.next_seq,
            finalized_total: cp.finalized,
            tpc: cp.tpc.clone(),
            next_txn: cp.next_txn,
        }
    }
}

/// The result of replaying a log byte stream.
pub struct RecoveryReport {
    /// The rebuilt store: every committed effect, in commit order, as of
    /// the last valid frame.
    pub store: KvStore,
    /// Live registered footprints, in registration order — feed these to
    /// `ApologyManager::register` before retracting anything.
    pub entries: Vec<RecoveredEntry>,
    /// Initially-committed transactions whose final commit is missing:
    /// the set the recovering edge owes retractions and apologies for.
    pub unfinalized: Vec<TxnId>,
    /// 2PC coordinator decisions found in the log.
    pub tpc_decisions: Vec<(TxnId, bool)>,
    /// Valid frames replayed.
    pub frames: usize,
    /// Bytes of valid prefix replayed.
    pub bytes_replayed: u64,
    /// Whether a torn/corrupt tail was discarded.
    pub torn_tail: bool,
    /// Transactions whose final commit survived.
    pub finalized: usize,
    /// One past the highest transaction id in the log — where a
    /// replacement node continues the id sequence.
    pub next_txn: u64,
    /// The full replay state machine at the end of the valid prefix —
    /// hand this to [`Wal::resume`](crate::Wal::resume) to continue the
    /// log where the crash left it.
    pub state: RecoveryState,
}

/// Replay a log byte stream (everything the crash preserved) into a fresh
/// store. Stops at the first torn or corrupt frame: the log up to there is
/// a prefix of history, and the report reflects exactly that prefix.
#[must_use]
pub fn recover(bytes: &[u8]) -> RecoveryReport {
    let store = KvStore::new();
    let mut state = RecoveryState::new();
    let mut frames = 0usize;
    let mut reader = FrameReader::new(bytes);
    let mut decode_failed = false;
    let mut bytes_replayed = 0u64;
    while let Some(payload) = reader.next() {
        match WalRecord::decode(payload) {
            Ok(record) => {
                state.apply(&record, Some(&store));
                frames += 1;
                bytes_replayed = reader.offset() as u64;
            }
            Err(_) => {
                // A frame with a valid checksum but an undecodable payload
                // is corruption all the same; stop at the prefix before it.
                decode_failed = true;
                break;
            }
        }
    }
    let torn_tail = decode_failed || reader.tail() == TailState::Torn;
    RecoveryReport {
        entries: state.live_entries(),
        unfinalized: state.unfinalized(),
        tpc_decisions: state.tpc_decisions().to_vec(),
        finalized: state.finalized_count(),
        next_txn: state.next_txn(),
        store,
        frames,
        bytes_replayed,
        torn_tail,
        state,
    }
}

/// Replay a log file. A missing file recovers to an empty store (a fresh
/// edge that never wrote a log is a valid pre-crash state).
pub fn recover_file(path: impl AsRef<Path>) -> io::Result<RecoveryReport> {
    let path = path.as_ref();
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    Ok(recover(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;
    use crate::record::StageFlags;

    fn stage(
        txn: u64,
        stage: u32,
        total: u32,
        flags: u8,
        images: Vec<(&str, Option<i64>, Option<i64>)>,
    ) -> WalRecord {
        WalRecord::Stage(StageRecord {
            txn: TxnId(txn),
            stage,
            total,
            flags: StageFlags(flags),
            reads: vec![],
            writes: images.iter().map(|(k, _, _)| Key::new(k)).collect(),
            images: images
                .into_iter()
                .map(|(k, pre, post)| WriteImage {
                    key: Key::new(k),
                    pre: pre.map(|v| Arc::new(Value::Int(v))),
                    post: post.map(|v| Arc::new(Value::Int(v))),
                })
                .collect(),
        })
    }

    fn log_of(records: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in records {
            write_frame(&mut out, &r.encode());
        }
        out
    }

    const CP: u8 = StageFlags::COMMIT_POINT;
    const FIN: u8 = StageFlags::FINAL;
    const REG: u8 = StageFlags::REGISTER;

    #[test]
    fn committed_stages_reappear() {
        let log = log_of(&[
            stage(1, 0, 2, CP | REG, vec![("a", None, Some(1))]),
            stage(1, 1, 2, CP | FIN, vec![("a", Some(1), Some(2))]),
        ]);
        let r = recover(&log);
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert!(r.unfinalized.is_empty());
        assert_eq!(r.finalized, 1);
        assert_eq!(r.frames, 2);
        assert!(!r.torn_tail);
    }

    #[test]
    fn initial_commit_without_final_is_reported_unfinalized() {
        let log = log_of(&[stage(7, 0, 2, CP | REG, vec![("x", None, Some(10))])]);
        let r = recover(&log);
        assert_eq!(r.store.get(&"x".into()).as_deref(), Some(&Value::Int(10)));
        assert_eq!(r.unfinalized, vec![TxnId(7)]);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].undo, vec![("x".into(), None)]);
    }

    #[test]
    fn ms_sr_writes_stay_invisible_without_final_commit() {
        // No COMMIT_POINT on the early stage: replay buffers, never applies.
        let log = log_of(&[stage(3, 0, 2, 0, vec![("held", None, Some(5))])]);
        let r = recover(&log);
        assert!(!r.store.contains(&"held".into()));
        assert!(r.unfinalized.is_empty(), "nothing was initially committed");
    }

    #[test]
    fn ms_sr_final_commit_applies_all_buffered_stages() {
        let log = log_of(&[
            stage(3, 0, 2, 0, vec![("a", None, Some(1))]),
            stage(3, 1, 2, CP | FIN, vec![("b", None, Some(2))]),
        ]);
        let r = recover(&log);
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
        assert_eq!(r.store.get(&"b".into()).as_deref(), Some(&Value::Int(2)));
        assert_eq!(r.finalized, 1);
    }

    #[test]
    fn retract_record_replays_the_restores() {
        let log = log_of(&[
            stage(1, 0, 2, CP | REG, vec![("a", Some(0), Some(9))]),
            WalRecord::Retract(RetractRecord {
                txn: TxnId(1),
                restores: vec![("a".into(), Some(Arc::new(Value::Int(0))))],
            }),
        ]);
        let r = recover(&log);
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(0)));
        assert!(r.unfinalized.is_empty(), "retracted txns owe no apology");
        assert!(r.entries.is_empty(), "retracted entries are not live");
    }

    #[test]
    fn torn_tail_yields_the_prefix() {
        let full = log_of(&[
            stage(1, 0, 2, CP, vec![("a", None, Some(1))]),
            stage(1, 1, 2, CP | FIN, vec![("a", Some(1), Some(2))]),
        ]);
        // Cut into the middle of the second frame.
        let r = recover(&full[..full.len() - 3]);
        assert!(r.torn_tail);
        assert_eq!(r.frames, 1);
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(1)));
    }

    #[test]
    fn checkpoint_restarts_replay_state() {
        let mut state = RecoveryState::new();
        let store = KvStore::new();
        let rec = stage(1, 0, 2, CP | REG, vec![("a", None, Some(1))]);
        state.apply(&rec, Some(&store));
        let cp = state.to_checkpoint(&store);
        let log = log_of(&[
            WalRecord::Checkpoint(Box::new(cp)),
            stage(1, 1, 2, CP | FIN, vec![("a", Some(1), Some(5))]),
        ]);
        let r = recover(&log);
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(5)));
        assert!(r.unfinalized.is_empty());
        assert_eq!(r.finalized, 1);
    }

    #[test]
    fn checkpoint_excludes_pending_uncommitted_writes() {
        // An MS-SR transaction logged stage 0 (no commit point) and the
        // live store holds its lock-protected write. The checkpoint must
        // contain the pre-image, and replay must still finish the txn.
        let mut state = RecoveryState::new();
        let store = KvStore::new();
        store.put("a".into(), Value::Int(7)); // pre-existing
        let rec = stage(9, 0, 2, 0, vec![("a", Some(7), Some(100))]);
        store.put("a".into(), Value::Int(100)); // the live write
        state.apply(&rec, None); // live shadow: no store mutation
        let cp = state.to_checkpoint(&store);
        assert_eq!(
            cp.store,
            vec![(Key::new("a"), Arc::new(Value::Int(7)))],
            "checkpoint holds the committed pre-image"
        );
        let log = log_of(&[
            WalRecord::Checkpoint(Box::new(cp)),
            stage(9, 1, 2, CP | FIN, vec![]),
        ]);
        let r = recover(&log);
        assert_eq!(
            r.store.get(&"a".into()).as_deref(),
            Some(&Value::Int(100)),
            "final commit applies the buffered stage-0 write"
        );
    }

    #[test]
    fn checkpoint_drops_keys_created_by_pending_writes() {
        let mut state = RecoveryState::new();
        let store = KvStore::new();
        let rec = stage(9, 0, 2, 0, vec![("fresh", None, Some(1))]);
        store.put("fresh".into(), Value::Int(1));
        state.apply(&rec, None);
        let cp = state.to_checkpoint(&store);
        assert!(cp.store.is_empty(), "pending insert is not committed state");
    }

    #[test]
    fn tpc_decisions_survive_recovery() {
        let log = log_of(&[
            WalRecord::TpcDecision {
                txn: TxnId(5),
                commit: true,
            },
            WalRecord::TpcDecision {
                txn: TxnId(6),
                commit: false,
            },
        ]);
        let r = recover(&log);
        assert_eq!(r.tpc_decisions, vec![(TxnId(5), true), (TxnId(6), false)]);
    }

    #[test]
    fn empty_and_missing_logs_recover_to_empty_store() {
        let r = recover(&[]);
        assert!(r.store.is_empty());
        assert_eq!(r.frames, 0);
        assert!(!r.torn_tail);
        let r = recover_file("/nonexistent/croesus/edge-0.wal").unwrap();
        assert!(r.store.is_empty());
    }

    #[test]
    fn undecodable_valid_crc_frame_is_corruption() {
        let mut log = log_of(&[stage(1, 0, 2, CP, vec![("a", None, Some(1))])]);
        write_frame(&mut log, &[250, 1, 2, 3]); // valid CRC, bogus record
        let r = recover(&log);
        assert!(r.torn_tail);
        assert_eq!(r.frames, 1);
    }

    #[test]
    fn staged_protocol_final_guess_stays_live_after_finalize() {
        // REGISTER on the final stage (staged discipline): the entry stays
        // live for cascades, but the txn is finalized — no apology owed.
        let log = log_of(&[
            stage(2, 0, 2, CP | REG, vec![("g", None, Some(1))]),
            stage(2, 1, 2, CP | FIN | REG, vec![("g", Some(1), Some(2))]),
        ]);
        let r = recover(&log);
        assert!(r.unfinalized.is_empty());
        assert_eq!(r.entries.len(), 2);
        assert_eq!(r.entries[0].seq, 0);
        assert_eq!(r.entries[1].seq, 1);
    }

    #[test]
    fn settle_drops_finalized_entries_but_keeps_the_store() {
        let log = log_of(&[
            stage(1, 0, 2, CP | REG, vec![("a", None, Some(1))]),
            stage(1, 1, 2, CP | FIN | REG, vec![("a", Some(1), Some(2))]),
            WalRecord::Settle,
        ]);
        let r = recover(&log);
        assert_eq!(r.store.get(&"a".into()).as_deref(), Some(&Value::Int(2)));
        assert!(r.entries.is_empty(), "settle dropped the live guesses");
        assert_eq!(r.state.tracked_entries(), 0);
        assert_eq!(r.finalized, 1, "the finalized count survives settling");
        assert_eq!(r.next_txn, 2);
    }

    #[test]
    fn tpc_end_expires_the_decision() {
        let log = log_of(&[
            WalRecord::TpcDecision {
                txn: TxnId(5),
                commit: true,
            },
            WalRecord::TpcDecision {
                txn: TxnId(6),
                commit: false,
            },
            WalRecord::TpcEnd { txn: TxnId(5) },
        ]);
        let r = recover(&log);
        assert_eq!(r.tpc_decisions, vec![(TxnId(6), false)]);
    }

    #[test]
    fn abandon_pending_forgets_uncommitted_writes() {
        // An MS-SR transaction died mid-flight: stage 0 logged, no commit
        // point. Its buffered pre-image must not leak into checkpoints
        // taken by a writer resumed from this state.
        let mut state = RecoveryState::new();
        let store = KvStore::new();
        state.apply(
            &stage(3, 0, 2, 0, vec![("held", Some(7), Some(100))]),
            Some(&store),
        );
        state.abandon_pending();
        let cp = state.to_checkpoint(&store);
        assert!(cp.txns.is_empty(), "the dead txn's state is gone");
        assert!(cp.store.is_empty(), "no stale pre-image overlay");
        assert_eq!(state.next_txn(), 4, "the id high-water mark survives");
    }

    #[test]
    fn next_txn_survives_a_checkpoint_roundtrip() {
        let mut state = RecoveryState::new();
        let store = KvStore::new();
        state.apply(
            &stage(41, 0, 1, CP | FIN, vec![("a", None, Some(1))]),
            Some(&store),
        );
        let log = log_of(&[WalRecord::Checkpoint(Box::new(state.to_checkpoint(&store)))]);
        let r = recover(&log);
        assert_eq!(r.next_txn, 42);
    }
}
