//! CRC-framed record encoding.
//!
//! Every log record travels inside one frame:
//!
//! ```text
//! ┌──────────┬──────────┬──────────────┐
//! │ len: u32 │ crc: u32 │ payload[len] │   (all integers little-endian)
//! └──────────┴──────────┴──────────────┘
//! ```
//!
//! `crc` is CRC-32 (IEEE) over the payload bytes. A frame whose length
//! header runs past the available bytes, or whose checksum does not match,
//! marks the *torn tail* of the log: a crash mid-write leaves at most one
//! partial frame at the end, and recovery stops there — everything before
//! it is a valid prefix, everything from it on is discarded.

/// Frames larger than this are rejected as corruption rather than read
/// (a garbage length header must not trigger a multi-gigabyte read).
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Byte overhead of one frame header.
pub const FRAME_HEADER_LEN: usize = 8;

/// CRC-32 (IEEE, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Append one framed payload to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_FRAME_LEN as usize,
        "WAL record of {} bytes exceeds the {} byte frame limit",
        payload.len(),
        MAX_FRAME_LEN
    );
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why frame iteration stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TailState {
    /// The byte stream ended exactly at a frame boundary.
    Clean,
    /// A partial or corrupt frame was found and discarded (torn write).
    Torn,
}

/// Iterator over the valid frame payloads of a log byte stream, stopping
/// at the first partial or corrupt frame.
pub struct FrameReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    tail: TailState,
}

impl<'a> FrameReader<'a> {
    /// Read frames from `bytes`.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        FrameReader {
            bytes,
            pos: 0,
            tail: TailState::Clean,
        }
    }

    /// How iteration ended (meaningful once `next` has returned `None`).
    #[must_use]
    pub fn tail(&self) -> TailState {
        self.tail
    }

    /// Byte offset of the first unread (or torn) byte.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.pos
    }
}

impl<'a> Iterator for FrameReader<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        let rest = &self.bytes[self.pos..];
        if rest.is_empty() {
            return None;
        }
        if rest.len() < FRAME_HEADER_LEN {
            self.tail = TailState::Torn;
            return None;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN || rest.len() - FRAME_HEADER_LEN < len as usize {
            self.tail = TailState::Torn;
            return None;
        }
        let payload = &rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize];
        if crc32(payload) != crc {
            self.tail = TailState::Torn;
            return None;
        }
        self.pos += FRAME_HEADER_LEN + len as usize;
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip() {
        let mut log = Vec::new();
        write_frame(&mut log, b"alpha");
        write_frame(&mut log, b"");
        write_frame(&mut log, b"gamma-gamma");
        let mut r = FrameReader::new(&log);
        assert_eq!(r.next(), Some(&b"alpha"[..]));
        assert_eq!(r.next(), Some(&b""[..]));
        assert_eq!(r.next(), Some(&b"gamma-gamma"[..]));
        assert_eq!(r.next(), None);
        assert_eq!(r.tail(), TailState::Clean);
        assert_eq!(r.offset(), log.len());
    }

    #[test]
    fn truncated_tail_is_torn_and_prefix_survives() {
        let mut log = Vec::new();
        write_frame(&mut log, b"first");
        let boundary = log.len();
        write_frame(&mut log, b"second");
        for cut in boundary + 1..log.len() {
            let mut r = FrameReader::new(&log[..cut]);
            assert_eq!(r.next(), Some(&b"first"[..]), "cut at {cut}");
            assert_eq!(r.next(), None);
            assert_eq!(r.tail(), TailState::Torn);
            assert_eq!(r.offset(), boundary);
        }
    }

    #[test]
    fn corrupt_byte_stops_iteration() {
        let mut log = Vec::new();
        write_frame(&mut log, b"first");
        write_frame(&mut log, b"second");
        let flip = log.len() - 3; // inside the second payload
        log[flip] ^= 0x40;
        let mut r = FrameReader::new(&log);
        assert_eq!(r.next(), Some(&b"first"[..]));
        assert_eq!(r.next(), None);
        assert_eq!(r.tail(), TailState::Torn);
    }

    #[test]
    fn absurd_length_header_is_rejected() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&[0u8; 64]);
        let mut r = FrameReader::new(&log);
        assert_eq!(r.next(), None);
        assert_eq!(r.tail(), TailState::Torn);
    }
}
