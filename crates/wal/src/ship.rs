//! Edge→cloud log shipping: the durable image of an edge's WAL, published
//! for a cloud replica to tail.
//!
//! The shipping contract is deliberately tiny (see DESIGN.md, "Failure
//! model & failover"):
//!
//! * The unit of shipping is the **durable byte image** of the log — the
//!   same CRC-framed bytes `recover()` replays. No second serialization
//!   format exists; the replica runs the very same replay code an
//!   in-place restart would.
//! * A [`ShipCursor`] is `(epoch, offset)`. Within an epoch the log only
//!   grows, so a cursor is a plain byte offset; a checkpoint truncates
//!   the log and **bumps the epoch**, telling the replica to discard its
//!   copy and re-tail from the checkpoint frame (a *restart batch*).
//! * The writer publishes inside its sync paths, under the writer mutex —
//!   so `shipped ⊆ durable` always, and after each publish
//!   `shipped == durable`. The replica can lag; it can never run ahead of
//!   what a crash would preserve.
//!
//! Fault injection lives here too, because this is the edge→cloud link
//! the chaos harness perturbs: [`LogShipper::set_offline`] makes fetches
//! fail (a partitioned uplink — the source keeps accumulating), and
//! [`LogShipper::corrupt_next_fetch`] flips a byte in the *next fetched
//! copy only* — the pristine source image is untouched, modelling a
//! transfer error the replica must detect (CRC / decode) and refetch.

use std::sync::Mutex;

/// A replica's position in an edge's shipped log.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShipCursor {
    /// Checkpoint epoch of the source log the cursor is valid for.
    pub epoch: u64,
    /// Bytes of that epoch's log already consumed.
    pub offset: usize,
}

/// One fetched batch of log bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShipBatch {
    /// The source epoch these bytes belong to.
    pub epoch: u64,
    /// True when the source checkpointed past the caller's cursor: the
    /// bytes are the *whole* new log and replace the replica's copy.
    pub restart: bool,
    /// Frame-aligned log bytes starting at the caller's offset (or at 0
    /// for a restart batch).
    pub bytes: Vec<u8>,
}

/// The outcome of a fetch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShipFetch {
    /// The cursor is at the durable frontier — nothing new.
    UpToDate,
    /// New bytes (or a restart after a checkpoint).
    Batch(ShipBatch),
    /// The uplink is down; try again later. The source keeps the bytes.
    Offline,
}

#[derive(Debug, Default)]
struct ShipperInner {
    epoch: u64,
    log: Vec<u8>,
    offline: bool,
    corrupt_next: bool,
}

/// The shipping endpoint an edge's [`Wal`](crate::Wal) publishes into and
/// a cloud replica fetches from. Shared as `Arc<LogShipper>`.
#[derive(Debug, Default)]
pub struct LogShipper {
    inner: Mutex<ShipperInner>,
}

impl LogShipper {
    /// A fresh shipper at epoch 0 with an empty log.
    #[must_use]
    pub fn new() -> Self {
        LogShipper::default()
    }

    /// Append newly-durable frame bytes to the current epoch's image.
    /// Called by the writer inside its sync paths, under the writer mutex.
    pub fn publish(&self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.inner.lock().unwrap().log.extend_from_slice(bytes);
    }

    /// The source checkpointed: bump the epoch and replace the image with
    /// `initial` (the framed checkpoint record). Replicas holding an older
    /// epoch's cursor get a restart batch on their next fetch.
    pub fn restart_epoch(&self, initial: &[u8]) {
        let mut inner = self.inner.lock().unwrap();
        inner.epoch += 1;
        inner.log.clear();
        inner.log.extend_from_slice(initial);
    }

    /// Fetch everything past `cursor`. A cursor from an older epoch gets
    /// the whole current image as a restart batch.
    #[must_use]
    pub fn fetch(&self, cursor: ShipCursor) -> ShipFetch {
        let mut inner = self.inner.lock().unwrap();
        if inner.offline {
            return ShipFetch::Offline;
        }
        let (restart, from) = if cursor.epoch == inner.epoch {
            if cursor.offset >= inner.log.len() {
                return ShipFetch::UpToDate;
            }
            (false, cursor.offset)
        } else {
            (true, 0)
        };
        let mut bytes = inner.log[from..].to_vec();
        if inner.corrupt_next && !bytes.is_empty() {
            // A transfer fault: flip one bit in the fetched *copy*. The
            // source image stays pristine, so a refetch after the replica
            // rejects this batch succeeds.
            inner.corrupt_next = false;
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        ShipFetch::Batch(ShipBatch {
            epoch: inner.epoch,
            restart,
            bytes,
        })
    }

    /// Cut or restore the uplink (partition fault).
    pub fn set_offline(&self, offline: bool) {
        self.inner.lock().unwrap().offline = offline;
    }

    /// Whether the uplink is currently cut.
    #[must_use]
    pub fn is_offline(&self) -> bool {
        self.inner.lock().unwrap().offline
    }

    /// Corrupt the next non-empty fetch (one transfer error).
    pub fn corrupt_next_fetch(&self) {
        self.inner.lock().unwrap().corrupt_next = true;
    }

    /// Current epoch.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.inner.lock().unwrap().epoch
    }

    /// Bytes in the current epoch's image.
    #[must_use]
    pub fn shipped_len(&self) -> usize {
        self.inner.lock().unwrap().log.len()
    }

    /// A copy of the current epoch's full image (what a brand-new replica
    /// would fetch) — also handy for byte-identical recovery assertions.
    #[must_use]
    pub fn image(&self) -> Vec<u8> {
        self.inner.lock().unwrap().log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tailing_sees_exactly_the_published_bytes() {
        let s = LogShipper::new();
        let mut cursor = ShipCursor::default();
        assert_eq!(s.fetch(cursor), ShipFetch::UpToDate);

        s.publish(b"aaaa");
        let ShipFetch::Batch(b) = s.fetch(cursor) else {
            panic!("expected a batch");
        };
        assert_eq!(
            (b.epoch, b.restart, b.bytes.as_slice()),
            (0, false, &b"aaaa"[..])
        );
        cursor.offset += b.bytes.len();

        s.publish(b"bb");
        let ShipFetch::Batch(b) = s.fetch(cursor) else {
            panic!("expected a batch");
        };
        assert_eq!(b.bytes, b"bb");
        cursor.offset += b.bytes.len();
        assert_eq!(s.fetch(cursor), ShipFetch::UpToDate);
        assert_eq!(s.image(), b"aaaabb");
    }

    #[test]
    fn checkpoint_bumps_the_epoch_and_restarts_the_tail() {
        let s = LogShipper::new();
        s.publish(b"old-log");
        let cursor = ShipCursor {
            epoch: 0,
            offset: 7,
        };
        s.restart_epoch(b"cp");
        let ShipFetch::Batch(b) = s.fetch(cursor) else {
            panic!("expected a restart batch");
        };
        assert!(b.restart);
        assert_eq!(b.epoch, 1);
        assert_eq!(b.bytes, b"cp");
    }

    #[test]
    fn offline_fails_the_fetch_but_keeps_the_bytes() {
        let s = LogShipper::new();
        s.publish(b"xyz");
        s.set_offline(true);
        assert_eq!(s.fetch(ShipCursor::default()), ShipFetch::Offline);
        s.set_offline(false);
        let ShipFetch::Batch(b) = s.fetch(ShipCursor::default()) else {
            panic!("back online");
        };
        assert_eq!(b.bytes, b"xyz");
    }

    #[test]
    fn corruption_hits_one_fetch_only() {
        let s = LogShipper::new();
        s.publish(b"pristine");
        s.corrupt_next_fetch();
        let ShipFetch::Batch(bad) = s.fetch(ShipCursor::default()) else {
            panic!()
        };
        assert_ne!(bad.bytes, b"pristine", "the fetched copy was damaged");
        let ShipFetch::Batch(good) = s.fetch(ShipCursor::default()) else {
            panic!()
        };
        assert_eq!(good.bytes, b"pristine", "the source was untouched");
    }
}
