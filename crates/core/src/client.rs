//! The client (§3.3.1).
//!
//! "The client captures frames, gets user input (from auxiliary devices),
//! and displays responses. ... This process of sending frames and input is
//! continuous — there is no blocking to get the response from the edge
//! node. When a response is received from the edge node, that response is
//! rendered and augmented in the user's view."
//!
//! [`Client`] models that loop: it emits frames (optionally accompanied by
//! auxiliary inputs such as clicks), and records the two response waves —
//! initial-stage and final-stage — per frame, including apologies.

use croesus_sim::DetRng;
use croesus_store::Value;
use croesus_video::{Frame, Video};

/// An auxiliary-device input accompanying a frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuxInput {
    /// Input kind, e.g. `"click"`.
    pub kind: String,
}

/// What the client received for one frame.
#[derive(Clone, Debug, Default)]
pub struct FrameResponses {
    /// Responses rendered at initial commit (the real-time wave).
    pub initial: Vec<Value>,
    /// Responses/corrections rendered at final commit.
    pub finals: Vec<Value>,
    /// Apologies received with the final wave.
    pub apologies: Vec<String>,
}

/// The client: a frame source plus a response sink.
pub struct Client {
    video: Video,
    aux_kind: String,
    aux_rate: f64,
    rng: DetRng,
    responses: Vec<FrameResponses>,
}

impl Client {
    /// Create a client over a video, clicking the auxiliary device with
    /// probability `aux_rate` per frame.
    pub fn new(video: Video, aux_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&aux_rate), "aux rate must be in [0,1]");
        let n = video.len();
        Client {
            video,
            aux_kind: "click".to_string(),
            aux_rate,
            rng: DetRng::new(seed).fork_named("client-aux"),
            responses: vec![FrameResponses::default(); n],
        }
    }

    /// The video this client streams.
    pub fn video(&self) -> &Video {
        &self.video
    }

    /// Produce the next capture: the frame plus any auxiliary inputs that
    /// fired with it. Deterministic per `(seed, frame index)` by
    /// construction: the client's RNG is consumed in frame order.
    pub fn capture(&mut self, index: u64) -> (&Frame, Vec<AuxInput>) {
        let click = self.rng.bernoulli(self.aux_rate);
        let aux = if click {
            vec![AuxInput {
                kind: self.aux_kind.clone(),
            }]
        } else {
            vec![]
        };
        (self.video.frame(index), aux)
    }

    /// Render an initial-stage response ("rendered and augmented in the
    /// user's view" immediately).
    pub fn receive_initial(&mut self, frame_index: u64, responses: Vec<Value>) {
        self.responses[frame_index as usize]
            .initial
            .extend(responses);
    }

    /// Render a final-stage response, possibly with apologies.
    pub fn receive_final(
        &mut self,
        frame_index: u64,
        responses: Vec<Value>,
        apologies: Vec<String>,
    ) {
        let slot = &mut self.responses[frame_index as usize];
        slot.finals.extend(responses);
        slot.apologies.extend(apologies);
    }

    /// The recorded responses for one frame.
    pub fn responses(&self, frame_index: u64) -> &FrameResponses {
        &self.responses[frame_index as usize]
    }

    /// Total apologies the user has seen.
    pub fn apology_count(&self) -> usize {
        self.responses.iter().map(|r| r.apologies.len()).sum()
    }

    /// Frames that received at least one initial-stage response.
    pub fn responsive_frames(&self) -> usize {
        self.responses
            .iter()
            .filter(|r| !r.initial.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croesus_video::VideoPreset;

    fn client(aux_rate: f64) -> Client {
        Client::new(VideoPreset::StreetTraffic.generate(60, 3), aux_rate, 7)
    }

    #[test]
    fn capture_yields_frames_in_order() {
        let mut c = client(0.0);
        for i in 0..60 {
            let (f, aux) = c.capture(i);
            assert_eq!(f.index, i);
            assert!(aux.is_empty(), "aux rate 0 never clicks");
        }
    }

    #[test]
    fn aux_rate_controls_click_frequency() {
        let mut c = client(0.5);
        let clicks: usize = (0..60).map(|i| c.capture(i).1.len()).sum();
        assert!((15..=45).contains(&clicks), "clicks {clicks}");
        let mut always = client(1.0);
        assert_eq!(
            (0..60).map(|i| always.capture(i).1.len()).sum::<usize>(),
            60
        );
    }

    #[test]
    fn responses_are_recorded_per_frame() {
        let mut c = client(0.0);
        c.receive_initial(3, vec![Value::Int(1), Value::Int(2)]);
        c.receive_final(3, vec![Value::from("fixed")], vec!["sorry".into()]);
        let r = c.responses(3);
        assert_eq!(r.initial.len(), 2);
        assert_eq!(r.finals.len(), 1);
        assert_eq!(r.apologies, vec!["sorry".to_string()]);
        assert_eq!(c.apology_count(), 1);
        assert_eq!(c.responsive_frames(), 1);
    }

    #[test]
    fn clicks_are_deterministic_per_seed() {
        let mut a = client(0.3);
        let mut b = client(0.3);
        for i in 0..60 {
            assert_eq!(a.capture(i).1, b.capture(i).1);
        }
    }

    #[test]
    #[should_panic(expected = "aux rate")]
    fn invalid_aux_rate_panics() {
        client(1.5);
    }
}
