//! The Croesus system (§3 of the paper): a multi-stage edge-cloud
//! video-analytics pipeline co-designed with multi-stage transactions.
//!
//! A frame arrives at the [`edge`] node, which runs the small model,
//! filters detections through the [`threshold`] bands (discard / validate /
//! keep), triggers the matching transactions from the [`bank`], and commits
//! their initial sections immediately. Frames in the validate band travel
//! to the [`cloud`] node; when the accurate labels return, [`matching`]
//! pairs them with the edge labels and the final sections run — correcting,
//! retracting and apologizing as needed. The [`optimizer`] picks the
//! `(θL, θU)` thresholds that minimize bandwidth subject to an accuracy
//! floor (the §3.4 formulation); [`pipeline`] orchestrates whole-video runs
//! and [`baseline`] provides the edge-only / cloud-only / hybrid
//! comparisons of §5.

pub mod bank;
pub mod baseline;
pub mod client;
pub mod cloud;
pub mod config;
pub mod edge;
pub mod matching;
pub mod metrics;
pub mod optimizer;
pub mod pipeline;
pub mod queueing;
pub mod stages;
pub mod threshold;
pub mod workload;

pub use bank::{TransactionsBank, TriggerRule, TxnInstance, TxnTemplate};
pub use baseline::{run_cloud_only, run_edge_only, EDGE_BASELINE_CONFIDENCE};
pub use client::{AuxInput, Client, FrameResponses};
pub use cloud::CloudNode;
pub use config::{CroesusConfig, ValidationPolicy};
pub use edge::{EdgeNode, FinalStage, InitialStage};
pub use matching::{match_edge_to_cloud, FinalInput, FrameMatch, LabelVerdict};
pub use metrics::{CorrectionCounts, LatencyBreakdown, MetricsCollector, RunMetrics};
pub use optimizer::{OptimalThresholds, ThresholdEvaluator, ThresholdOutcome};
pub use pipeline::{evaluation_bank, run_croesus};
pub use queueing::{run_queueing, QueueingConfig, QueueingMetrics};
pub use stages::{
    edge_cloud_chain, edge_fog_cloud_chain, run_stage_chain, ChainMetrics, Stage, StageStats,
};
pub use threshold::{BandDecision, FrameDecision, ThresholdPair};
pub use workload::{HotspotWorkload, YcsbWorkload};
