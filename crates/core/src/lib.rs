//! The Croesus system (§3 of the paper): a multi-stage edge-cloud
//! video-analytics pipeline co-designed with multi-stage transactions.
//!
//! A frame arrives at the [`edge`] node, which runs the small model,
//! filters detections through the [`threshold`] bands (discard / validate /
//! keep), triggers the matching transactions from the [`bank`], and commits
//! their initial sections immediately — through whichever
//! [`MultiStageProtocol`](croesus_txn::MultiStageProtocol) the deployment
//! selected. Frames in the validate band travel to the [`cloud`] node; when
//! the accurate labels return, [`matching`] pairs them with the edge labels
//! and the final sections run — correcting, retracting and apologizing as
//! needed. The [`optimizer`] picks the `(θL, θU)` thresholds that minimize
//! bandwidth subject to an accuracy floor (the §3.4 formulation).
//!
//! The entry point is the [`system`] module's builder:
//!
//! ```
//! use croesus_core::{Croesus, DeploymentMode, ProtocolKind, ThresholdPair};
//! use croesus_video::VideoPreset;
//!
//! let deployment = Croesus::builder()
//!     .preset(VideoPreset::StreetTraffic)
//!     .thresholds(ThresholdPair::new(0.4, 0.6))
//!     .protocol(ProtocolKind::MsIa)   // or MsSr / Staged — same pipeline
//!     .frames(40)
//!     .build();
//! let metrics = deployment.run();
//! assert!(metrics.f_score > 0.0);
//! ```
//!
//! [`DeploymentMode::EdgeOnly`] and [`DeploymentMode::CloudOnly`] give the
//! §5 baselines from the same builder, and
//! [`CroesusBuilder::durability`] switches on per-edge write-ahead
//! logging with apology-aware crash recovery (`croesus_txn::recovery`).

pub mod bank;
pub mod baseline;
pub mod client;
pub mod cloud;
pub mod config;
pub mod edge;
pub mod fleet;
pub mod matching;
pub mod metrics;
pub mod optimizer;
pub mod pipeline;
pub mod queueing;
pub mod stages;
pub mod system;
pub mod threshold;
pub mod workload;

pub use bank::{TransactionsBank, TriggerRule, TxnInstance, TxnTemplate};
pub use baseline::EDGE_BASELINE_CONFIDENCE;
pub use client::{AuxInput, Client, FrameResponses};
pub use cloud::{CloudNode, ReplicaTailer, TailPoll};
pub use config::{CroesusConfig, ValidationPolicy};
pub use croesus_sim::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use croesus_txn::ProtocolKind;
pub use croesus_wal::DurabilityMode;
pub use edge::{EdgeNode, FinalStage, InitialStage};
pub use fleet::{FleetReport, Takeover};
pub use matching::{match_edge_to_cloud, FinalInput, FrameMatch, LabelVerdict};
pub use metrics::{CorrectionCounts, LatencyBreakdown, MetricsCollector, RunMetrics};
pub use optimizer::{OptimalThresholds, ThresholdEvaluator, ThresholdOutcome};
pub use pipeline::evaluation_bank;
pub use queueing::{run_queueing, QueueingConfig, QueueingMetrics};
pub use stages::{
    edge_cloud_chain, edge_fog_cloud_chain, run_stage_chain, ChainMetrics, Stage, StageStats,
};
pub use system::{Croesus, CroesusBuilder, Deployment, DeploymentMode};
pub use threshold::{BandDecision, FrameDecision, ThresholdPair};
pub use workload::{HotspotWorkload, YcsbWorkload};
