//! Queueing-aware execution: a discrete-event simulation of the pipeline.
//!
//! The paper reports *per-frame* latencies, which implicitly assumes the
//! edge keeps up with the frames it chooses to process. This module asks
//! the follow-up question: what happens at a given arrival rate when the
//! edge has one detection unit (Tiny-YOLO ≈ 190 ms ⇒ ≈ 5.3 fps capacity)
//! and the cloud a small worker pool? Frames queue, wait, and — beyond a
//! bound — are dropped, exactly like a real deployment sampling frames.
//!
//! Built directly on the [`croesus_sim::Simulator`] event kernel; every
//! run is deterministic in the configuration seed.

use std::collections::VecDeque;

use croesus_detect::ModelProfile;
use croesus_detect::{DetectionModel, ModelKind, SimulatedModel};
use croesus_sim::{DetRng, OnlineStats, Scheduler, SimDuration, SimTime, Simulator};
use croesus_video::VideoPreset;

use crate::threshold::ThresholdPair;

/// Configuration of a queueing run.
#[derive(Clone, Debug)]
pub struct QueueingConfig {
    /// The video preset to draw frames from.
    pub preset: VideoPreset,
    /// Number of frames to offer.
    pub num_frames: u64,
    /// Frame arrival rate (frames per second).
    pub fps: f64,
    /// Edge detection units.
    pub edge_servers: usize,
    /// Cloud detection workers.
    pub cloud_servers: usize,
    /// Edge queue bound; frames arriving beyond it are dropped (sampled
    /// out), as real deployments do.
    pub max_edge_queue: usize,
    /// Bandwidth thresholds for the validate decision.
    pub thresholds: ThresholdPair,
    /// Cloud model.
    pub cloud_model: ModelKind,
    /// Experiment seed.
    pub seed: u64,
}

impl QueueingConfig {
    /// A sensible default: street traffic, 1 edge unit, 4 cloud workers.
    pub fn new(preset: VideoPreset, fps: f64) -> Self {
        QueueingConfig {
            preset,
            num_frames: 300,
            fps,
            edge_servers: 1,
            cloud_servers: 4,
            max_edge_queue: 8,
            thresholds: ThresholdPair::new(0.4, 0.6),
            cloud_model: ModelKind::YoloV3_416,
            seed: 42,
        }
    }
}

/// The outcome of a queueing run.
#[derive(Clone, Debug)]
pub struct QueueingMetrics {
    /// Frames fully processed at the edge.
    pub processed: u64,
    /// Frames dropped at the edge queue bound.
    pub dropped: u64,
    /// Mean wait in the edge queue, ms.
    pub edge_wait_ms: f64,
    /// Maximum wait in the edge queue, ms.
    pub edge_wait_max_ms: f64,
    /// Mean wait in the cloud queue, ms (validated frames only).
    pub cloud_wait_ms: f64,
    /// Mean end-to-end final-commit latency including queueing, ms.
    pub final_latency_ms: f64,
    /// Edge busy time / total time.
    pub edge_utilization: f64,
    /// Fraction of processed frames validated at the cloud.
    pub bandwidth_utilization: f64,
}

/// Per-frame precomputed facts (detection is deterministic, so everything
/// random is resolved before the event simulation starts).
struct FramePlan {
    edge_service: SimDuration,
    cloud_service: SimDuration,
    uplink: SimDuration,
    downlink: SimDuration,
    validate: bool,
}

struct World {
    plans: Vec<FramePlan>,
    edge_free: usize,
    edge_queue: VecDeque<(usize, SimTime)>,
    cloud_free: usize,
    cloud_queue: VecDeque<(usize, SimTime)>,
    max_edge_queue: usize,
    // accounting
    dropped: u64,
    processed: u64,
    validated: u64,
    edge_wait: OnlineStats,
    cloud_wait: OnlineStats,
    final_latency: OnlineStats,
    edge_busy: SimDuration,
    arrivals: Vec<SimTime>,
}

fn start_edge(world: &mut World, sched: &mut Scheduler<World>, frame: usize, enqueued_at: SimTime) {
    world.edge_free -= 1;
    world
        .edge_wait
        .push_duration(sched.now().saturating_since(enqueued_at));
    let service = world.plans[frame].edge_service;
    world.edge_busy += service;
    sched.after(service, move |w: &mut World, s| finish_edge(w, s, frame));
}

fn finish_edge(world: &mut World, sched: &mut Scheduler<World>, frame: usize) {
    world.edge_free += 1;
    world.processed += 1;
    let arrived = world.arrivals[frame];
    if world.plans[frame].validate {
        world.validated += 1;
        let uplink = world.plans[frame].uplink;
        sched.after(uplink, move |w: &mut World, s| {
            let now = s.now();
            if w.cloud_free > 0 {
                start_cloud(w, s, frame, now);
            } else {
                w.cloud_queue.push_back((frame, now));
            }
        });
    } else {
        world
            .final_latency
            .push_duration(sched.now().saturating_since(arrived));
    }
    // Pull the next queued frame into the freed edge unit.
    if let Some((next, at)) = world.edge_queue.pop_front() {
        start_edge(world, sched, next, at);
    }
}

fn start_cloud(
    world: &mut World,
    sched: &mut Scheduler<World>,
    frame: usize,
    enqueued_at: SimTime,
) {
    world.cloud_free -= 1;
    world
        .cloud_wait
        .push_duration(sched.now().saturating_since(enqueued_at));
    let service = world.plans[frame].cloud_service;
    sched.after(service, move |w: &mut World, s| {
        w.cloud_free += 1;
        let downlink = w.plans[frame].downlink;
        let arrived = w.arrivals[frame];
        s.after(downlink, move |w: &mut World, s| {
            w.final_latency
                .push_duration(s.now().saturating_since(arrived));
        });
        if let Some((next, at)) = w.cloud_queue.pop_front() {
            start_cloud(w, s, next, at);
        }
    });
}

/// Run the queueing simulation.
pub fn run_queueing(config: &QueueingConfig) -> QueueingMetrics {
    assert!(config.fps > 0.0, "arrival rate must be positive");
    assert!(config.edge_servers > 0 && config.cloud_servers > 0);
    let video = config.preset.generate(config.num_frames, config.seed);
    let query = video.query_class().clone();
    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), config.seed ^ 0xE);
    let cloud_model = SimulatedModel::new(config.cloud_model.profile(), config.seed ^ 0xC);
    let topology = croesus_net::Setup::default_paper().topology();
    let mut link_rng = DetRng::new(config.seed).fork_named("queueing-links");

    let plans: Vec<FramePlan> = video
        .frames()
        .iter()
        .map(|f| {
            let decision = config
                .thresholds
                .decide_frame(&edge_model.detect(f), &query);
            FramePlan {
                edge_service: edge_model.inference_latency(f),
                cloud_service: cloud_model.inference_latency(f),
                uplink: topology.edge_cloud.transfer_latency(f.bytes, &mut link_rng),
                downlink: topology.edge_cloud.transfer_latency(2_048, &mut link_rng),
                validate: decision.send,
            }
        })
        .collect();

    let inter_arrival = SimDuration::from_secs_f64(1.0 / config.fps);
    let n = plans.len();
    let world = World {
        plans,
        edge_free: config.edge_servers,
        edge_queue: VecDeque::new(),
        cloud_free: config.cloud_servers,
        cloud_queue: VecDeque::new(),
        max_edge_queue: config.max_edge_queue,
        dropped: 0,
        processed: 0,
        validated: 0,
        edge_wait: OnlineStats::new(),
        cloud_wait: OnlineStats::new(),
        final_latency: OnlineStats::new(),
        edge_busy: SimDuration::ZERO,
        arrivals: vec![SimTime::ZERO; n],
    };
    let mut sim = Simulator::new(world);
    for frame in 0..n {
        let at = SimTime::ZERO + inter_arrival * frame as u64;
        sim.scheduler().at(at, move |w: &mut World, s| {
            w.arrivals[frame] = s.now();
            if w.edge_free > 0 {
                let now = s.now();
                start_edge(w, s, frame, now);
            } else if w.edge_queue.len() < w.max_edge_queue {
                w.edge_queue.push_back((frame, s.now()));
            } else {
                w.dropped += 1;
            }
        });
    }
    let end = sim.run();
    let world = sim.into_world();

    QueueingMetrics {
        processed: world.processed,
        dropped: world.dropped,
        edge_wait_ms: world.edge_wait.mean(),
        edge_wait_max_ms: world.edge_wait.max().unwrap_or(0.0),
        cloud_wait_ms: world.cloud_wait.mean(),
        final_latency_ms: world.final_latency.mean(),
        edge_utilization: if end == SimTime::ZERO {
            0.0
        } else {
            world.edge_busy.as_secs_f64() / (end.as_secs_f64() * config.edge_servers as f64)
        },
        bandwidth_utilization: if world.processed == 0 {
            0.0
        } else {
            world.validated as f64 / world.processed as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(fps: f64) -> QueueingMetrics {
        let mut cfg = QueueingConfig::new(VideoPreset::StreetTraffic, fps);
        cfg.num_frames = 150;
        run_queueing(&cfg)
    }

    #[test]
    fn light_load_has_no_queueing() {
        let m = run(1.0); // 1 fps against ~5.3 fps capacity
        assert_eq!(m.dropped, 0);
        assert!(m.edge_wait_ms < 1.0, "edge wait {}", m.edge_wait_ms);
        assert!(m.edge_utilization < 0.4, "util {}", m.edge_utilization);
        assert_eq!(m.processed, 150);
    }

    #[test]
    fn moderate_load_queues_but_keeps_up() {
        let m = run(4.0);
        assert_eq!(m.dropped, 0, "below capacity nothing drops");
        assert!(m.edge_utilization > 0.5);
    }

    #[test]
    fn overload_drops_frames_and_saturates() {
        let m = run(30.0); // video rate ≫ capacity
        assert!(m.dropped > 100, "dropped {}", m.dropped);
        assert!(m.edge_utilization > 0.8, "util {}", m.edge_utilization);
        assert!(m.edge_wait_ms > 100.0, "waits explode: {}", m.edge_wait_ms);
    }

    #[test]
    fn queueing_adds_to_final_latency() {
        let light = run(1.0);
        let heavy = run(5.0);
        assert!(
            heavy.final_latency_ms > light.final_latency_ms,
            "light {} heavy {}",
            light.final_latency_ms,
            heavy.final_latency_ms
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(5.0);
        let b = run(5.0);
        assert_eq!(a.processed, b.processed);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.final_latency_ms, b.final_latency_ms);
    }

    #[test]
    fn conservation_of_frames() {
        for fps in [1.0, 5.0, 20.0] {
            let m = run(fps);
            assert_eq!(m.processed + m.dropped, 150, "fps {fps}");
        }
    }
}
