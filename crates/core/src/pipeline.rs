//! Whole-video orchestration: the Croesus execution pattern of Figure 1.
//!
//! For every frame: client→edge transfer, small-model detection,
//! thresholding, initial transaction sections (initial commit → response),
//! then — for validated frames — edge→cloud transfer, big-model detection,
//! label matching and final sections (final commit); unvalidated frames
//! finalize locally. Latency components come from the calibrated link and
//! model distributions; transactions execute for real against the edge
//! store under MS-IA.

use std::sync::Arc;

use croesus_detect::{score_against, ModelProfile};
use croesus_detect::{Detection, SimulatedModel};
use croesus_net::BandwidthMeter;
use croesus_sim::DetRng;
use croesus_video::LabelClass;

use crate::bank::{TransactionsBank, TriggerRule};
use crate::cloud::CloudNode;
use crate::config::{CroesusConfig, ValidationPolicy};
use crate::edge::EdgeNode;
use crate::metrics::{MetricsCollector, RunMetrics};
use crate::workload::YcsbWorkload;

/// The default transactions bank for the evaluation workload: every
/// detection triggers one YCSB-A-style transaction (§5.1).
pub fn evaluation_bank() -> Arc<TransactionsBank> {
    Arc::new(TransactionsBank::new().with_rule(TriggerRule {
        class_group: "any-detection".into(),
        classes: vec![],
        requires_aux: None,
        template: Arc::new(YcsbWorkload::new()),
    }))
}

/// Run Croesus over one video per the configuration; returns the metrics
/// the paper's figures are built from.
pub fn run_croesus(config: &CroesusConfig) -> RunMetrics {
    let video = config.preset.generate(config.num_frames, config.seed);
    let query: LabelClass = video.query_class().clone();

    let edge_model = SimulatedModel::new(ModelProfile::tiny_yolov3(), config.seed ^ 0xE)
        .with_hardware_factor(config.setup.edge.hardware_factor());
    let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
    let edge = EdgeNode::new(
        edge_model,
        evaluation_bank(),
        config.overlap_threshold,
        config.seed,
    );
    let topology = config.setup.topology();
    let mut link_rng = DetRng::new(config.seed).fork_named("links");

    let mut meter = BandwidthMeter::new();
    let mut collector = MetricsCollector::new();

    for frame in video.frames() {
        meter.record_processed();
        let edge_link = topology
            .client_edge
            .transfer_latency(frame.bytes, &mut link_rng);
        let (detections, edge_detect) = edge.detect(frame);

        // Thresholding / validation decision.
        let (send, surviving, kept_query): (bool, Vec<Detection>, Vec<Detection>) =
            match config.validation {
                ValidationPolicy::Thresholds(pair) => {
                    let d = pair.decide_frame(&detections, &query);
                    let kept_query = d
                        .kept
                        .iter()
                        .filter(|l| l.is_class(&query))
                        .cloned()
                        .collect();
                    (d.send, d.surviving(), kept_query)
                }
                ValidationPolicy::ForcedBu(bu) => {
                    let surviving: Vec<Detection> = detections
                        .iter()
                        .filter(|d| d.confidence >= config.low_confidence_filter)
                        .cloned()
                        .collect();
                    let kept_query = surviving
                        .iter()
                        .filter(|l| l.is_class(&query))
                        .cloned()
                        .collect();
                    (
                        ValidationPolicy::forced_send(bu, frame.index),
                        surviving,
                        kept_query,
                    )
                }
            };

        // Initial stage: trigger transactions, commit initial sections.
        let initial = edge.run_initial_stage(frame.index, &surviving);
        collector.record_transactions(initial.committed);

        // The cloud reference is always computed for scoring; its latency
        // and bandwidth are only charged when the frame is actually sent.
        let (cloud_labels, cloud_detect) = cloud.process(frame);
        let cloud_query: Vec<Detection> = cloud_labels
            .iter()
            .filter(|l| l.is_class(&query))
            .cloned()
            .collect();

        // A validated frame's labels can be lost to a cloud outage; the
        // frame then times out and finalizes locally.
        let lost = send && link_rng.bernoulli(config.cloud_loss_rate);

        let final_labels: Vec<Detection> = if send && !lost {
            let is_reference = frame.index.is_multiple_of(30);
            let encoded = config.codec.encode(frame.bytes, is_reference);
            let up = topology
                .edge_cloud
                .transfer_latency(encoded.bytes, &mut link_rng)
                + encoded.encode_latency;
            // Labels travel back as a small payload (propagation-bound).
            let down = topology.edge_cloud.transfer_latency(2_048, &mut link_rng);
            let fin = edge.deliver_cloud_labels(frame.index, &cloud_labels);
            meter.record_sent(
                encoded.bytes,
                topology.edge_cloud.transfer_cost(encoded.bytes),
            );
            collector.record_validated_frame(
                edge_link,
                edge_detect,
                initial.txn_latency,
                up + down,
                cloud_detect,
                fin.txn_latency,
            );
            let (correct, corrected, erroneous, missed) = fin.counts;
            collector.record_corrections(correct, corrected, erroneous, missed);
            cloud_query.clone()
        } else if lost {
            // The frame and its bytes were sent, but no labels came back:
            // after the timeout the edge finalizes with its own labels.
            // The multi-stage guarantee holds — every initially-committed
            // transaction still finally commits, with the guess retained.
            let is_reference = frame.index.is_multiple_of(30);
            let encoded = config.codec.encode(frame.bytes, is_reference);
            meter.record_sent(
                encoded.bytes,
                topology.edge_cloud.transfer_cost(encoded.bytes),
            );
            let fin = edge.finalize_local(frame.index);
            collector.record_validated_frame(
                edge_link,
                edge_detect,
                initial.txn_latency,
                croesus_sim::SimDuration::from_millis_f64(config.cloud_timeout_ms),
                croesus_sim::SimDuration::ZERO,
                fin.txn_latency,
            );
            collector.record_cloud_timeout();
            let (correct, corrected, erroneous, missed) = fin.counts;
            collector.record_corrections(correct, corrected, erroneous, missed);
            // The client keeps every surviving edge label (keep + validate
            // bands): nothing was corrected.
            surviving
                .iter()
                .filter(|l| l.is_class(&query))
                .cloned()
                .collect()
        } else {
            let fin = edge.finalize_local(frame.index);
            collector.record_edge_frame(
                edge_link,
                edge_detect,
                initial.txn_latency,
                fin.txn_latency,
            );
            let (correct, corrected, erroneous, missed) = fin.counts;
            collector.record_corrections(correct, corrected, erroneous, missed);
            match config.validation {
                ValidationPolicy::Thresholds(_) => kept_query,
                ValidationPolicy::ForcedBu(_) => kept_query,
            }
        };

        collector.record_accuracy(score_against(
            &final_labels,
            &cloud_query,
            &query,
            config.overlap_threshold,
        ));
    }

    let label = match config.validation {
        ValidationPolicy::Thresholds(pair) => format!(
            "croesus {} ({:.1},{:.1})",
            config.preset.paper_id(),
            pair.lower,
            pair.upper
        ),
        ValidationPolicy::ForcedBu(bu) => {
            format!("croesus {} bu={:.0}%", config.preset.paper_id(), bu * 100.0)
        }
    };
    collector.finish(label, &meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::ThresholdPair;
    use croesus_video::VideoPreset;

    fn quick(preset: VideoPreset, pair: ThresholdPair) -> RunMetrics {
        run_croesus(&CroesusConfig::new(preset, pair).with_frames(80))
    }

    #[test]
    fn run_produces_consistent_metrics() {
        let m = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.4, 0.6));
        assert!(m.f_score > 0.0 && m.f_score <= 1.0);
        assert!(m.bandwidth_utilization >= 0.0 && m.bandwidth_utilization <= 1.0);
        assert!(m.initial_commit_ms > 150.0, "edge detect dominates initial");
        assert!(m.final_commit_ms >= m.initial_commit_ms);
        assert!(m.transactions_committed > 0);
    }

    #[test]
    fn validated_frames_pay_the_cloud_path() {
        let all = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.0, 0.9));
        let none = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.5, 0.5));
        assert!(all.bandwidth_utilization > 0.8);
        assert!(none.bandwidth_utilization < 0.1);
        assert!(
            all.final_commit_ms > none.final_commit_ms + 500.0,
            "cloud path ≈1.2s: {} vs {}",
            all.final_commit_ms,
            none.final_commit_ms
        );
        assert!(all.f_score > none.f_score);
    }

    #[test]
    fn initial_commit_is_real_time_regardless_of_validation() {
        let all = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.0, 0.9));
        // Initial commit stays ~edge-path even when every frame goes to
        // the cloud — the client "has the illusion of both fast and
        // accurate detection".
        assert!(
            all.initial_commit_ms < 300.0,
            "initial {}",
            all.initial_commit_ms
        );
    }

    #[test]
    fn forced_bu_sweep_is_monotone_in_latency() {
        let lo = run_croesus(
            &CroesusConfig::new(VideoPreset::ParkDog, ThresholdPair::new(0.4, 0.6))
                .with_frames(60)
                .with_validation(crate::config::ValidationPolicy::ForcedBu(0.25)),
        );
        let hi = run_croesus(
            &CroesusConfig::new(VideoPreset::ParkDog, ThresholdPair::new(0.4, 0.6))
                .with_frames(60)
                .with_validation(crate::config::ValidationPolicy::ForcedBu(1.0)),
        );
        assert!((lo.bandwidth_utilization - 0.25).abs() < 0.05);
        assert!(hi.bandwidth_utilization > 0.95);
        assert!(hi.final_commit_ms > lo.final_commit_ms);
        assert!(hi.f_score >= lo.f_score);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = quick(VideoPreset::MallSurveillance, ThresholdPair::new(0.3, 0.6));
        let b = quick(VideoPreset::MallSurveillance, ThresholdPair::new(0.3, 0.6));
        assert_eq!(a.f_score, b.f_score);
        assert_eq!(a.bandwidth_utilization, b.bandwidth_utilization);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.corrections, b.corrections);
    }

    #[test]
    fn no_pending_frames_leak() {
        let cfg = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
            .with_frames(40);
        // run_croesus drains every frame (validated or local).
        let m = run_croesus(&cfg);
        assert!(m.transactions_committed > 0);
    }

    #[test]
    fn cloud_loss_degrades_accuracy_but_never_blocks_commits() {
        let base = CroesusConfig::new(VideoPreset::MallSurveillance, ThresholdPair::new(0.2, 0.8))
            .with_frames(80);
        let healthy = run_croesus(&base.clone());
        let lossy = run_croesus(&base.clone().with_cloud_loss(1.0));
        assert_eq!(healthy.cloud_timeouts, 0);
        assert!(lossy.cloud_timeouts > 0);
        // With total loss, no frame ever gets corrected.
        assert!(lossy.f_score < healthy.f_score);
        // The guarantee holds: every transaction still finally committed.
        assert!(lossy.transactions_committed > 0);
        // Timeouts dominate latency for validated frames.
        assert!(lossy.final_commit_ms > healthy.final_commit_ms);
    }

    #[test]
    fn partial_cloud_loss_sits_between_extremes() {
        let base = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
            .with_frames(80);
        let none = run_croesus(&base.clone());
        let half = run_croesus(&base.clone().with_cloud_loss(0.5));
        let all = run_croesus(&base.clone().with_cloud_loss(1.0));
        assert!(half.cloud_timeouts > 0 && half.cloud_timeouts < all.cloud_timeouts);
        assert!(half.f_score <= none.f_score + 1e-9);
        assert!(half.f_score >= all.f_score - 1e-9);
    }

    #[test]
    fn corrections_happen_on_hard_video_with_validation() {
        let m = quick(VideoPreset::MallSurveillance, ThresholdPair::new(0.2, 0.8));
        let c = m.corrections;
        assert!(
            c.corrected + c.erroneous + c.missed > 0,
            "hard video must produce corrections: {c:?}"
        );
    }
}
