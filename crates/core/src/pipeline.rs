//! The evaluation workload's transactions bank, plus whole-pipeline tests.
//!
//! The execution pattern of Figure 1 lives in
//! [`Deployment`](crate::system::Deployment); build one with
//! [`Croesus::builder`](crate::system::Croesus::builder) (protocol, mode,
//! durability and edge-fleet selection included). The deprecated
//! `run_croesus` shim that used to live here is gone — call
//! `Croesus::multistage(config).run()` instead.

use std::sync::Arc;

use crate::bank::{TransactionsBank, TriggerRule};
use crate::workload::YcsbWorkload;

/// The default transactions bank for the evaluation workload: every
/// detection triggers one YCSB-A-style transaction (§5.1).
pub fn evaluation_bank() -> Arc<TransactionsBank> {
    Arc::new(TransactionsBank::new().with_rule(TriggerRule {
        class_group: "any-detection".into(),
        classes: vec![],
        requires_aux: None,
        template: Arc::new(YcsbWorkload::new()),
    }))
}

#[cfg(test)]
mod tests {
    use crate::config::{CroesusConfig, ValidationPolicy};
    use crate::metrics::RunMetrics;
    use crate::system::Croesus;
    use crate::threshold::ThresholdPair;
    use croesus_video::VideoPreset;

    fn run(cfg: &CroesusConfig) -> RunMetrics {
        Croesus::multistage(cfg).run()
    }

    fn quick(preset: VideoPreset, pair: ThresholdPair) -> RunMetrics {
        run(&CroesusConfig::new(preset, pair).with_frames(80))
    }

    #[test]
    fn run_produces_consistent_metrics() {
        let m = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.4, 0.6));
        assert!(m.f_score > 0.0 && m.f_score <= 1.0);
        assert!(m.bandwidth_utilization >= 0.0 && m.bandwidth_utilization <= 1.0);
        assert!(m.initial_commit_ms > 150.0, "edge detect dominates initial");
        assert!(m.final_commit_ms >= m.initial_commit_ms);
        assert!(m.transactions_committed > 0);
    }

    #[test]
    fn validated_frames_pay_the_cloud_path() {
        let all = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.0, 0.9));
        let none = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.5, 0.5));
        assert!(all.bandwidth_utilization > 0.8);
        assert!(none.bandwidth_utilization < 0.1);
        assert!(
            all.final_commit_ms > none.final_commit_ms + 500.0,
            "cloud path ≈1.2s: {} vs {}",
            all.final_commit_ms,
            none.final_commit_ms
        );
        assert!(all.f_score > none.f_score);
    }

    #[test]
    fn initial_commit_is_real_time_regardless_of_validation() {
        let all = quick(VideoPreset::StreetTraffic, ThresholdPair::new(0.0, 0.9));
        // Initial commit stays ~edge-path even when every frame goes to
        // the cloud — the client "has the illusion of both fast and
        // accurate detection".
        assert!(
            all.initial_commit_ms < 300.0,
            "initial {}",
            all.initial_commit_ms
        );
    }

    #[test]
    fn forced_bu_sweep_is_monotone_in_latency() {
        let base =
            CroesusConfig::new(VideoPreset::ParkDog, ThresholdPair::new(0.4, 0.6)).with_frames(60);
        let lo = run(&base
            .clone()
            .with_validation(ValidationPolicy::ForcedBu(0.25)));
        let hi = run(&base
            .clone()
            .with_validation(ValidationPolicy::ForcedBu(1.0)));
        assert!((lo.bandwidth_utilization - 0.25).abs() < 0.05);
        assert!(hi.bandwidth_utilization > 0.95);
        assert!(hi.final_commit_ms > lo.final_commit_ms);
        assert!(hi.f_score >= lo.f_score);
    }

    #[test]
    fn runs_are_reproducible() {
        let a = quick(VideoPreset::MallSurveillance, ThresholdPair::new(0.3, 0.6));
        let b = quick(VideoPreset::MallSurveillance, ThresholdPair::new(0.3, 0.6));
        assert_eq!(a.f_score, b.f_score);
        assert_eq!(a.bandwidth_utilization, b.bandwidth_utilization);
        assert_eq!(a.bytes_sent, b.bytes_sent);
        assert_eq!(a.corrections, b.corrections);
    }

    #[test]
    fn no_pending_frames_leak() {
        let cfg = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
            .with_frames(40);
        // The deployment drains every frame (validated or local).
        let m = run(&cfg);
        assert!(m.transactions_committed > 0);
    }

    #[test]
    fn cloud_loss_degrades_accuracy_but_never_blocks_commits() {
        let base = CroesusConfig::new(VideoPreset::MallSurveillance, ThresholdPair::new(0.2, 0.8))
            .with_frames(80);
        let healthy = run(&base.clone());
        let lossy = run(&base.clone().with_cloud_loss(1.0));
        assert_eq!(healthy.cloud_timeouts, 0);
        assert!(lossy.cloud_timeouts > 0);
        // With total loss, no frame ever gets corrected.
        assert!(lossy.f_score < healthy.f_score);
        // The guarantee holds: every transaction still finally committed.
        assert!(lossy.transactions_committed > 0);
        // Timeouts dominate latency for validated frames.
        assert!(lossy.final_commit_ms > healthy.final_commit_ms);
    }

    #[test]
    fn partial_cloud_loss_sits_between_extremes() {
        let base = CroesusConfig::new(VideoPreset::StreetTraffic, ThresholdPair::new(0.3, 0.7))
            .with_frames(80);
        let none = run(&base.clone());
        let half = run(&base.clone().with_cloud_loss(0.5));
        let all = run(&base.clone().with_cloud_loss(1.0));
        assert!(half.cloud_timeouts > 0 && half.cloud_timeouts < all.cloud_timeouts);
        assert!(half.f_score <= none.f_score + 1e-9);
        assert!(half.f_score >= all.f_score - 1e-9);
    }

    #[test]
    fn corrections_happen_on_hard_video_with_validation() {
        let m = quick(VideoPreset::MallSurveillance, ThresholdPair::new(0.2, 0.8));
        let c = m.corrections;
        assert!(
            c.corrected + c.erroneous + c.missed > 0,
            "hard video must produce corrections: {c:?}"
        );
    }
}
