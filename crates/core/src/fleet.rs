//! The fault-injected edge fleet: failure detection, WAL-shipping
//! failover, and degradation.
//!
//! [`Deployment::run_fleet`] drives the multi-stage pipeline across the
//! edge fleet while a [`FaultPlan`](croesus_sim::FaultPlan) kills, stalls,
//! partitions and resurrects individual edges. The pieces:
//!
//! * **Heartbeats** — every serving edge beats once per frame (failure
//!   detection is frame-synchronous, like everything else in the
//!   simulation). An edge silent for more than
//!   [`heartbeat_timeout`](crate::CroesusBuilder::heartbeat_timeout)
//!   frames is declared dead.
//! * **Shipping** — each edge's WAL publishes its durable bytes to a
//!   [`LogShipper`]; a cloud-side [`ReplicaTailer`] per edge tails and
//!   validates them, holding a valid prefix of the durable log at all
//!   times.
//! * **Takeover** — when the detector times an edge out (and failover is
//!   on), the cloud recovers the replica apology-aware
//!   ([`ReplicaTailer::recover`]) and stands up a replacement node over
//!   the recovered state: same model, same workload stream, transaction
//!   ids continuing from the log's high-water mark. Clients see
//!   retractions-with-apologies for the in-flight guesses, never lost
//!   finalized state. The dead edge is *fenced*: if it ever wakes (a
//!   stall that outlived the timeout, a resurrect after takeover), it
//!   must not rejoin.
//! * **Degradation** — a partition cuts only the edge→cloud data plane.
//!   The edge is still alive and authoritative, so this is explicitly
//!   *not* a failover trigger: validated frames finalize locally
//!   (degraded accuracy, full availability) until the uplink heals.

use std::path::PathBuf;
use std::sync::Arc;

use croesus_detect::{Detection, ModelProfile, SimulatedModel};
use croesus_obs::{EdgeObs, Event, EventKind, HistKind};
use croesus_sim::{FaultEvent, FaultInjector, FaultKind};
use croesus_store::{KvStore, LockManager};
use croesus_txn::recovery::{recover_edge_file, RecoveredEdge};
use croesus_txn::ExecutorCore;
use croesus_wal::{FileStorage, LogShipper, MemStorage, Storage, Wal};

use crate::bank::TransactionsBank;
use crate::cloud::{CloudNode, ReplicaTailer, TailPoll};
use crate::config::ValidationPolicy;
use crate::edge::EdgeNode;
use crate::pipeline::evaluation_bank;
use crate::system::Deployment;

/// One completed failover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Takeover {
    /// The edge whose partition the cloud took over.
    pub edge: usize,
    /// Frame at which the failure detector declared it dead.
    pub detected_at: u64,
    /// Transactions recovery had to retract (apologies issued), cascades
    /// counted once per root.
    pub retractions: usize,
}

/// What a chaos run observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FleetReport {
    /// Frames that reached a serving edge.
    pub frames_processed: u64,
    /// Frames routed to a dead or stalled edge before takeover (the
    /// availability gap the heartbeat timeout buys).
    pub frames_dropped: u64,
    /// Validated-band frames finalized locally because the uplink was
    /// partitioned (graceful degradation, not failover).
    pub degraded_frames: u64,
    /// Initial sections committed across the fleet.
    pub transactions_committed: u64,
    /// Completed failovers, in detection order.
    pub takeovers: Vec<Takeover>,
    /// Killed edges restarted in place from their own durable log
    /// (resurrect before the detector fired).
    pub in_place_restarts: u64,
    /// Deposed nodes that woke (or resurrected) after a takeover and were
    /// refused re-entry.
    pub fenced_wakeups: u64,
    /// Shipped batches the replica rejected as damaged (each was refetched
    /// intact afterwards).
    pub rejected_batches: u64,
    /// Apology entries dropped by per-frame settling.
    pub settled_entries: u64,
    /// Apologies owed across the surviving fleet at shutdown (crash
    /// retractions included).
    pub apologies_owed: u64,
    /// The structured event timeline, grouped by edge in per-edge
    /// emission order — exactly what the ordering checker consumes. Empty
    /// unless the deployment was built with
    /// [`observe`](crate::CroesusBuilder::observe); fully deterministic
    /// (events carry the sim frame clock, never wall time), so it
    /// participates in the report's equality.
    pub timeline: Vec<Event>,
}

impl FleetReport {
    /// A "flight recorder" dump: the last `per_edge` events of every
    /// edge stream, formatted for a failing chaos assertion. Explains
    /// *which* heartbeat, takeover, sync or retraction happened in what
    /// order — instead of bare counters.
    #[must_use]
    pub fn flight_recorder(&self, per_edge: usize) -> String {
        if self.timeline.is_empty() {
            return "(no timeline: the run was not built with .observe(..))".to_string();
        }
        let mut by_edge: std::collections::BTreeMap<u32, Vec<&Event>> =
            std::collections::BTreeMap::new();
        for e in &self.timeline {
            by_edge.entry(e.edge).or_default().push(e);
        }
        let mut out = String::new();
        for (edge, events) in by_edge {
            let skip = events.len().saturating_sub(per_edge);
            out.push_str(&format!(
                "edge {edge} — last {} of {} events:\n",
                events.len() - skip,
                events.len()
            ));
            for e in &events[skip..] {
                let txn = e.txn.map_or_else(|| "-".to_string(), |t| t.to_string());
                out.push_str(&format!(
                    "  seq {:>5}  frame {:>4}  txn {:>4}  {:?}\n",
                    e.seq, e.frame, txn, e.kind
                ));
            }
        }
        out
    }
}

/// One edge's seat in the fleet: the node (if alive), its shipping
/// endpoint, the cloud's replica tail, and its fault clocks.
struct EdgeSlot {
    /// The serving node: the original edge, its in-place resurrection, or
    /// (after takeover) the cloud-side replacement. `None` while killed.
    node: Option<EdgeNode>,
    shipper: Arc<LogShipper>,
    tailer: ReplicaTailer,
    wal_path: PathBuf,
    /// Frame until which the node is frozen (misses heartbeats, serves
    /// nothing, loses nothing).
    stalled_until: u64,
    /// Frame until which the edge→cloud uplink is cut.
    partition_until: u64,
    /// The cloud replacement owns this partition; the original edge is
    /// fenced forever.
    failed_over: bool,
    /// The edge's observability stream — persistent across takeover, so
    /// the replacement node continues the dead node's sequence numbers.
    obs: EdgeObs,
}

impl EdgeSlot {
    /// Whether the slot serves frames (and beats) at `now`. A failed-over
    /// slot's replacement ignores the original's stall clock.
    fn serving(&self, now: u64) -> bool {
        self.node.is_some() && (self.failed_over || now >= self.stalled_until)
    }
}

impl Deployment {
    fn edge_model(&self) -> SimulatedModel {
        SimulatedModel::new(ModelProfile::tiny_yolov3(), self.config.seed ^ 0xE)
            .with_hardware_factor(self.config.setup.edge.hardware_factor())
    }

    fn build_slot(&self, bank: &Arc<TransactionsBank>, i: usize) -> EdgeSlot {
        let cfg = &self.config;
        let salt = (i as u64) << 48;
        let wal = self
            .durability
            .open_edge_wal_with(i, self.coalescer.clone())
            .expect("durability directory must be creatable and writable")
            .expect("the fleet driver requires durability");
        let shipper = Arc::new(LogShipper::new());
        wal.attach_shipper(Arc::clone(&shipper));
        let eobs = self.edge_obs(i);
        wal.set_obs(eobs.clone());
        let core = ExecutorCore::new(
            Arc::new(KvStore::new()),
            Arc::new(LockManager::new(self.protocol.default_lock_policy())),
        )
        .with_obs(eobs.clone())
        .with_wal(Arc::new(wal));
        let node = EdgeNode::with_protocol(
            self.edge_model(),
            Arc::clone(bank),
            cfg.overlap_threshold,
            cfg.seed ^ salt,
            self.protocol.build(core),
        )
        .with_worker_pool(croesus_txn::WorkerPool::new(self.workers));
        EdgeSlot {
            node: Some(node),
            tailer: ReplicaTailer::new(Arc::clone(&shipper)),
            shipper,
            wal_path: self.durability.edge_log_path(i).expect("durability is on"),
            stalled_until: 0,
            partition_until: 0,
            failed_over: false,
            obs: eobs,
        }
    }

    /// Stand a node back up over recovered state: the WAL restarts as a
    /// checkpoint of the recovered world, the apology manager carries the
    /// crash retractions, and transaction ids continue from the log's
    /// high-water mark. Returns the node and how many transactions the
    /// recovery retracted.
    fn revive_node(
        &self,
        i: usize,
        bank: &Arc<TransactionsBank>,
        rec: RecoveredEdge,
        storage: Box<dyn Storage>,
        shipper: Option<Arc<LogShipper>>,
    ) -> (EdgeNode, usize) {
        let RecoveredEdge {
            store,
            apologies,
            retractions,
            next_txn,
            state,
            ..
        } = rec;
        let wal = match self.durability.pipeline_config(self.coalescer.clone()) {
            None => Wal::resume(
                storage,
                self.durability.wal_config(),
                state,
                &store,
                shipper,
            ),
            Some(pipe) => Wal::resume_pipelined(
                storage,
                self.durability.wal_config(),
                pipe,
                state,
                &store,
                shipper,
            ),
        }
        .expect("resuming the write-ahead log must succeed");
        let eobs = self.edge_obs(i);
        wal.set_obs(eobs.clone());
        let core = ExecutorCore::new(
            store,
            Arc::new(LockManager::new(self.protocol.default_lock_policy())),
        )
        .with_obs(eobs)
        .with_apologies(apologies)
        .with_wal(Arc::new(wal));
        let salt = (i as u64) << 48;
        let node = EdgeNode::with_protocol(
            self.edge_model(),
            Arc::clone(bank),
            self.config.overlap_threshold,
            self.config.seed ^ salt,
            self.protocol.build(core),
        )
        .with_worker_pool(croesus_txn::WorkerPool::new(self.workers));
        node.set_txn_start(next_txn);
        (node, retractions.len())
    }

    /// The cloud takes over a dead edge's partition from its replica.
    fn take_over(
        &self,
        i: usize,
        now: u64,
        silence_frames: u64,
        slot: &mut EdgeSlot,
        bank: &Arc<TransactionsBank>,
        report: &mut FleetReport,
    ) {
        slot.obs.emit(EventKind::TakeoverStart);
        slot.obs
            .record_value(HistKind::DetectToTakeoverFrames, silence_frames);
        // Pull whatever the link still carries; if it is down, the replica
        // serves from what already shipped — a stale-but-valid durable
        // prefix is exactly what a crash would have preserved anyway.
        let mut rejects = 0;
        loop {
            match slot.tailer.poll() {
                TailPoll::Advanced { bytes, .. } => {
                    slot.obs.emit(EventKind::ShipAccept {
                        bytes: bytes as u64,
                    });
                }
                TailPoll::Rejected => {
                    slot.obs.emit(EventKind::ShipReject);
                    report.rejected_batches += 1;
                    rejects += 1;
                    if rejects > 3 {
                        break;
                    }
                }
                TailPoll::UpToDate | TailPoll::Offline => break,
            }
        }
        if slot.node.take().is_some() {
            // The node was stalled, not dead: it gets deposed now and
            // fenced when it wakes.
            report.fenced_wakeups += 1;
            slot.obs.emit(EventKind::Fence);
        }
        let rec = slot.tailer.recover();
        // Recovery's crash retractions, apology-paired in the trace: the
        // in-flight guesses the takeover rolls back.
        if slot.obs.is_enabled() {
            for retraction in &rec.retractions {
                for txn in &retraction.retracted {
                    slot.obs.emit_txn(txn.0, EventKind::Retract);
                    slot.obs.emit_txn(txn.0, EventKind::Apology);
                }
            }
        }
        let (node, retractions) = self.revive_node(i, bank, rec, Box::new(MemStorage::new()), None);
        slot.node = Some(node);
        slot.failed_over = true;
        slot.obs.emit(EventKind::TakeoverEnd {
            retractions: retractions as u32,
        });
        report.takeovers.push(Takeover {
            edge: i,
            detected_at: now,
            retractions,
        });
    }

    /// A killed edge restarts from its own durable log file (resurrect
    /// before the detector fired). After a takeover it is fenced instead.
    fn resurrect(
        &self,
        i: usize,
        slot: &mut EdgeSlot,
        bank: &Arc<TransactionsBank>,
        report: &mut FleetReport,
    ) {
        if slot.failed_over {
            report.fenced_wakeups += 1;
            slot.obs.emit(EventKind::Fence);
            return;
        }
        if slot.node.is_some() {
            return; // scripted resurrect of a live edge: nothing to do
        }
        let rec = recover_edge_file(&slot.wal_path).expect("the durable log file is readable");
        let storage: Box<dyn Storage> = Box::new(
            FileStorage::create(&slot.wal_path).expect("the durable log file is writable"),
        );
        // Resuming restarts the shipping epoch, so the replica re-tails
        // from the restart checkpoint.
        let (node, _) = self.revive_node(i, bank, rec, storage, Some(Arc::clone(&slot.shipper)));
        slot.node = Some(node);
        report.in_place_restarts += 1;
    }

    fn apply_fault(
        &self,
        ev: FaultEvent,
        slot: &mut EdgeSlot,
        bank: &Arc<TransactionsBank>,
        report: &mut FleetReport,
    ) {
        match ev.kind {
            // Process death: the node (and its unsynced WAL buffer) is
            // gone; only the synced file — and its shipped image — remain.
            FaultKind::Kill => {
                if !slot.failed_over {
                    slot.node = None;
                }
            }
            FaultKind::Stall { frames } => {
                if !slot.failed_over && slot.node.is_some() {
                    slot.stalled_until = ev.frame + frames;
                }
            }
            // Data-plane only: shipping stops, the edge keeps serving.
            FaultKind::Partition { frames } => {
                slot.partition_until = slot.partition_until.max(ev.frame + frames);
            }
            FaultKind::Resurrect => self.resurrect(ev.edge, slot, bank, report),
            FaultKind::CorruptShipment => slot.shipper.corrupt_next_fetch(),
        }
    }

    /// Run the multi-stage pipeline across the fleet under the configured
    /// [`FaultPlan`](croesus_sim::FaultPlan). Requires durability (the
    /// builder enforces the failover half of that contract). Fully
    /// deterministic: the report is a pure function of the configuration
    /// and the plan.
    pub fn run_fleet(&self) -> FleetReport {
        assert!(
            self.durability.is_enabled(),
            "the fleet driver requires durability: WAL shipping is the failover substrate"
        );
        let config = &self.config;
        let video = config.preset.generate(config.num_frames, config.seed);
        let query = video.query_class().clone();
        let bank = evaluation_bank();
        let cloud = CloudNode::new(config.cloud_model, config.seed ^ 0xC);
        let mut slots: Vec<EdgeSlot> = (0..self.edges).map(|i| self.build_slot(&bank, i)).collect();
        let mut injector = FaultInjector::new(self.faults.clone());
        let mut last_seen = vec![0u64; self.edges];
        let mut report = FleetReport::default();

        for frame in video.frames() {
            let now = frame.index;
            // Advance every stream's sim frame clock first: fault, miss
            // and takeover events this frame must be stamped with it.
            for slot in &slots {
                slot.obs.set_frame(now);
            }
            // Failure detection runs FIRST in the frame, on last frame's
            // heartbeat state — before this frame's faults (a resurrect)
            // or beats are applied. This is the pinned boundary semantics:
            // the detector's `silence > heartbeat_timeout` condition is
            // evaluated like a lease — once an edge's silence exceeds the
            // timeout, the takeover wins the frame, and a resurrect
            // arriving at that exact frame is fenced rather than racing
            // the detector back in. A resurrect one frame earlier (silence
            // exactly == timeout, not >) still restarts in place. Live
            // edges see silence == 1 here (they last beat in the previous
            // frame), which the `timeout >= 1` builder floor makes
            // harmless.
            if self.failover {
                for i in 0..self.edges {
                    let silence = now.saturating_sub(last_seen[i]);
                    if !slots[i].failed_over && silence > self.heartbeat_timeout {
                        self.take_over(i, now, silence, &mut slots[i], &bank, &mut report);
                        last_seen[i] = now;
                    }
                }
            }
            for ev in injector.take_due(now) {
                if ev.edge < self.edges {
                    let slot = &mut slots[ev.edge];
                    self.apply_fault(ev, slot, &bank, &mut report);
                }
            }
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.shipper.set_offline(now < slot.partition_until);
                if slot.serving(now) {
                    last_seen[i] = now;
                } else if !slot.failed_over {
                    slot.obs.emit(EventKind::HeartbeatMiss);
                }
            }

            let i = (now as usize) % self.edges;
            let slot = &mut slots[i];
            if !slot.serving(now) {
                report.frames_dropped += 1;
            } else {
                let edge = slot.node.as_ref().expect("serving implies a node");
                let (detections, _) = edge.detect(frame);
                let (send, surviving): (bool, Vec<Detection>) = match config.validation {
                    ValidationPolicy::Thresholds(pair) => {
                        let d = pair.decide_frame(&detections, &query);
                        (d.send, d.surviving())
                    }
                    ValidationPolicy::ForcedBu(bu) => (
                        ValidationPolicy::forced_send(bu, now),
                        detections
                            .into_iter()
                            .filter(|d| d.confidence >= config.low_confidence_filter)
                            .collect(),
                    ),
                };
                let initial = edge.run_initial_stage(now, &surviving);
                report.transactions_committed += initial.committed;
                // The replacement node lives at the cloud: its "uplink"
                // cannot be partitioned away.
                let partitioned = !slot.failed_over && now < slot.partition_until;
                if send && !partitioned {
                    let (cloud_labels, _) = cloud.process(frame);
                    edge.deliver_cloud_labels(now, &cloud_labels);
                } else {
                    edge.finalize_local(now);
                    if send {
                        report.degraded_frames += 1;
                    }
                }
                report.frames_processed += 1;
            }

            for slot in &mut slots {
                if let Some(edge) = &slot.node {
                    report.settled_entries += edge.settle() as u64;
                }
                if !slot.failed_over {
                    // Replication lag, sampled before this frame's tail
                    // round: durable-but-unreplicated bytes at the source.
                    if slot.obs.is_enabled() {
                        let lag = slot
                            .shipper
                            .shipped_len()
                            .saturating_sub(slot.tailer.log().len());
                        slot.obs.record_value(HistKind::ShipLagBytes, lag as u64);
                    }
                    loop {
                        match slot.tailer.poll() {
                            TailPoll::Advanced { bytes, .. } => {
                                slot.obs.emit(EventKind::ShipAccept {
                                    bytes: bytes as u64,
                                });
                            }
                            TailPoll::Rejected => {
                                slot.obs.emit(EventKind::ShipReject);
                                report.rejected_batches += 1;
                                break; // next frame's poll refetches
                            }
                            TailPoll::UpToDate | TailPoll::Offline => break,
                        }
                    }
                }
            }
        }

        // Clean shutdown: flush the surviving WALs, let every replica
        // catch up (chaos assertions compare them against the files), and
        // total the apologies the fleet owes.
        for slot in &mut slots {
            if let Some(edge) = &slot.node {
                if let Some(wal) = edge.protocol().core().wal() {
                    wal.flush().expect("WAL flush at shutdown failed");
                }
                report.apologies_owed +=
                    edge.protocol().core().apologies().apologies().len() as u64;
            }
            if !slot.failed_over {
                slot.shipper.set_offline(false);
                slot.tailer.catch_up();
            }
        }
        if let Some(obs) = &self.obs {
            report.timeline = obs.events();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Croesus;
    use croesus_sim::FaultPlan;
    use croesus_wal::DurabilityMode;

    fn fleet(dir: &std::path::Path) -> crate::system::CroesusBuilder {
        Croesus::builder()
            .frames(30)
            .edges(3)
            .durability(DurabilityMode::Strict {
                dir: dir.to_path_buf(),
            })
            .failover(true)
            .heartbeat_timeout(3)
    }

    #[test]
    fn fault_free_fleet_processes_everything() {
        let dir = croesus_wal::scratch_dir("fleet-clean");
        let r = fleet(&dir).build().run_fleet();
        assert_eq!(r.frames_processed, 30);
        assert_eq!(r.frames_dropped, 0);
        assert!(r.takeovers.is_empty());
        assert_eq!(r.apologies_owed, 0);
        assert!(r.settled_entries > 0, "per-frame settling fired");
        assert!(r.transactions_committed > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_edge_fails_over_exactly_at_the_timeout() {
        let dir = croesus_wal::scratch_dir("fleet-kill");
        let plan = FaultPlan::new().at(6, 1, FaultKind::Kill);
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert_eq!(r.takeovers.len(), 1);
        let t = &r.takeovers[0];
        assert_eq!(t.edge, 1);
        assert_eq!(
            t.detected_at,
            6 + 3,
            "last beat at frame 5, declared dead once the silence exceeds the timeout"
        );
        // Frame 7 (the only frame routed to edge 1 during the gap) dropped.
        assert_eq!(r.frames_dropped, 1);
        assert_eq!(r.frames_processed, 29);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Boundary pin: a resurrect landing on the exact detection frame
    /// LOSES the frame. Detection runs before fault application, so once
    /// silence exceeds the timeout the takeover is decided and the
    /// returning original is fenced — it cannot race the detector back in.
    #[test]
    fn resurrect_at_the_exact_detection_frame_is_fenced() {
        let dir = croesus_wal::scratch_dir("fleet-boundary-lose");
        // Kill at 6 → last beat at 5 → silence first exceeds timeout 3 at
        // frame 9, the same frame the resurrect arrives.
        let plan = FaultPlan::new()
            .at(6, 1, FaultKind::Kill)
            .at(9, 1, FaultKind::Resurrect);
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert_eq!(r.takeovers.len(), 1, "the detector wins the tie");
        assert_eq!(r.takeovers[0].detected_at, 9);
        assert_eq!(r.fenced_wakeups, 1, "the late riser is fenced out");
        assert_eq!(r.in_place_restarts, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Boundary pin, other side: one frame earlier the silence equals the
    /// timeout (not exceeds), the detector stays quiet, and the edge
    /// restarts in place.
    #[test]
    fn resurrect_one_frame_before_detection_restarts_in_place() {
        let dir = croesus_wal::scratch_dir("fleet-boundary-win");
        let plan = FaultPlan::new()
            .at(6, 1, FaultKind::Kill)
            .at(8, 1, FaultKind::Resurrect);
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert!(r.takeovers.is_empty(), "silence == timeout is still alive");
        assert_eq!(r.fenced_wakeups, 0);
        assert_eq!(r.in_place_restarts, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_stall_recovers_without_failover() {
        let dir = croesus_wal::scratch_dir("fleet-stall");
        let plan = FaultPlan::new().at(5, 2, FaultKind::Stall { frames: 2 });
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert!(r.takeovers.is_empty(), "woke before the detector fired");
        assert_eq!(r.fenced_wakeups, 0);
        assert_eq!(r.frames_dropped, 1, "frame 5 (5 % 3 == 2) was missed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn long_stall_is_deposed_and_fenced() {
        let dir = croesus_wal::scratch_dir("fleet-long-stall");
        let plan = FaultPlan::new().at(5, 0, FaultKind::Stall { frames: 10 });
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert_eq!(r.takeovers.len(), 1, "a stall past the timeout is death");
        assert_eq!(r.fenced_wakeups, 1, "the frozen original must not rejoin");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partition_degrades_instead_of_failing_over() {
        let dir = croesus_wal::scratch_dir("fleet-partition");
        let plan = FaultPlan::new().at(3, 0, FaultKind::Partition { frames: 12 });
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert!(
            r.takeovers.is_empty(),
            "a partitioned edge is alive and authoritative — never deposed"
        );
        assert_eq!(r.frames_dropped, 0, "full availability throughout");
        assert!(r.degraded_frames > 0, "validated frames finalized locally");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resurrect_before_detection_restarts_in_place() {
        let dir = croesus_wal::scratch_dir("fleet-resurrect");
        let plan = FaultPlan::new()
            .at(6, 1, FaultKind::Kill)
            .at(8, 1, FaultKind::Resurrect);
        let r = fleet(&dir)
            .heartbeat_timeout(5)
            .faults(plan)
            .build()
            .run_fleet();
        assert!(r.takeovers.is_empty(), "back before the detector fired");
        assert_eq!(r.in_place_restarts, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resurrect_after_takeover_is_fenced() {
        let dir = croesus_wal::scratch_dir("fleet-fence");
        let plan = FaultPlan::new()
            .at(6, 1, FaultKind::Kill)
            .at(15, 1, FaultKind::Resurrect);
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert_eq!(r.takeovers.len(), 1);
        assert_eq!(r.in_place_restarts, 0);
        assert_eq!(r.fenced_wakeups, 1, "the zombie stays out");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shipment_is_rejected_and_refetched() {
        let dir = croesus_wal::scratch_dir("fleet-corrupt");
        let plan = FaultPlan::new().at(4, 0, FaultKind::CorruptShipment);
        let r = fleet(&dir).faults(plan).build().run_fleet();
        assert!(r.rejected_batches >= 1);
        assert!(r.takeovers.is_empty());
        assert_eq!(r.frames_processed, 30, "damage in flight costs nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let dir_a = croesus_wal::scratch_dir("fleet-det-a");
        let dir_b = croesus_wal::scratch_dir("fleet-det-b");
        let plan = FaultPlan::seeded(99, 30, 3, 0.08);
        let a = fleet(&dir_a).faults(plan.clone()).build().run_fleet();
        let b = fleet(&dir_b).faults(plan).build().run_fleet();
        assert_eq!(a, b, "a chaos run is a pure function of (config, plan)");
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
